//! Repo task runner (`cargo run -p xtask -- <command>`).
//!
//! * `collect --input <jsonl> --output <json>` — canonicalize the JSON
//!   lines the vendored criterion reporter appends (`CRITERION_JSON=...`)
//!   into a sorted, deduplicated `BENCH_*.json` document. Used to write
//!   `BENCH_smoke.json` in CI and to (re)seed the checked-in
//!   `BENCH_baseline.json`.
//! * `bench-gate --baseline <json> --current <json> [--threshold 1.25]
//!   [--ratio-num <id> --ratio-den <id> --ratio-max <f>]...` — the CI
//!   regression gate: every bench tracked in the baseline must be present
//!   in the current results and its `min_ns` must not exceed
//!   `baseline × threshold`. The optional ratio checks (the flag triple
//!   may repeat) are hardware independent — each constrains two benches
//!   *of the same run* (e.g. incremental DBF re-convergence ≤ 0.35× the
//!   full rebuild, and the incremental zone patch ≤ 0.35× the full
//!   indexed zone build — the repo's ≥~3× speedup acceptance criteria).
//!   Every gate is evaluated before the exit status is decided (a CI run
//!   reports the full scorecard, not the first breach), and when
//!   `$GITHUB_STEP_SUMMARY` is set the scorecard is appended there as a
//!   markdown table (gate, baseline, current, bound, pass/fail). Exits
//!   non-zero (failing the CI job) on any regression, missing bench, or
//!   ratio breach.
//!   Gates a runner cannot execute (the sharded/sequential ratios on a
//!   single-core machine) are declared with `--skip-ratio-num <id>
//!   --skip-ratio-den <id>` pairs (plus an optional `--skip-reason`):
//!   they never fail the run, but they show up in stdout and in the
//!   `$GITHUB_STEP_SUMMARY` scorecard as explicit `skipped` rows — a
//!   gate that never ran must be visibly absent, not silently green.
//! * `speedup-curve --input <json> --output <json> [--strict]` — derives
//!   the sharded-vs-sequential speedup curve from one bench run: every
//!   `routing/dbf_{delta,full}_{seq,sharded}_<n>` record is grouped by n
//!   and emitted as a `{n, seq_min_ns, sharded_min_ns, speedup}` row,
//!   sorted by n. A record whose twin is absent is **not** dropped: the
//!   row is emitted with explicit `"missing"` fields (a truncated bench
//!   run must be visible in the artifact, not silently thinner), and
//!   `--strict` turns any such row into a non-zero exit. CI uploads the
//!   result as the scaling artifact tracked by the ROADMAP's 10k-node
//!   target.
//! * `sweep-diff --a <dir> --b <dir> [--require <token>]...` — the
//!   sweep-determinism gate: both directories must hold the same set of
//!   `*.json` figure files (as written by the `repro` bin) with
//!   **byte-identical** contents. CI runs a figure sweep at 1 worker and
//!   at the runner's available parallelism and diffs the outputs — the
//!   parallel sweep executor may only change wall-clock time, never a
//!   result byte. Each (repeatable) `--require` token must appear
//!   somewhere in the compared JSON, so a gate can also prove the sweep
//!   actually exercised what it claims to (the adversarial-smoke step
//!   requires the `packets_dropped`/`bogus_advs` counters — a silently
//!   benign sweep would pass the byte-diff and still fail the gate).
//!   Exits non-zero on any missing file, content difference, or absent
//!   required token.
//!
//! The workspace is offline (no serde), so records are read with a tiny
//! scanner that understands exactly the flat objects the reporter emits.

use std::fmt::Write as _;
use std::process::ExitCode;

/// One benchmark measurement.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Record {
    id: String,
    min_ns: u64,
    mean_ns: u64,
    samples: u64,
}

/// Extracts every flat `{...}` object from `text` (JSON lines or a JSON
/// array of such objects) and parses the bench fields. Later records win on
/// duplicate ids, so re-running a bench overrides its earlier line.
fn parse_records(text: &str) -> Result<Vec<Record>, String> {
    let mut records: Vec<Record> = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('{') {
        let Some(close_rel) = object_end(&rest[open..]) else {
            return Err("unbalanced '{' in bench JSON".into());
        };
        let obj = &rest[open + 1..open + close_rel];
        rest = &rest[open + close_rel + 1..];
        let record = Record {
            id: string_field(obj, "id")
                .ok_or_else(|| format!("object without \"id\": {{{obj}}}"))?,
            min_ns: u64_field(obj, "min_ns")
                .ok_or_else(|| format!("object without \"min_ns\": {{{obj}}}"))?,
            mean_ns: u64_field(obj, "mean_ns")
                .ok_or_else(|| format!("object without \"mean_ns\": {{{obj}}}"))?,
            samples: u64_field(obj, "samples")
                .ok_or_else(|| format!("object without \"samples\": {{{obj}}}"))?,
        };
        records.retain(|r| r.id != record.id);
        records.push(record);
    }
    Ok(records)
}

/// Byte offset of the `}` closing the object `text` starts with, skipping
/// braces inside string literals (bench ids may contain `{}`).
fn object_end(text: &str) -> Option<usize> {
    debug_assert!(text.starts_with('{'));
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '}' if !in_string => return Some(i),
            _ => {}
        }
    }
    None
}

/// `"key":"value"` lookup with `\"`/`\\` unescaping.
fn string_field(obj: &str, key: &str) -> Option<String> {
    let tail = field_value(obj, key)?;
    let tail = tail.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = tail.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            _ => out.push(c),
        }
    }
    None
}

/// `"key":123` lookup.
fn u64_field(obj: &str, key: &str) -> Option<u64> {
    let digits: String = field_value(obj, key)?
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The text right after `"key":` (whitespace tolerated).
fn field_value<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\"");
    let at = obj.find(&marker)?;
    let tail = obj[at + marker.len()..].trim_start();
    Some(tail.strip_prefix(':')?.trim_start())
}

/// Canonical document: a JSON array sorted by id, one record per line.
fn render(records: &[Record]) -> String {
    let mut sorted: Vec<&Record> = records.iter().collect();
    sorted.sort_by(|a, b| a.id.cmp(&b.id));
    let mut out = String::from("[\n");
    for (i, r) in sorted.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {{\"id\":\"{}\",\"min_ns\":{},\"mean_ns\":{},\"samples\":{}}}{}",
            r.id.replace('\\', "\\\\").replace('"', "\\\""),
            r.min_ns,
            r.mean_ns,
            r.samples,
            if i + 1 == sorted.len() { "" } else { "," }
        );
    }
    out.push_str("]\n");
    out
}

/// Gate verdict for one tracked bench.
#[derive(Debug, PartialEq)]
enum Verdict {
    Ok { ratio: f64 },
    Regressed { ratio: f64 },
    Missing,
}

/// Outcome of one same-run ratio constraint:
/// `current[num].min_ns / current[den].min_ns` must stay at or below
/// `max`. Hardware independent, unlike the absolute baseline comparison.
#[derive(Debug, PartialEq)]
struct RatioVerdict {
    num: String,
    den: String,
    max: f64,
    /// `None` when either bench is missing from the current results.
    ratio: Option<f64>,
}

impl RatioVerdict {
    fn pass(&self) -> bool {
        self.ratio.is_some_and(|r| r <= self.max)
    }
}

/// A ratio gate the runner declared it cannot execute (e.g. the
/// sharded/sequential gates on a single-core machine). Never failing,
/// but always reported: the scorecard shows an explicit `skipped` row.
#[derive(Debug, PartialEq)]
struct SkippedRatio {
    num: String,
    den: String,
    reason: String,
}

/// Evaluates one ratio constraint. Never fails early: a missing bench is a
/// failed verdict (`ratio: None`), so every gate in a run is always
/// evaluated and reported before the command exits non-zero.
fn check_ratio(current: &[Record], num: &str, den: &str, max: f64) -> RatioVerdict {
    let find = |id: &str| current.iter().find(|r| r.id == id);
    let ratio = match (find(num), find(den)) {
        (Some(n), Some(d)) => Some(n.min_ns as f64 / (d.min_ns as f64).max(1.0)),
        _ => None,
    };
    RatioVerdict {
        num: num.to_string(),
        den: den.to_string(),
        max,
        ratio,
    }
}

/// Compares current results against the baseline: every baseline bench is
/// tracked; `min_ns` may grow at most `threshold ×`.
fn gate(baseline: &[Record], current: &[Record], threshold: f64) -> Vec<(String, Verdict)> {
    baseline
        .iter()
        .map(|b| {
            let verdict = match current.iter().find(|c| c.id == b.id) {
                None => Verdict::Missing,
                Some(c) => {
                    let ratio = c.min_ns as f64 / (b.min_ns as f64).max(1.0);
                    if ratio > threshold {
                        Verdict::Regressed { ratio }
                    } else {
                        Verdict::Ok { ratio }
                    }
                }
            };
            (b.id.clone(), verdict)
        })
        .collect()
}

/// Renders every gate of one `bench-gate` run — the absolute per-bench
/// regression gates and the same-run ratio gates — as one GitHub-flavored
/// markdown table: the `$GITHUB_STEP_SUMMARY` payload.
fn markdown_summary(
    verdicts: &[(String, Verdict)],
    baseline: &[Record],
    current: &[Record],
    threshold: f64,
    ratios: &[RatioVerdict],
    skipped: &[SkippedRatio],
) -> String {
    let min_of = |records: &[Record], id: &str| {
        records
            .iter()
            .find(|r| r.id == id)
            .map(|r| format!("{} ns", r.min_ns))
    };
    let mut out = String::from("### bench-gate\n\n");
    out.push_str("| gate | baseline | current | bound | result |\n");
    out.push_str("|---|---:|---:|---:|:---:|\n");
    for (id, verdict) in verdicts {
        let base = min_of(baseline, id).unwrap_or_else(|| "—".into());
        let (cur, pass) = match verdict {
            Verdict::Ok { ratio } => (format!("{ratio:.2}× base"), true),
            Verdict::Regressed { ratio } => (format!("{ratio:.2}× base"), false),
            Verdict::Missing => ("missing".into(), false),
        };
        let cur = min_of(current, id).map_or(cur.clone(), |ns| format!("{ns} ({cur})"));
        let _ = writeln!(
            out,
            "| `{id}` | {base} | {cur} | ≤ {threshold:.2}× base | {} |",
            if pass { "✅" } else { "❌" }
        );
    }
    for r in ratios {
        let cur = r
            .ratio
            .map_or_else(|| "missing".into(), |x| format!("{x:.3}×"));
        let _ = writeln!(
            out,
            "| `{}` / `{}` | — | {cur} | ≤ {:.2}× | {} |",
            r.num,
            r.den,
            r.max,
            if r.pass() { "✅" } else { "❌" }
        );
    }
    for s in skipped {
        let _ = writeln!(
            out,
            "| `{}` / `{}` | — | not run | — | ⏭️ skipped ({}) |",
            s.num, s.den, s.reason
        );
    }
    out
}

fn read(path: &str) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Name the input on parse failures too: "unbalanced '{'" without a
    // file name is useless when several CRITERION_JSON files are in play.
    let records = parse_records(&text).map_err(|e| format!("{path}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path} holds no bench records"));
    }
    Ok(records)
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// All values of a repeatable flag, in order.
fn arg_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn run_collect(args: &[String]) -> Result<(), String> {
    let input = arg_value(args, "--input").ok_or("collect needs --input <jsonl>")?;
    let output = arg_value(args, "--output").ok_or("collect needs --output <json>")?;
    let records = read(&input)?;
    std::fs::write(&output, render(&records)).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("collected {} bench records into {output}", records.len());
    Ok(())
}

fn run_bench_gate(args: &[String]) -> Result<(), String> {
    let baseline_path =
        arg_value(args, "--baseline").ok_or("bench-gate needs --baseline <json>")?;
    let current_path = arg_value(args, "--current").ok_or("bench-gate needs --current <json>")?;
    let threshold: f64 = match arg_value(args, "--threshold") {
        Some(t) => t.parse().map_err(|e| format!("bad --threshold {t}: {e}"))?,
        None => 1.25,
    };
    if !(threshold.is_finite() && threshold >= 1.0) {
        return Err(format!("threshold {threshold} must be >= 1.0"));
    }
    let baseline = read(&baseline_path)?;
    let current = read(&current_path)?;
    let verdicts = gate(&baseline, &current, threshold);

    println!("bench-gate: {current_path} vs {baseline_path} (threshold {threshold:.2}×)");
    let mut failures = 0;
    for (id, verdict) in &verdicts {
        match verdict {
            Verdict::Ok { ratio } => println!("  ok        {ratio:>6.2}×  {id}"),
            Verdict::Regressed { ratio } => {
                failures += 1;
                println!("  REGRESSED {ratio:>6.2}×  {id}");
            }
            Verdict::Missing => {
                failures += 1;
                println!("  MISSING            {id}");
            }
        }
    }
    for c in &current {
        if !baseline.iter().any(|b| b.id == c.id) {
            println!("  untracked          {} (not in baseline)", c.id);
        }
    }
    // Ratio checks are repeatable: the i-th --ratio-num / --ratio-den /
    // --ratio-max form one constraint. A ragged specification must not
    // silently disable the hardware-independent gate.
    let nums = arg_values(args, "--ratio-num");
    let dens = arg_values(args, "--ratio-den");
    let maxes = arg_values(args, "--ratio-max");
    if nums.len() != dens.len() || nums.len() != maxes.len() {
        return Err(format!(
            "ratio checks need matching --ratio-num/--ratio-den/--ratio-max triples \
             (got {}/{}/{})",
            nums.len(),
            dens.len(),
            maxes.len()
        ));
    }
    // Every ratio gate is evaluated and reported before any failure exits
    // the command: a CI run shows the full scorecard, not the first breach.
    let mut ratio_failures = 0;
    let mut ratios = Vec::new();
    for ((num, den), max) in nums.iter().zip(&dens).zip(&maxes) {
        let max: f64 = max
            .parse()
            .map_err(|e| format!("bad --ratio-max {max}: {e}"))?;
        let verdict = check_ratio(&current, num, den, max);
        match (verdict.pass(), verdict.ratio) {
            (true, Some(ratio)) => {
                println!("  ratio ok  {ratio:>6.2}×  {num} / {den} (max {max:.2})");
            }
            (false, Some(ratio)) => {
                ratio_failures += 1;
                println!("  RATIO     {ratio:>6.2}×  {num} / {den} EXCEEDS max {max:.2}");
            }
            (_, None) => {
                ratio_failures += 1;
                println!("  RATIO missing bench  {num} / {den} (not in current results)");
            }
        }
        ratios.push(verdict);
    }
    // Declared-skipped ratio gates: reported (stdout + scorecard), never
    // failed. A ragged pair list is an error — a skip declaration that
    // silently dropped a gate would defeat its whole purpose.
    let skip_nums = arg_values(args, "--skip-ratio-num");
    let skip_dens = arg_values(args, "--skip-ratio-den");
    if skip_nums.len() != skip_dens.len() {
        return Err(format!(
            "skipped ratio gates need matching --skip-ratio-num/--skip-ratio-den pairs \
             (got {}/{})",
            skip_nums.len(),
            skip_dens.len()
        ));
    }
    let skip_reason =
        arg_value(args, "--skip-reason").unwrap_or_else(|| "not runnable on this runner".into());
    let skipped: Vec<SkippedRatio> = skip_nums
        .into_iter()
        .zip(skip_dens)
        .map(|(num, den)| SkippedRatio {
            num,
            den,
            reason: skip_reason.clone(),
        })
        .collect();
    for s in &skipped {
        println!("  ratio SKIPPED      {} / {} ({})", s.num, s.den, s.reason);
    }
    // On GitHub runners, mirror the full scorecard into the job summary.
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        let table = markdown_summary(&verdicts, &baseline, &current, threshold, &ratios, &skipped);
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&summary_path)
            .and_then(|mut f| f.write_all(table.as_bytes()))
            .map_err(|e| format!("cannot append to GITHUB_STEP_SUMMARY {summary_path}: {e}"))?;
    }
    if failures > 0 || ratio_failures > 0 {
        return Err(format!(
            "{failures} of {} tracked benches regressed beyond {threshold:.2}× or went \
             missing, and {ratio_failures} of {} ratio gates failed. If this is an \
             intentional trade or a hardware change, refresh the baseline: \
             CRITERION_JSON=bench.jsonl cargo bench -p spms-bench && \
             cargo run -p xtask -- collect --input bench.jsonl --output BENCH_baseline.json",
            verdicts.len(),
            ratios.len()
        ));
    }
    println!(
        "all {} tracked benches and {} ratio gates within budget ({} ratio gates skipped)",
        verdicts.len(),
        ratios.len(),
        skipped.len()
    );
    Ok(())
}

/// One point of the sharded-vs-sequential speedup curve: the
/// `..._seq_<n>` / `..._sharded_<n>` records of one bench family at one
/// size. Either side may be absent (a truncated or partial bench run):
/// the point is still emitted, with its missing side explicit.
#[derive(Debug, PartialEq)]
struct SpeedupPoint {
    n: u64,
    seq_min_ns: Option<u64>,
    sharded_min_ns: Option<u64>,
}

impl SpeedupPoint {
    /// Sequential time over sharded time (> 1 means the pool wins), or
    /// `None` when either twin is missing.
    fn speedup(&self) -> Option<f64> {
        match (self.seq_min_ns, self.sharded_min_ns) {
            (Some(seq), Some(sharded)) => Some(seq as f64 / (sharded as f64).max(1.0)),
            _ => None,
        }
    }

    /// `true` when both twins were measured.
    fn complete(&self) -> bool {
        self.seq_min_ns.is_some() && self.sharded_min_ns.is_some()
    }
}

/// Groups every `<prefix>_{seq,sharded}_<n>` record by n, sorted by n.
/// Records without a twin are **kept** as incomplete points — the curve
/// must show a truncated run as explicitly missing, never as merely
/// thinner.
fn speedup_points(records: &[Record], prefix: &str) -> Vec<SpeedupPoint> {
    let seq_marker = format!("{prefix}_seq_");
    let sharded_marker = format!("{prefix}_sharded_");
    let mut by_n: std::collections::BTreeMap<u64, SpeedupPoint> = std::collections::BTreeMap::new();
    for r in records {
        if let Some(n) = r.id.strip_prefix(&seq_marker).and_then(|s| s.parse().ok()) {
            by_n.entry(n)
                .or_insert(SpeedupPoint {
                    n,
                    seq_min_ns: None,
                    sharded_min_ns: None,
                })
                .seq_min_ns = Some(r.min_ns);
        } else if let Some(n) =
            r.id.strip_prefix(&sharded_marker)
                .and_then(|s| s.parse().ok())
        {
            by_n.entry(n)
                .or_insert(SpeedupPoint {
                    n,
                    seq_min_ns: None,
                    sharded_min_ns: None,
                })
                .sharded_min_ns = Some(r.min_ns);
        }
    }
    by_n.into_values().collect()
}

/// Renders the delta and full-rebuild speedup curves as one JSON document.
/// An unpaired point renders its absent side — and its speedup — as the
/// literal string `"missing"`.
fn render_speedup(delta: &[SpeedupPoint], full: &[SpeedupPoint]) -> String {
    let ns = |v: Option<u64>| v.map_or_else(|| "\"missing\"".into(), |x| x.to_string());
    let family = |points: &[SpeedupPoint]| {
        let mut out = String::from("[\n");
        for (i, p) in points.iter().enumerate() {
            let speedup = p
                .speedup()
                .map_or_else(|| "\"missing\"".into(), |s| format!("{s:.4}"));
            let _ = writeln!(
                out,
                "    {{\"n\":{},\"seq_min_ns\":{},\"sharded_min_ns\":{},\"speedup\":{}}}{}",
                p.n,
                ns(p.seq_min_ns),
                ns(p.sharded_min_ns),
                speedup,
                if i + 1 == points.len() { "" } else { "," }
            );
        }
        out.push_str("  ]");
        out
    };
    format!(
        "{{\n  \"delta\": {},\n  \"full\": {}\n}}\n",
        family(delta),
        family(full)
    )
}

fn run_speedup_curve(args: &[String]) -> Result<(), String> {
    let input = arg_value(args, "--input").ok_or("speedup-curve needs --input <json>")?;
    let output = arg_value(args, "--output").ok_or("speedup-curve needs --output <json>")?;
    let strict = args.iter().any(|a| a == "--strict");
    let records = read(&input)?;
    let delta = speedup_points(&records, "routing/dbf_delta");
    let full = speedup_points(&records, "routing/dbf_full");
    if delta.is_empty() && full.is_empty() {
        return Err(format!(
            "{input} holds no routing/dbf_{{delta,full}}_{{seq,sharded}}_<n> records"
        ));
    }
    std::fs::write(&output, render_speedup(&delta, &full))
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    let mut unpaired = Vec::new();
    for (name, points) in [("delta", &delta), ("full", &full)] {
        for p in points {
            let side = |v: Option<u64>| v.map_or_else(|| "MISSING".into(), |x| format!("{x} ns"));
            let speedup = p
                .speedup()
                .map_or_else(|| "missing".into(), |s| format!("{s:.2}×"));
            println!(
                "  {name:>5} n={:<6} seq {:>14}  sharded {:>14}  speedup {speedup}",
                p.n,
                side(p.seq_min_ns),
                side(p.sharded_min_ns),
            );
            if !p.complete() {
                let absent = if p.seq_min_ns.is_none() {
                    "seq"
                } else {
                    "sharded"
                };
                unpaired.push(format!("routing/dbf_{name}_{absent}_{}", p.n));
            }
        }
    }
    if !unpaired.is_empty() {
        let note = format!(
            "{} unpaired record(s) in {input} — missing twin(s): {}",
            unpaired.len(),
            unpaired.join(", ")
        );
        if strict {
            return Err(format!("{note} (--strict: a truncated bench run fails)"));
        }
        eprintln!("xtask: warning: {note}");
    }
    println!(
        "speedup curve ({} delta + {} full points, {} unpaired) written to {output}",
        delta.len(),
        full.len(),
        unpaired.len()
    );
    Ok(())
}

/// Sorted `*.json` file names directly inside `dir`.
fn json_files(dir: &str) -> Result<Vec<String>, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {dir}: {e}"))?
        .filter_map(Result::ok)
        .filter(|e| e.path().is_file())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("{dir} holds no .json figure files"));
    }
    Ok(names)
}

fn run_sweep_diff(args: &[String]) -> Result<(), String> {
    let dir_a = arg_value(args, "--a").ok_or("sweep-diff needs --a <dir>")?;
    let dir_b = arg_value(args, "--b").ok_or("sweep-diff needs --b <dir>")?;
    let required = arg_values(args, "--require");
    let names_a = json_files(&dir_a)?;
    let names_b = json_files(&dir_b)?;
    if names_a != names_b {
        return Err(format!(
            "figure sets differ: {dir_a} holds {names_a:?}, {dir_b} holds {names_b:?}"
        ));
    }
    println!("sweep-diff: {dir_a} vs {dir_b} ({} figures)", names_a.len());
    let mut differing = Vec::new();
    let mut corpus = String::new();
    for name in &names_a {
        let read = |dir: &str| {
            std::fs::read(std::path::Path::new(dir).join(name))
                .map_err(|e| format!("cannot read {dir}/{name}: {e}"))
        };
        let bytes_a = read(&dir_a)?;
        if bytes_a == read(&dir_b)? {
            println!("  identical  {name}");
        } else {
            println!("  DIFFERS    {name}");
            differing.push(name.clone());
        }
        corpus.push_str(&String::from_utf8_lossy(&bytes_a));
    }
    if !differing.is_empty() {
        return Err(format!(
            "{} of {} figures differ between the two sweeps ({}): the executor \
             must be byte-deterministic across worker counts",
            differing.len(),
            names_a.len(),
            differing.join(", ")
        ));
    }
    let absent: Vec<&String> = required.iter().filter(|t| !corpus.contains(*t)).collect();
    if !absent.is_empty() {
        return Err(format!(
            "required token(s) {absent:?} appear nowhere in the compared JSON: \
             the sweep did not exercise what this gate is meant to verify"
        ));
    }
    if !required.is_empty() {
        println!("all {} required tokens present", required.len());
    }
    println!("all {} figures byte-identical", names_a.len());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("collect") => run_collect(&args[1..]),
        Some("bench-gate") => run_bench_gate(&args[1..]),
        Some("speedup-curve") => run_speedup_curve(&args[1..]),
        Some("sweep-diff") => run_sweep_diff(&args[1..]),
        _ => Err(
            "usage: xtask <collect|bench-gate|speedup-curve|sweep-diff> [flags]\n\
                  \x20 collect       --input <jsonl> --output <json>\n\
                  \x20 bench-gate    --baseline <json> --current <json> [--threshold 1.25]\n\
                  \x20 speedup-curve --input <json> --output <json> [--strict]\n\
                  \x20 sweep-diff    --a <dir> --b <dir> [--require <token>]..."
                .into(),
        ),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, min: u64) -> Record {
        Record {
            id: id.into(),
            min_ns: min,
            mean_ns: min + 10,
            samples: 20,
        }
    }

    #[test]
    fn parses_json_lines_and_arrays() {
        let jsonl = "{\"id\":\"a\",\"min_ns\":100,\"mean_ns\":110,\"samples\":20}\n\
                     {\"id\":\"b\",\"min_ns\":200,\"mean_ns\":220,\"samples\":20}\n";
        let from_lines = parse_records(jsonl).expect("records a and b parse from JSON lines");
        assert_eq!(from_lines.len(), 2);
        assert_eq!(from_lines[0].id, "a");
        assert_eq!(from_lines[1].min_ns, 200);
        // The canonical render round-trips.
        let from_array =
            parse_records(&render(&from_lines)).expect("rendered records a and b re-parse");
        assert_eq!(from_lines, from_array);
    }

    #[test]
    fn later_duplicate_records_win() {
        let text = "{\"id\":\"a\",\"min_ns\":100,\"mean_ns\":110,\"samples\":20}\n\
                    {\"id\":\"a\",\"min_ns\":90,\"mean_ns\":95,\"samples\":20}\n";
        let records = parse_records(text).expect("duplicate records of id a parse");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].min_ns, 90);
    }

    #[test]
    fn escaped_quotes_in_ids_survive() {
        let records = vec![rec("weird\"bench\\name", 5)];
        let parsed =
            parse_records(&render(&records)).expect("escaped bench id survives the round-trip");
        assert_eq!(parsed[0].id, "weird\"bench\\name");
    }

    #[test]
    fn braces_inside_ids_do_not_split_objects() {
        let records = vec![rec("routing/offer{k=2}", 5), rec("plain", 7)];
        let parsed = parse_records(&render(&records))
            .expect("braces inside record id routing/offer{k=2} re-parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id, "plain");
        assert_eq!(parsed[1].id, "routing/offer{k=2}");
        assert_eq!(parsed[1].min_ns, 5);
    }

    #[test]
    fn malformed_records_are_rejected() {
        assert!(parse_records("{\"id\":\"a\"}").is_err());
        assert!(parse_records("{\"min_ns\":1,\"mean_ns\":1,\"samples\":1}").is_err());
        assert!(parse_records("{\"id\":\"a\",\"min_ns\":1,\"mean_ns\":1,\"samples\":1").is_err());
    }

    #[test]
    fn render_sorts_by_id() {
        let out = render(&[rec("z", 1), rec("a", 2)]);
        let za = out.find("\"z\"").expect("record z rendered");
        let aa = out.find("\"a\"").expect("record a rendered");
        assert!(aa < za);
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let baseline = vec![rec("a", 100), rec("b", 100), rec("c", 100)];
        let current = vec![rec("a", 124), rec("b", 126)];
        let verdicts = gate(&baseline, &current, 1.25);
        assert!(matches!(verdicts[0].1, Verdict::Ok { .. }));
        assert!(matches!(verdicts[1].1, Verdict::Regressed { .. }));
        assert!(matches!(verdicts[2].1, Verdict::Missing));
    }

    #[test]
    fn ratio_check_enforces_same_run_speedup() {
        let current = vec![rec("delta", 70), rec("full", 260)];
        assert!(check_ratio(&current, "delta", "full", 0.35).pass());
        assert!(!check_ratio(&current, "delta", "full", 0.25).pass());
        // A missing bench is a failed verdict, never a skipped one.
        let absent = check_ratio(&current, "absent", "full", 0.35);
        assert_eq!(absent.ratio, None);
        assert!(!absent.pass());
    }

    #[test]
    fn markdown_summary_tabulates_every_gate() {
        let baseline = vec![rec("a", 100), rec("gone", 100)];
        let current = vec![rec("a", 130), rec("soa", 43), rec("aos", 100)];
        let verdicts = gate(&baseline, &current, 1.25);
        let ratios = vec![
            check_ratio(&current, "soa", "aos", 0.6),
            check_ratio(&current, "soa", "absent", 0.6),
        ];
        let skipped = vec![SkippedRatio {
            num: "sharded".into(),
            den: "seq".into(),
            reason: "single-core runner".into(),
        }];
        let md = markdown_summary(&verdicts, &baseline, &current, 1.25, &ratios, &skipped);
        // One row per absolute gate and per ratio gate, pass or fail —
        // and one explicit row per declared-skipped gate, so a gate that
        // never ran cannot read as passing.
        assert!(md.contains("| `a` | 100 ns | 130 ns (1.30× base) | ≤ 1.25× base | ❌ |"));
        assert!(md.contains("| `gone` | 100 ns | missing | ≤ 1.25× base | ❌ |"));
        assert!(md.contains("| `soa` / `aos` | — | 0.430× | ≤ 0.60× | ✅ |"));
        assert!(md.contains("| `soa` / `absent` | — | missing | ≤ 0.60× | ❌ |"));
        assert!(md
            .contains("| `sharded` / `seq` | — | not run | — | ⏭️ skipped (single-core runner) |"));
    }

    #[test]
    fn skipped_ratio_gates_never_fail_but_ragged_pairs_do() {
        let dir = SweepDir::new(
            "skip-gate",
            &[(
                "bench.json",
                "[{\"id\":\"a\",\"min_ns\":100,\"mean_ns\":110,\"samples\":20}]",
            )],
        );
        let bench = format!("{}/bench.json", dir.path());
        let base: Vec<String> = [
            "--baseline",
            &bench,
            "--current",
            &bench,
            "--skip-ratio-num",
            "routing/dbf_delta_sharded_625",
            "--skip-ratio-den",
            "routing/dbf_delta_seq_625",
            "--skip-reason",
            "single-core runner",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        // The skipped gate is reported, not evaluated: the run passes even
        // though neither bench exists in the results.
        assert!(run_bench_gate(&base).is_ok());
        // A ragged declaration is an error — a silently dropped skip row
        // would defeat the whole point of declaring it.
        let mut ragged = base;
        ragged.push("--skip-ratio-num".into());
        ragged.push("routing/dbf_full_sharded_625".into());
        let err = run_bench_gate(&ragged).unwrap_err();
        assert!(err.contains("--skip-ratio-num/--skip-ratio-den"), "{err}");
    }

    #[test]
    fn speedup_points_pair_families_by_size() {
        let records = vec![
            rec("routing/dbf_delta_seq_1024", 300),
            rec("routing/dbf_delta_sharded_1024", 200),
            rec("routing/dbf_delta_seq_225", 90),
            rec("routing/dbf_delta_sharded_225", 100),
            rec("routing/dbf_delta_sharded_4096", 999), // no seq twin
            rec("routing/dbf_full_seq_625", 400),
            rec("unrelated/bench", 1),
        ];
        let delta = speedup_points(&records, "routing/dbf_delta");
        assert_eq!(
            delta,
            vec![
                SpeedupPoint {
                    n: 225,
                    seq_min_ns: Some(90),
                    sharded_min_ns: Some(100),
                },
                SpeedupPoint {
                    n: 1024,
                    seq_min_ns: Some(300),
                    sharded_min_ns: Some(200),
                },
                // The unpaired record is kept, its missing twin explicit.
                SpeedupPoint {
                    n: 4096,
                    seq_min_ns: None,
                    sharded_min_ns: Some(999),
                },
            ]
        );
        assert!((delta[1].speedup().expect("paired point") - 1.5).abs() < 1e-12);
        assert_eq!(delta[2].speedup(), None);
        // The full family holds one seq-only point — present, incomplete.
        let full = speedup_points(&records, "routing/dbf_full");
        assert_eq!(full.len(), 1);
        assert!(!full[0].complete());
        // The rendered document round-trips through the JSON scanner's
        // object grammar for complete rows and marks the ragged ones.
        let json = render_speedup(&delta, &full);
        assert!(json.contains("\"n\":1024"));
        assert!(json.contains("\"speedup\":1.5000"));
        assert!(json.contains("{\"n\":4096,\"seq_min_ns\":\"missing\",\"sharded_min_ns\":999,\"speedup\":\"missing\"}"));
        assert!(json.contains(
            "{\"n\":625,\"seq_min_ns\":400,\"sharded_min_ns\":\"missing\",\"speedup\":\"missing\"}"
        ));
    }

    #[test]
    fn ragged_speedup_sets_warn_by_default_and_fail_under_strict() {
        let complete = "{\"id\":\"routing/dbf_delta_seq_225\",\"min_ns\":90,\"mean_ns\":95,\"samples\":20}\n\
                        {\"id\":\"routing/dbf_delta_sharded_225\",\"min_ns\":45,\"mean_ns\":50,\"samples\":20}\n";
        let ragged = format!(
            "{complete}{{\"id\":\"routing/dbf_full_sharded_625\",\"min_ns\":70,\"mean_ns\":75,\"samples\":20}}\n"
        );
        let dir = SweepDir::new(
            "speedup-strict",
            &[("complete.jsonl", complete), ("ragged.jsonl", &ragged)],
        );
        let curve = |input: &str, strict: bool| {
            let mut args = vec![
                "--input".to_string(),
                format!("{}/{input}", dir.path()),
                "--output".to_string(),
                format!("{}/curve-{input}-{strict}.json", dir.path()),
            ];
            if strict {
                args.push("--strict".into());
            }
            run_speedup_curve(&args)
        };
        // A fully paired set passes even under --strict.
        assert!(curve("complete.jsonl", false).is_ok());
        assert!(curve("complete.jsonl", true).is_ok());
        // A ragged set still emits the curve (with explicit missing rows)
        // by default, but --strict turns it into a hard failure naming
        // the absent twin.
        assert!(curve("ragged.jsonl", false).is_ok());
        let written =
            std::fs::read_to_string(format!("{}/curve-ragged.jsonl-false.json", dir.path()))
                .expect("ragged curve file written");
        assert!(written.contains("\"missing\""), "{written}");
        let err = curve("ragged.jsonl", true).unwrap_err();
        assert!(err.contains("routing/dbf_full_seq_625"), "{err}");
        assert!(err.contains("--strict"), "{err}");
    }

    #[test]
    fn read_errors_name_the_input_file() {
        let dir = SweepDir::new(
            "read-errors",
            &[("truncated.jsonl", "{\"id\":\"a\",\"min_ns\":1,")],
        );
        let path = format!("{}/truncated.jsonl", dir.path());
        let err = read(&path).unwrap_err();
        assert!(
            err.contains("truncated.jsonl") && err.contains("unbalanced"),
            "a truncated CRITERION_JSON must fail naming the file: {err}"
        );
        let err = read("/nonexistent/bench.jsonl").unwrap_err();
        assert!(err.contains("/nonexistent/bench.jsonl"), "{err}");
    }

    #[test]
    fn repeated_flags_collect_in_order() {
        let args: Vec<String> = [
            "--ratio-num",
            "a",
            "--ratio-den",
            "b",
            "--ratio-max",
            "0.35",
            "--ratio-num",
            "c",
            "--ratio-den",
            "d",
            "--ratio-max",
            "0.5",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        assert_eq!(arg_values(&args, "--ratio-num"), ["a", "c"]);
        assert_eq!(arg_values(&args, "--ratio-den"), ["b", "d"]);
        assert_eq!(arg_values(&args, "--ratio-max"), ["0.35", "0.5"]);
        assert!(arg_values(&args, "--absent").is_empty());
    }

    #[test]
    fn gate_tolerates_improvements_and_untracked_benches() {
        let baseline = vec![rec("a", 100)];
        let current = vec![rec("a", 10), rec("new", 999)];
        let verdicts = gate(&baseline, &current, 1.25);
        assert_eq!(verdicts.len(), 1, "untracked benches never gate");
        assert!(matches!(verdicts[0].1, Verdict::Ok { .. }));
    }

    /// Temp sweep directory populated with the given (name, contents)
    /// files; cleaned up on drop.
    struct SweepDir(std::path::PathBuf);

    impl SweepDir {
        fn new(tag: &str, files: &[(&str, &str)]) -> Self {
            let dir =
                std::env::temp_dir().join(format!("spms-xtask-sweep-{}-{tag}", std::process::id()));
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| panic!("cannot create sweep dir {}: {e}", dir.display()));
            for (name, contents) in files {
                std::fs::write(dir.join(name), contents)
                    .unwrap_or_else(|e| panic!("cannot write sweep file {name}: {e}"));
            }
            SweepDir(dir)
        }

        fn path(&self) -> String {
            self.0.to_string_lossy().into_owned()
        }
    }

    impl Drop for SweepDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn diff_args(a: &SweepDir, b: &SweepDir) -> Vec<String> {
        ["--a", &a.path(), "--b", &b.path()]
            .iter()
            .map(ToString::to_string)
            .collect()
    }

    #[test]
    fn sweep_diff_accepts_identical_directories() {
        let files = [("fig12.json", "{\"id\":\"fig12\"}\n"), ("fig6.json", "{}")];
        let a = SweepDir::new("eq-a", &files);
        let b = SweepDir::new("eq-b", &files);
        assert!(run_sweep_diff(&diff_args(&a, &b)).is_ok());
    }

    #[test]
    fn sweep_diff_rejects_content_and_set_differences() {
        let a = SweepDir::new("ne-a", &[("fig12.json", "{\"x\":1}"), ("fig6.json", "{}")]);
        let content = SweepDir::new("ne-b", &[("fig12.json", "{\"x\":2}"), ("fig6.json", "{}")]);
        let err = run_sweep_diff(&diff_args(&a, &content)).unwrap_err();
        assert!(err.contains("fig12.json"), "{err}");
        let missing = SweepDir::new("ne-c", &[("fig12.json", "{\"x\":1}")]);
        let err = run_sweep_diff(&diff_args(&a, &missing)).unwrap_err();
        assert!(err.contains("figure sets differ"), "{err}");
        // Non-JSON clutter (CSV twins) is ignored, not compared.
        let csv_a = SweepDir::new("csv-a", &[("fig12.json", "{}"), ("fig12.csv", "1,2")]);
        let csv_b = SweepDir::new("csv-b", &[("fig12.json", "{}"), ("fig12.csv", "3,4")]);
        assert!(run_sweep_diff(&diff_args(&csv_a, &csv_b)).is_ok());
    }

    #[test]
    fn sweep_diff_required_tokens_gate_the_corpus() {
        let files = [
            (
                "ext5.json",
                "{\"notes\":\"packets_dropped=9, bogus_advs=3\"}",
            ),
            ("fig6.json", "{}"),
        ];
        let a = SweepDir::new("req-a", &files);
        let b = SweepDir::new("req-b", &files);
        let mut args = diff_args(&a, &b);
        for token in ["packets_dropped", "bogus_advs"] {
            args.push("--require".into());
            args.push(token.into());
        }
        assert!(run_sweep_diff(&args).is_ok());
        // A token the sweep never produced fails the gate even though every
        // figure byte-matches.
        args.push("--require".into());
        args.push("churn_epochs".into());
        let err = run_sweep_diff(&args).unwrap_err();
        assert!(err.contains("churn_epochs"), "{err}");
    }

    #[test]
    fn sweep_diff_rejects_empty_or_absent_directories() {
        let a = SweepDir::new("empty-a", &[("fig12.json", "{}")]);
        let empty = SweepDir::new("empty-b", &[("readme.txt", "no json here")]);
        assert!(run_sweep_diff(&diff_args(&a, &empty)).is_err());
        let args: Vec<String> = ["--a", &a.path(), "--b", "/nonexistent-sweep-dir"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert!(run_sweep_diff(&args).is_err());
    }
}
