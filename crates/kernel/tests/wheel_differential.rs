//! The heap-vs-wheel differential determinism suite — the tentpole proof
//! that `TimerWheel` is a drop-in replacement for `EventQueue`.
//!
//! Every property drives the two kernels with an identical randomized
//! schedule/pop script and asserts byte-equal results at every step: same
//! `(time, event)` on every pop, same `peek_time`, same lengths, same
//! lifetime counters at the end. The heap is the trusted oracle (itself
//! pinned against a linear-scan model in `queue_fifo.rs`); agreement here
//! extends the oracle chain one rung: model ← heap ← wheel ← batched
//! dispatch ← whole-run `RunMetrics` (`tests/integration_determinism.rs`).
//!
//! Scenario coverage mirrors the regimes the simulator actually produces:
//! clustered MAC-slot timestamps (tie-heavy), sparse horizon-scale timers
//! (level cascades), same-timestamp bursts (broadcast fan-out), zero-delay
//! self-reschedules (immediate forwarding), and batched same-instant drains.

use proptest::prelude::*;
use spms_kernel::{EventQueue, SimTime, TimerWheel};

/// Runs one schedule/pop script against both kernels, asserting lockstep
/// equality on every operation. `time_of` maps raw fuzz data to a
/// timestamp so each property picks its own distribution.
fn run_lockstep(
    ops: &[(u8, u64, u8)],
    time_of: impl Fn(u64) -> u64,
    zero_delay: bool,
) -> Result<(), TestCaseError> {
    let mut heap = EventQueue::new();
    let mut wheel = TimerWheel::new();
    let mut next_id: u64 = 0;
    for &(op, data, extra) in ops {
        if op % 4 == 3 {
            prop_assert_eq!(heap.peek_time(), wheel.peek_time());
            let got_heap = heap.pop();
            let got_wheel = wheel.pop();
            prop_assert_eq!(got_heap, got_wheel);
            if zero_delay {
                if let Some((t, _)) = got_heap {
                    // Self-reschedule at the instant being dispatched: both
                    // kernels must deliver these later in the same pass.
                    for _ in 0..extra % 3 {
                        heap.schedule(t, next_id);
                        wheel.schedule(t, next_id);
                        next_id += 1;
                    }
                }
            }
        } else {
            // A burst schedules several events at one instant (fan-out).
            let t = SimTime::from_nanos(time_of(data));
            for _ in 0..1 + (extra % 3) {
                heap.schedule(t, next_id);
                wheel.schedule(t, next_id);
                next_id += 1;
            }
        }
        prop_assert_eq!(heap.len(), wheel.len());
    }
    // Drain the tail in lockstep.
    loop {
        prop_assert_eq!(heap.peek_time(), wheel.peek_time());
        let got_heap = heap.pop();
        prop_assert_eq!(got_heap, wheel.pop());
        if got_heap.is_none() {
            break;
        }
    }
    prop_assert_eq!(heap.scheduled_total(), wheel.scheduled_total());
    prop_assert_eq!(heap.popped_total(), wheel.popped_total());
    Ok(())
}

proptest! {
    // Fixed seed + bounded case count keeps this suite deterministic in CI.
    #![proptest_config(ProptestConfig {
        cases: 64,
        rng_seed: 0x0712_2004_D5A1,
        ..ProptestConfig::default()
    })]

    /// Clustered timestamps — 16 distinct instants, heavy tie pressure, all
    /// activity inside the wheel's lowest levels.
    #[test]
    fn clustered_schedules_pop_identically(
        ops in prop::collection::vec((0u8..8, 0u64..1_000_000, 0u8..4), 1..250),
    ) {
        run_lockstep(&ops, |d| (d % 16) * 250_000, false)?;
    }

    /// Sparse timestamps spread over the full `u64` range — every overflow
    /// level and multi-step cascades get exercised.
    #[test]
    fn sparse_schedules_pop_identically(
        ops in prop::collection::vec((0u8..8, 0u64..u64::MAX, 0u8..4), 1..250),
    ) {
        run_lockstep(&ops, |d| d.wrapping_mul(0x9E37_79B9_7F4A_7C15), false)?;
    }

    /// Same-timestamp bursts at a handful of instants — broadcast fan-out
    /// where almost every pop is a FIFO tie-break.
    #[test]
    fn burst_schedules_pop_identically(
        ops in prop::collection::vec((0u8..8, 0u64..4, 0u8..4), 1..200),
    ) {
        run_lockstep(&ops, |d| d * 2_000_000, false)?;
    }

    /// Zero-delay self-reschedules during dispatch: events fired back at
    /// the instant being delivered must land in the current pass, in seq
    /// order, on both kernels.
    #[test]
    fn zero_delay_reschedules_pop_identically(
        ops in prop::collection::vec((0u8..8, 0u64..32, 0u8..4), 1..200),
    ) {
        run_lockstep(&ops, |d| (d % 6) * 750_000, true)?;
    }

    /// Mixed regime: clustered near-term timers and sparse far-horizon
    /// timers interleaved, so cascades and ties interact.
    #[test]
    fn mixed_regimes_pop_identically(
        ops in prop::collection::vec((0u8..8, 0u64..u64::MAX, 0u8..4), 1..250),
    ) {
        run_lockstep(&ops, |d| {
            if d % 3 == 0 {
                d.wrapping_mul(0x9E37_79B9_7F4A_7C15) // far horizon
            } else {
                (d % 12) * 400_000 // near-term cluster
            }
        }, true)?;
    }

    /// Batched dispatch: the wheel drained one timestamp at a time via
    /// `drain_next` must flatten to exactly the heap's per-event pop
    /// sequence — including zero-delay reschedules injected mid-batch,
    /// which surface on the next drain at the same timestamp.
    #[test]
    fn drain_next_flattens_to_per_event_pops(
        ops in prop::collection::vec((0u8..8, 0u64..24, 0u8..4), 1..200),
    ) {
        let mut heap = EventQueue::new();
        let mut wheel = TimerWheel::new();
        let mut next_id: u64 = 0;
        let mut buf = Vec::new();
        for &(op, data, extra) in &ops {
            if op % 4 == 3 {
                let drained = wheel.drain_next(&mut buf);
                match drained {
                    None => prop_assert_eq!(heap.pop(), None),
                    Some(t) => {
                        prop_assert!(!buf.is_empty());
                        for &id in buf.iter() {
                            // The heap mirrors the batch pop-for-pop.
                            prop_assert_eq!(heap.pop(), Some((t, id)));
                        }
                        // Zero-delay reschedule after the batch: next drain
                        // must report the SAME timestamp on both kernels.
                        for _ in 0..extra % 2 {
                            heap.schedule(t, next_id);
                            wheel.schedule(t, next_id);
                            next_id += 1;
                        }
                    }
                }
            } else {
                let t = SimTime::from_nanos((data % 8) * 600_000);
                for _ in 0..1 + (extra % 3) {
                    heap.schedule(t, next_id);
                    wheel.schedule(t, next_id);
                    next_id += 1;
                }
            }
        }
        while let Some(t) = wheel.drain_next(&mut buf) {
            for &id in buf.iter() {
                prop_assert_eq!(heap.pop(), Some((t, id)));
            }
        }
        prop_assert_eq!(heap.pop(), None);
        prop_assert_eq!(heap.popped_total(), wheel.popped_total());
    }
}
