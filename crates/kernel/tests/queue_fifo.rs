//! Seeded property suite for the binary-heap `EventQueue` — the trusted
//! oracle at the root of the kernel equivalence chain (heap ← wheel ←
//! batched dispatch ← whole-run `RunMetrics`). Random interleaved
//! schedule/pop sequences with duplicate timestamps are checked against the
//! simplest possible correct scheduler: a flat `Vec` scanned for the minimum
//! `(time, insertion id)` on every pop. If the heap ever deviated from the
//! documented global `(time, seq)` order — including FIFO on ties and
//! zero-delay reschedules — this suite would catch it before the
//! differential wheel suite inherited the bug as "agreement".

use proptest::prelude::*;
use spms_kernel::{EventQueue, SimTime};

/// Transparently-correct reference: O(n) min-scan over `(time_ns, id)`
/// pairs, where `id` is a monotone insertion counter. Tuple ordering gives
/// exactly the contract the heap promises.
#[derive(Default)]
struct ModelQueue {
    pending: Vec<(u64, u64)>,
    next_id: u64,
}

impl ModelQueue {
    fn schedule(&mut self, time_ns: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push((time_ns, id));
        id
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let (at, _) = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|&(_, &entry)| entry)?;
        Some(self.pending.swap_remove(at))
    }
}

/// Interprets one fuzz op against both the model and the heap, asserting
/// byte-equal pop results. `time_of` maps raw fuzz data to a timestamp so
/// each property picks its own time distribution.
fn run_against_model(ops: &[(u8, u64)], time_of: impl Fn(u64) -> u64) -> Result<(), TestCaseError> {
    let mut model = ModelQueue::default();
    let mut heap = EventQueue::new();
    for &(op, data) in ops {
        if op % 3 == 2 {
            let got = heap.pop();
            let want = model.pop().map(|(t, id)| (SimTime::from_nanos(t), id));
            prop_assert_eq!(got, want);
        } else {
            let t = time_of(data);
            let id = model.schedule(t);
            heap.schedule(SimTime::from_nanos(t), id);
        }
    }
    // Drain the remainder: the tail must agree too.
    loop {
        let got = heap.pop();
        let want = model.pop().map(|(t, id)| (SimTime::from_nanos(t), id));
        prop_assert_eq!(got, want);
        if got.is_none() {
            break;
        }
    }
    prop_assert_eq!(heap.scheduled_total(), model.next_id);
    Ok(())
}

proptest! {
    // Fixed seed + bounded case count keeps this suite deterministic in CI.
    #![proptest_config(ProptestConfig {
        cases: 64,
        rng_seed: 0x000F_EED0_2004,
        ..ProptestConfig::default()
    })]

    /// Clustered timestamps (16 distinct instants): maximal tie pressure,
    /// so FIFO-on-equal-time carries most of the ordering.
    #[test]
    fn clustered_times_match_the_model(
        ops in prop::collection::vec((0u8..6, 0u64..1_000_000), 1..250),
    ) {
        run_against_model(&ops, |d| (d % 16) * 1_000_000)?;
    }

    /// Sparse timestamps across the full `u64` range — no ties, ordering
    /// driven purely by time, including extremes near `u64::MAX`.
    #[test]
    fn sparse_times_match_the_model(
        ops in prop::collection::vec((0u8..6, 0u64..u64::MAX), 1..250),
    ) {
        run_against_model(&ops, |d| d.wrapping_mul(0x9E37_79B9_7F4A_7C15))?;
    }

    /// Pure schedule-then-drain: the popped sequence is exactly the input
    /// stably sorted by `(time, insertion order)`.
    #[test]
    fn full_drain_is_a_stable_sort(
        times in prop::collection::vec(0u64..8, 1..200),
    ) {
        let mut q = EventQueue::new();
        let mut want: Vec<(u64, u64)> = Vec::new();
        for (id, &ms) in times.iter().enumerate() {
            let t = ms * 1_000_000;
            q.schedule(SimTime::from_nanos(t), id as u64);
            want.push((t, id as u64));
        }
        want.sort(); // (time, id): a stable sort by time alone
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, id)| (t.as_nanos(), id))).collect();
        prop_assert_eq!(got, want);
    }

    /// Zero-delay reschedules: whenever a pop delivers time `t`, new events
    /// scheduled at exactly `t` must surface in the same pass, in seq
    /// order — the model enforces this by construction.
    #[test]
    fn zero_delay_reschedules_match_the_model(
        ops in prop::collection::vec((0u8..4, 0u64..64, 0u8..4), 1..150),
    ) {
        let mut model = ModelQueue::default();
        let mut heap = EventQueue::new();
        for &(op, data, extra) in &ops {
            if op == 3 {
                let got = heap.pop();
                let want = model.pop().map(|(t, id)| (SimTime::from_nanos(t), id));
                prop_assert_eq!(got, want);
                if let Some((t, _)) = got {
                    // The handler fires back at the instant being dispatched.
                    for _ in 0..extra {
                        let id = model.schedule(t.as_nanos());
                        heap.schedule(t, id);
                    }
                }
            } else {
                let t = (data % 8) * 500_000;
                let id = model.schedule(t);
                heap.schedule(SimTime::from_nanos(t), id);
            }
        }
        loop {
            let got = heap.pop();
            let want = model.pop().map(|(t, id)| (SimTime::from_nanos(t), id));
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
