//! Bounded simulation trace.
//!
//! Protocol debugging in a discrete-event simulator is essentially log
//! archaeology; this module provides a cheap, bounded, allocation-friendly
//! trace that examples and tests can inspect (for instance, the
//! `failure_recovery` example prints the PRONE/SCONE failover sequence from
//! the paper's Figure 2 walkthrough).

use std::collections::VecDeque;
use std::fmt;

use crate::SimTime;

/// One trace record: a timestamp, a subsystem tag and a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time at which the event was recorded.
    pub time: SimTime,
    /// Short subsystem tag (e.g. `"spms"`, `"mac"`, `"dbf"`).
    pub tag: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12} {:>5}] {}", self.time, self.tag, self.message)
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// When disabled (the default for benchmark runs) recording is a no-op, so
/// tracing can stay compiled-in without perturbing measurements.
///
/// # Example
///
/// ```
/// use spms_kernel::trace::Trace;
/// use spms_kernel::SimTime;
///
/// let mut trace = Trace::bounded(8);
/// trace.record(SimTime::ZERO, "spms", "ADV broadcast".to_string());
/// assert_eq!(trace.events().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// A disabled trace: `record` does nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            capacity: 0,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// An enabled trace retaining at most `capacity` most-recent events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (use [`Trace::disabled`] instead).
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity trace; use Trace::disabled()");
        Trace {
            enabled: true,
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled). The oldest event is evicted
    /// once the buffer is full.
    pub fn record(&mut self, time: SimTime, tag: &'static str, message: String) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { time, tag, message });
    }

    /// Records lazily: the closure only runs when tracing is enabled, so hot
    /// paths avoid formatting costs.
    pub fn record_with(&mut self, time: SimTime, tag: &'static str, f: impl FnOnce() -> String) {
        if self.enabled {
            self.record(time, tag, f());
        }
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Number of events evicted due to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events whose tag equals `tag`, oldest first.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.tag == tag)
    }

    /// Renders the retained events, one per line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, "x", "hello".into());
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_trace_evicts_oldest() {
        let mut t = Trace::bounded(2);
        t.record(SimTime::from_millis(1), "a", "1".into());
        t.record(SimTime::from_millis(2), "a", "2".into());
        t.record(SimTime::from_millis(3), "a", "3".into());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events()[0].message, "2");
        assert_eq!(t.events()[1].message, "3");
    }

    #[test]
    fn record_with_is_lazy_when_disabled() {
        let mut t = Trace::disabled();
        let mut called = false;
        t.record_with(SimTime::ZERO, "x", || {
            called = true;
            String::new()
        });
        assert!(!called);
    }

    #[test]
    fn tag_filter_and_render() {
        let mut t = Trace::bounded(10);
        t.record(SimTime::ZERO, "mac", "busy".into());
        t.record(SimTime::ZERO, "spms", "adv".into());
        t.record(SimTime::ZERO, "spms", "req".into());
        assert_eq!(t.with_tag("spms").count(), 2);
        let rendered = t.render();
        assert!(rendered.contains("busy"));
        assert!(rendered.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _ = Trace::bounded(0);
    }
}
