//! Pluggable event-kernel front end: heap or timer wheel, one API.

use crate::{EventQueue, SimTime, TimerWheel};

/// The event kernel a [`Scheduler`] runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// The binary-heap [`EventQueue`] — the trusted reference kernel.
    #[default]
    Heap,
    /// The hierarchical [`TimerWheel`] — O(1) amortized, proven
    /// pop-for-pop identical to the heap by the differential suite.
    Wheel,
}

/// A discrete-event scheduler backed by either kernel.
///
/// Both variants observe the identical contract — global `(time,
/// insertion sequence)` pop order, FIFO for simultaneous events,
/// zero-delay reschedules delivered in the current pass — so which one a
/// simulation runs on is a wall-clock knob, never a semantic one. The
/// engine selects the variant from `SimConfig::event_kernel`;
/// `tests/wheel_differential.rs` (pop order) and the repo's
/// `integration_determinism` suite (whole `RunMetrics`) pin the
/// equivalence.
#[derive(Debug)]
pub enum Scheduler<E> {
    /// Binary-heap kernel.
    Heap(EventQueue<E>),
    /// Hierarchical timer-wheel kernel.
    Wheel(TimerWheel<E>),
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler on the given kernel with space hints for
    /// `capacity` events.
    #[must_use]
    pub fn with_capacity(kind: SchedulerKind, capacity: usize) -> Self {
        match kind {
            SchedulerKind::Heap => Scheduler::Heap(EventQueue::with_capacity(capacity)),
            SchedulerKind::Wheel => Scheduler::Wheel(TimerWheel::with_capacity(capacity)),
        }
    }

    /// Which kernel this scheduler runs on.
    #[must_use]
    pub fn kind(&self) -> SchedulerKind {
        match self {
            Scheduler::Heap(_) => SchedulerKind::Heap,
            Scheduler::Wheel(_) => SchedulerKind::Wheel,
        }
    }

    /// Schedules `event` at absolute time `time` (same-instant FIFO).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        match self {
            Scheduler::Heap(q) => q.schedule(time, event),
            Scheduler::Wheel(w) => w.schedule(time, event),
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Scheduler::Heap(q) => q.pop(),
            Scheduler::Wheel(w) => w.pop(),
        }
    }

    /// Drains every event sharing the earliest timestamp into `buf`
    /// (cleared first) in FIFO order and returns that timestamp.
    pub fn drain_next(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        match self {
            Scheduler::Heap(q) => q.drain_next(buf),
            Scheduler::Wheel(w) => w.drain_next(buf),
        }
    }

    /// The time of the earliest pending event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            Scheduler::Heap(q) => q.peek_time(),
            Scheduler::Wheel(w) => w.peek_time(),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Scheduler::Heap(q) => q.len(),
            Scheduler::Wheel(w) => w.len(),
        }
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events scheduled over the scheduler's lifetime.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        match self {
            Scheduler::Heap(q) => q.scheduled_total(),
            Scheduler::Wheel(w) => w.scheduled_total(),
        }
    }

    /// Total number of events popped over the scheduler's lifetime.
    #[must_use]
    pub fn popped_total(&self) -> u64 {
        match self {
            Scheduler::Heap(q) => q.popped_total(),
            Scheduler::Wheel(w) => w.popped_total(),
        }
    }

    /// Drops all pending events (lifetime counters are retained).
    pub fn clear(&mut self) {
        match self {
            Scheduler::Heap(q) => q.clear(),
            Scheduler::Wheel(w) => w.clear(),
        }
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::Heap(EventQueue::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kernels_agree_on_a_small_schedule() {
        let mut kernels = [
            Scheduler::with_capacity(SchedulerKind::Heap, 8),
            Scheduler::with_capacity(SchedulerKind::Wheel, 8),
        ];
        for s in &mut kernels {
            s.schedule(SimTime::from_millis(2), "b");
            s.schedule(SimTime::from_millis(1), "a");
            s.schedule(SimTime::from_millis(2), "b2");
        }
        let [heap, wheel] = kernels;
        fn drain(mut s: Scheduler<&'static str>) -> Vec<(SimTime, &'static str)> {
            std::iter::from_fn(move || s.pop()).collect()
        }
        assert_eq!(drain(heap), drain(wheel));
    }

    #[test]
    fn kind_and_counters_are_exposed() {
        let mut s: Scheduler<u32> = Scheduler::with_capacity(SchedulerKind::Wheel, 4);
        assert_eq!(s.kind(), SchedulerKind::Wheel);
        assert!(s.is_empty());
        s.schedule(SimTime::ZERO, 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.peek_time(), Some(SimTime::ZERO));
        s.clear();
        assert_eq!(s.scheduled_total(), 1);
        assert_eq!(s.popped_total(), 0);
        assert_eq!(Scheduler::<u32>::default().kind(), SchedulerKind::Heap);
    }
}
