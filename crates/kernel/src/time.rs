//! Fixed-point simulation time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, stored as whole nanoseconds.
///
/// The paper's Table 1 expresses every constant in milliseconds (for example
/// `Ttx = 0.05 ms/byte`, `TOutADV = 1.0 ms`). Storing nanoseconds keeps those
/// constants exact and makes event ordering a pure integer comparison — no
/// floating-point drift can reorder two runs with the same seed.
///
/// `SimTime` is used both for absolute instants (time since simulation start)
/// and durations; the arithmetic provided is the subset that is meaningful
/// for both.
///
/// # Example
///
/// ```
/// use spms_kernel::SimTime;
///
/// let t_tx_per_byte = SimTime::from_micros(50); // 0.05 ms
/// let frame = t_tx_per_byte * 40;               // 40-byte DATA packet
/// assert_eq!(frame.as_millis_f64(), 2.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant / zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable time (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional milliseconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs saturate to zero.
    ///
    /// This is the bridge from the paper's Table 1 constants to kernel time.
    #[must_use]
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((ms * 1.0e6).round() as u64)
    }

    /// Whole nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds (for reporting; never used for ordering).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Fractional seconds (for reporting; never used for ordering).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Saturating subtraction: `self - other`, or zero if `other > self`.
    #[must_use]
    pub const fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// The larger of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`SimTime::saturating_sub`] when the
    /// ordering is not statically known.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("SimTime overflow"))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}ms)", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact_for_table1_constants() {
        assert_eq!(SimTime::from_millis_f64(0.05).as_nanos(), 50_000);
        assert_eq!(SimTime::from_millis_f64(1.0), SimTime::from_millis(1));
        assert_eq!(SimTime::from_millis_f64(2.5).as_nanos(), 2_500_000);
        assert_eq!(SimTime::from_millis_f64(0.1).as_nanos(), 100_000);
        assert_eq!(SimTime::from_millis_f64(0.02).as_nanos(), 20_000);
    }

    #[test]
    fn from_millis_f64_saturates_bad_input() {
        assert_eq!(SimTime::from_millis_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_millis_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_millis_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = SimTime::from_micros(30);
        let b = SimTime::from_micros(20);
        assert_eq!(a + b, SimTime::from_micros(50));
        assert_eq!(a - b, SimTime::from_micros(10));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a * 3, SimTime::from_micros(90));
        assert_eq!((a * 3) / 3, a);
    }

    #[test]
    fn ordering_is_integer_exact() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    #[should_panic(expected = "SimTime underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_millis).sum();
        assert_eq!(total, SimTime::from_millis(10));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SimTime::from_millis(2)), "2.000ms");
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
    }
}
