//! Measurement primitives: counters, tallies and histograms.
//!
//! The experiment harness reports the same aggregates the paper plots —
//! average energy per packet, average end-to-end delay — plus distributional
//! detail (percentiles) useful when comparing failure and failure-free runs.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use spms_kernel::stats::Counter;
///
/// let mut dropped = Counter::new();
/// dropped.add(3);
/// dropped.incr();
/// assert_eq!(dropped.value(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Merges another counter into this one (used when combining per-node
    /// metrics into a network total).
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running summary statistics over a stream of `f64` observations.
///
/// Uses Welford's algorithm so mean and variance stay numerically stable over
/// millions of samples.
///
/// # Example
///
/// ```
/// use spms_kernel::stats::Tally;
///
/// let mut delays = Tally::new();
/// for d in [1.0, 2.0, 3.0] {
///     delays.record(d);
/// }
/// assert_eq!(delays.mean(), 2.0);
/// assert_eq!(delays.max(), Some(3.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Tally {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Tally {
    /// Creates an empty tally.
    #[must_use]
    pub fn new() -> Self {
        Tally {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation. Non-finite values are ignored (and would
    /// indicate a bug upstream; they are counted separately by debug
    /// assertions).
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation {x}");
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0.0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another tally into this one (parallel-combine form of
    /// Welford's algorithm).
    pub fn merge(&mut self, other: &Tally) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
///
/// Exact table values for df ≤ 30, the normal-approximation limit 1.96
/// beyond — the standard choice when reporting simulation confidence
/// intervals from a handful of replications.
#[must_use]
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[(d - 1) as usize],
        _ => 1.96,
    }
}

impl Tally {
    /// Half-width of the 95% confidence interval for the mean
    /// (`t · s / √n`), 0.0 with fewer than two observations.
    ///
    /// # Example
    ///
    /// ```
    /// use spms_kernel::stats::Tally;
    ///
    /// let mut t = Tally::new();
    /// for x in [10.0, 12.0, 11.0, 9.0, 13.0] {
    ///     t.record(x);
    /// }
    /// let half = t.ci95_half_width();
    /// assert!(half > 0.0 && half < t.std_dev() * 3.0);
    /// ```
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        t_critical_95(self.count - 1) * self.std_dev() / (self.count as f64).sqrt()
    }
}

impl fmt::Display for Tally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// A fixed-bucket histogram over `f64` observations.
///
/// Buckets are uniform over `[lo, hi)` with explicit underflow/overflow
/// buckets; percentiles are estimated by linear interpolation inside the
/// containing bucket, which is plenty for reporting delay distributions.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    tally: Tally,
}

impl Histogram {
    /// Creates a histogram with `buckets` uniform buckets spanning
    /// `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, the bounds are not finite, or `buckets == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            tally: Tally::new(),
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        self.tally.record(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.buckets.len() as f64) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.tally.count()
    }

    /// Summary statistics of everything recorded.
    #[must_use]
    pub fn tally(&self) -> &Tally {
        &self.tally
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by interpolating within
    /// the containing bucket. Returns `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count() == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count() as f64;
        let mut seen = self.underflow as f64;
        if target <= seen {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let next = seen + c as f64;
            if target <= next && c > 0 {
                let within = (target - seen) / c as f64;
                return Some(self.lo + width * (i as f64 + within));
            }
            seen = next;
        }
        Some(self.hi)
    }

    /// Number of observations below the histogram range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations at or above the histogram range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bucket counts (for rendering).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_merges() {
        let mut a = Counter::new();
        a.incr();
        a.add(4);
        let mut b = Counter::new();
        b.add(10);
        a.merge(b);
        assert_eq!(a.value(), 15);
        assert_eq!(format!("{a}"), "15");
    }

    #[test]
    fn tally_mean_and_variance() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic data set is 32/7.
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
    }

    #[test]
    fn empty_tally_is_safe() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), None);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn tally_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Tally::new();
        let mut right = Tally::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9, 10.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[1], 2);
        assert_eq!(h.bucket_counts()[9], 1);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1_000 {
            h.record((i % 100) as f64);
        }
        let q10 = h.quantile(0.10).unwrap();
        let q50 = h.quantile(0.50).unwrap();
        let q90 = h.quantile(0.90).unwrap();
        assert!(q10 <= q50 && q50 <= q90);
        assert!((q50 - 50.0).abs() < 2.0, "median estimate {q50}");
    }

    #[test]
    fn histogram_quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn t_critical_values_match_the_table() {
        assert_eq!(t_critical_95(0), f64::INFINITY);
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(4) - 2.776).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(31) - 1.96).abs() < 1e-9);
        assert!((t_critical_95(10_000) - 1.96).abs() < 1e-9);
        // Monotone non-increasing.
        let mut prev = f64::INFINITY;
        for df in 1..40 {
            let t = t_critical_95(df);
            assert!(t <= prev, "df={df}");
            prev = t;
        }
    }

    #[test]
    fn ci95_matches_hand_computation() {
        // Classic 5-sample example: mean 11, s = sqrt(2.5), t(4) = 2.776.
        let mut t = Tally::new();
        for x in [10.0, 12.0, 11.0, 9.0, 13.0] {
            t.record(x);
        }
        let expect = 2.776 * (2.5f64).sqrt() / (5f64).sqrt();
        assert!((t.ci95_half_width() - expect).abs() < 1e-9);
        // Degenerate cases.
        let mut one = Tally::new();
        one.record(5.0);
        assert_eq!(one.ci95_half_width(), 0.0);
        assert_eq!(Tally::new().ci95_half_width(), 0.0);
    }
}
