//! Hierarchical timer-wheel event scheduler.
//!
//! A calendar-queue alternative to the binary-heap [`EventQueue`]: O(1)
//! amortized `schedule`/`pop` instead of O(log n) heap sifts, tuned for the
//! production-rate regime (many concurrent timers, bursts of
//! same-timestamp events) the simulator hits at large node counts.
//!
//! The wheel is a hashed hierarchical timer wheel over nanosecond ticks:
//! [`LEVELS`] levels of [`SLOTS`] slots each, where level `l` buckets
//! events by digit `l` of their tick in base-[`SLOTS`] (6 bits per digit,
//! 11 digits ≥ the 64 time bits). An event lands at the level of its
//! highest digit that differs from the wheel's current time, so near
//! events sit in level 0 (one exact tick per slot) and far events sit in
//! coarse upper levels that **cascade** one level down as the clock
//! advances past their slot boundary — each event cascades at most
//! [`LEVELS`]−1 times over its whole life, which is what makes the wheel
//! O(1) amortized. Per-level occupancy bitmaps (one `u64`, one bit per
//! slot) make "find the next non-empty slot" a single `trailing_zeros`.
//!
//! [`EventQueue`]: crate::EventQueue

use std::collections::VecDeque;

use crate::SimTime;

/// Bits per wheel digit: each level indexes its slot by 6 bits of the tick.
const SLOT_BITS: u32 = 6;
/// Slots per level (`1 << SLOT_BITS`); one occupancy bit each fits a `u64`.
const SLOTS: usize = 1 << SLOT_BITS;
/// Slot index mask.
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Levels needed to cover all 64 time bits (`⌈64 / 6⌉`).
const LEVELS: usize = 11;

/// A hierarchical timer wheel with the **same observable contract** as
/// [`EventQueue`](crate::EventQueue): events pop in `(time, insertion
/// sequence)` order, so simultaneous events are FIFO and an event
/// scheduled *at* the timestamp currently being delivered (a zero-delay
/// reschedule) pops later in the same pass, after everything already
/// pending there. The heap is the trusted oracle; the differential suite
/// in `tests/wheel_differential.rs` pins the two pop orders identical over
/// clustered, sparse, bursty and self-rescheduling schedules.
///
/// Internals: future events live in per-slot FIFO buckets; events at or
/// before the wheel's current tick live in `ready`, a small key-sorted
/// staging row that [`TimerWheel::pop`] serves from. Advancing the clock
/// drains the next occupied level-0 slot (one exact tick) into `ready`
/// after one `sort_unstable` by the packed `(time << 64 | seq)` key —
/// cascades may interleave bucket contents, so the sort, not arrival
/// order, is what guarantees the FIFO contract.
///
/// # Example
///
/// ```
/// use spms_kernel::{SimTime, TimerWheel};
///
/// let mut w = TimerWheel::new();
/// w.schedule(SimTime::from_millis(5), "late");
/// w.schedule(SimTime::ZERO, "early");
/// assert_eq!(w.pop(), Some((SimTime::ZERO, "early")));
/// assert_eq!(w.pop(), Some((SimTime::from_millis(5), "late")));
/// assert_eq!(w.pop(), None);
/// ```
pub struct TimerWheel<E> {
    /// `LEVELS × SLOTS` FIFO buckets, level-major.
    slots: Vec<Vec<(u128, E)>>,
    /// Per-level occupancy bitmaps (bit `s` set ⇔ `slots[l * SLOTS + s]`
    /// non-empty).
    occupied: [u64; LEVELS],
    /// The wheel clock: the tick of the most recently staged timestamp.
    /// Invariant: every bucketed event's tick is strictly greater, every
    /// `ready` event's tick is less than or equal.
    current: u64,
    /// Due events (tick ≤ `current`), ascending by packed key. Zero-delay
    /// reschedules land here directly, behind the events already pending
    /// at the same tick (their sequence numbers are larger).
    ready: VecDeque<(u128, E)>,
    next_seq: u64,
    popped: u64,
    /// Events currently held in `slots` (excludes `ready`).
    in_wheel: usize,
}

/// Packs `(time, seq)` into the single-compare key shared with the heap.
const fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.as_nanos() as u128) << 64) | seq as u128
}

const fn key_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel. The bucket table is `LEVELS × SLOTS` empty
    /// vectors — no heap allocation until events arrive.
    #[must_use]
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            current: 0,
            ready: VecDeque::new(),
            next_seq: 0,
            popped: 0,
            in_wheel: 0,
        }
    }

    /// Creates an empty wheel; `capacity` pre-sizes the due-event staging
    /// row (buckets grow on demand).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut w = TimerWheel::new();
        w.ready.reserve(capacity.min(SLOTS * 4));
        w
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled, even across cascades — the same guarantee as
    /// [`EventQueue::schedule`](crate::EventQueue::schedule), including
    /// the zero-delay case (`time` equal to the timestamp currently being
    /// delivered): such an event is delivered in this pass, after every
    /// event already pending at that timestamp.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = pack(time, seq);
        if time.as_nanos() <= self.current {
            self.stage_ready(key, event);
        } else {
            self.insert(key, event);
        }
    }

    /// Buckets a strictly-future event at the level of its highest tick
    /// digit differing from `current`.
    fn insert(&mut self, key: u128, event: E) {
        let t = (key >> 64) as u64;
        debug_assert!(t > self.current, "insert is for strictly-future ticks");
        let level = ((63 - (t ^ self.current).leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((t >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.slots[level * SLOTS + slot].push((key, event));
        self.occupied[level] |= 1 << slot;
        self.in_wheel += 1;
    }

    /// Inserts a due event into the staging row at its key-sorted position
    /// (the back, for zero-delay reschedules — their sequence numbers
    /// exceed everything already staged at the same tick).
    fn stage_ready(&mut self, key: u128, event: E) {
        let pos = self.ready.partition_point(|&(k, _)| k < key);
        self.ready.insert(pos, (key, event));
    }

    /// Ensures `ready` holds the earliest pending timestamp: cascades
    /// coarse levels down until the next occupied level-0 slot (one exact
    /// tick) drains into `ready` in key order. Returns `false` when no
    /// events remain anywhere.
    fn refill_ready(&mut self) -> bool {
        loop {
            if !self.ready.is_empty() {
                return true;
            }
            if self.in_wheel == 0 {
                return false;
            }
            // The earliest event is always in the lowest non-empty level's
            // lowest occupied slot: lower levels hold nearer digits, and
            // within a level every occupied slot's digit exceeds
            // `current`'s, so the smallest digit is the nearest tick.
            let level = (0..LEVELS)
                .find(|&l| self.occupied[l] != 0)
                .expect("in_wheel > 0 means some level is occupied");
            let slot = self.occupied[level].trailing_zeros() as usize;
            let bucket = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            self.occupied[level] &= !(1u64 << slot);
            self.in_wheel -= bucket.len();
            if level == 0 {
                // A level-0 slot within the active window is one exact
                // tick; sorting by the packed key restores global
                // (time, seq) order whatever order cascades appended in.
                self.current = (self.current & !SLOT_MASK) | slot as u64;
                let mut bucket = bucket;
                bucket.sort_unstable_by_key(|&(k, _)| k);
                self.ready.extend(bucket);
                return true;
            }
            // Cascade: advance the clock to the slot's base tick (digits
            // below `level` zeroed) and re-bucket every event at least one
            // level further down. Events whose tick *is* the base are due
            // now and stage directly.
            let low_bits = SLOT_BITS * (level as u32 + 1);
            let keep = if low_bits >= 64 {
                0
            } else {
                !((1u64 << low_bits) - 1)
            };
            self.current = (self.current & keep) | ((slot as u64) << (SLOT_BITS * level as u32));
            for (key, event) in bucket {
                if (key >> 64) as u64 <= self.current {
                    self.stage_ready(key, event);
                } else {
                    self.insert(key, event);
                }
            }
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.ready.is_empty() && !self.refill_ready() {
            return None;
        }
        let (key, event) = self.ready.pop_front().expect("refilled above");
        self.popped += 1;
        Some((key_time(key), event))
    }

    /// Drains **every** event sharing the earliest pending timestamp into
    /// `buf` (cleared first) in FIFO order, returning that timestamp —
    /// the batched-dispatch entry point. Events the caller schedules *at*
    /// the returned timestamp while processing the batch are picked up by
    /// the next `drain_next` call, which returns the same timestamp again:
    /// exactly the heap's zero-delay pass semantics, one batch later.
    pub fn drain_next(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        buf.clear();
        if self.ready.is_empty() && !self.refill_ready() {
            return None;
        }
        let first = self.ready.front().expect("refilled above").0;
        let time = key_time(first);
        while self
            .ready
            .front()
            .is_some_and(|&(k, _)| key_time(k) == time)
        {
            let (_, event) = self.ready.pop_front().expect("front checked");
            self.popped += 1;
            buf.push(event);
        }
        Some(time)
    }

    /// The time of the earliest pending event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(&(key, _)) = self.ready.front() {
            return Some(key_time(key));
        }
        if self.in_wheel == 0 {
            return None;
        }
        let level = (0..LEVELS)
            .find(|&l| self.occupied[l] != 0)
            .expect("in_wheel > 0 means some level is occupied");
        let slot = self.occupied[level].trailing_zeros() as usize;
        // The lowest occupied slot of the lowest level holds the minimum;
        // coarse buckets mix ticks, so scan for the smallest key.
        self.slots[level * SLOTS + slot]
            .iter()
            .map(|&(k, _)| k)
            .min()
            .map(key_time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.in_wheel + self.ready.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events scheduled over the wheel's lifetime.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events popped over the wheel's lifetime.
    #[must_use]
    pub fn popped_total(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events (lifetime counters and the clock are
    /// retained).
    pub fn clear(&mut self) {
        for (l, occ) in self.occupied.iter_mut().enumerate() {
            let mut bits = *occ;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.slots[l * SLOTS + slot].clear();
            }
            *occ = 0;
        }
        self.ready.clear();
        self.in_wheel = 0;
    }
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<E> std::fmt::Debug for TimerWheel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("pending", &self.len())
            .field("scheduled_total", &self.next_seq)
            .field("popped_total", &self.popped)
            .field("current_tick", &self.current)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_millis(3), 3u32);
        w.schedule(SimTime::from_millis(1), 1u32);
        w.schedule(SimTime::from_millis(2), 2u32);
        let got: Vec<u32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, [1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_millis(7);
        for i in 0..100u32 {
            w.schedule(t, i);
        }
        let got: Vec<u32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        let want: Vec<u32> = (0..100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn same_tick_fifo_survives_cascades() {
        // Two events for the same far-future tick, scheduled at different
        // wheel times: the first buckets coarse, the second (after the
        // clock advanced) finer. The pop must still be seq-ordered.
        let mut w = TimerWheel::new();
        let far = SimTime::from_secs(2);
        w.schedule(far, "first");
        w.schedule(SimTime::from_millis(1), "warp");
        assert_eq!(w.pop(), Some((SimTime::from_millis(1), "warp")));
        w.schedule(far, "second");
        assert_eq!(w.pop(), Some((far, "first")));
        assert_eq!(w.pop(), Some((far, "second")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn zero_delay_reschedule_lands_in_the_current_pass() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_millis(4);
        w.schedule(t, "a");
        w.schedule(t, "b");
        w.schedule(SimTime::from_millis(9), "later");
        assert_eq!(w.pop(), Some((t, "a")));
        // Dispatch of "a" schedules more work at the very same timestamp.
        w.schedule(t, "c");
        assert_eq!(w.pop(), Some((t, "b")));
        assert_eq!(w.pop(), Some((t, "c")));
        assert_eq!(w.pop(), Some((SimTime::from_millis(9), "later")));
    }

    #[test]
    fn extreme_times_round_trip() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::MAX, "max");
        w.schedule(SimTime::ZERO, "zero");
        w.schedule(SimTime::from_nanos(1), "one");
        assert_eq!(w.peek_time(), Some(SimTime::ZERO));
        assert_eq!(w.pop(), Some((SimTime::ZERO, "zero")));
        assert_eq!(w.pop(), Some((SimTime::from_nanos(1), "one")));
        assert_eq!(w.pop(), Some((SimTime::MAX, "max")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn drain_next_batches_one_timestamp() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_millis(2);
        w.schedule(t, 1u32);
        w.schedule(SimTime::from_millis(5), 9);
        w.schedule(t, 2);
        let mut buf = Vec::new();
        assert_eq!(w.drain_next(&mut buf), Some(t));
        assert_eq!(buf, [1, 2]);
        assert_eq!(w.drain_next(&mut buf), Some(SimTime::from_millis(5)));
        assert_eq!(buf, [9]);
        assert_eq!(w.drain_next(&mut buf), None);
        assert!(buf.is_empty());
    }

    #[test]
    fn counters_and_clear() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::ZERO, ());
        w.schedule(SimTime::from_secs(10), ());
        w.pop();
        assert_eq!(w.scheduled_total(), 2);
        assert_eq!(w.popped_total(), 1);
        assert_eq!(w.len(), 1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
        assert_eq!(w.scheduled_total(), 2);
    }

    #[test]
    fn peek_matches_pop_across_levels() {
        let mut w = TimerWheel::new();
        for &ns in &[5u64, 63, 64, 4096, 1 << 30, u64::MAX / 2] {
            w.schedule(SimTime::from_nanos(ns), ns);
        }
        while let Some(t) = w.peek_time() {
            let (pt, v) = w.pop().expect("peeked non-empty");
            assert_eq!(pt, t);
            assert_eq!(pt.as_nanos(), v);
        }
        assert!(w.is_empty());
    }
}
