//! Seeded pseudo-random number generation and the distributions the paper
//! uses.
//!
//! We implement xoshiro256\*\* (public domain, Blackman & Vigna) seeded
//! through SplitMix64 rather than depending on an external RNG crate: the
//! simulator's results must be bit-stable across toolchain and dependency
//! updates, and the three distributions the paper needs — uniform,
//! exponential inter-arrival times (packet generation and failure injection)
//! and uniform repair times — are a handful of lines.

use crate::SimTime;

/// Deterministic simulation RNG (xoshiro256\*\*).
///
/// Every stochastic decision in a simulation run draws from a `SimRng`
/// derived from the run's single seed; see [`SimRng::derive`] for creating
/// independent, reproducible sub-streams (one per concern: traffic, failures,
/// mobility, MAC backoff), which keeps runs comparable when one subsystem is
/// reconfigured.
///
/// # Example
///
/// ```
/// use spms_kernel::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four words of xoshiro state are expanded from the seed with
    /// SplitMix64, as recommended by the algorithm's authors.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state }
    }

    /// Derives an independent sub-stream labelled by `stream`.
    ///
    /// Two sub-streams with different labels are statistically independent;
    /// the same `(seed, label)` pair always produces the same stream. Labels
    /// are small integers documented at the call site (e.g. traffic = 1,
    /// failures = 2).
    #[must_use]
    pub fn derive(&self, stream: u64) -> SimRng {
        // Mix the label through SplitMix64 so adjacent labels do not produce
        // correlated seeds.
        let mut sm = self.state[0].wrapping_add(stream.wrapping_mul(0xD134_2543_DE82_EF95));
        let mut s2 = splitmix64(&mut sm);
        SimRng::new(splitmix64(&mut s2))
    }

    /// Next raw 64-bit value (xoshiro256\*\*).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below requires bound > 0");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only reached with probability < bound / 2^64.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform index in `[0, len)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed duration with the given mean.
    ///
    /// Used for Poisson packet arrivals (Table 1: λ = 1/ms) and transient
    /// failure inter-arrival times (mean 50 ms). Sampling is by inversion:
    /// `-mean · ln(1 - U)`.
    pub fn exponential(&mut self, mean: SimTime) -> SimTime {
        let u = self.next_f64();
        let scaled = -(1.0 - u).ln() * mean.as_nanos() as f64;
        // ln(1-u) is finite for u in [0,1); clamp defensively anyway.
        if !scaled.is_finite() || scaled <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime::from_nanos(scaled.min(u64::MAX as f64 / 2.0) as u64)
    }

    /// A uniformly distributed duration in `[lo, hi)`.
    ///
    /// Used for repair times (Table 1: MTTR 10 ms, uniform between
    /// `repair_min` and `repair_max`).
    pub fn uniform_time(&mut self, lo: SimTime, hi: SimTime) -> SimTime {
        if hi <= lo {
            return lo;
        }
        let span = hi.as_nanos() - lo.as_nanos();
        SimTime::from_nanos(lo.as_nanos() + self.below(span))
    }

    /// Randomly permutes `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Chooses `k` distinct indices out of `[0, n)` (order unspecified but
    /// deterministic).
    ///
    /// Used by the mobility model to pick the fraction of nodes that move.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} of {n}");
        // Partial Fisher-Yates over an index vector: O(n) setup, O(k) swaps.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// An iterator adapter producing Poisson-process arrival instants.
///
/// The paper's workload is "Poisson arrivals for the new packets" (Table 1:
/// λ = 1 per ms). The process is just exponential inter-arrival times
/// accumulated onto a clock.
///
/// # Example
///
/// ```
/// use spms_kernel::{PoissonProcess, SimRng, SimTime};
///
/// let rng = SimRng::new(7);
/// let arrivals: Vec<_> = PoissonProcess::new(rng, SimTime::from_millis(1))
///     .take(3)
///     .collect();
/// assert!(arrivals[0] < arrivals[1] && arrivals[1] < arrivals[2]);
/// ```
#[derive(Clone, Debug)]
pub struct PoissonProcess {
    rng: SimRng,
    mean: SimTime,
    now: SimTime,
}

impl PoissonProcess {
    /// Creates a process with the given mean inter-arrival time starting at
    /// time zero.
    #[must_use]
    pub fn new(rng: SimRng, mean_interarrival: SimTime) -> Self {
        PoissonProcess {
            rng,
            mean: mean_interarrival,
            now: SimTime::ZERO,
        }
    }
}

impl Iterator for PoissonProcess {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        // Ensure strictly increasing arrivals even if a sample rounds to 0ns.
        let gap = self.rng.exponential(self.mean).max(SimTime::from_nanos(1));
        self.now += gap;
        Some(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_stable_and_independent() {
        let root = SimRng::new(99);
        let mut s1 = root.derive(1);
        let mut s1_again = root.derive(1);
        let mut s2 = root.derive(2);
        assert_eq!(s1.next_u64(), s1_again.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::new(6);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(7);
        let mean = SimTime::from_millis(50);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_millis_f64()).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - 50.0).abs() < 1.5,
            "sample mean {sample_mean} too far from 50"
        );
    }

    #[test]
    fn uniform_time_respects_bounds() {
        let mut rng = SimRng::new(8);
        let lo = SimTime::from_millis(5);
        let hi = SimTime::from_millis(15);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let t = rng.uniform_time(lo, hi);
            assert!(t >= lo && t < hi);
            acc += t.as_millis_f64();
        }
        let mean = acc / 10_000.0;
        assert!((mean - 10.0).abs() < 0.3, "MTTR sample mean {mean}");
    }

    #[test]
    fn uniform_time_degenerate_range() {
        let mut rng = SimRng::new(9);
        let t = SimTime::from_millis(3);
        assert_eq!(rng.uniform_time(t, t), t);
        assert_eq!(rng.uniform_time(t, SimTime::ZERO), t);
    }

    #[test]
    fn choose_indices_distinct_and_in_range() {
        let mut rng = SimRng::new(10);
        let picked = rng.choose_indices(20, 8);
        assert_eq!(picked.len(), 8);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert!(sorted.iter().all(|&i| i < 20));
    }

    #[test]
    fn poisson_process_is_strictly_increasing() {
        let rng = SimRng::new(11);
        let mut prev = SimTime::ZERO;
        for t in PoissonProcess::new(rng, SimTime::from_millis(1)).take(1_000) {
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(12);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let want: Vec<u32> = (0..50).collect();
        assert_eq!(sorted, want);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(13);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(rng.chance(7.0));
        assert!(!rng.chance(-2.0));
    }
}
