//! Deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// An entry in the queue: ordered by `(time, insertion sequence)`, packed
/// into a single precomputed `u128` key (`time << 64 | seq`) so every heap
/// sift costs one integer compare instead of two chained `u64` compares —
/// `Entry::cmp` is the hottest comparison in the simulator.
struct Entry<E> {
    key: u128,
    event: E,
}

impl<E> Entry<E> {
    const fn key(time: SimTime, seq: u64) -> u128 {
        ((time.as_nanos() as u128) << 64) | seq as u128
    }

    const fn time(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key — the
        // earliest time, ties broken by lowest sequence number — pops
        // first. The sequence number makes simultaneous events FIFO, which
        // is what makes runs reproducible.
        other.key.cmp(&self.key)
    }
}

/// A time-ordered event queue with stable FIFO ordering of simultaneous
/// events.
///
/// This is the heart of the discrete-event kernel: the engine pops the next
/// `(time, event)` pair, advances the clock to `time`, and handles the event
/// (which may schedule more events). Determinism follows from two properties:
///
/// 1. ordering is `(time, insertion sequence)` — no dependence on heap
///    internals or hashing, and
/// 2. `SimTime` is integral, so there are no floating-point ties.
///
/// # Zero-delay reschedules
///
/// An event handler may schedule a new event at the timestamp currently
/// being dispatched (a zero-delay self-reschedule). The contract — which
/// every alternative kernel, notably [`crate::TimerWheel`], must match
/// bit-for-bit — is that such an event is delivered **in the current
/// pass** over that timestamp, after every already-pending event of the
/// same instant, in scheduling order. This falls directly out of the
/// `(time, seq)` total order: the new event carries the same time and a
/// strictly larger sequence number than everything already queued, so it
/// sorts after its siblings but before any later instant. It can never be
/// skipped or deferred to a later timestamp.
///
/// # Example
///
/// ```
/// use spms_kernel::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "late");
/// q.schedule(SimTime::ZERO, "early");
/// assert_eq!(q.pop(), Some((SimTime::ZERO, "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            key: Entry::<E>::key(time, seq),
            event,
        });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.popped += 1;
        Some((entry.time(), entry.event))
    }

    /// Drains every event sharing the earliest pending timestamp into
    /// `buf` (cleared first) in FIFO order and returns that timestamp, or
    /// `None` when the queue is empty.
    ///
    /// This is the batched-dispatch entry point: one call per simulated
    /// instant instead of one pop per event. Events scheduled *at* the
    /// drained timestamp while the batch is being handled are returned by
    /// the **next** `drain_next` call (which reports the same timestamp),
    /// preserving the zero-delay reschedule contract — the dispatch order
    /// across successive drains is exactly the per-event [`pop`] order.
    ///
    /// [`pop`]: EventQueue::pop
    pub fn drain_next(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        buf.clear();
        let (time, first) = self.pop()?;
        buf.push(first);
        while self.peek_time() == Some(time) {
            let (_, ev) = self.pop().expect("peeked entry must pop");
            buf.push(ev);
        }
        Some(time)
    }

    /// The time of the earliest pending event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(Entry::time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled over the queue's lifetime.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events popped over the queue's lifetime.
    #[must_use]
    pub fn popped_total(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events (lifetime counters are retained).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.next_seq)
            .field("popped_total", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), 3u32);
        q.schedule(SimTime::from_millis(1), 1u32);
        q.schedule(SimTime::from_millis(2), 2u32);
        let got: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, [1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let got: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let want: Vec<u32> = (0..100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(9), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(9)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(9), "x")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counters_track_lifetime() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.popped_total(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn extreme_times_round_trip_through_the_packed_key() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, "max");
        q.schedule(SimTime::ZERO, "zero");
        q.schedule(SimTime::from_nanos(1), "one");
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        assert_eq!(q.pop(), Some((SimTime::ZERO, "zero")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "one")));
        assert_eq!(q.pop(), Some((SimTime::MAX, "max")));
    }

    #[test]
    fn zero_delay_reschedule_is_delivered_in_the_current_pass() {
        // Regression test for the documented contract: scheduling at the
        // timestamp currently being dispatched delivers in this pass, after
        // all already-pending events of that instant, in seq order.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(4);
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(SimTime::from_millis(9), "later");
        assert_eq!(q.pop(), Some((t, "a")));
        // Handler of "a" reschedules at the very same instant…
        q.schedule(t, "c");
        q.schedule(t, "d");
        // …and both land after "b" but before the later instant.
        assert_eq!(q.pop(), Some((t, "b")));
        assert_eq!(q.pop(), Some((t, "c")));
        assert_eq!(q.pop(), Some((t, "d")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(9), "later")));
    }

    #[test]
    fn drain_next_batches_one_timestamp_and_honors_reschedules() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(2);
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(SimTime::from_millis(3), "z");
        let mut buf = Vec::new();
        assert_eq!(q.drain_next(&mut buf), Some(t));
        assert_eq!(buf, ["a", "b"]);
        // Zero-delay reschedule mid-batch: surfaces on the NEXT drain, at
        // the same timestamp — identical order to per-event pops.
        q.schedule(t, "c");
        assert_eq!(q.drain_next(&mut buf), Some(t));
        assert_eq!(buf, ["c"]);
        assert_eq!(q.drain_next(&mut buf), Some(SimTime::from_millis(3)));
        assert_eq!(buf, ["z"]);
        assert_eq!(q.drain_next(&mut buf), None);
        assert!(buf.is_empty());
        assert_eq!(q.popped_total(), 4);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "c");
        q.schedule(SimTime::from_millis(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_millis(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
