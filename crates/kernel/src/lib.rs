//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the foundation of the SPMS reproduction (Khanna, Bagchi, Wu,
//! *Fault Tolerant Energy Aware Data Dissemination Protocol in Sensor
//! Networks*, DSN 2004). The paper evaluates its protocol in a custom
//! discrete-event simulator; this crate provides that substrate:
//!
//! * [`SimTime`] — fixed-point simulation time (nanoseconds) with exact
//!   conversions from the paper's millisecond constants,
//! * [`EventQueue`] — a priority queue with stable FIFO ordering for events
//!   scheduled at the same instant, so runs are bit-reproducible,
//! * [`TimerWheel`] — a hierarchical timer wheel with the identical pop-order
//!   contract, O(1) amortized, proven byte-identical to the heap by a
//!   differential suite; [`Scheduler`] selects between the two kernels,
//! * [`SimRng`] — a seeded xoshiro256\*\* PRNG plus the distributions the
//!   paper needs (uniform, exponential inter-arrivals, Poisson processes),
//! * [`stats`] — counters, tallies and histograms used by the measurement
//!   harness,
//! * [`trace`] — a bounded event trace for debugging protocol runs.
//!
//! # Example
//!
//! ```
//! use spms_kernel::{EventQueue, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::from_millis(2), "b");
//! queue.schedule(SimTime::from_millis(1), "a");
//! queue.schedule(SimTime::from_millis(1), "a2"); // same instant: FIFO
//!
//! let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
//! assert_eq!(order, ["a", "a2", "b"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod host;
mod queue;
mod rng;
mod scheduler;
mod time;
mod wheel;

pub mod stats;
pub mod trace;

pub use host::host_parallelism;
pub use queue::EventQueue;
pub use rng::{PoissonProcess, SimRng};
pub use scheduler::{Scheduler, SchedulerKind};
pub use time::SimTime;
pub use wheel::TimerWheel;
