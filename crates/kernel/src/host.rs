//! Host-machine introspection shared by every auto-sizing knob.
//!
//! Shard counts, sweep worker counts and bench shard grids all want the
//! same answer — "how wide is this machine?" — and each used to carry
//! its own copy of the `available_parallelism()` fallback. One copy
//! means the auto-resolution cannot drift between subsystems.

/// Detected hardware parallelism, falling back to `1` when the host
/// refuses to say (sandboxes and exotic platforms return an error from
/// [`std::thread::available_parallelism`]).
///
/// This is the single source of truth for every `0 = auto` knob in the
/// workspace: `SimConfig::dbf_shards`, `SweepConfig::workers` and the
/// bench grids all resolve through here.
#[must_use]
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::host_parallelism;

    #[test]
    fn at_least_one_and_stable() {
        let a = host_parallelism();
        assert!(a >= 1);
        // The host does not change mid-process; auto-resolved knobs may
        // assume repeated calls agree.
        assert_eq!(a, host_parallelism());
    }
}
