//! MAC-layer timing model for the SPMS reproduction.
//!
//! The paper models medium access as a contention delay `Tcsma = G·n²`
//! where `n` is the number of nodes inside the transmitter's chosen radius
//! (citing CSMA/CA analyses \[8\]\[9\]) plus a slotted random backoff (Table 1:
//! slot time 0.1 ms, 20 slots) and a per-byte transmission time
//! (`Ttx = 0.05 ms/byte`). Footnote 1 notes that heavier-tailed contention
//! models only favor SPMS further, so the quadratic model is the
//! conservative choice.
//!
//! This crate provides:
//!
//! * [`MacTiming`] — the Table 1 timing constants,
//! * [`ContentionModel`] — the access-delay law (quadratic, quadratic plus
//!   backoff, or backoff-only as an ablation),
//! * [`HalfDuplexQueue`] — per-node serialization of transmissions (a mote
//!   has one radio).
//!
//! The key effect reproduced here is the paper's delay argument: SPIN
//! transmits everything at maximum power, so every access pays `G·n1²`
//! (n1 ≈ 45 in the reference zone), while SPMS's multi-hop transfers pay
//! `G·ns²` (ns ≈ 5) — a ~80× smaller contention term that more than offsets
//! the extra hops.
//!
//! # Example
//!
//! ```
//! use spms_mac::{ContentionModel, MacTiming};
//! use spms_kernel::SimRng;
//!
//! let timing = MacTiming::paper_defaults();
//! let mac = ContentionModel::Quadratic;
//! let mut rng = SimRng::new(1);
//! let at_max = mac.access_delay(&timing, 45, &mut rng);
//! let at_min = mac.access_delay(&timing, 5, &mut rng);
//! assert!(at_max > at_min * 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod timing;

pub use queue::HalfDuplexQueue;
pub use timing::{ContentionModel, MacTiming};
