//! Per-node half-duplex transmit serialization.

use spms_kernel::SimTime;

/// Tracks when a node's single radio is next free to transmit.
///
/// A mote has one half-duplex radio: transmissions it originates must
/// serialize. The engine asks the queue to reserve a slot for each frame;
/// the reservation starts no earlier than `now` and no earlier than the end
/// of the previous reservation, then adds the MAC access delay and the
/// on-air time.
///
/// Receptions are not serialized here — the paper's contention term `G·n²`
/// already models neighborhood interference statistically, and modelling
/// receive-side blocking too would double-count it.
///
/// # Example
///
/// ```
/// use spms_mac::HalfDuplexQueue;
/// use spms_kernel::SimTime;
///
/// let mut q = HalfDuplexQueue::new();
/// let r1 = q.reserve(SimTime::ZERO, SimTime::from_millis(1), SimTime::from_millis(2));
/// let r2 = q.reserve(SimTime::ZERO, SimTime::from_millis(1), SimTime::from_millis(2));
/// assert_eq!(r1.ends, SimTime::from_millis(3));
/// // The second frame waits for the first to finish.
/// assert_eq!(r2.starts, SimTime::from_millis(4));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HalfDuplexQueue {
    busy_until: SimTime,
    frames_sent: u64,
    total_queue_wait: SimTime,
}

/// The outcome of reserving the radio for one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// When the frame's transmission begins (after queueing + access delay).
    pub starts: SimTime,
    /// When the transmission completes (delivery instant at receivers).
    pub ends: SimTime,
    /// Time spent waiting behind earlier frames from the same node.
    pub queue_wait: SimTime,
}

impl HalfDuplexQueue {
    /// A queue whose radio is immediately free.
    #[must_use]
    pub fn new() -> Self {
        HalfDuplexQueue::default()
    }

    /// Reserves the radio for a frame requested at `now` needing
    /// `access_delay` of contention and `tx_time` on air.
    pub fn reserve(
        &mut self,
        now: SimTime,
        access_delay: SimTime,
        tx_time: SimTime,
    ) -> Reservation {
        let queued_at = now.max(self.busy_until);
        let queue_wait = queued_at - now;
        let starts = queued_at + access_delay;
        let ends = starts + tx_time;
        self.busy_until = ends;
        self.frames_sent += 1;
        self.total_queue_wait += queue_wait;
        Reservation {
            starts,
            ends,
            queue_wait,
        }
    }

    /// When the radio next becomes free.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Frames reserved so far.
    #[must_use]
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Cumulative time frames spent waiting behind earlier frames.
    #[must_use]
    pub fn total_queue_wait(&self) -> SimTime {
        self.total_queue_wait
    }

    /// Clears any pending reservation (used when a node fails: "any
    /// scheduled packet transfer is cancelled").
    pub fn cancel_pending(&mut self, now: SimTime) {
        self.busy_until = self.busy_until.min(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_frames_serialize() {
        let mut q = HalfDuplexQueue::new();
        let acc = SimTime::from_micros(250);
        let tx = SimTime::from_micros(100);
        let r1 = q.reserve(SimTime::ZERO, acc, tx);
        let r2 = q.reserve(SimTime::ZERO, acc, tx);
        let r3 = q.reserve(SimTime::ZERO, acc, tx);
        assert_eq!(r1.starts, acc);
        assert_eq!(r2.starts, r1.ends + acc);
        assert_eq!(r3.starts, r2.ends + acc);
        assert_eq!(r1.queue_wait, SimTime::ZERO);
        assert_eq!(r2.queue_wait, r1.ends);
        assert_eq!(q.frames_sent(), 3);
    }

    #[test]
    fn idle_radio_transmits_immediately() {
        let mut q = HalfDuplexQueue::new();
        let r = q.reserve(
            SimTime::from_millis(10),
            SimTime::from_millis(1),
            SimTime::from_millis(2),
        );
        assert_eq!(r.starts, SimTime::from_millis(11));
        assert_eq!(r.ends, SimTime::from_millis(13));
        assert_eq!(r.queue_wait, SimTime::ZERO);
    }

    #[test]
    fn later_request_after_busy_window_is_unqueued() {
        let mut q = HalfDuplexQueue::new();
        q.reserve(SimTime::ZERO, SimTime::ZERO, SimTime::from_millis(5));
        let r = q.reserve(
            SimTime::from_millis(50),
            SimTime::ZERO,
            SimTime::from_millis(1),
        );
        assert_eq!(r.starts, SimTime::from_millis(50));
        assert_eq!(r.queue_wait, SimTime::ZERO);
    }

    #[test]
    fn cancel_pending_frees_radio() {
        let mut q = HalfDuplexQueue::new();
        q.reserve(SimTime::ZERO, SimTime::ZERO, SimTime::from_millis(100));
        q.cancel_pending(SimTime::from_millis(1));
        assert_eq!(q.busy_until(), SimTime::from_millis(1));
        let r = q.reserve(
            SimTime::from_millis(1),
            SimTime::ZERO,
            SimTime::from_millis(1),
        );
        assert_eq!(r.starts, SimTime::from_millis(1));
    }

    #[test]
    fn queue_wait_accumulates() {
        let mut q = HalfDuplexQueue::new();
        q.reserve(SimTime::ZERO, SimTime::ZERO, SimTime::from_millis(2));
        q.reserve(SimTime::ZERO, SimTime::ZERO, SimTime::from_millis(2));
        q.reserve(SimTime::ZERO, SimTime::ZERO, SimTime::from_millis(2));
        // Waits: 0, 2, 4 ms.
        assert_eq!(q.total_queue_wait(), SimTime::from_millis(6));
    }
}
