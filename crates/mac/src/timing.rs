//! Table 1 timing constants and the channel-access delay law.

use spms_kernel::{SimRng, SimTime};

/// MAC-layer timing constants (Table 1 of the paper).
///
/// # Example
///
/// ```
/// use spms_mac::MacTiming;
///
/// let t = MacTiming::paper_defaults();
/// // A 40-byte DATA packet takes 2 ms on air.
/// assert_eq!(t.tx_duration(40).as_millis_f64(), 2.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MacTiming {
    /// Time to transmit one byte (Table 1: 0.05 ms/byte).
    pub tx_per_byte: SimTime,
    /// Backoff slot duration (Table 1: 0.1 ms).
    pub slot_time: SimTime,
    /// Number of backoff slots (Table 1: 20).
    pub num_slots: u32,
    /// Proportionality constant `G` of the quadratic contention law, in
    /// milliseconds (the Section 4 analysis instantiates `G = 0.01`).
    pub csma_g_ms: f64,
}

impl MacTiming {
    /// The constants used throughout the paper's analysis and simulation.
    #[must_use]
    pub fn paper_defaults() -> Self {
        MacTiming {
            tx_per_byte: SimTime::from_micros(50),
            slot_time: SimTime::from_micros(100),
            num_slots: 20,
            csma_g_ms: 0.01,
        }
    }

    /// Validates the constants.
    ///
    /// # Errors
    ///
    /// Returns a message if any duration is zero where the model needs it
    /// positive, or `G` is negative/non-finite.
    pub fn validate(&self) -> Result<(), String> {
        if self.tx_per_byte == SimTime::ZERO {
            return Err("tx_per_byte must be positive".into());
        }
        if !self.csma_g_ms.is_finite() || self.csma_g_ms < 0.0 {
            return Err(format!("csma G {} must be >= 0", self.csma_g_ms));
        }
        Ok(())
    }

    /// On-air time for a packet of `bytes` bytes.
    #[must_use]
    pub fn tx_duration(&self, bytes: u32) -> SimTime {
        self.tx_per_byte * u64::from(bytes)
    }

    /// The deterministic quadratic contention term `G·n²` for `n` nodes in
    /// the transmitter's radius.
    #[must_use]
    pub fn quadratic_term(&self, neighbors: usize) -> SimTime {
        let n = neighbors as f64;
        SimTime::from_millis_f64(self.csma_g_ms * n * n)
    }
}

impl Default for MacTiming {
    fn default() -> Self {
        MacTiming::paper_defaults()
    }
}

/// The channel-access delay law applied before every transmission.
///
/// The paper's analysis uses the deterministic quadratic law; its simulation
/// additionally has slotted backoff (Table 1 lists slot time and slot
/// count). `BackoffOnly` removes the quadratic term so the ablation bench
/// can show it is the dominant cause of SPIN's delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ContentionModel {
    /// Deterministic `G·n²` (the Section 4 analysis model).
    Quadratic,
    /// `G·n²` plus a uniform backoff of `U{0..num_slots}` slots — the
    /// simulation default.
    #[default]
    QuadraticWithBackoff,
    /// Random backoff only (ablation: removes the density-dependent term).
    BackoffOnly,
}

impl ContentionModel {
    /// Delay between a frame reaching the head of the transmit queue and the
    /// start of its transmission.
    ///
    /// `neighbors` is the number of nodes within the radius of the *chosen*
    /// power level — the paper's `n` (n1 at max power, ns at minimum).
    pub fn access_delay(self, timing: &MacTiming, neighbors: usize, rng: &mut SimRng) -> SimTime {
        let backoff = |rng: &mut SimRng| {
            if timing.num_slots == 0 {
                SimTime::ZERO
            } else {
                timing.slot_time * rng.below(u64::from(timing.num_slots))
            }
        };
        match self {
            ContentionModel::Quadratic => timing.quadratic_term(neighbors),
            ContentionModel::QuadraticWithBackoff => {
                timing.quadratic_term(neighbors) + backoff(rng)
            }
            ContentionModel::BackoffOnly => backoff(rng),
        }
    }

    /// The *expected* access delay under this model — what a protocol
    /// designer would budget for when sizing timeouts (the paper: "TOutADV
    /// is adjusted properly so that the timer does not go off before B
    /// sends ADV").
    #[must_use]
    pub fn expected_access_delay(self, timing: &MacTiming, neighbors: usize) -> SimTime {
        let mean_backoff = timing.slot_time * u64::from(timing.num_slots) / 2;
        match self {
            ContentionModel::Quadratic => timing.quadratic_term(neighbors),
            ContentionModel::QuadraticWithBackoff => {
                timing.quadratic_term(neighbors) + mean_backoff
            }
            ContentionModel::BackoffOnly => mean_backoff,
        }
    }

    /// Short label for reports and bench IDs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ContentionModel::Quadratic => "quadratic",
            ContentionModel::QuadraticWithBackoff => "quadratic+backoff",
            ContentionModel::BackoffOnly => "backoff-only",
        }
    }
}

impl std::fmt::Display for ContentionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let t = MacTiming::paper_defaults();
        assert_eq!(t.tx_per_byte, SimTime::from_micros(50));
        assert_eq!(t.slot_time, SimTime::from_micros(100));
        assert_eq!(t.num_slots, 20);
        assert_eq!(t.csma_g_ms, 0.01);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn tx_duration_scales_with_bytes() {
        let t = MacTiming::paper_defaults();
        assert_eq!(t.tx_duration(2), SimTime::from_micros(100)); // ADV/REQ
        assert_eq!(t.tx_duration(40), SimTime::from_millis(2)); // DATA
        assert_eq!(t.tx_duration(0), SimTime::ZERO);
    }

    #[test]
    fn quadratic_term_matches_analysis_values() {
        let t = MacTiming::paper_defaults();
        // G·n1² with n1 = 45: 0.01 × 2025 = 20.25 ms.
        assert!((t.quadratic_term(45).as_millis_f64() - 20.25).abs() < 1e-9);
        // G·ns² with ns = 5: 0.25 ms.
        assert!((t.quadratic_term(5).as_millis_f64() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn quadratic_model_is_deterministic() {
        let t = MacTiming::paper_defaults();
        let mut rng = SimRng::new(3);
        let a = ContentionModel::Quadratic.access_delay(&t, 10, &mut rng);
        let b = ContentionModel::Quadratic.access_delay(&t, 10, &mut rng);
        assert_eq!(a, b);
        assert_eq!(a, SimTime::from_millis_f64(1.0));
    }

    #[test]
    fn backoff_is_bounded_by_slot_window() {
        let t = MacTiming::paper_defaults();
        let mut rng = SimRng::new(4);
        let window = t.slot_time * u64::from(t.num_slots);
        for _ in 0..1_000 {
            let d = ContentionModel::BackoffOnly.access_delay(&t, 45, &mut rng);
            assert!(d < window);
        }
    }

    #[test]
    fn combined_model_is_at_least_quadratic() {
        let t = MacTiming::paper_defaults();
        let mut rng = SimRng::new(5);
        let base = t.quadratic_term(45);
        for _ in 0..100 {
            let d = ContentionModel::QuadraticWithBackoff.access_delay(&t, 45, &mut rng);
            assert!(d >= base);
        }
    }

    #[test]
    fn validation_rejects_bad_constants() {
        let mut t = MacTiming::paper_defaults();
        t.csma_g_ms = -1.0;
        assert!(t.validate().is_err());
        let mut t2 = MacTiming::paper_defaults();
        t2.tx_per_byte = SimTime::ZERO;
        assert!(t2.validate().is_err());
    }

    #[test]
    fn zero_slots_means_no_backoff() {
        let mut t = MacTiming::paper_defaults();
        t.num_slots = 0;
        let mut rng = SimRng::new(6);
        assert_eq!(
            ContentionModel::BackoffOnly.access_delay(&t, 45, &mut rng),
            SimTime::ZERO
        );
    }

    #[test]
    fn labels_are_distinct() {
        use ContentionModel::*;
        let labels = [
            Quadratic.label(),
            QuadraticWithBackoff.label(),
            BackoffOnly.label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }
}
