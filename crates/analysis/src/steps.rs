//! The cost-step vocabulary of the Section 4 delay analysis.

/// Parameters of the analytical model, in the paper's units (milliseconds
/// and abstract size units, where `Ttx` is the time to transmit one unit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnalysisParams {
    /// Transmission time per size unit (ms) — `Ttx = 0.05`.
    pub t_tx: f64,
    /// Per-packet processing delay (ms) — `Tproc = 0.02`.
    pub t_proc: f64,
    /// MAC contention constant (ms) — `G = 0.01`.
    pub g: f64,
    /// Nodes within the maximum-power radius — `n1 = 45`.
    pub n1: usize,
    /// Nodes within the lowest-power radius — `ns = 5`.
    pub ns: usize,
    /// ADV length — `A = 1`.
    pub a: f64,
    /// REQ length — `R = 1` (the paper sets `R = A`).
    pub r: f64,
    /// DATA length — `D = 30` (`A:D = 1:30` in §4.1).
    pub d: f64,
    /// τADV (ms).
    pub tout_adv: f64,
    /// τDAT (ms).
    pub tout_dat: f64,
}

impl AnalysisParams {
    /// The sample values of §4.1 used to produce the 2.7865 ratio.
    #[must_use]
    pub fn paper_instance() -> Self {
        AnalysisParams {
            t_tx: 0.05,
            t_proc: 0.02,
            g: 0.01,
            n1: 45,
            ns: 5,
            a: 1.0,
            r: 1.0,
            d: 30.0,
            tout_adv: 1.0,
            tout_dat: 2.5,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if any quantity is negative or non-finite, or a
    /// node count is zero.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("t_tx", self.t_tx),
            ("t_proc", self.t_proc),
            ("g", self.g),
            ("a", self.a),
            ("r", self.r),
            ("d", self.d),
            ("tout_adv", self.tout_adv),
            ("tout_dat", self.tout_dat),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} = {v} must be finite and >= 0"));
            }
        }
        if self.n1 == 0 || self.ns == 0 {
            return Err("node counts must be positive".into());
        }
        Ok(())
    }

    /// The quadratic contention delay for `n` contenders: `G·n²` ms.
    #[must_use]
    pub fn access(&self, n: usize) -> f64 {
        self.g * (n as f64) * (n as f64)
    }
}

/// One cost step of a protocol scenario.
///
/// §4.1: "Delay for any transmission = Delay due to MAC layer contention
/// for the channel + Transmission delay of the packet + Processing delay."
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Step {
    /// MAC channel access among `n` contenders: `G·n²`.
    Access(usize),
    /// Transmitting a packet of the given size: `size × Ttx`.
    Transmit(f64),
    /// Per-packet processing at a receiving node: `Tproc`.
    Process,
    /// Waiting out a timer.
    Timeout(f64),
}

/// Total delay (ms) of a step sequence under `p`.
///
/// # Example
///
/// ```
/// use spms_analysis::{delay_of, AnalysisParams, Step};
///
/// let p = AnalysisParams::paper_instance();
/// // One max-power ADV: G·n1² + A·Ttx.
/// let d = delay_of(&[Step::Access(p.n1), Step::Transmit(p.a)], &p);
/// assert!((d - (20.25 + 0.05)).abs() < 1e-12);
/// ```
#[must_use]
pub fn delay_of(steps: &[Step], p: &AnalysisParams) -> f64 {
    steps
        .iter()
        .map(|s| match *s {
            Step::Access(n) => p.access(n),
            Step::Transmit(size) => size * p.t_tx,
            Step::Process => p.t_proc,
            Step::Timeout(t) => t,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_is_valid() {
        let p = AnalysisParams::paper_instance();
        assert!(p.validate().is_ok());
        assert_eq!(p.n1, 45);
        assert_eq!(p.ns, 5);
        assert!((p.d / p.a - 30.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut p = AnalysisParams::paper_instance();
        p.g = -1.0;
        assert!(p.validate().is_err());
        let mut p = AnalysisParams::paper_instance();
        p.n1 = 0;
        assert!(p.validate().is_err());
        let mut p = AnalysisParams::paper_instance();
        p.t_tx = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn access_is_quadratic() {
        let p = AnalysisParams::paper_instance();
        assert!((p.access(45) - 20.25).abs() < 1e-12);
        assert!((p.access(5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn steps_compose_additively() {
        let p = AnalysisParams::paper_instance();
        let d = delay_of(
            &[
                Step::Access(5),
                Step::Transmit(30.0),
                Step::Process,
                Step::Timeout(1.0),
            ],
            &p,
        );
        assert!((d - (0.25 + 1.5 + 0.02 + 1.0)).abs() < 1e-12);
        assert_eq!(delay_of(&[], &p), 0.0);
    }
}
