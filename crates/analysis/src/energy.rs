//! The §4.2 energy model.
//!
//! Setup: source `A`, destination `B`, `k−1` equally spaced relays between
//! them (so the direct distance is `k` hop-lengths). Transmit energy per
//! bit follows `d^α` (2-ray ground, `α = 3.5`); receive energy `Er` equals
//! the lowest transmit level `Em`. With hop distance normalized to 1:
//!
//! * SPIN sends ADV, REQ and DATA over the full distance `k` at cost
//!   `k^α` per bit, plus one reception:
//!   `E_SPIN ∝ k^α + Er`.
//! * SPMS pays, per hop: an ADV at full zone power (`f·k^α`, where
//!   `f = A/(A+D+R)` is the metadata fraction), REQ+DATA at unit hop cost
//!   (`1−f`), and a reception (`Er`):
//!   `E_SPMS ∝ k·f·k^α + k·(1−f) + k·Er`.
//!
//! With `Er = Em = 1` the ratio is the paper's
//! `E_SPIN : E_SPMS = (k^α + 1) / (k·f·k^α + (2−f)·k)`.
//!
//! The model honestly exposes the crossover the formula implies: metadata
//! advertisements at full power are SPMS's fixed cost, so the ratio rises
//! with `k` (more relays, cheaper data hops), peaks, and returns to 1 near
//! `k ≈ 1/f` where zone-wide ADV re-broadcasts eat the savings — which is
//! exactly why the paper transmits only the tiny ADV at maximum power.

use spms_phy::PathLoss;

/// Parameters of the §4.2 energy comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Path-loss model (α = 3.5 in the paper).
    pub path_loss: PathLoss,
    /// Metadata fraction `f = A/(A+D+R)`; the paper's `D ≈ 32·A = 32·R`
    /// gives `f = 1/34`.
    pub meta_fraction: f64,
    /// Receive energy relative to the unit-hop transmit energy (`Er = Em`
    /// → 1.0).
    pub rx_relative: f64,
}

impl EnergyModel {
    /// The paper's instance: α = 3.5, `f = 1/34`, `Er = Em`.
    #[must_use]
    pub fn paper_instance() -> Self {
        EnergyModel {
            path_loss: PathLoss::two_ray(),
            meta_fraction: 1.0 / 34.0,
            rx_relative: 1.0,
        }
    }

    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns a message unless `0 < meta_fraction < 1` and
    /// `rx_relative >= 0`.
    pub fn new(path_loss: PathLoss, meta_fraction: f64, rx_relative: f64) -> Result<Self, String> {
        if !meta_fraction.is_finite()
            || !(0.0..1.0).contains(&meta_fraction)
            || meta_fraction == 0.0
        {
            return Err(format!("meta fraction {meta_fraction} outside (0, 1)"));
        }
        if !rx_relative.is_finite() || rx_relative < 0.0 {
            return Err(format!("rx_relative {rx_relative} must be >= 0"));
        }
        Ok(EnergyModel {
            path_loss,
            meta_fraction,
            rx_relative,
        })
    }

    /// Relative SPIN energy for a pair `k` hop-lengths apart (per unit of
    /// total packet size): one full-distance exchange plus one reception.
    #[must_use]
    pub fn spin_energy(&self, k: u32) -> f64 {
        let kf = f64::from(k.max(1));
        self.path_loss.relative_energy(kf) + self.rx_relative
    }

    /// Relative SPMS energy for the same pair: `k` hops, each paying a
    /// zone-wide ADV (`f·k^α`), unit-cost REQ+DATA (`1−f`), and a
    /// reception.
    #[must_use]
    pub fn spms_energy(&self, k: u32) -> f64 {
        let kf = f64::from(k.max(1));
        let zone = self.path_loss.relative_energy(kf);
        kf * (self.meta_fraction * zone + (1.0 - self.meta_fraction) + self.rx_relative)
    }

    /// The paper's Figure 5 quantity: `E_SPIN / E_SPMS`.
    #[must_use]
    pub fn ratio(&self, k: u32) -> f64 {
        self.spin_energy(k) / self.spms_energy(k)
    }

    /// The relay count at which the ratio peaks (scanning `1..=max_k`).
    #[must_use]
    pub fn peak_k(&self, max_k: u32) -> u32 {
        (1..=max_k.max(1))
            .max_by(|&a, &b| {
                self.ratio(a)
                    .partial_cmp(&self.ratio(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(1)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper_instance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::paper_instance()
    }

    #[test]
    fn matches_closed_form() {
        // (k^3.5 + 1) / (k·f·k^3.5 + (2−f)·k)
        let m = model();
        let f = m.meta_fraction;
        for k in [1u32, 2, 5, 10, 20] {
            let kf = f64::from(k);
            let want = (kf.powf(3.5) + 1.0) / (kf * f * kf.powf(3.5) + (2.0 - f) * kf);
            let got = m.ratio(k);
            assert!((got - want).abs() < 1e-12, "k={k}: got {got}, want {want}");
        }
    }

    #[test]
    fn single_hop_ratio_is_one() {
        assert!((model().ratio(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spms_wins_substantially_at_moderate_k() {
        // Figure 5's regime: the savings grow with the radius (= k on the
        // unit grid) through the plotted range.
        let m = model();
        assert!(m.ratio(2) > 2.5);
        assert!(m.ratio(4) > m.ratio(2));
        assert!(m.ratio(4) > 5.0);
        assert!(m.ratio(10) > 2.5);
    }

    #[test]
    fn ratio_peaks_then_returns_to_parity() {
        // The closed form peaks near k ≈ (1/(f·(α−1)))^(1/α)-ish — for
        // f = 1/34 and α = 3.5 that is k = 4 — and declines afterwards as
        // every relay's zone-wide ADV (f·k^3.5 each) starts to dominate,
        // crossing parity near k ≈ 1/f = 34.
        let m = model();
        let peak = m.peak_k(60);
        assert!((3..=6).contains(&peak), "peak at k = {peak} for f = 1/34");
        assert!(m.ratio(34) < m.ratio(peak));
        assert!((m.ratio(34) - 1.0).abs() < 0.05, "parity near 1/f");
        assert!(m.ratio(55) < 1.0);
    }

    #[test]
    fn smaller_metadata_fraction_extends_the_win() {
        let small_f = EnergyModel::new(PathLoss::two_ray(), 1.0 / 100.0, 1.0).unwrap();
        let m = model();
        assert!(small_f.ratio(20) > m.ratio(20));
        assert!(small_f.peak_k(200) > m.peak_k(200));
    }

    #[test]
    fn validation() {
        assert!(EnergyModel::new(PathLoss::two_ray(), 0.0, 1.0).is_err());
        assert!(EnergyModel::new(PathLoss::two_ray(), 1.0, 1.0).is_err());
        assert!(EnergyModel::new(PathLoss::two_ray(), 0.5, -1.0).is_err());
        assert!(EnergyModel::new(PathLoss::two_ray(), 0.5, 0.0).is_ok());
    }

    #[test]
    fn k_zero_treated_as_one() {
        let m = model();
        assert_eq!(m.spin_energy(0), m.spin_energy(1));
        assert_eq!(m.spms_energy(0), m.spms_energy(1));
    }
}
