//! The §4.1 delay equations, expressed as step sequences.
//!
//! Scenario names follow the paper: the topology is a chain
//! `A — r1 — … — rk — C` where `A` is the source and every node is in every
//! other's zone; SPIN transmits everything at maximum power (`n1`
//! contenders), SPMS's REQ/DATA hops run at the lowest level (`ns`
//! contenders) while ADVs stay at maximum power.

use crate::steps::{delay_of, AnalysisParams, Step};

/// The delay model: equations (1)–(3) plus the failure cases.
///
/// # Example
///
/// ```
/// use spms_analysis::DelayModel;
/// use spms_analysis::AnalysisParams;
///
/// let model = DelayModel::new(AnalysisParams::paper_instance()).unwrap();
/// let ratio = model.spin_pair() / model.spms_pair();
/// assert!((ratio - 2.7865).abs() < 5e-4, "paper's §4.1 ratio");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayModel {
    p: AnalysisParams,
}

impl DelayModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn new(p: AnalysisParams) -> Result<Self, String> {
        p.validate()?;
        Ok(DelayModel { p })
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> &AnalysisParams {
        &self.p
    }

    /// Equation (1): SPIN single source–destination pair, failure-free.
    ///
    /// `Tb = 3·G·n1² + (A+R+D)·Ttx + 2·Tproc`
    #[must_use]
    pub fn spin_pair(&self) -> f64 {
        let p = &self.p;
        delay_of(
            &[
                Step::Access(p.n1),
                Step::Transmit(p.a),
                Step::Process, // ADV processed at B
                Step::Access(p.n1),
                Step::Transmit(p.r),
                Step::Process, // REQ processed at A
                Step::Access(p.n1),
                Step::Transmit(p.d),
            ],
            p,
        )
    }

    /// Equation (2): SPMS adjacent pair (A→B at the low power level),
    /// failure-free.
    ///
    /// `Tb = G·n1² + 2·G·ns² + (A+R+D)·Ttx + 2·Tproc`
    #[must_use]
    pub fn spms_pair(&self) -> f64 {
        let p = &self.p;
        delay_of(
            &[
                Step::Access(p.n1), // ADV still goes out at maximum power
                Step::Transmit(p.a),
                Step::Process,
                Step::Access(p.ns),
                Step::Transmit(p.r),
                Step::Process,
                Step::Access(p.ns),
                Step::Transmit(p.d),
            ],
            p,
        )
    }

    /// One SPMS "round": the time for data to advance one hop when the
    /// relay requests it (`Tround` in the paper; identical in form to
    /// [`DelayModel::spms_pair`]).
    #[must_use]
    pub fn t_round(&self) -> f64 {
        self.spms_pair()
    }

    /// Case (a.a): destination two hops away, the intermediate node also
    /// requested the data: `Tc = 2·Tround`.
    #[must_use]
    pub fn spms_two_hop_relay_requests(&self) -> f64 {
        2.0 * self.t_round()
    }

    /// Case (a.b): the intermediate node did not request the data; the
    /// destination times out on τADV and pulls through the relay:
    /// `Tc = G·n1² + 4·G·ns² + (A + 2R + 2D)·Ttx + 4·Tproc + TOutADV`.
    #[must_use]
    pub fn spms_two_hop_relay_silent(&self) -> f64 {
        let p = &self.p;
        delay_of(
            &[
                Step::Access(p.n1),
                Step::Transmit(p.a),
                Step::Process,
                Step::Timeout(p.tout_adv),
                // REQ relayed over two low-power hops.
                Step::Access(p.ns),
                Step::Transmit(p.r),
                Step::Process,
                Step::Access(p.ns),
                Step::Transmit(p.r),
                Step::Process,
                // DATA back over two low-power hops.
                Step::Access(p.ns),
                Step::Transmit(p.d),
                Step::Process,
                Step::Access(p.ns),
                Step::Transmit(p.d),
            ],
            p,
        )
    }

    /// Equation (3): worst-case delay with `k` relays — the data ripples
    /// through `k−1` rounds and the last relay stays silent:
    /// `Tc ≤ (k−1)·Tround + Tc(a.b)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (no relays means the pair case).
    #[must_use]
    pub fn spms_k_relays_worst(&self, k: u32) -> f64 {
        assert!(k > 0, "k = 0 is the pair case");
        f64::from(k - 1) * self.t_round() + self.spms_two_hop_relay_silent()
    }

    /// Failure case (b.a): the relay fails *before* advertising. The
    /// destination waits τADV, its multi-hop REQ dies at the relay, τDAT
    /// expires, and it finally pulls directly from the PRONE at a higher
    /// power level (`n2` contenders ≘ `n1` here, conservatively).
    #[must_use]
    pub fn spms_two_hop_relay_fails_before_adv(&self) -> f64 {
        let p = &self.p;
        delay_of(
            &[
                Step::Access(p.n1),
                Step::Transmit(p.a),
                Step::Process,
                Step::Timeout(p.tout_adv),
                // First hop of the doomed multi-hop REQ.
                Step::Access(p.ns),
                Step::Transmit(p.r),
                Step::Timeout(p.tout_dat),
                // Direct REQ + DATA at the higher power reaching the PRONE.
                Step::Access(p.n1),
                Step::Transmit(p.r),
                Step::Process,
                Step::Access(p.n1),
                Step::Transmit(p.d),
                Step::Process,
            ],
            p,
        )
    }

    /// Failure case (b.b): the relay advertised and then failed. The
    /// destination's direct REQ to it times out (τDAT) and it falls back to
    /// the SCONE.
    #[must_use]
    pub fn spms_two_hop_relay_fails_after_adv(&self) -> f64 {
        let p = &self.p;
        delay_of(
            &[
                // The relay acquired the data (one full round) and
                // advertised at maximum power.
                Step::Access(p.n1),
                Step::Transmit(p.a),
                Step::Process,
            ],
            p,
        ) + self.t_round()
            + delay_of(
                &[
                    // Direct REQ to the (now dead) relay.
                    Step::Access(p.ns),
                    Step::Transmit(p.r),
                    Step::Timeout(p.tout_dat),
                    // REQ + DATA directly from the SCONE at higher power.
                    Step::Access(p.n1),
                    Step::Transmit(p.r),
                    Step::Process,
                    Step::Access(p.n1),
                    Step::Transmit(p.d),
                    Step::Process,
                ],
                p,
            )
    }

    /// The k-relay failure case: the `(j+1)`-th relay from the end fails
    /// (Figure 4): `(k−j)` clean rounds, then a τADV + τDAT recovery with a
    /// direct pull from the last heard node at a level with `nj`
    /// contenders.
    #[must_use]
    pub fn spms_k_relays_one_failure(&self, k: u32, j: u32, nj: usize) -> f64 {
        let p = &self.p;
        let clean = f64::from(k.saturating_sub(j)) * self.t_round();
        clean
            + delay_of(
                &[
                    Step::Timeout(p.tout_adv),
                    Step::Access(p.ns),
                    Step::Transmit(p.r),
                    Step::Timeout(p.tout_dat),
                    Step::Access(nj),
                    Step::Transmit(p.r),
                    Step::Process,
                    Step::Access(nj),
                    Step::Transmit(p.d),
                    Step::Process,
                ],
                p,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DelayModel {
        DelayModel::new(AnalysisParams::paper_instance()).unwrap()
    }

    #[test]
    fn equation_1_value() {
        // 3·20.25 + 32·0.05 + 0.04 = 62.39 ms.
        assert!((model().spin_pair() - 62.39).abs() < 1e-9);
    }

    #[test]
    fn equation_2_value() {
        // 20.25 + 0.5 + 1.6 + 0.04 = 22.39 ms.
        assert!((model().spms_pair() - 22.39).abs() < 1e-9);
    }

    #[test]
    fn paper_ratio_2_7865() {
        let m = model();
        let ratio = m.spin_pair() / m.spms_pair();
        assert!(
            (ratio - 2.7865).abs() < 5e-4,
            "DelaySPIN:DelaySPMS = {ratio}, paper says 2.7865"
        );
    }

    #[test]
    fn two_hop_case_values() {
        let m = model();
        // Case a.a = 2·Tround = 44.78 ms.
        assert!((m.spms_two_hop_relay_requests() - 44.78).abs() < 1e-9);
        assert!((m.spms_two_hop_relay_requests() - 2.0 * m.t_round()).abs() < 1e-12);
        // Case a.b = G·n1² + 4·G·ns² + (A+2R+2D)·Ttx + 4·Tproc + TOutADV
        //          = 20.25 + 1.0 + 3.15 + 0.08 + 1.0 = 25.48 ms.
        assert!((m.spms_two_hop_relay_silent() - 25.48).abs() < 1e-9);
        // Counter-intuitive but faithful to the published constants: with
        // τADV = 1 ms, a silent relay is *faster* than a requesting one,
        // because the requesting relay pays a second max-power ADV access
        // (20.25 ms). The ordering flips once τADV exceeds that.
        assert!(m.spms_two_hop_relay_silent() < m.spms_two_hop_relay_requests());
        let mut slow = AnalysisParams::paper_instance();
        slow.tout_adv = 25.0;
        let m2 = DelayModel::new(slow).unwrap();
        assert!(m2.spms_two_hop_relay_silent() > m2.spms_two_hop_relay_requests());
    }

    #[test]
    fn worst_case_grows_linearly_in_k() {
        let m = model();
        let d3 = m.spms_k_relays_worst(3);
        let d4 = m.spms_k_relays_worst(4);
        assert!((d4 - d3 - m.t_round()).abs() < 1e-9);
    }

    #[test]
    fn failure_cases_exceed_failure_free() {
        let m = model();
        assert!(m.spms_two_hop_relay_fails_before_adv() > m.spms_two_hop_relay_silent());
        assert!(m.spms_two_hop_relay_fails_after_adv() > m.spms_two_hop_relay_requests());
    }

    #[test]
    fn k_relay_failure_uses_clean_rounds() {
        let m = model();
        // Failing the farthest relay (j = k) leaves no clean rounds.
        let worst = m.spms_k_relays_one_failure(5, 5, 45);
        let best = m.spms_k_relays_one_failure(5, 1, 45);
        assert!(best > worst, "more clean rounds, more accumulated delay");
    }

    #[test]
    #[should_panic(expected = "pair case")]
    fn zero_relays_panics() {
        let _ = model().spms_k_relays_worst(0);
    }
}
