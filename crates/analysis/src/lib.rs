//! Closed-form delay and energy models from Section 4 of the paper.
//!
//! The paper compares SPIN and SPMS analytically before simulating them:
//!
//! * **Delay** (§4.1) — every protocol step costs
//!   `MAC contention + transmission + processing`; the contention term is
//!   `G·n²` with `n` the number of nodes inside the chosen power level's
//!   radius. Equations (1)–(3) and the failure cases compose those steps.
//!   This crate expresses each scenario as an explicit step list
//!   ([`steps::Step`]) so every published equation is readable, testable
//!   code. The paper's reference instance (`Ttx = 0.05`, `Tproc = 0.02`,
//!   `A:D = 1:30`, `G = 0.01`, `n1 = 45`, `ns = 5`) gives
//!   `Delay_SPIN : Delay_SPMS = 2.7865`, reproduced exactly by a unit test.
//! * **Energy** (§4.2) — transmit energy follows `d^α` with `α = 3.5`
//!   (2-ray ground); with `k` equally spaced relays and metadata fraction
//!   `f = A/(A+D+R)`, the ratio is
//!   `E_SPIN : E_SPMS = (k^3.5 + 1) / (k·f·k^3.5 + (2−f)·k)`.
//! * **Mobility break-even** (§5.1.3) — how many packets must flow between
//!   mobility events for SPMS's savings to amortize one DBF re-execution
//!   (the paper reports ≈239.18 for its instance).
//!
//! Figures 3 and 5 are regenerated from these models by
//! [`figures::fig3_series`] and [`figures::fig5_series`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakeven;
pub mod delay;
pub mod energy;
pub mod figures;
pub mod interzone;
pub mod steps;

pub use breakeven::{breakeven_packets, BreakevenInstance};
pub use delay::DelayModel;
pub use energy::EnergyModel;
pub use interzone::InterZoneModel;
pub use steps::{delay_of, AnalysisParams, Step};
