//! The mobility break-even analysis (§5.1.3).
//!
//! Under mobility, SPMS must re-run the distributed Bellman-Ford after each
//! epoch; the paper: "Our calculations with the cost of running Bellman
//! Ford and the energy gain of SPMS over SPIN lead us to conclude that at
//! least 239.18 packets must be successfully transmitted between two
//! instances of network mobility for SPMS to save energy compared to SPIN."
//!
//! The break-even count is simply
//! `E_DBF / (E_SPIN/packet − E_SPMS/packet)`. This module provides both the
//! raw formula and an instance builder that derives the inputs from this
//! repository's own cost models, so the number tracks whatever parameters
//! an experiment uses.

/// Break-even packet count.
///
/// # Errors
///
/// Returns a message if SPMS does not actually save energy per packet
/// (`spms_per_packet >= spin_per_packet`) or any input is non-finite or
/// negative.
///
/// # Example
///
/// ```
/// use spms_analysis::breakeven_packets;
///
/// let pkts = breakeven_packets(2400.0, 20.0, 10.0).unwrap();
/// assert_eq!(pkts, 240.0);
/// ```
pub fn breakeven_packets(
    dbf_energy_uj: f64,
    spin_per_packet_uj: f64,
    spms_per_packet_uj: f64,
) -> Result<f64, String> {
    for (name, v) in [
        ("dbf_energy_uj", dbf_energy_uj),
        ("spin_per_packet_uj", spin_per_packet_uj),
        ("spms_per_packet_uj", spms_per_packet_uj),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(format!("{name} = {v} must be finite and >= 0"));
        }
    }
    let saving = spin_per_packet_uj - spms_per_packet_uj;
    if saving <= 0.0 {
        return Err(format!(
            "SPMS saves nothing per packet ({spin_per_packet_uj} vs {spms_per_packet_uj})"
        ));
    }
    Ok(dbf_energy_uj / saving)
}

/// A concrete break-even instance built from first principles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakevenInstance {
    /// Zone size (nodes exchanging distance vectors).
    pub zone_size: usize,
    /// DBF rounds to convergence.
    pub rounds: u32,
    /// Bytes per distance-vector message.
    pub vector_bytes: u32,
    /// Max-power transmit energy per byte (µJ/B).
    pub max_power_uj_per_byte: f64,
    /// SPIN network energy per disseminated packet (µJ).
    pub spin_per_packet_uj: f64,
    /// SPMS network energy per disseminated packet (µJ).
    pub spms_per_packet_uj: f64,
}

impl BreakevenInstance {
    /// A representative MICA2 instance for the paper's reference zone
    /// (45-node zone, 20 m radius): vector messages carry one entry per
    /// zone member (4 B each + 2 B header) and DBF converges in ~5 rounds;
    /// per-packet energies come from the reference pair exchange at level 3
    /// versus minimum-level multi-hop.
    #[must_use]
    pub fn mica2_reference() -> Self {
        // Level 3 (22.86 m): 0.1995 mW × 0.05 ms/B = 9.975e-3 µJ/B.
        let l3 = 0.1995 * 0.05;
        // Level 5 (5.48 m): 0.0125 mW × 0.05 ms/B.
        let l5 = 0.0125 * 0.05;
        // One dissemination to one zone member: SPIN sends A+R+D = 44 B at
        // L3; SPMS sends the 2 B ADV at L3 and R+D = 42 B at L5 over ~4
        // hops (4× forwarding of the 42 B at L5).
        let spin = 44.0 * l3;
        let spms = 2.0 * l3 + 4.0 * 42.0 * l5;
        BreakevenInstance {
            zone_size: 45,
            rounds: 5,
            vector_bytes: 2 + 4 * 45,
            max_power_uj_per_byte: l3,
            spin_per_packet_uj: spin,
            spms_per_packet_uj: spms,
        }
    }

    /// Energy of one DBF execution: every zone member broadcasts its vector
    /// once per round at maximum power.
    #[must_use]
    pub fn dbf_energy_uj(&self) -> f64 {
        self.zone_size as f64
            * f64::from(self.rounds)
            * f64::from(self.vector_bytes)
            * self.max_power_uj_per_byte
    }

    /// Packets needed between mobility epochs for SPMS to break even.
    ///
    /// # Errors
    ///
    /// Propagates [`breakeven_packets`] errors.
    pub fn packets_needed(&self) -> Result<f64, String> {
        breakeven_packets(
            self.dbf_energy_uj(),
            self.spin_per_packet_uj,
            self.spms_per_packet_uj,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_is_ratio_of_cost_to_saving() {
        assert_eq!(breakeven_packets(100.0, 3.0, 1.0).unwrap(), 50.0);
    }

    #[test]
    fn rejects_non_saving_protocols() {
        assert!(breakeven_packets(100.0, 1.0, 1.0).is_err());
        assert!(breakeven_packets(100.0, 1.0, 2.0).is_err());
        assert!(breakeven_packets(f64::NAN, 2.0, 1.0).is_err());
        assert!(breakeven_packets(-1.0, 2.0, 1.0).is_err());
    }

    #[test]
    fn mica2_reference_is_same_order_as_paper() {
        // The paper reports 239.18 packets for its (unpublished) instance.
        // Our first-principles MICA2 instance lands in the same order of
        // magnitude, which is the reproducible claim.
        let inst = BreakevenInstance::mica2_reference();
        let pkts = inst.packets_needed().unwrap();
        assert!((50.0..2_000.0).contains(&pkts), "break-even {pkts} packets");
        assert!(inst.dbf_energy_uj() > 0.0);
    }

    #[test]
    fn more_rounds_need_more_packets() {
        let base = BreakevenInstance::mica2_reference();
        let mut slow = base;
        slow.rounds = 10;
        assert!(slow.packets_needed().unwrap() > base.packets_needed().unwrap());
    }
}
