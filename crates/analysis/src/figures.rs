//! Series generators for the paper's analytical figures (3 and 5).

use crate::delay::DelayModel;
use crate::energy::EnergyModel;
use crate::steps::AnalysisParams;

/// One (x, y) series with axis labels, ready for table/CSV rendering.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Series name.
    pub name: String,
    /// X-axis label.
    pub x_label: &'static str,
    /// Y-axis label.
    pub y_label: &'static str,
    /// The points.
    pub points: Vec<(f64, f64)>,
}

/// Figure 3: the analytical SPIN:SPMS delay ratio as the transmission
/// radius varies.
///
/// The radius enters through the zone population: at uniform node density
/// `ρ` (nodes/m²), a radius `r` puts `n1 = ⌈ρ·π·r²⌉` nodes in contention
/// at maximum power, while `ns` stays pinned to the lowest level's
/// population. The ratio of equations (1) and (2) then rises from ≈1 toward
/// its asymptote of 3 (three max-power channel accesses versus one) —
/// with the paper's reference density the §4.1 spot value 2.7865 sits on
/// this curve.
///
/// # Errors
///
/// Returns a message if the parameters fail validation or `density <= 0`.
///
/// # Example
///
/// ```
/// use spms_analysis::figures::fig3_series;
///
/// let s = fig3_series(&[5.0, 10.0, 20.0, 30.0], 0.04).unwrap();
/// assert_eq!(s.points.len(), 4);
/// let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
/// assert!(ys.windows(2).all(|w| w[0] <= w[1]), "monotone in radius");
/// ```
pub fn fig3_series(radii_m: &[f64], density_per_m2: f64) -> Result<Series, String> {
    if !density_per_m2.is_finite() || density_per_m2 <= 0.0 {
        return Err(format!("bad density {density_per_m2}"));
    }
    let base = AnalysisParams::paper_instance();
    let mut points = Vec::with_capacity(radii_m.len());
    for &r in radii_m {
        if !r.is_finite() || r <= 0.0 {
            return Err(format!("bad radius {r}"));
        }
        let n1 = ((density_per_m2 * std::f64::consts::PI * r * r).ceil() as usize).max(base.ns);
        let params = AnalysisParams { n1, ..base };
        let model = DelayModel::new(params)?;
        points.push((r, model.spin_pair() / model.spms_pair()));
    }
    Ok(Series {
        name: "Fig3 Delay ratio SPIN/SPMS".into(),
        x_label: "transmission radius (m)",
        y_label: "Delay_SPIN / Delay_SPMS",
        points,
    })
}

/// Figure 5: the analytical SPIN:SPMS energy ratio as the transmission
/// radius (= relay count `k` on the unit grid) varies.
///
/// # Errors
///
/// Returns a message if `ks` is empty.
///
/// # Example
///
/// ```
/// use spms_analysis::figures::fig5_series;
///
/// let s = fig5_series(&(1..=12).collect::<Vec<u32>>()).unwrap();
/// assert!(s.points.last().unwrap().1 > 2.0, "SPMS wins at larger radii");
/// ```
pub fn fig5_series(ks: &[u32]) -> Result<Series, String> {
    if ks.is_empty() {
        return Err("need at least one k".into());
    }
    let model = EnergyModel::paper_instance();
    let points = ks.iter().map(|&k| (f64::from(k), model.ratio(k))).collect();
    Ok(Series {
        name: "Fig5 Energy ratio SPIN/SPMS".into(),
        x_label: "radius of transmission (hops, k)",
        y_label: "E_SPIN / E_SPMS",
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_contains_the_paper_spot_value() {
        // At the reference density (5 m grid → 0.04 nodes/m²) and a radius
        // of ≈19 m, n1 ≈ 45 and the ratio is ≈2.7865.
        let s = fig3_series(&[18.9], 0.04).unwrap();
        let y = s.points[0].1;
        assert!((y - 2.7865).abs() < 0.08, "ratio at n1≈45: {y}");
    }

    #[test]
    fn fig3_ratio_is_monotone_and_bounded_by_three() {
        let radii: Vec<f64> = (1..=30).map(f64::from).collect();
        let s = fig3_series(&radii, 0.04).unwrap();
        let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
        assert!(ys.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!(ys.iter().all(|&y| y < 3.0));
        assert!(*ys.last().unwrap() > 2.8, "approaches the asymptote");
    }

    #[test]
    fn fig3_rejects_bad_inputs() {
        assert!(fig3_series(&[10.0], 0.0).is_err());
        assert!(fig3_series(&[-1.0], 0.04).is_err());
        assert!(fig3_series(&[f64::NAN], 0.04).is_err());
    }

    #[test]
    fn fig5_shape_rises_to_its_peak() {
        let s = fig5_series(&(1..=12).collect::<Vec<u32>>()).unwrap();
        let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
        assert!((ys[0] - 1.0).abs() < 1e-12, "k = 1 parity");
        // Rises monotonically up to the peak at k = 4, and SPMS keeps a
        // substantial advantage through the plotted range.
        assert!(ys[..4].windows(2).all(|w| w[0] <= w[1] + 1e-12), "{ys:?}");
        assert!(ys.iter().all(|&y| y >= 1.0), "{ys:?}");
        assert!(ys[3] >= *ys.iter().last().unwrap());
    }

    #[test]
    fn fig5_empty_input_is_an_error() {
        assert!(fig5_series(&[]).is_err());
    }

    #[test]
    fn series_are_labelled() {
        let s = fig5_series(&[1, 2]).unwrap();
        assert!(!s.name.is_empty());
        assert!(!s.x_label.is_empty());
        assert!(!s.y_label.is_empty());
    }
}
