//! A closed-form energy model for the §6 inter-zone extension (EXT1).
//!
//! The paper gives no analysis for its future-work proposal; this module
//! extends the §4.2 modelling style to the pipeline scenario so the EXT1
//! simulation has an analytical shape to check against.
//!
//! Setup: a line of `n` nodes at unit spacing, source at one end, one sink
//! at the other (`L = n − 1` unit hops). A zone-power broadcast costs
//! `zone_tx_relative` per byte (relative to a minimum-power unit hop) and
//! is heard by up to `2·zone_hops` line neighbors; every reception costs
//! `rx_relative` per byte.
//!
//! * **Flooding** pushes the DATA everywhere: every node broadcasts the
//!   `D`-byte payload once at zone power:
//!   `E_flood = n·D·(ztx + n̄·Er)`, with `n̄ = min(2z, n−1)` listeners.
//! * **SPMS-IZ** moves metadata instead: the bordercast relays the
//!   `A`-byte query (on a line virtually every node is a border relay —
//!   the worst case for the extension), then exactly one copy of the data
//!   is pulled over minimum-power hops:
//!   `E_iz = n·A·(ztx + n̄·Er) + (n−1)·(R + D)·(1 + Er)`.
//!
//! Both waves share the same transmission pattern, so the ratio
//! `E_flood : E_iz` starts near the payload-to-metadata size ratio `D/A`
//! (20 in Table 1) and *declines gently* with pipeline length toward a
//! positive limit as the pull path's linear term grows — exactly the
//! shape the EXT1b measurement shows (8.4× at 40 m → 7.3× at 120 m).
//! The magnitude depends on the zone-broadcast cost model: the MICA2
//! table's discrete levels give `ztx = 0.1995/0.0125 ≈ 16` and a ≈7×
//! ratio matching the simulation; the idealized `d^α` continuum
//! (`4^3.5 = 128`) roughly doubles it.

/// Parameters of the inter-zone pipeline comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterZoneModel {
    /// Per-byte cost of a zone-power broadcast relative to a minimum-power
    /// unit hop.
    pub zone_tx_relative: f64,
    /// Unit hops covered by a zone-power broadcast (audience sizing; 20 m
    /// zones on the 5 m grid: 4).
    pub zone_hops: u32,
    /// ADV/query size in bytes.
    pub adv_bytes: f64,
    /// REQ size in bytes.
    pub req_bytes: f64,
    /// DATA size in bytes.
    pub data_bytes: f64,
    /// Receive cost per byte relative to the unit-hop transmit cost
    /// (`Er = Em` → 1.0).
    pub rx_relative: f64,
}

impl InterZoneModel {
    /// Table 1 sizes with the MICA2 discrete power table: the 20 m zone
    /// level (0.1995 mW) vs the 5.48 m minimum level (0.0125 mW).
    #[must_use]
    pub fn mica2_instance() -> Self {
        InterZoneModel {
            zone_tx_relative: 0.1995 / 0.0125,
            zone_hops: 4,
            adv_bytes: 2.0,
            req_bytes: 2.0,
            data_bytes: 40.0,
            rx_relative: 1.0,
        }
    }

    /// Table 1 sizes with the idealized `d^α` continuum of §4.2
    /// (`ztx = zone_hops^α`).
    #[must_use]
    pub fn two_ray_instance(alpha: f64, zone_hops: u32) -> Self {
        InterZoneModel {
            zone_tx_relative: f64::from(zone_hops.max(1)).powf(alpha),
            zone_hops,
            adv_bytes: 2.0,
            req_bytes: 2.0,
            data_bytes: 40.0,
            rx_relative: 1.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if any size or cost is non-positive, or
    /// `zone_hops` is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.zone_hops == 0 {
            return Err("zone_hops must be at least 1".into());
        }
        for (label, v) in [
            ("zone_tx_relative", self.zone_tx_relative),
            ("adv_bytes", self.adv_bytes),
            ("req_bytes", self.req_bytes),
            ("data_bytes", self.data_bytes),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{label} {v} must be positive"));
            }
        }
        if !(self.rx_relative.is_finite() && self.rx_relative >= 0.0) {
            return Err(format!("rx_relative {} must be >= 0", self.rx_relative));
        }
        Ok(())
    }

    /// Mean broadcast audience on the line (`min(2z, n−1)` listeners).
    fn audience(&self, nodes: u32) -> f64 {
        f64::from((2 * self.zone_hops).min(nodes.saturating_sub(1)))
    }

    /// Per-node cost of one zone-power broadcast wave, per byte: the
    /// transmission plus its receptions.
    fn wave_cost_per_byte(&self, nodes: u32) -> f64 {
        self.zone_tx_relative + self.audience(nodes) * self.rx_relative
    }

    /// Relative flooding energy for one item on an `nodes`-node pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` (no pipeline to cross).
    #[must_use]
    pub fn flood_energy(&self, nodes: u32) -> f64 {
        assert!(nodes >= 2, "a pipeline needs at least two nodes");
        f64::from(nodes) * self.data_bytes * self.wave_cost_per_byte(nodes)
    }

    /// Relative SPMS-IZ energy for one item: worst-case bordercast (every
    /// node relays the query once) plus one min-power pull.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    #[must_use]
    pub fn izpull_energy(&self, nodes: u32) -> f64 {
        assert!(nodes >= 2, "a pipeline needs at least two nodes");
        let n = f64::from(nodes);
        let query = n * self.adv_bytes * self.wave_cost_per_byte(nodes);
        let pull = (n - 1.0) * (self.req_bytes + self.data_bytes) * (1.0 + self.rx_relative);
        query + pull
    }

    /// `E_flood : E_iz` for the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    #[must_use]
    pub fn ratio(&self, nodes: u32) -> f64 {
        self.flood_energy(nodes) / self.izpull_energy(nodes)
    }

    /// The ratio's long-pipeline limit: per added node the flood pays
    /// `D·(ztx + 2z·Er)` while the pull pays `A·(ztx + 2z·Er) +
    /// (R+D)(1+Er)`.
    #[must_use]
    pub fn limit_ratio(&self) -> f64 {
        let wave = self.zone_tx_relative + f64::from(2 * self.zone_hops) * self.rx_relative;
        self.data_bytes * wave
            / (self.adv_bytes * wave
                + (self.req_bytes + self.data_bytes) * (1.0 + self.rx_relative))
    }

    /// The hard upper bound `D/A`: the two waves share one transmission
    /// pattern, so only the byte counts differ.
    #[must_use]
    pub fn asymptotic_ratio(&self) -> f64 {
        self.data_bytes / self.adv_bytes
    }

    /// `(length_in_hops, ratio)` series over pipelines of 2..=`max_nodes`
    /// nodes — the analytical counterpart of the EXT1b figure.
    ///
    /// # Errors
    ///
    /// Returns a message if the model is invalid or `max_nodes < 2`.
    pub fn ratio_series(&self, max_nodes: u32) -> Result<Vec<(f64, f64)>, String> {
        self.validate()?;
        if max_nodes < 2 {
            return Err("need at least a two-node pipeline".into());
        }
        Ok((2..=max_nodes)
            .map(|n| (f64::from(n - 1), self.ratio(n)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_valid() {
        assert!(InterZoneModel::mica2_instance().validate().is_ok());
        assert!(InterZoneModel::two_ray_instance(3.5, 4).validate().is_ok());
        assert_eq!(InterZoneModel::mica2_instance().asymptotic_ratio(), 20.0);
        // The continuum makes zone broadcasts ~8× costlier than MICA2's
        // discrete table at the same radius.
        assert!(
            InterZoneModel::two_ray_instance(3.5, 4).zone_tx_relative
                > 7.0 * InterZoneModel::mica2_instance().zone_tx_relative
        );
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut m = InterZoneModel::mica2_instance();
        m.zone_tx_relative = 0.0;
        assert!(m.validate().is_err());
        let mut m = InterZoneModel::mica2_instance();
        m.zone_hops = 0;
        assert!(m.validate().is_err());
        let mut m = InterZoneModel::mica2_instance();
        m.data_bytes = -1.0;
        assert!(m.validate().is_err());
        let mut m = InterZoneModel::mica2_instance();
        m.rx_relative = f64::NAN;
        assert!(m.validate().is_err());
    }

    #[test]
    fn iz_always_beats_flooding_on_multi_zone_pipelines() {
        for m in [
            InterZoneModel::mica2_instance(),
            InterZoneModel::two_ray_instance(3.5, 4),
        ] {
            for n in 2..=60 {
                assert!(
                    m.ratio(n) > 1.0,
                    "n={n}: flooding should always cost more, ratio {}",
                    m.ratio(n)
                );
            }
        }
    }

    #[test]
    fn ratio_declines_gently_toward_the_limit() {
        let m = InterZoneModel::mica2_instance();
        let series = m.ratio_series(60).unwrap();
        // Once the audience saturates (n > 2z+1), the ratio is monotone
        // non-increasing and approaches limit_ratio from above.
        let saturated: Vec<&(f64, f64)> = series.iter().filter(|(l, _)| *l >= 9.0).collect();
        for w in saturated.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "ratio must not grow: {w:?}");
        }
        let limit = m.limit_ratio();
        for (_, r) in &saturated {
            assert!(*r >= limit - 1e-9);
            assert!(*r < m.asymptotic_ratio());
        }
        let (_, last) = series.last().copied().unwrap();
        assert!(
            (last - limit).abs() / limit < 0.15,
            "last {last} vs limit {limit}"
        );
    }

    #[test]
    fn mica2_magnitude_matches_the_ext1_measurement() {
        // EXT1b measures E_flood/E_iz = 8.4× (40 m, 9 nodes) declining to
        // 7.3× (120 m, 25 nodes); the MICA2 instance lands in that band
        // with the same downward trend.
        let m = InterZoneModel::mica2_instance();
        let short = m.ratio(9);
        let long = m.ratio(25);
        assert!((6.0..11.0).contains(&short), "short {short}");
        assert!((5.0..10.0).contains(&long), "long {long}");
        assert!(long < short, "ratio must decline with length");
    }

    #[test]
    fn metadata_size_drives_the_advantage() {
        // Doubling the ADV size shrinks the advantage.
        let mut big_adv = InterZoneModel::mica2_instance();
        big_adv.adv_bytes *= 2.0;
        assert!(big_adv.ratio(40) < InterZoneModel::mica2_instance().ratio(40));
        // A payload as small as the metadata removes it entirely.
        let mut tiny_data = InterZoneModel::mica2_instance();
        tiny_data.data_bytes = tiny_data.adv_bytes;
        assert!(tiny_data.ratio(40) < 1.5);
    }

    #[test]
    fn series_errors_are_reported() {
        let m = InterZoneModel::mica2_instance();
        assert!(m.ratio_series(1).is_err());
        let mut bad = m;
        bad.zone_tx_relative = -1.0;
        assert!(bad.ratio_series(10).is_err());
    }
}
