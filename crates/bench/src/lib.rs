//! Shared helpers for the SPMS benchmark harness.
//!
//! Each Criterion bench regenerates one paper artifact (at a reduced scale
//! so the measurement loop stays tractable) and prints the series it
//! produced, so `cargo bench` doubles as a figure-regeneration smoke pass.
//! The full-scale regeneration lives in the `repro` binary
//! (`cargo run --release -p spms-workloads --bin repro -- all --scale paper`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spms_workloads::{render_markdown, FigureResult};

/// Prints a regenerated figure to the bench log (once, outside the timed
/// loop).
pub fn show(fig: &FigureResult) {
    println!("{}", render_markdown(fig));
}

/// The scale benches run at.
#[must_use]
pub fn bench_scale() -> spms_workloads::Scale {
    spms_workloads::Scale::smoke()
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_scale_is_valid() {
        assert!(super::bench_scale().validate().is_ok());
    }
}
