//! EXT2: the network-lifetime view — hottest-node energy per packet vs
//! transmission radius, built on the engine's per-node energy accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_bench::{bench_scale, show};
use spms_workloads::figures;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    show(&figures::ext2(&scale, 42));
    show(&figures::ext3(&scale, 42));
    c.bench_function("ext2_lifetime", |b| {
        b.iter(|| std::hint::black_box(figures::ext2(&scale, 42)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
