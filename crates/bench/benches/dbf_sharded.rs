//! Zone-sharded, epoch-batched delta re-convergence at growing scale:
//! n = 225 / 625 / 1024 / 4096 / 10000 (the paper's 13×13 field is only
//! 169 nodes; the top sizes are the ROADMAP's 10k-node scale target).
//!
//! The scenario is the post-PR-3 hot path ROADMAP names: zone maintenance
//! is down to ~105 µs per epoch, so the delta-DBF exchange itself is the
//! dominant mobility cost. One epoch relocates eight nodes spread across
//! the field — enough disjoint dirty zones for the shard planner to have
//! real work everywhere — and the engines re-converge it:
//!
//! * `dbf_delta_seq_n` — the sequential delta path (the mid-level oracle),
//! * `dbf_delta_sharded_n` — the zone-shard planner at the host's
//!   available parallelism (bit-identical tables and stats, proptested;
//!   only wall-clock may differ),
//! * `dbf_batch4_per_epoch_625` / `dbf_batch4_window_625` — four epochs
//!   re-converged one by one versus coalesced into a single batched
//!   window (`SimConfig::batch_epochs`-style), sequential engine,
//! * `dbf_full_seq_n` / `dbf_full_sharded_n` — the from-scratch rebuild
//!   (the root oracle every incremental path is tested against), as the
//!   sequential `reset` + `run_to_convergence_masked` versus
//!   `DbfEngine::rebuild_sharded` at the host's available parallelism
//!   (sender-sharded snapshots + receiver-sharded relaxation, bit-identical
//!   tables and stats).
//!
//! CI's hardware-independent ratio gates pin sharded ≤ 0.7× sequential at
//! n = 625 for both the delta exchange and the full rebuild, and sharded
//! strictly below sequential at n = 1024 (see `xtask bench-gate`) —
//! ≥ ~1.4× from a 2-core runner; wider machines only widen the margin.
//! `xtask speedup-curve` turns the per-size seq/sharded pairs into the
//! speedup-curve JSON CI uploads as an artifact. On a single-core host
//! the engine resolves to one shard and dispatches to the very same
//! sequential loops, so the ratios are only meaningful where parallelism
//! exists (the CI step reports those gates as explicitly skipped when
//! `nproc` is 1).

use criterion::{criterion_group, criterion_main, Criterion};
use spms_net::{placement, NodeId, Point, Topology, ZoneTable};
use spms_phy::RadioProfile;
use spms_routing::DbfEngine;

const RADIUS_M: f64 = 20.0;
const SPACING_M: f64 = 5.0;

/// Eight movers spread across the field: quarter-grid anchor points, so
/// their zones are pairwise disjoint at every benched size.
fn movers(side: usize) -> Vec<NodeId> {
    let q = side / 4;
    let h = side / 2;
    [
        (q, q),
        (q, h),
        (q, 3 * q),
        (h, q),
        (h, 3 * q),
        (3 * q, q),
        (3 * q, h),
        (3 * q, 3 * q),
    ]
    .iter()
    .map(|&(c, r)| NodeId::new((r * side + c) as u32))
    .collect()
}

/// The epoch: every mover hops ~1.5 cells diagonally (old and new zones
/// overlap — the common mobility case), yielding the before/after zone
/// tables the ping-ponged `update_topology` calls swap between.
fn before_after(side: usize) -> (Vec<NodeId>, ZoneTable, ZoneTable) {
    let mut topo: Topology = placement::grid(side, side, SPACING_M).unwrap();
    let radio = RadioProfile::mica2();
    let moved = movers(side);
    let before = ZoneTable::build(&topo, &radio, RADIUS_M);
    for &m in &moved {
        let p = topo.position(m);
        topo.move_node(m, Point::new(p.x + 7.5, p.y + 12.5));
    }
    let after = ZoneTable::build(&topo, &radio, RADIUS_M);
    (moved, before, after)
}

fn shard_count() -> usize {
    spms_kernel::host_parallelism()
}

fn bench_delta_paths(c: &mut Criterion) {
    for side in [15usize, 25, 32, 64, 100] {
        let n = side * side;
        let (moved, before, after) = before_after(side);
        let alive = vec![true; n];

        let mut seq = DbfEngine::new(&before, 2);
        seq.run_to_convergence(&before);
        let mut forward = true;
        c.bench_function(&format!("routing/dbf_delta_seq_{n}"), |b| {
            b.iter(|| {
                let (old, new) = if forward {
                    (&before, &after)
                } else {
                    (&after, &before)
                };
                forward = !forward;
                std::hint::black_box(seq.update_topology(old, new, &moved, &alive))
            })
        });

        let mut sharded = DbfEngine::new(&before, 2).with_shards(shard_count());
        sharded.run_to_convergence(&before);
        let mut forward = true;
        c.bench_function(&format!("routing/dbf_delta_sharded_{n}"), |b| {
            b.iter(|| {
                let (old, new) = if forward {
                    (&before, &after)
                } else {
                    (&after, &before)
                };
                forward = !forward;
                std::hint::black_box(sharded.update_topology(old, new, &moved, &alive))
            })
        });
    }
}

fn bench_batched_window(c: &mut Criterion) {
    // Four single-mover epochs at n = 625: re-converged one by one versus
    // coalesced into one batched window. The zone tables are prebuilt
    // cumulatively (Z0 = all home … Z4 = all moved), so each iteration
    // measures pure re-convergence, not zone maintenance.
    let side = 25usize;
    let n = side * side;
    let mut topo: Topology = placement::grid(side, side, SPACING_M).unwrap();
    let radio = RadioProfile::mica2();
    let moved = &movers(side)[..4];
    let mut tables = vec![ZoneTable::build(&topo, &radio, RADIUS_M)];
    for &m in moved {
        let p = topo.position(m);
        topo.move_node(m, Point::new(p.x + 7.5, p.y + 12.5));
        tables.push(ZoneTable::build(&topo, &radio, RADIUS_M));
    }
    let alive = vec![true; n];

    let mut per_epoch = DbfEngine::new(&tables[0], 2);
    per_epoch.run_to_convergence(&tables[0]);
    let mut forward = true;
    c.bench_function(&format!("routing/dbf_batch4_per_epoch_{n}"), |b| {
        b.iter(|| {
            if forward {
                for (i, &m) in moved.iter().enumerate() {
                    per_epoch.update_topology(&tables[i], &tables[i + 1], &[m], &alive);
                }
            } else {
                for (i, &m) in moved.iter().enumerate().rev() {
                    per_epoch.update_topology(&tables[i + 1], &tables[i], &[m], &alive);
                }
            }
            forward = !forward;
        })
    });

    let mut batched = DbfEngine::new(&tables[0], 2);
    batched.run_to_convergence(&tables[0]);
    let mut forward = true;
    let last = tables.len() - 1;
    c.bench_function(&format!("routing/dbf_batch4_window_{n}"), |b| {
        b.iter(|| {
            let (old, new) = if forward {
                (&tables[0], &tables[last])
            } else {
                (&tables[last], &tables[0])
            };
            forward = !forward;
            std::hint::black_box(batched.update_topology(old, new, moved, &alive))
        })
    });
}

fn bench_full_rebuild(c: &mut Criterion) {
    // The from-scratch rebuild at the gated sizes. Engines persist across
    // iterations (warm arenas), exactly like the `dbf_convergence` bench:
    // the representative cost is reset + re-convergence, not allocation.
    for side in [15usize, 25] {
        let n = side * side;
        let topo: Topology = placement::grid(side, side, SPACING_M).unwrap();
        let radio = RadioProfile::mica2();
        let zones = ZoneTable::build(&topo, &radio, RADIUS_M);
        let alive = vec![true; n];

        let mut seq = DbfEngine::new(&zones, 2);
        c.bench_function(&format!("routing/dbf_full_seq_{n}"), |b| {
            b.iter(|| {
                seq.reset(&zones, &alive);
                std::hint::black_box(seq.run_to_convergence_masked(&zones, &alive))
            })
        });

        let mut sharded = DbfEngine::new(&zones, 2).with_shards(shard_count());
        c.bench_function(&format!("routing/dbf_full_sharded_{n}"), |b| {
            b.iter(|| std::hint::black_box(sharded.rebuild_sharded(&zones, &alive)))
        });
    }
}

criterion_group!(
    benches,
    bench_delta_paths,
    bench_batched_window,
    bench_full_rebuild
);
criterion_main!(benches);
