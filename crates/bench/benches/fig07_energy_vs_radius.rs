//! Figure 7: simulated energy per packet vs transmission radius.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_bench::{bench_scale, show};
use spms_workloads::figures;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let (f7, _) = figures::fig7_fig9(&scale, 42);
    show(&f7);
    c.bench_function("fig07_energy_vs_radius", |b| {
        b.iter(|| std::hint::black_box(figures::fig7_fig9(&scale, 42)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
