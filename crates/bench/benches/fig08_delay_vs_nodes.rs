//! Figure 8: simulated end-to-end delay vs node count.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_bench::{bench_scale, show};
use spms_workloads::figures;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let (_, f8) = figures::fig6_fig8(&scale, 42);
    show(&f8);
    c.bench_function("fig08_delay_vs_nodes", |b| {
        b.iter(|| std::hint::black_box(figures::fig6_fig8(&scale, 42)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
