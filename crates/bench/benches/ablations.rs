//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation runs the same workload under configuration variants and
//! prints the outcome deltas (delivery, energy, delay) before timing one
//! representative configuration. The printed tables are the scientific
//! payload; the timings confirm none of the variants is pathologically
//! slow.

use criterion::{criterion_group, criterion_main, Criterion};
use spms::{ProtocolKind, SimConfig, Simulation, TimeoutPolicy};
use spms_kernel::SimTime;
use spms_mac::ContentionModel;
use spms_net::{placement, FailureConfig};
use spms_workloads::traffic;

fn workload(seed: u64) -> (spms_net::Topology, spms::TrafficPlan) {
    let topo = placement::grid(5, 5, 5.0).unwrap();
    let plan = traffic::all_to_all(25, 2, SimTime::from_millis(300), seed).unwrap();
    (topo, plan)
}

fn run(config: SimConfig) -> spms::RunMetrics {
    let (topo, plan) = workload(config.seed);
    Simulation::run_with(config, topo, plan).unwrap()
}

fn print_row(label: &str, m: &spms::RunMetrics) {
    println!(
        "  {label:<28} delivery {:>6.1}%  dup {:>5}  energy {:>8.2} µJ/pkt  delay {:>8.2} ms",
        100.0 * m.delivery_ratio(),
        m.duplicates,
        m.energy_per_packet_uj(),
        m.avg_delay_ms()
    );
}

/// k-route / SCONE depth under heavy transient failures (§3.2: "n entries
/// tolerate n concurrent failures").
fn ablation_kroutes() {
    println!("\n== ablation: k routes × SCONE depth under heavy failures ==");
    for (k, scones) in [(1usize, 0usize), (2, 1), (3, 2)] {
        let mut c = SimConfig::paper_defaults(ProtocolKind::Spms, 7);
        c.k_routes = k;
        c.scones_kept = scones;
        c.failures = Some(FailureConfig {
            mean_interarrival: SimTime::from_millis(15),
            ..FailureConfig::paper_defaults()
        });
        let m = run(c);
        print_row(&format!("k={k}, scones={scones}"), &m);
    }
}

/// Relay caching and serve-from-cache (§6 future work).
fn ablation_relay_cache() {
    println!("\n== ablation: relay caching (paper §6 future work) ==");
    for (caching, serve) in [(false, false), (true, false), (true, true)] {
        let mut c = SimConfig::paper_defaults(ProtocolKind::Spms, 8);
        c.relay_caching = caching;
        c.serve_from_cache = serve;
        c.failures = Some(FailureConfig::paper_defaults());
        let m = run(c);
        print_row(&format!("cache={caching}, serve={serve}"), &m);
    }
}

/// MAC contention models: the §4 analytical quadratic law vs the Table 1
/// slotted backoff.
fn ablation_mac() {
    println!("\n== ablation: MAC contention model (SPMS vs SPIN delay) ==");
    for model in [
        ContentionModel::Quadratic,
        ContentionModel::QuadraticWithBackoff,
        ContentionModel::BackoffOnly,
    ] {
        for protocol in [ProtocolKind::Spms, ProtocolKind::Spin] {
            let mut c = SimConfig::paper_defaults(protocol, 9);
            c.contention = model;
            let m = run(c);
            print_row(&format!("{} / {}", model.label(), m.protocol), &m);
        }
    }
}

/// τADV sensitivity: the "wait for a closer advertiser" heuristic.
fn ablation_adv_wait() {
    println!("\n== ablation: τADV factor (SPMS waiting heuristic) ==");
    for factor in [0.25, 1.25, 4.0] {
        let mut c = SimConfig::paper_defaults(ProtocolKind::Spms, 10);
        c.timeout_policy = TimeoutPolicy::Adaptive {
            adv_factor: factor,
            dat_factor: 2.0,
        };
        let m = run(c);
        print_row(&format!("adv_factor={factor}"), &m);
    }
}

/// SPIN baseline variants: pure SPIN-PP, suppressed/retry, and SPIN-BC
/// (broadcast DATA).
fn ablation_spin_variants() {
    println!("\n== ablation: SPIN baseline variant ==");
    for (suppression, broadcast, label) in [
        (false, false, "pure SPIN-PP"),
        (true, false, "suppressed + retry"),
        (true, true, "SPIN-BC (broadcast DATA)"),
    ] {
        let mut c = SimConfig::paper_defaults(ProtocolKind::Spin, 11);
        c.spin_req_suppression = suppression;
        c.spin_broadcast_data = broadcast;
        let m = run(c);
        print_row(label, &m);
    }
}

/// Idle-listening accounting: real motes pay receive-level power whenever
/// the radio is on, compressing protocol-level energy ratios toward the
/// paper's published 26–43% band.
fn ablation_idle_listening() {
    println!("\n== ablation: idle-listening accounting (SPMS vs SPIN ratio) ==");
    for idle in [None, Some(0.0125), Some(0.05)] {
        let mut ratio_at = Vec::new();
        for protocol in [ProtocolKind::Spin, ProtocolKind::Spms] {
            let mut c = SimConfig::paper_defaults(protocol, 13);
            c.idle_listening_mw = idle;
            ratio_at.push(run(c).energy_per_packet_uj());
        }
        let savings = 100.0 * (1.0 - ratio_at[1] / ratio_at[0]);
        println!(
            "  idle={:<12} SPIN {:>8.2} µJ/pkt, SPMS {:>8.2} µJ/pkt, savings {savings:>5.1}%",
            idle.map_or("off".to_string(), |p| format!("{p} mW")),
            ratio_at[0],
            ratio_at[1]
        );
    }
}

fn bench(c: &mut Criterion) {
    ablation_kroutes();
    ablation_relay_cache();
    ablation_mac();
    ablation_adv_wait();
    ablation_spin_variants();
    ablation_idle_listening();

    c.bench_function("ablation_reference_run", |b| {
        b.iter(|| {
            let config = SimConfig::paper_defaults(ProtocolKind::Spms, 12);
            std::hint::black_box(run(config))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
