//! Figure 10: delay vs node count with transient failures (F-SPMS/F-SPIN
//! against their failure-free baselines).

use criterion::{criterion_group, criterion_main, Criterion};
use spms_bench::{bench_scale, show};
use spms_workloads::figures;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    show(&figures::fig10(&scale, 42));
    c.bench_function("fig10_failures_vs_nodes", |b| {
        b.iter(|| std::hint::black_box(figures::fig10(&scale, 42)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
