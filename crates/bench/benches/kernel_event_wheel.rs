//! Heap-vs-wheel event-kernel microbenchmarks.
//!
//! Three regimes, each run on both kernels so `xtask bench-gate` can hold
//! the wheel to a speedup ratio (CI gates `wheel/heap ≤ 0.8` on the
//! clustered 10k workload):
//!
//! * **clustered** — 10k events over 64 distinct timestamps, the
//!   dissemination engine's tie-heavy steady state. Heap pays an
//!   `O(log n)` sift per operation; the wheel appends to a slot bucket and
//!   drains it with one sort per slot.
//! * **uniform** — 10k events spread over ~16.8 s with nanosecond
//!   granularity (the original `kernel/event_queue_push_pop_10k`
//!   distribution), worst-case for bucket locality.
//! * **many-timer** — an interleaved hold-and-fire pattern: a standing
//!   population of 4k pending timers while events push and pop in waves,
//!   the profile of many concurrent protocol timeouts.
//!
//! The batched variant measures `drain_next` on the clustered workload —
//! what the engine's `EventKernel::WheelBatched` loop actually executes.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_kernel::{EventQueue, SimRng, SimTime, TimerWheel};

const N: u64 = 10_000;

/// 64 distinct millisecond-spaced instants: ~156 events per timestamp.
fn clustered_time(rng: &mut SimRng) -> SimTime {
    SimTime::from_nanos((rng.next_u64() % 64) * 1_000_000)
}

/// Nanosecond-granularity spread over ~16.8 s (next_u64 >> 40 ≈ 2^24 ns).
fn uniform_time(rng: &mut SimRng) -> SimTime {
    SimTime::from_nanos(rng.next_u64() >> 40)
}

fn bench_push_pop(c: &mut Criterion, name: &str, time_of: fn(&mut SimRng) -> SimTime) {
    c.bench_function(&format!("kernel/event_heap_push_pop_10k_{name}"), |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(N as usize);
            let mut rng = SimRng::new(1);
            for i in 0..N {
                q.schedule(time_of(&mut rng), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            std::hint::black_box(acc)
        })
    });
    c.bench_function(&format!("kernel/event_wheel_push_pop_10k_{name}"), |b| {
        b.iter(|| {
            let mut w = TimerWheel::with_capacity(N as usize);
            let mut rng = SimRng::new(1);
            for i in 0..N {
                w.schedule(time_of(&mut rng), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = w.pop() {
                acc = acc.wrapping_add(v);
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_clustered(c: &mut Criterion) {
    bench_push_pop(c, "clustered", clustered_time);
}

fn bench_uniform(c: &mut Criterion) {
    bench_push_pop(c, "uniform", uniform_time);
}

fn bench_many_timer(c: &mut Criterion) {
    // Standing population: 4k long-horizon timers stay pending while 10k
    // near-term events wash through in push/pop waves.
    let run_heap = || {
        let mut q = EventQueue::with_capacity(16_000);
        let mut rng = SimRng::new(3);
        for i in 0..4_000u64 {
            q.schedule(
                SimTime::from_nanos((1 << 40) | (rng.next_u64() % (1 << 30))),
                i,
            );
        }
        let mut acc = 0u64;
        for wave in 0..10u64 {
            for i in 0..1_000u64 {
                let t = wave * 1_000_000 + rng.next_u64() % 1_000_000;
                q.schedule(SimTime::from_nanos(t), i);
            }
            for _ in 0..1_000 {
                let (_, v) = q.pop().expect("waves outnumber pops");
                acc = acc.wrapping_add(v);
            }
        }
        acc
    };
    let run_wheel = || {
        let mut w = TimerWheel::with_capacity(16_000);
        let mut rng = SimRng::new(3);
        for i in 0..4_000u64 {
            w.schedule(
                SimTime::from_nanos((1 << 40) | (rng.next_u64() % (1 << 30))),
                i,
            );
        }
        let mut acc = 0u64;
        for wave in 0..10u64 {
            for i in 0..1_000u64 {
                let t = wave * 1_000_000 + rng.next_u64() % 1_000_000;
                w.schedule(SimTime::from_nanos(t), i);
            }
            for _ in 0..1_000 {
                let (_, v) = w.pop().expect("waves outnumber pops");
                acc = acc.wrapping_add(v);
            }
        }
        acc
    };
    c.bench_function("kernel/event_heap_many_timer_waves", |b| {
        b.iter(|| std::hint::black_box(run_heap()))
    });
    c.bench_function("kernel/event_wheel_many_timer_waves", |b| {
        b.iter(|| std::hint::black_box(run_wheel()))
    });
}

fn bench_batched_drain(c: &mut Criterion) {
    c.bench_function("kernel/event_wheel_drain_next_10k_clustered", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            let mut w = TimerWheel::with_capacity(N as usize);
            let mut rng = SimRng::new(1);
            for i in 0..N {
                w.schedule(clustered_time(&mut rng), i);
            }
            let mut acc = 0u64;
            while w.drain_next(&mut buf).is_some() {
                for v in &buf {
                    acc = acc.wrapping_add(*v);
                }
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_clustered,
    bench_uniform,
    bench_many_timer,
    bench_batched_drain
);
criterion_main!(benches);
