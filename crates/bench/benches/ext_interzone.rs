//! EXT1: the §6 inter-zone dissemination extension — delivery and energy
//! on pipeline fields where base SPMS cannot deliver at all, plus TTL and
//! path-diversity ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use spms::{ProtocolKind, SimConfig, Simulation};
use spms_bench::{bench_scale, show};
use spms_kernel::SimTime;
use spms_net::{placement, FailureConfig, NodeId};
use spms_workloads::{figures, traffic};

fn pipeline_run(
    ttl: Option<u32>,
    paths_kept: usize,
    failures: bool,
    seed: u64,
) -> spms::RunMetrics {
    let topo = placement::grid(25, 1, 5.0).unwrap();
    let mut c = SimConfig::paper_defaults(ProtocolKind::SpmsIz, seed);
    c.interzone.ttl = ttl;
    c.interzone.paths_kept = paths_kept;
    c.horizon = SimTime::from_secs(120);
    if failures {
        c.failures = Some(FailureConfig {
            mean_interarrival: SimTime::from_millis(50),
            repair_min: SimTime::from_millis(5),
            repair_max: SimTime::from_millis(15),
        });
        c.max_attempts = 8;
    }
    let plan = traffic::pipeline(
        NodeId::new(0),
        &[NodeId::new(24)],
        2,
        SimTime::from_millis(500),
    )
    .unwrap();
    Simulation::run_with(c, topo, plan).unwrap()
}

/// Bordercast TTL sensitivity: too small strands the sink, auto covers it.
fn ablation_ttl() {
    println!("\n== ablation: bordercast TTL on the 120 m pipeline ==");
    for (label, ttl) in [
        ("ttl=1", Some(1)),
        ("ttl=3", Some(3)),
        ("ttl=5", Some(5)),
        ("auto (eccentricity)", None),
    ] {
        let m = pipeline_run(ttl, 2, false, 11);
        println!(
            "  {label:<22} delivery {:>5.1}%  ADVs {:>4}  energy {:>8.3} µJ",
            100.0 * m.delivery_ratio(),
            m.messages.adv.value(),
            m.energy.total().value(),
        );
    }
}

/// Path diversity under transient failures: more remembered border paths
/// give the τDAT rotation more alternatives.
fn ablation_paths() {
    println!("\n== ablation: inter-zone path diversity under failures ==");
    for paths in [1usize, 2, 4] {
        let mut delivered = 0u64;
        let mut expected = 0u64;
        for seed in 0..8u64 {
            let m = pipeline_run(None, paths, true, 100 + seed);
            delivered += m.deliveries;
            expected += m.deliveries_expected;
        }
        println!("  paths_kept={paths}   delivered {delivered}/{expected} across 8 seeds");
    }
}

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let (a, b) = figures::ext1(&scale, 42);
    show(&a);
    show(&b);
    ablation_ttl();
    ablation_paths();
    c.bench_function("ext1_interzone_pipeline", |bch| {
        bch.iter(|| std::hint::black_box(pipeline_run(None, 2, false, 42)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
