//! Figure 3: analytical SPIN/SPMS delay ratio vs transmission radius.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_bench::{bench_scale, show};
use spms_workloads::figures;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    show(&figures::fig3(&scale));
    c.bench_function("fig03_delay_ratio", |b| {
        b.iter(|| std::hint::black_box(figures::fig3(&scale)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
