//! Zone-table maintenance at growing scale: the all-pairs reference build,
//! the spatial-grid indexed build, and the incremental single-move patch.
//!
//! ROADMAP names the per-epoch zone rebuild the largest remaining fixed
//! cost of a mobility epoch. The three measurements here demonstrate the
//! asymptotic separation the spatial grid buys at n = 225 / 625 / 1024
//! (the paper's 13×13 field is only 169 nodes):
//!
//! * `zone_build_full_n` — O(n²) all-pairs oracle (`ZoneTable::build`),
//! * `zone_build_indexed_n` — O(n·k) grid build
//!   (`ZoneTable::build_indexed`),
//! * `zone_patch_single_move_n` — O(k²) row patch
//!   (`ZoneTable::apply_moves`) for one moved node, ping-ponged between
//!   two positions two cells apart so every iteration measures exactly one
//!   steady-state patch.
//!
//! CI's hardware-independent ratio gate pins patch ≤ 0.35× indexed build
//! at n = 625 (see `xtask bench-gate`); in practice the patch is far
//! below that and the margin widens with n.
//!
//! Grids come from [`SpatialGrid::for_radius`]: on the n = 225 field the
//! adaptive sizing collapses to the sort-free single-cell scan (closing
//! the old small-n gap to the all-pairs build), while 625 and 1024 keep
//! the pruning zone-radius cells.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_net::{placement, NodeId, Point, SpatialGrid, Topology, ZoneTable};
use spms_phy::RadioProfile;

const RADIUS_M: f64 = 20.0;

fn field(side: usize) -> Topology {
    placement::grid(side, side, 5.0).unwrap()
}

fn bench_builds(c: &mut Criterion) {
    let radio = RadioProfile::mica2();
    for side in [15usize, 25, 32] {
        let n = side * side;
        let topo = field(side);
        c.bench_function(&format!("net/zone_build_full_{n}"), |b| {
            b.iter(|| std::hint::black_box(ZoneTable::build(&topo, &radio, RADIUS_M)))
        });
        let grid = SpatialGrid::for_radius(&topo, RADIUS_M);
        c.bench_function(&format!("net/zone_build_indexed_{n}"), |b| {
            b.iter(|| {
                std::hint::black_box(ZoneTable::build_indexed(&topo, &radio, &grid, RADIUS_M))
            })
        });
    }
}

fn bench_single_move_patch(c: &mut Criterion) {
    let radio = RadioProfile::mica2();
    for side in [25usize, 32] {
        let n = side * side;
        let mut topo = field(side);
        let mut grid = SpatialGrid::for_radius(&topo, RADIUS_M);
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, RADIUS_M);
        // The center node (worst case — densest zone) hops between its
        // home position and a spot two cells away, so old and new zones
        // overlap: the common mobility case.
        let moved = NodeId::new((side / 2 * side + side / 2) as u32);
        let home = topo.position(moved);
        let away = Point::new(home.x + 37.5, home.y + 42.5);
        let mut forward = true;
        c.bench_function(&format!("net/zone_patch_single_move_{n}"), |b| {
            b.iter(|| {
                let dest = if forward { away } else { home };
                forward = !forward;
                topo.move_node(moved, dest);
                grid.move_node(moved, topo.position(moved));
                std::hint::black_box(zones.apply_moves(&topo, &radio, &grid, &[moved]))
            })
        });
    }
}

criterion_group!(benches, bench_builds, bench_single_move_patch);
criterion_main!(benches);
