//! Steady-state zone re-convergence under mobility at the paper's reference
//! scale (n = 169, 20 m zones): incremental delta-DBF versus the
//! full-rebuild reference path.
//!
//! The scenario is the routing hot path ROADMAP names: one node moves, the
//! zone table is rebuilt, and routing must re-converge before data flows.
//! The incremental bench ping-pongs the node between two positions so every
//! iteration measures exactly one single-node-move re-convergence on a
//! warm, already-converged engine — the steady state a mobility-heavy
//! workload lives in. The acceptance target for this pair is incremental
//! ≥ 3× faster than `reconverge_full_single_move_169`.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_net::{placement, NodeId, Point, Topology, ZoneTable};
use spms_phy::RadioProfile;
use spms_routing::DbfEngine;

/// The moved node: the center of the 13×13 grid (worst case — its zone is
/// the densest).
const MOVED: NodeId = NodeId::new(84);

fn reference_field() -> (Topology, ZoneTable, ZoneTable) {
    let mut topo = placement::grid(13, 13, 5.0).unwrap();
    let radio = RadioProfile::mica2();
    let before = ZoneTable::build(&topo, &radio, 20.0);
    // A two-cell hop: far enough to change the zone, near enough that the
    // old and new zones overlap — the common mobility case.
    topo.move_node(MOVED, Point::new(37.5, 42.5));
    let after = ZoneTable::build(&topo, &radio, 20.0);
    (topo, before, after)
}

fn bench_full_rebuild(c: &mut Criterion) {
    let (_topo, before, after) = reference_field();
    let alive = vec![true; after.len()];
    let mut dbf = DbfEngine::new(&before, 2);
    dbf.run_to_convergence(&before);
    let mut forward = true;
    c.bench_function("routing/reconverge_full_single_move_169", |b| {
        b.iter(|| {
            let zones = if forward { &after } else { &before };
            forward = !forward;
            dbf.reset(zones, &alive);
            std::hint::black_box(dbf.run_to_convergence_masked(zones, &alive))
        })
    });
}

fn bench_incremental(c: &mut Criterion) {
    let (_topo, before, after) = reference_field();
    let alive = vec![true; after.len()];
    let mut dbf = DbfEngine::new(&before, 2);
    dbf.run_to_convergence(&before);
    let mut forward = true;
    c.bench_function("routing/reconverge_delta_single_move_169", |b| {
        b.iter(|| {
            let (old, new) = if forward {
                (&before, &after)
            } else {
                (&after, &before)
            };
            forward = !forward;
            std::hint::black_box(dbf.update_topology(old, new, &[MOVED], &alive))
        })
    });
}

fn bench_failure_invalidation(c: &mut Criterion) {
    let (_topo, before, _after) = reference_field();
    let mut alive = vec![true; before.len()];
    let mut dbf = DbfEngine::new(&before, 2);
    dbf.run_to_convergence(&before);
    let mut up = false;
    c.bench_function("routing/reconverge_delta_kill_revive_169", |b| {
        b.iter(|| {
            alive[MOVED.index()] = up;
            up = !up;
            std::hint::black_box(dbf.invalidate_zone(&before, &[MOVED], &alive))
        })
    });
}

criterion_group!(
    benches,
    bench_full_rebuild,
    bench_incremental,
    bench_failure_invalidation
);
criterion_main!(benches);
