//! Figure 12: energy vs transmission radius under mobility, with SPMS
//! charged for every distributed Bellman-Ford re-execution.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_bench::{bench_scale, show};
use spms_workloads::figures;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    show(&figures::fig12(&scale, 42));
    c.bench_function("fig12_mobility", |b| {
        b.iter(|| std::hint::black_box(figures::fig12(&scale, 42)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
