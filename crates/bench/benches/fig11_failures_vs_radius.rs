//! Figure 11: delay vs transmission radius with transient failures.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_bench::{bench_scale, show};
use spms_workloads::figures;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    show(&figures::fig11(&scale, 42));
    c.bench_function("fig11_failures_vs_radius", |b| {
        b.iter(|| std::hint::black_box(figures::fig11(&scale, 42)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
