//! Figure 6: simulated energy per packet vs node count (SPMS vs SPIN,
//! static failure-free, radius 20 m).

use criterion::{criterion_group, criterion_main, Criterion};
use spms_bench::{bench_scale, show};
use spms_workloads::figures;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let (f6, _) = figures::fig6_fig8(&scale, 42);
    show(&f6);
    c.bench_function("fig06_energy_vs_nodes", |b| {
        b.iter(|| std::hint::black_box(figures::fig6_fig8(&scale, 42)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
