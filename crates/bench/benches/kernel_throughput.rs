//! Microbenchmarks of the simulation substrates: event queue, PRNG,
//! zone construction, Dijkstra oracle and distributed Bellman-Ford
//! convergence. These bound how large a sensor field the simulator can
//! handle.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_kernel::{EventQueue, SimRng, SimTime};
use spms_net::{dijkstra, placement, NodeId, ZoneTable};
use spms_phy::RadioProfile;
use spms_routing::{DbfEngine, RouteEntry, RoutingTable, TableLayout};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("kernel/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            let mut rng = SimRng::new(1);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos(rng.next_u64() >> 40), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("kernel/rng_exponential_100k", |b| {
        let mut rng = SimRng::new(2);
        let mean = SimTime::from_millis(50);
        b.iter(|| {
            let mut acc = SimTime::ZERO;
            for _ in 0..100_000 {
                acc = acc.saturating_add(rng.exponential(mean));
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_zones(c: &mut Criterion) {
    let topo = placement::grid(15, 15, 5.0).unwrap();
    let radio = RadioProfile::mica2();
    c.bench_function("net/zone_table_225_nodes", |b| {
        b.iter(|| std::hint::black_box(ZoneTable::build(&topo, &radio, 20.0)))
    });
}

fn bench_dijkstra(c: &mut Criterion) {
    let topo = placement::grid(13, 13, 5.0).unwrap();
    let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
    c.bench_function("net/dijkstra_center_169_nodes", |b| {
        b.iter(|| std::hint::black_box(dijkstra(&zones, NodeId::new(84))))
    });
}

fn bench_dbf(c: &mut Criterion) {
    let topo = placement::grid(13, 13, 5.0).unwrap();
    let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
    // The engine persists across rebuilds in the simulation, so the
    // representative cost is reset + re-convergence on a warm arena, not
    // construction from nothing.
    let mut dbf = DbfEngine::new(&zones, 2);
    let alive = vec![true; zones.len()];
    c.bench_function("routing/dbf_convergence_169_nodes", |b| {
        b.iter(|| {
            dbf.reset(&zones, &alive);
            std::hint::black_box(dbf.run_to_convergence_masked(&zones, &alive))
        })
    });
}

/// The offer/lookup churn at a typical zone size (45 destinations, k = 2,
/// repeated replace/improve offers) — the inner loop every DBF round is
/// made of. Shared verbatim by the AoS and SoA benches so their ratio
/// isolates the arena layout.
fn churn(table: &mut RoutingTable) -> usize {
    table.clear();
    for round in 0..8u32 {
        for d in 0..45u32 {
            for via in 0..4u32 {
                table.offer(
                    NodeId::new(d),
                    RouteEntry {
                        via: NodeId::new(100 + via),
                        cost: f64::from((round + via + d) % 7) + 0.5,
                        hops: 1 + (via + round) % 4,
                    },
                );
            }
        }
    }
    table.total_entries()
}

/// The same per-entry churn as [`churn`], delivered the way the DBF inner
/// loops actually deliver it: one ascending-destination vector per
/// (round, via), offered through an ascending cursor (`offer_ascending`),
/// so each destination lookup searches only past the previous hit instead
/// of the whole arena.
fn churn_ascending(table: &mut RoutingTable) -> usize {
    table.clear();
    for round in 0..8u32 {
        for via in 0..4u32 {
            let mut cursor = 0usize;
            for d in 0..45u32 {
                table.offer_ascending(
                    NodeId::new(d),
                    RouteEntry {
                        via: NodeId::new(100 + via),
                        cost: f64::from((round + via + d) % 7) + 0.5,
                        hops: 1 + (via + round) % 4,
                    },
                    &mut cursor,
                );
            }
        }
    }
    table.total_entries()
}

fn bench_table_churn(c: &mut Criterion) {
    // Pinned to the AoS oracle layout: this id is the denominator of the
    // CI ratio gate `table_offer_soa_churn / table_offer_churn ≤ 0.6`, so
    // it must keep measuring the original array-of-structs kernel.
    c.bench_function("routing/table_offer_churn_45_dests", |b| {
        let mut table = RoutingTable::with_layout(2, TableLayout::Aos);
        b.iter(|| std::hint::black_box(churn(&mut table)))
    });
    c.bench_function("routing/table_offer_soa_churn_45_dests", |b| {
        let mut table = RoutingTable::with_layout(2, TableLayout::Soa);
        b.iter(|| std::hint::black_box(churn(&mut table)))
    });
}

fn bench_table_vector_replay(c: &mut Criterion) {
    c.bench_function("routing/table_offer_ascending_45_dests", |b| {
        let mut table = RoutingTable::with_layout(2, TableLayout::Aos);
        b.iter(|| std::hint::black_box(churn_ascending(&mut table)))
    });
    c.bench_function("routing/table_offer_soa_ascending_45_dests", |b| {
        let mut table = RoutingTable::with_layout(2, TableLayout::Soa);
        b.iter(|| std::hint::black_box(churn_ascending(&mut table)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rng,
    bench_zones,
    bench_dijkstra,
    bench_dbf,
    bench_table_churn,
    bench_table_vector_replay
);
criterion_main!(benches);
