//! Continuous path-loss model used by the Section 4 analysis.

/// The `d^α` path-loss law.
///
/// Section 3.2 of the paper: "energy spent in wireless communication is
/// proportional to `d^α`, where `d` is the distance between the source and
/// the destination and `α` is a constant between 2 and 4". Section 4.2 uses
/// `α = 3.5` ("the 2-ray ground propagation model α is close to 3.5 beyond
/// 7 meters").
///
/// The simulator proper uses the discrete MICA2 level table; this model backs
/// the closed-form analysis (Figure 5) and the test oracle that checks the
/// discrete table is consistent with a power law.
///
/// # Example
///
/// ```
/// use spms_phy::PathLoss;
///
/// let pl = PathLoss::two_ray();
/// // Halving the hop distance with 2 hops costs less than one long hop:
/// let one_hop = pl.relative_energy(10.0);
/// let two_hops = 2.0 * pl.relative_energy(5.0);
/// assert!(two_hops < one_hop);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathLoss {
    alpha: f64,
}

impl PathLoss {
    /// Creates a model with the given exponent.
    ///
    /// # Errors
    ///
    /// Returns a message unless `1.0 <= alpha <= 6.0` (the physically
    /// plausible band; the paper uses values in `[2, 4]`).
    pub fn new(alpha: f64) -> Result<Self, String> {
        if !alpha.is_finite() || !(1.0..=6.0).contains(&alpha) {
            return Err(format!("path-loss exponent {alpha} outside [1, 6]"));
        }
        Ok(PathLoss { alpha })
    }

    /// The paper's 2-ray ground model beyond 7 m: `α = 3.5`.
    #[must_use]
    pub fn two_ray() -> Self {
        PathLoss { alpha: 3.5 }
    }

    /// Free-space propagation: `α = 2`.
    #[must_use]
    pub fn free_space() -> Self {
        PathLoss { alpha: 2.0 }
    }

    /// The exponent α.
    #[must_use]
    pub fn alpha(self) -> f64 {
        self.alpha
    }

    /// Relative transmit energy to cover `distance_m` (unit energy at 1 m).
    ///
    /// Only ratios of this quantity are meaningful.
    #[must_use]
    pub fn relative_energy(self, distance_m: f64) -> f64 {
        debug_assert!(distance_m >= 0.0);
        distance_m.max(0.0).powf(self.alpha)
    }

    /// The ratio of one direct transmission over `total_m` to `hops` equal
    /// multi-hop transmissions covering the same distance.
    ///
    /// This is the quantity that motivates SPMS: for `α > 1` the ratio
    /// exceeds 1 and grows as `hops^(α-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `hops == 0`.
    #[must_use]
    pub fn direct_over_multihop(self, total_m: f64, hops: u32) -> f64 {
        assert!(hops > 0, "at least one hop required");
        let direct = self.relative_energy(total_m);
        let per_hop = self.relative_energy(total_m / f64::from(hops));
        direct / (f64::from(hops) * per_hop)
    }
}

impl Default for PathLoss {
    fn default() -> Self {
        PathLoss::two_ray()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_validation() {
        assert!(PathLoss::new(3.5).is_ok());
        assert!(PathLoss::new(0.5).is_err());
        assert!(PathLoss::new(f64::NAN).is_err());
        assert!(PathLoss::new(7.0).is_err());
    }

    #[test]
    fn two_ray_matches_paper() {
        assert_eq!(PathLoss::two_ray().alpha(), 3.5);
        assert_eq!(PathLoss::free_space().alpha(), 2.0);
        assert_eq!(PathLoss::default(), PathLoss::two_ray());
    }

    #[test]
    fn energy_grows_with_distance() {
        let pl = PathLoss::two_ray();
        assert!(pl.relative_energy(10.0) > pl.relative_energy(5.0));
        assert_eq!(pl.relative_energy(0.0), 0.0);
        assert_eq!(pl.relative_energy(1.0), 1.0);
    }

    #[test]
    fn multihop_gain_is_hops_to_alpha_minus_one() {
        let pl = PathLoss::two_ray();
        // k equal hops: direct / multihop = k^(α-1).
        for k in [2u32, 4, 8] {
            let got = pl.direct_over_multihop(40.0, k);
            let want = f64::from(k).powf(2.5);
            assert!(
                (got - want).abs() / want < 1e-12,
                "k={k}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn single_hop_ratio_is_one() {
        let pl = PathLoss::free_space();
        assert!((pl.direct_over_multihop(25.0, 1) - 1.0).abs() < 1e-12);
    }
}
