//! Energy accounting.
//!
//! The engine charges every transmission and reception to a per-node
//! [`EnergyMeter`], categorized so experiments can attribute costs the way
//! the paper discusses them (ADV vs DATA vs routing-table formation — the
//! latter is what erodes SPMS's advantage under mobility in Figure 12).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use spms_kernel::SimTime;

/// An amount of energy in microjoules.
///
/// `1 mW · 1 ms = 1 µJ`, which makes the paper's Table 1 units compose
/// directly: transmitting `b` bytes at a level with power `P` mW for
/// `b × Ttx` ms consumes `P · b · Ttx` µJ.
///
/// # Example
///
/// ```
/// use spms_phy::MicroJoules;
/// use spms_kernel::SimTime;
///
/// // 0.1995 mW for 2 bytes × 0.05 ms/byte = 0.01995 µJ.
/// let e = MicroJoules::from_power_duration(0.1995, SimTime::from_micros(100));
/// assert!((e.value() - 0.01995).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct MicroJoules(f64);

impl MicroJoules {
    /// Zero energy.
    pub const ZERO: MicroJoules = MicroJoules(0.0);

    /// Creates an amount from a raw µJ value.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `uj` is negative or non-finite.
    #[must_use]
    pub fn new(uj: f64) -> Self {
        debug_assert!(uj.is_finite() && uj >= 0.0, "bad energy {uj}");
        MicroJoules(uj.max(0.0))
    }

    /// Energy drawn by a `power_mw` milliwatt load over `duration`.
    #[must_use]
    pub fn from_power_duration(power_mw: f64, duration: SimTime) -> Self {
        MicroJoules::new(power_mw * duration.as_millis_f64())
    }

    /// The raw µJ value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to milliwatt-hours — unused by experiments but handy for
    /// relating results to mote battery capacities.
    #[must_use]
    pub fn as_mwh(self) -> f64 {
        self.0 / 3.6e6
    }
}

impl Add for MicroJoules {
    type Output = MicroJoules;

    fn add(self, rhs: MicroJoules) -> MicroJoules {
        MicroJoules(self.0 + rhs.0)
    }
}

impl AddAssign for MicroJoules {
    fn add_assign(&mut self, rhs: MicroJoules) {
        self.0 += rhs.0;
    }
}

impl Sub for MicroJoules {
    type Output = MicroJoules;

    /// Saturates at zero (energy totals never go negative).
    fn sub(self, rhs: MicroJoules) -> MicroJoules {
        MicroJoules((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for MicroJoules {
    fn sum<I: Iterator<Item = MicroJoules>>(iter: I) -> MicroJoules {
        iter.fold(MicroJoules::ZERO, Add::add)
    }
}

impl fmt::Display for MicroJoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}µJ", self.0)
    }
}

/// What an energy expenditure was for.
///
/// Categories mirror the protocol phases of the paper: metadata
/// advertisement, request, data transfer, routing-table formation (DBF), and
/// reception.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnergyCategory {
    /// Transmitting ADV packets.
    Adv,
    /// Transmitting REQ packets.
    Req,
    /// Transmitting DATA packets.
    Data,
    /// Transmitting routing-protocol (distributed Bellman-Ford) packets.
    Routing,
    /// Receiving any packet.
    Receive,
    /// Idle listening (optional accounting; real motes draw receive-level
    /// current whenever the radio is on, which compresses protocol-level
    /// energy ratios — see the idle-listening ablation).
    Idle,
}

impl EnergyCategory {
    /// All categories in display order.
    pub const ALL: [EnergyCategory; 6] = [
        EnergyCategory::Adv,
        EnergyCategory::Req,
        EnergyCategory::Data,
        EnergyCategory::Routing,
        EnergyCategory::Receive,
        EnergyCategory::Idle,
    ];

    /// Short label for report columns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::Adv => "adv",
            EnergyCategory::Req => "req",
            EnergyCategory::Data => "data",
            EnergyCategory::Routing => "routing",
            EnergyCategory::Receive => "rx",
            EnergyCategory::Idle => "idle",
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Energy totals split by [`EnergyCategory`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    totals: [MicroJoules; 6],
}

impl EnergyBreakdown {
    /// An all-zero breakdown.
    #[must_use]
    pub fn new() -> Self {
        EnergyBreakdown::default()
    }

    fn slot(category: EnergyCategory) -> usize {
        match category {
            EnergyCategory::Adv => 0,
            EnergyCategory::Req => 1,
            EnergyCategory::Data => 2,
            EnergyCategory::Routing => 3,
            EnergyCategory::Receive => 4,
            EnergyCategory::Idle => 5,
        }
    }

    /// Adds `amount` to `category`.
    pub fn charge(&mut self, category: EnergyCategory, amount: MicroJoules) {
        self.totals[Self::slot(category)] += amount;
    }

    /// The total for one category.
    #[must_use]
    pub fn get(&self, category: EnergyCategory) -> MicroJoules {
        self.totals[Self::slot(category)]
    }

    /// The grand total across categories.
    #[must_use]
    pub fn total(&self) -> MicroJoules {
        self.totals.iter().copied().sum()
    }

    /// Total transmit energy (everything except reception and idle
    /// listening).
    #[must_use]
    pub fn tx_total(&self) -> MicroJoules {
        self.total() - self.get(EnergyCategory::Receive) - self.get(EnergyCategory::Idle)
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        for (mine, theirs) in self.totals.iter_mut().zip(other.totals.iter()) {
            *mine += *theirs;
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, cat) in EnergyCategory::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{}={}", cat.label(), self.get(*cat))?;
        }
        Ok(())
    }
}

/// Per-node energy meter.
///
/// The simulation engine owns one meter per node and charges it at transmit
/// and receive points; protocol code never touches energy directly, which
/// keeps the accounting uniform across SPIN, SPMS and flooding.
///
/// # Example
///
/// ```
/// use spms_phy::{EnergyCategory, EnergyMeter, MicroJoules};
///
/// let mut meter = EnergyMeter::new();
/// meter.charge(EnergyCategory::Adv, MicroJoules::new(0.5));
/// meter.charge(EnergyCategory::Receive, MicroJoules::new(0.1));
/// assert!((meter.breakdown().total().value() - 0.6).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyMeter {
    breakdown: EnergyBreakdown,
    events: u64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Charges `amount` of energy to `category`.
    pub fn charge(&mut self, category: EnergyCategory, amount: MicroJoules) {
        self.breakdown.charge(category, amount);
        self.events += 1;
    }

    /// The categorized totals so far.
    #[must_use]
    pub fn breakdown(&self) -> &EnergyBreakdown {
        &self.breakdown
    }

    /// Number of charge events recorded (transmissions + receptions).
    #[must_use]
    pub fn charge_events(&self) -> u64 {
        self.events
    }

    /// Resets the meter to zero (used between mobility epochs when
    /// measuring per-epoch costs).
    pub fn reset(&mut self) {
        *self = EnergyMeter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microjoules_compose_mw_ms() {
        // 3.1622 mW × 2 bytes × 0.05 ms = 0.31622 µJ.
        let dur = SimTime::from_micros(100);
        let e = MicroJoules::from_power_duration(3.1622, dur);
        assert!((e.value() - 0.31622).abs() < 1e-9);
    }

    #[test]
    fn microjoules_arithmetic() {
        let a = MicroJoules::new(2.0);
        let b = MicroJoules::new(0.5);
        assert_eq!((a + b).value(), 2.5);
        assert_eq!((b - a).value(), 0.0); // saturating
        let total: MicroJoules = [a, b, b].into_iter().sum();
        assert_eq!(total.value(), 3.0);
        assert!(format!("{a}").contains("µJ"));
    }

    #[test]
    fn breakdown_categories_are_independent() {
        let mut bd = EnergyBreakdown::new();
        bd.charge(EnergyCategory::Adv, MicroJoules::new(1.0));
        bd.charge(EnergyCategory::Data, MicroJoules::new(2.0));
        bd.charge(EnergyCategory::Receive, MicroJoules::new(0.25));
        assert_eq!(bd.get(EnergyCategory::Adv).value(), 1.0);
        assert_eq!(bd.get(EnergyCategory::Req).value(), 0.0);
        assert_eq!(bd.total().value(), 3.25);
        assert_eq!(bd.tx_total().value(), 3.0);
    }

    #[test]
    fn breakdown_merge_adds() {
        let mut a = EnergyBreakdown::new();
        a.charge(EnergyCategory::Routing, MicroJoules::new(1.0));
        let mut b = EnergyBreakdown::new();
        b.charge(EnergyCategory::Routing, MicroJoules::new(2.0));
        b.charge(EnergyCategory::Adv, MicroJoules::new(0.5));
        a.merge(&b);
        assert_eq!(a.get(EnergyCategory::Routing).value(), 3.0);
        assert_eq!(a.get(EnergyCategory::Adv).value(), 0.5);
    }

    #[test]
    fn meter_counts_events_and_resets() {
        let mut m = EnergyMeter::new();
        m.charge(EnergyCategory::Req, MicroJoules::new(0.1));
        m.charge(EnergyCategory::Receive, MicroJoules::new(0.1));
        assert_eq!(m.charge_events(), 2);
        m.reset();
        assert_eq!(m.charge_events(), 0);
        assert_eq!(m.breakdown().total(), MicroJoules::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        let mut bd = EnergyBreakdown::new();
        bd.charge(EnergyCategory::Adv, MicroJoules::new(1.0));
        let s = format!("{bd}");
        assert!(s.contains("adv=") && s.contains("rx="));
    }
}
