//! Radio (PHY-layer) model for the SPMS reproduction.
//!
//! The paper's simulator takes its physical-layer inputs from the MICA2
//! Berkeley mote datasheet: five discrete transmission power levels with
//! their corresponding outdoor ranges (Table 1), a `d^α` path-loss law with
//! `α ≈ 3.5` beyond 7 m (2-ray ground propagation), and receive energy equal
//! to the energy of the lowest transmit power level (`Er = Em`, citing
//! Savvides & Srivastava). This crate provides:
//!
//! * [`PowerLevel`] / [`RadioProfile`] — the discrete level table and
//!   distance → minimum-level lookup,
//! * [`PathLoss`] — the continuous `d^α` model used by the Section 4
//!   analysis,
//! * [`energy`] — per-node energy metering with a per-category breakdown
//!   (ADV/REQ/DATA/routing/receive) so experiments can attribute costs.
//!
//! # Example
//!
//! ```
//! use spms_phy::RadioProfile;
//!
//! let radio = RadioProfile::mica2();
//! // Reaching a node 20 m away needs level index 2 (22.86 m range).
//! let level = radio.level_for_distance(20.0).unwrap();
//! assert_eq!(level.index(), 2);
//! assert!(radio.range_m(level) >= 20.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
mod pathloss;
mod power;

pub use energy::{EnergyBreakdown, EnergyCategory, EnergyMeter, MicroJoules};
pub use pathloss::PathLoss;
pub use power::{PowerLevel, RadioProfile};
