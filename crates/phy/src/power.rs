//! Discrete transmission power levels (MICA2 table) and level selection.

use std::fmt;

/// One of a radio's discrete transmission power levels.
///
/// Levels are indexed from 0 (the **highest** power / longest range) upward,
/// matching the paper's "Power level (1-5)" row read left to right. A
/// `PowerLevel` is only meaningful relative to the [`RadioProfile`] that
/// produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PowerLevel(u8);

impl PowerLevel {
    /// The zero-based index into the radio's level table (0 = max power).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PowerLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0 + 1)
    }
}

/// A radio's discrete power-level table: transmit power (mW) and the range
/// (m) each level reaches.
///
/// The defaults come from Table 1 of the paper (MICA2 Berkeley mote
/// datasheet):
///
/// | level | power (mW) | range (m) |
/// |-------|-----------|-----------|
/// | 1     | 3.1622    | 91.44     |
/// | 2     | 0.7943    | 45.72     |
/// | 3     | 0.1995    | 22.86     |
/// | 4     | 0.05      | 11.28     |
/// | 5     | 0.0125    | 5.48      |
///
/// # Example
///
/// ```
/// use spms_phy::RadioProfile;
///
/// let radio = RadioProfile::mica2();
/// assert_eq!(radio.num_levels(), 5);
/// let min = radio.min_power_level();
/// assert!((radio.power_mw(min) - 0.0125).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RadioProfile {
    /// Transmit power per level, mW, strictly decreasing.
    power_mw: Vec<f64>,
    /// Range per level, metres, strictly decreasing.
    range_m: Vec<f64>,
    /// Receive power draw, mW. The paper sets `Er = Em` (lowest tx level).
    rx_power_mw: f64,
}

impl RadioProfile {
    /// The MICA2 mote profile from Table 1 of the paper.
    #[must_use]
    pub fn mica2() -> Self {
        RadioProfile::new(
            vec![3.1622, 0.7943, 0.1995, 0.05, 0.0125],
            vec![91.44, 45.72, 22.86, 11.28, 5.48],
        )
        .expect("MICA2 constants are valid")
    }

    /// Creates a profile from parallel power/range tables (level 0 first,
    /// highest power first).
    ///
    /// Receive power defaults to the lowest transmit power (`Er = Em`, the
    /// paper's simplification "valid for many sensor nodes").
    ///
    /// # Errors
    ///
    /// Returns a message if the tables are empty, of unequal length, contain
    /// non-positive entries, or are not strictly decreasing.
    pub fn new(power_mw: Vec<f64>, range_m: Vec<f64>) -> Result<Self, String> {
        if power_mw.is_empty() {
            return Err("power table is empty".into());
        }
        if power_mw.len() != range_m.len() {
            return Err(format!(
                "power table has {} levels but range table has {}",
                power_mw.len(),
                range_m.len()
            ));
        }
        if power_mw.len() > 64 {
            return Err("more than 64 power levels is not supported".into());
        }
        for table in [&power_mw, &range_m] {
            if table.iter().any(|&x| !x.is_finite() || x <= 0.0) {
                return Err("tables must contain positive finite values".into());
            }
            if table.windows(2).any(|w| w[0] <= w[1]) {
                return Err("tables must be strictly decreasing".into());
            }
        }
        let rx_power_mw = *power_mw.last().expect("non-empty");
        Ok(RadioProfile {
            power_mw,
            range_m,
            rx_power_mw,
        })
    }

    /// Overrides the receive power draw (mW).
    ///
    /// # Errors
    ///
    /// Returns a message if `rx_mw` is not positive and finite.
    pub fn with_rx_power(mut self, rx_mw: f64) -> Result<Self, String> {
        if !rx_mw.is_finite() || rx_mw <= 0.0 {
            return Err("receive power must be positive and finite".into());
        }
        self.rx_power_mw = rx_mw;
        Ok(self)
    }

    /// Number of discrete levels.
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.power_mw.len()
    }

    /// The maximum-power level (index 0).
    #[must_use]
    pub fn max_power_level(&self) -> PowerLevel {
        PowerLevel(0)
    }

    /// The minimum-power level (last index).
    #[must_use]
    pub fn min_power_level(&self) -> PowerLevel {
        PowerLevel((self.num_levels() - 1) as u8)
    }

    /// The level with the given index, if it exists.
    #[must_use]
    pub fn level(&self, index: usize) -> Option<PowerLevel> {
        if index < self.num_levels() {
            Some(PowerLevel(index as u8))
        } else {
            None
        }
    }

    /// Transmit power of `level` in mW.
    ///
    /// # Panics
    ///
    /// Panics if `level` came from a profile with more levels.
    #[must_use]
    pub fn power_mw(&self, level: PowerLevel) -> f64 {
        self.power_mw[level.index()]
    }

    /// Range of `level` in metres.
    ///
    /// # Panics
    ///
    /// Panics if `level` came from a profile with more levels.
    #[must_use]
    pub fn range_m(&self, level: PowerLevel) -> f64 {
        self.range_m[level.index()]
    }

    /// Receive power draw in mW (`Er` in the paper's notation; energy per
    /// unit receive time).
    #[must_use]
    pub fn rx_power_mw(&self) -> f64 {
        self.rx_power_mw
    }

    /// The **cheapest** (lowest-power) level whose range covers `distance_m`,
    /// or `None` if even maximum power cannot reach it.
    ///
    /// This is the paper's core mechanism: "sensor nodes can operate at
    /// multiple power levels", and SPMS always transmits at the lowest level
    /// that reaches the next hop.
    #[must_use]
    pub fn level_for_distance(&self, distance_m: f64) -> Option<PowerLevel> {
        if !distance_m.is_finite() || distance_m < 0.0 {
            return None;
        }
        // Ranges are strictly decreasing, so scan from the cheapest level up.
        for idx in (0..self.num_levels()).rev() {
            if self.range_m[idx] >= distance_m {
                return Some(PowerLevel(idx as u8));
            }
        }
        None
    }

    /// The cheapest level covering `radius_m`, capped at the profile maximum;
    /// used to interpret an experiment's "transmission radius" sweep value.
    ///
    /// Unlike [`RadioProfile::level_for_distance`] this saturates at maximum
    /// power instead of returning `None`, because a configured radius beyond
    /// the radio's reach simply means "use maximum power".
    #[must_use]
    pub fn level_for_radius_saturating(&self, radius_m: f64) -> PowerLevel {
        self.level_for_distance(radius_m)
            .unwrap_or_else(|| self.max_power_level())
    }

    /// Iterator over all levels, max power first.
    pub fn levels(&self) -> impl Iterator<Item = PowerLevel> + '_ {
        (0..self.num_levels()).map(|i| PowerLevel(i as u8))
    }
}

impl Default for RadioProfile {
    fn default() -> Self {
        RadioProfile::mica2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mica2_matches_table1() {
        let r = RadioProfile::mica2();
        assert_eq!(r.num_levels(), 5);
        assert_eq!(r.power_mw(r.max_power_level()), 3.1622);
        assert_eq!(r.range_m(r.max_power_level()), 91.44);
        assert_eq!(r.power_mw(r.min_power_level()), 0.0125);
        assert_eq!(r.range_m(r.min_power_level()), 5.48);
        // Er = Em by default.
        assert_eq!(r.rx_power_mw(), 0.0125);
    }

    #[test]
    fn level_for_distance_picks_cheapest_covering() {
        let r = RadioProfile::mica2();
        assert_eq!(r.level_for_distance(5.0).unwrap().index(), 4);
        assert_eq!(r.level_for_distance(5.48).unwrap().index(), 4);
        assert_eq!(r.level_for_distance(5.49).unwrap().index(), 3);
        assert_eq!(r.level_for_distance(20.0).unwrap().index(), 2);
        assert_eq!(r.level_for_distance(91.44).unwrap().index(), 0);
        assert_eq!(r.level_for_distance(91.45), None);
        assert_eq!(r.level_for_distance(0.0).unwrap().index(), 4);
    }

    #[test]
    fn level_for_distance_rejects_bad_input() {
        let r = RadioProfile::mica2();
        assert_eq!(r.level_for_distance(-1.0), None);
        assert_eq!(r.level_for_distance(f64::NAN), None);
    }

    #[test]
    fn saturating_radius_never_fails() {
        let r = RadioProfile::mica2();
        assert_eq!(r.level_for_radius_saturating(1_000.0).index(), 0);
        assert_eq!(r.level_for_radius_saturating(10.0).index(), 3);
    }

    #[test]
    fn validation_catches_bad_tables() {
        assert!(RadioProfile::new(vec![], vec![]).is_err());
        assert!(RadioProfile::new(vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(RadioProfile::new(vec![1.0, 2.0], vec![2.0, 1.0]).is_err());
        assert!(RadioProfile::new(vec![2.0, -1.0], vec![2.0, 1.0]).is_err());
        assert!(RadioProfile::new(vec![2.0, 1.0], vec![2.0, 1.0]).is_ok());
    }

    #[test]
    fn rx_power_override() {
        let r = RadioProfile::mica2().with_rx_power(0.5).unwrap();
        assert_eq!(r.rx_power_mw(), 0.5);
        assert!(RadioProfile::mica2().with_rx_power(-1.0).is_err());
    }

    #[test]
    fn levels_iterates_in_order() {
        let r = RadioProfile::mica2();
        let idx: Vec<usize> = r.levels().map(PowerLevel::index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
        assert_eq!(format!("{}", r.max_power_level()), "L1");
    }
}
