//! Run metrics: everything the paper's figures are computed from.

use spms_kernel::stats::{Counter, Tally};
use spms_kernel::SimTime;
use spms_phy::EnergyBreakdown;

/// Aggregate routing-protocol cost over a run (initial formation plus every
/// mobility re-execution).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoutingCost {
    /// DBF executions (1 for static runs in distributed mode).
    pub executions: u64,
    /// How many of those executions were incremental delta re-convergences
    /// (scoped to the zones a mobility or failure event touched) rather
    /// than full from-scratch rebuilds.
    pub incremental_executions: u64,
    /// Delta re-convergences routed through the zone-shard planner
    /// (`SimConfig::dbf_shards`). Deliberately counts *plans*, not
    /// threads, so same-seed runs stay byte-comparable across machines
    /// and shard counts. In the current engine every delta re-convergence
    /// is planner-executed, so this equals
    /// [`RoutingCost::incremental_executions`] by construction (asserted
    /// in tests); it names the execution mode explicitly and will diverge
    /// only if a sequential-engine escape hatch is ever added.
    pub sharded_executions: u64,
    /// Re-convergence windows flushed by the mobility-epoch batcher
    /// (`SimConfig::batch_epochs`). With the default window of 1 this
    /// equals the incremental mobility re-convergences; larger windows
    /// make it the count of *windows*, each covering several epochs.
    pub batch_windows: u64,
    /// Mobility epochs whose re-convergence was deferred into a later
    /// window flush — the per-epoch exchanges the batcher saved. Zero with
    /// the default `batch_epochs = 1`.
    pub epochs_coalesced: u64,
    /// Mobility epochs whose zone table was patched in place
    /// (`ZoneTable::apply_moves` over the spatial grid) instead of rebuilt
    /// from scratch.
    pub zone_patches: u64,
    /// Zone rows (link lists + density counts) those patches rebuilt — the
    /// O(k) work actually done where a full build touches all `n` rows per
    /// epoch.
    pub zone_rows_patched: u64,
    /// Pure-liveness deltas (failures, repairs, battery deaths, churn
    /// flips) queued into the batching window by the silent-failure fix
    /// (`SimConfig::queue_liveness_flips`). Zero when
    /// `reconverge_on_failure` handles flips eagerly or the fix is
    /// ablated off.
    pub liveness_deltas: u64,
    /// Contact-plan epochs applied (scheduled window boundaries reached).
    /// Counts *plan events*, not rows or threads: byte-identical across
    /// shard counts, workers, event kernels, and table layouts.
    pub contact_epochs: u64,
    /// Scheduled link up-flips applied (window opens after `t = 0`).
    pub contact_links_up: u64,
    /// Scheduled link down-flips applied (window closes).
    pub contact_links_down: u64,
    /// Total synchronous rounds.
    pub rounds: u64,
    /// Total vector broadcasts.
    pub messages: u64,
    /// Total bytes on air.
    pub bytes: u64,
    /// Total data-plane pause spent waiting for convergence.
    pub converge_time: SimTime,
}

/// Message counters by kind.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MessageCounts {
    /// ADV broadcasts transmitted.
    pub adv: Counter,
    /// REQ transmissions (including relay forwards).
    pub req: Counter,
    /// DATA transmissions (including relay forwards).
    pub data: Counter,
    /// Frames lost to dead transmitters/receivers or stale links.
    pub dropped: Counter,
}

impl MessageCounts {
    /// Total protocol transmissions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.adv.value() + self.req.value() + self.data.value()
    }
}

/// Adversary and churn counters for one run.
///
/// Like every other field of [`RunMetrics`] these are **semantic**
/// quantities: byte-identical across shard counts, worker pools, event
/// kernels, and table layouts (checked by `tests/integration_adversarial.rs`),
/// and changed only by the seed and the adversary/churn configuration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdversaryStats {
    /// Nodes running an adversarial [`crate::NodeBehavior`].
    pub adversaries: u64,
    /// Packets swallowed by adversaries instead of being processed.
    pub packets_dropped: u64,
    /// Bogus ADV broadcasts transmitted by flooding attackers and
    /// metadata liars.
    pub bogus_advs: u64,
    /// Churn epochs applied.
    pub churn_epochs: u64,
    /// Departed nodes that rejoined at a churn epoch.
    pub churn_joins: u64,
    /// Alive nodes that left at a churn epoch.
    pub churn_leaves: u64,
    /// Churn epochs whose liveness delta was coalesced into a later
    /// batching-window flush instead of re-converging immediately.
    pub churn_coalesced: u64,
}

/// The result of one simulation run.
///
/// # Example
///
/// ```no_run
/// use spms::{RunMetrics, SimConfig, ProtocolKind};
/// # fn run(config: SimConfig) -> RunMetrics { unimplemented!() }
/// let metrics = run(SimConfig::paper_defaults(ProtocolKind::Spms, 1));
/// println!(
///     "{}: {:.1} µJ/packet, {:.2} ms avg delay",
///     metrics.protocol,
///     metrics.energy_per_packet_uj(),
///     metrics.delay_ms.mean()
/// );
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RunMetrics {
    /// Protocol label ("SPIN", "SPMS", "FLOOD").
    pub protocol: &'static str,
    /// Network size.
    pub nodes: usize,
    /// The experiment's transmission radius (m).
    pub zone_radius_m: f64,
    /// Data items generated.
    pub packets_generated: u64,
    /// Deliveries a perfect run would make.
    pub deliveries_expected: u64,
    /// Deliveries made.
    pub deliveries: u64,
    /// Duplicate data receptions (implosion measure).
    pub duplicates: u64,
    /// Items whose retry ladders gave up at least once.
    pub abandonments: u64,
    /// Per-delivery end-to-end delay (ms), measured from the source's ADV
    /// transmission to data reception, as in §5.1.
    pub delay_ms: Tally,
    /// Network-wide energy, categorized.
    pub energy: EnergyBreakdown,
    /// Message counters.
    pub messages: MessageCounts,
    /// Routing (DBF) cost, all-zero for SPIN/flooding or oracle mode.
    pub routing: RoutingCost,
    /// Per-frame MAC queueing delay (ms) — diagnostic for the delay gap.
    pub mac_queue_wait_ms: Tally,
    /// Failures injected (failure runs).
    pub failures_injected: u64,
    /// Mobility epochs applied (mobility runs).
    pub mobility_epochs: u64,
    /// Adversary and churn counters (all-zero for benign runs).
    pub adversary: AdversaryStats,
    /// Simulated time at which the run ended.
    pub finished_at: SimTime,
    /// Events processed by the kernel.
    pub events_processed: u64,
    /// Per-node total energy (µJ), indexed by node id — the load
    /// distribution behind [`RunMetrics::energy`]'s network total (e.g.
    /// for hot-spot heatmaps; SPMS concentrates load on relays near the
    /// source, SPIN on every zone member).
    pub per_node_energy_uj: Vec<f64>,
    /// Nodes that permanently died of battery depletion (only nonzero when
    /// `SimConfig::battery_capacity_uj` is set).
    pub nodes_dead: u64,
    /// Time of the first battery death — the classic network-lifetime
    /// metric (`None` = everyone survived).
    pub first_death_at: Option<SimTime>,
}

impl RunMetrics {
    /// Average network energy per generated packet, µJ — the y-axis of the
    /// paper's Figures 6, 7, 12 and 13.
    #[must_use]
    pub fn energy_per_packet_uj(&self) -> f64 {
        if self.packets_generated == 0 {
            0.0
        } else {
            self.energy.total().value() / self.packets_generated as f64
        }
    }

    /// Fraction of expected deliveries made.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.deliveries_expected == 0 {
            1.0
        } else {
            self.deliveries as f64 / self.deliveries_expected as f64
        }
    }

    /// Average end-to-end delay in ms — the y-axis of Figures 8–11.
    #[must_use]
    pub fn avg_delay_ms(&self) -> f64 {
        self.delay_ms.mean()
    }

    /// Max-to-mean ratio of per-node energy — a load-imbalance indicator
    /// (1.0 = perfectly even; large = hot spots). Returns 0.0 for runs
    /// that consumed no energy.
    #[must_use]
    pub fn energy_imbalance(&self) -> f64 {
        let n = self.per_node_energy_uj.len();
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = self.per_node_energy_uj.iter().sum();
        if sum <= 0.0 {
            return 0.0;
        }
        let max = self
            .per_node_energy_uj
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        max / (sum / n as f64)
    }

    /// One-line summary for logs and examples.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}: n={} r={:.0}m pkts={} delivered={}/{} ({:.1}%) dup={} \
             energy/pkt={:.2}µJ delay={:.2}ms (p_max {:.2}ms)",
            self.protocol,
            self.nodes,
            self.zone_radius_m,
            self.packets_generated,
            self.deliveries,
            self.deliveries_expected,
            100.0 * self.delivery_ratio(),
            self.duplicates,
            self.energy_per_packet_uj(),
            self.avg_delay_ms(),
            self.delay_ms.max().unwrap_or(0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_phy::{EnergyCategory, MicroJoules};

    fn metrics() -> RunMetrics {
        let mut energy = EnergyBreakdown::new();
        energy.charge(EnergyCategory::Data, MicroJoules::new(100.0));
        let mut delay = Tally::new();
        delay.record(2.0);
        delay.record(4.0);
        RunMetrics {
            protocol: "SPMS",
            nodes: 9,
            zone_radius_m: 20.0,
            packets_generated: 10,
            deliveries_expected: 80,
            deliveries: 80,
            duplicates: 3,
            abandonments: 0,
            delay_ms: delay,
            energy,
            messages: MessageCounts::default(),
            routing: RoutingCost::default(),
            mac_queue_wait_ms: Tally::new(),
            failures_injected: 0,
            mobility_epochs: 0,
            adversary: AdversaryStats::default(),
            finished_at: SimTime::from_millis(50),
            events_processed: 1234,
            per_node_energy_uj: vec![10.0, 30.0, 20.0, 40.0],
            nodes_dead: 0,
            first_death_at: None,
        }
    }

    #[test]
    fn derived_quantities() {
        let m = metrics();
        assert_eq!(m.energy_per_packet_uj(), 10.0);
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.avg_delay_ms(), 3.0);
    }

    #[test]
    fn zero_packet_run_is_safe() {
        let mut m = metrics();
        m.packets_generated = 0;
        m.deliveries_expected = 0;
        assert_eq!(m.energy_per_packet_uj(), 0.0);
        assert_eq!(m.delivery_ratio(), 1.0);
    }

    #[test]
    fn summary_mentions_key_figures() {
        let s = metrics().summary();
        assert!(s.contains("SPMS"));
        assert!(s.contains("80/80"));
        assert!(s.contains("µJ"));
    }

    #[test]
    fn energy_imbalance_is_max_over_mean() {
        let m = metrics();
        // mean 25, max 40.
        assert!((m.energy_imbalance() - 40.0 / 25.0).abs() < 1e-12);
        let mut flat = metrics();
        flat.per_node_energy_uj = vec![5.0; 8];
        assert!((flat.energy_imbalance() - 1.0).abs() < 1e-12);
        let mut empty = metrics();
        empty.per_node_energy_uj.clear();
        assert_eq!(empty.energy_imbalance(), 0.0);
        let mut zero = metrics();
        zero.per_node_energy_uj = vec![0.0; 4];
        assert_eq!(zero.energy_imbalance(), 0.0);
    }

    #[test]
    fn message_totals() {
        let mut mc = MessageCounts::default();
        mc.adv.add(5);
        mc.req.add(3);
        mc.data.add(2);
        mc.dropped.add(1);
        assert_eq!(mc.total(), 10);
    }
}
