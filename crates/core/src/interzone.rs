//! SPMS-IZ: the paper's §6 inter-zone dissemination extension.
//!
//! Base SPMS only crosses zone boundaries when an *interested* node in the
//! overlap obtains the data and re-advertises it. §6 proposes the missing
//! case — "disseminate data when the source and the destination are in
//! separate zones with no interested nodes in the intermediate zones" —
//! using the zone routing of Haas & Pearlman (the paper's reference \[4\]).
//! SPMS-IZ implements that proposal on top of the unchanged base protocol:
//!
//! * **Bordercast query.** The source's advertisement becomes an
//!   [`Payload::IzAdv`] carrying a TTL and a border-relay record route.
//!   Nodes that extend the previous transmitter's coverage (see
//!   [`spms_interzone::is_border_relay`]) re-broadcast the query once per
//!   item, TTL permitting — whether or not they are interested. Interior
//!   nodes never relay, which keeps the query far cheaper than flooding.
//! * **Intra-zone fast path.** A query heard *directly from the source* is
//!   treated exactly like a plain ADV, so nodes in the source's own zone
//!   run the unmodified SPMS negotiation (waiting rule, PRONE/SCONE,
//!   shortest-path REQ).
//! * **Inter-zone request.** An interested node in a remote zone waits
//!   τADV for a local advertiser (a cached holder, or a neighbor that got
//!   the data) and then sends an [`Payload::IzReq`] back along the reversed
//!   border path. Each leg between consecutive border relays travels over
//!   the intra-zone shortest paths at the lowest power, exactly like a base
//!   SPMS REQ; the node-level route is recorded and the DATA retraces it.
//! * **Fault tolerance.** Duplicate queries arriving over different border
//!   chains give the destination *path diversity*: up to `paths_kept`
//!   distinct border paths are remembered, and each τDAT expiry rotates to
//!   the next one (the inter-zone analogue of the PRONE/SCONE ladder).
//!   With `relay_caching` enabled, data crossing a zone leaves copies at
//!   the relays, which then advertise locally and serve later requesters —
//!   the synergy §6 anticipates between its two proposals.

use std::collections::BTreeMap;

use spms_interzone::is_border_relay;
use spms_net::NodeId;

use crate::{
    Action, Addressee, MetaId, NodeView, OutFrame, Packet, Payload, Protocol, SpmsNode, SpmsParams,
    TimerKind,
};

/// Generation namespace for inter-zone timers. Base-SPMS timers for the
/// same item use small per-entry counters; offsetting the inter-zone
/// generations keeps the two state machines' timers from colliding.
const IZ_GEN_BASE: u32 = 0x8000_0000;

/// Maximum node-level record route of an inter-zone REQ: a handful of zone
/// legs, each a handful of intra-zone hops. Longer paths indicate a routing
/// pathology; dropping lets the requester's τDAT rotate paths.
const MAX_IZ_PATH: usize = 64;

/// Resolved inter-zone tunables (TTL already concrete).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IzResolved {
    /// Bordercast rebroadcast budget in zone hops.
    pub ttl: u32,
    /// Distinct border paths remembered per item.
    pub paths_kept: usize,
    /// Inter-zone REQ retry budget before abandoning until a new query.
    pub max_attempts: u32,
}

/// Where the inter-zone machinery stands for one item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum IzState {
    /// Not engaged (base SPMS may still be negotiating locally).
    Idle,
    /// τADV armed, hoping a local advertiser appears first.
    WaitingAdv,
    /// Inter-zone REQ sent, τDAT armed.
    WaitingData,
    /// Out of retries until a new query arrives.
    GivenUp,
}

/// Per-item inter-zone destination state.
#[derive(Clone, Debug)]
struct IzEntry {
    interested: bool,
    /// Border paths from the source (each starts with the source id),
    /// shortest first, deduplicated, truncated to `paths_kept`.
    paths: Vec<Vec<NodeId>>,
    /// Rotation cursor into `paths` for retries.
    next_path: usize,
    attempts: u32,
    state: IzState,
    adv_gen: u32,
    dat_gen: u32,
}

impl IzEntry {
    fn new() -> Self {
        IzEntry {
            interested: false,
            paths: Vec::new(),
            next_path: 0,
            attempts: 0,
            state: IzState::Idle,
            adv_gen: 0,
            dat_gen: 0,
        }
    }

    /// Records a border path, keeping the list sorted by length and capped.
    fn record_path(&mut self, path: Vec<NodeId>, cap: usize) {
        if self.paths.contains(&path) {
            return;
        }
        let pos = self
            .paths
            .iter()
            .position(|p| path.len() < p.len())
            .unwrap_or(self.paths.len());
        self.paths.insert(pos, path);
        self.paths.truncate(cap.max(1));
    }
}

/// SPMS-IZ protocol state for one node: the unmodified base [`SpmsNode`]
/// plus the bordercast/inter-zone request machinery.
#[derive(Clone, Debug)]
pub struct SpmsIzNode {
    inner: SpmsNode,
    iz: BTreeMap<MetaId, IzEntry>,
    /// Bordercast dedup: the highest TTL this node has re-broadcast per
    /// item. A node relays again only when a *fresher* copy (higher
    /// remaining TTL) arrives — required because the first copy heard
    /// usually travelled via near relays and carries a TTL consumed in
    /// small spatial strides; the fresher copy re-enables the optimal
    /// zone-hop chain the TTL bound was computed for.
    relayed: BTreeMap<MetaId, u32>,
    params: IzResolved,
}

impl SpmsIzNode {
    /// Creates a node with base-SPMS and inter-zone tunables.
    #[must_use]
    pub fn new(base: SpmsParams, params: IzResolved) -> Self {
        SpmsIzNode {
            inner: SpmsNode::new(base),
            iz: BTreeMap::new(),
            relayed: BTreeMap::new(),
            params,
        }
    }

    /// The wrapped base-SPMS state (PRONE/SCONE inspection in tests).
    #[must_use]
    pub fn base(&self) -> &SpmsNode {
        &self.inner
    }

    /// The border paths currently remembered for `meta`, shortest first.
    #[must_use]
    pub fn paths(&self, meta: MetaId) -> &[Vec<NodeId>] {
        self.iz.get(&meta).map_or(&[], |e| e.paths.as_slice())
    }

    /// `true` once this node has re-broadcast the query for `meta`.
    #[must_use]
    pub fn has_relayed(&self, meta: MetaId) -> bool {
        self.relayed.contains_key(&meta)
    }

    /// Broadcasts the bordercast query continuation for `meta`.
    fn relay_query(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        ttl: u32,
        path: &[NodeId],
        out: &mut Vec<Action>,
    ) {
        self.relayed.insert(meta, ttl - 1);
        let mut forward = path.to_vec();
        forward.push(view.node);
        out.push(Action::Send(OutFrame {
            to: Addressee::Broadcast,
            level: view.zones.adv_level(),
            packet: Packet {
                meta,
                from: view.node,
                payload: Payload::IzAdv {
                    ttl: ttl - 1,
                    path: forward,
                },
            },
        }));
    }

    /// Launches (or re-launches) the inter-zone REQ along the next stored
    /// border path. Returns `false` when no usable path exists.
    fn send_iz_req(&mut self, view: &NodeView<'_>, meta: MetaId, out: &mut Vec<Action>) -> bool {
        let entry = self.iz.get_mut(&meta).expect("iz entry exists");
        if entry.paths.is_empty() {
            return false;
        }
        let path = entry.paths[entry.next_path % entry.paths.len()].clone();
        // Waypoints back toward the source, skipping ourselves (we may be a
        // border relay on our own stored path).
        let mut legs: Vec<NodeId> = path
            .iter()
            .rev()
            .copied()
            .filter(|&n| n != view.node)
            .collect();
        if legs.is_empty() {
            return false;
        }
        let first = legs[0];
        let Some(route) = view.routing.best(first) else {
            return false;
        };
        let Some(level) = view.link_level(route.via) else {
            return false;
        };
        // The first waypoint is popped by its receiver, so if the next hop
        // *is* the waypoint the packet still carries it — uniform handling.
        let zone_legs = legs.len() as u64;
        let frame = OutFrame {
            to: Addressee::Unicast(route.via),
            level,
            packet: Packet {
                meta,
                from: view.node,
                payload: Payload::IzReq {
                    origin: view.node,
                    legs: std::mem::take(&mut legs),
                    path: vec![view.node],
                },
            },
        };
        entry.state = IzState::WaitingData;
        entry.attempts += 1;
        entry.dat_gen += 1;
        let gen = IZ_GEN_BASE + entry.dat_gen;
        out.push(Action::Send(frame));
        // One τDAT per zone leg: an inter-zone round trip crosses each leg
        // twice but the legs pipeline, so leg count (plus one for the local
        // leg) is the right scale.
        out.push(Action::SetTimer {
            meta,
            kind: TimerKind::DataWait,
            gen,
            after: view.timeouts.dat * (zone_legs + 1),
        });
        true
    }

    /// Handles a bordercast query arriving at this node.
    #[allow(clippy::too_many_arguments)] // private dispatch of one packet's fields
    fn handle_iz_adv(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        from: NodeId,
        ttl: u32,
        path: &[NodeId],
        interested: bool,
        out: &mut Vec<Action>,
    ) {
        // Border-relay duty first: independent of interest — that is the
        // whole point of the extension. Holders do not relay; they already
        // advertise locally (plain ADV) when they obtain the data.
        let fresher = self
            .relayed
            .get(&meta)
            .is_none_or(|&sent| ttl.saturating_sub(1) > sent);
        // §3.1 resource adaptation: low-battery nodes decline bordercast
        // relay duty (other border relays usually cover the gap).
        if ttl > 0
            && fresher
            && !view.declines_forwarding()
            && !self.inner.has_data(meta)
            && !path.contains(&view.node)
            && is_border_relay(view.zones, from, view.node)
        {
            self.relay_query(view, meta, ttl, path, out);
        }

        if !interested || self.inner.has_data(meta) {
            return;
        }
        if path.len() == 1 {
            // Heard straight from the source: the transmitter holds the
            // data, so the unmodified intra-zone negotiation applies.
            let as_adv = Packet {
                meta,
                from,
                payload: Payload::Adv,
            };
            out.extend(self.inner.on_packet(view, &as_adv, true));
            return;
        }
        // Remote query: remember the border path and engage (unless the
        // base protocol already heard a local advertiser).
        self.inner.mark_interested(meta);
        let cap = self.params.paths_kept;
        let entry = self.iz.entry(meta).or_insert_with(IzEntry::new);
        entry.interested = true;
        entry.record_path(path.to_vec(), cap);
        if self.inner.prone(meta).is_some() {
            return; // local negotiation in progress
        }
        if matches!(entry.state, IzState::Idle | IzState::GivenUp) {
            entry.state = IzState::WaitingAdv;
            entry.attempts = 0;
            entry.adv_gen += 1;
            out.push(Action::SetTimer {
                meta,
                kind: TimerKind::AdvWait,
                gen: IZ_GEN_BASE + entry.adv_gen,
                after: view.timeouts.adv,
            });
        }
    }

    /// Handles an inter-zone REQ travelling back toward the source.
    fn handle_iz_req(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        origin: NodeId,
        legs: &[NodeId],
        path: &[NodeId],
        out: &mut Vec<Action>,
    ) {
        if path.len() >= MAX_IZ_PATH {
            return; // pathological route; the origin's τDAT rotates paths
        }
        if self.inner.has_data(meta) {
            // Source — or a cached holder met on the way: serve straight
            // back along the recorded node-level route.
            self.inner.serve_path(view, meta, path, out);
            return;
        }
        if view.declines_forwarding() && origin != view.node {
            return; // §3.1: decline third-party forwarding when low
        }
        // Advance the waypoint list if we are the current waypoint.
        let remaining: &[NodeId] = match legs.split_first() {
            Some((&head, rest)) if head == view.node => rest,
            _ => legs,
        };
        let Some(&target) = remaining.first() else {
            return; // reached the final waypoint without data: stay silent
        };
        let Some(route) = view.routing.best(target) else {
            return; // no intra-zone route (mobility/failure): drop
        };
        let via = if Some(&route.via) == path.last() {
            match view.routing.best_avoiding(target, route.via) {
                Some(alt) => alt.via,
                None => route.via,
            }
        } else {
            route.via
        };
        let mut new_path = path.to_vec();
        new_path.push(view.node);
        if let Some(frame) = view.unicast(
            via,
            meta,
            Payload::IzReq {
                origin,
                legs: remaining.to_vec(),
                path: new_path,
            },
        ) {
            out.push(Action::Send(frame));
        }
    }

    /// Inter-zone timer handling (generation already de-namespaced).
    fn on_iz_timer(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        kind: TimerKind,
        raw_gen: u32,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        if self.inner.has_data(meta) {
            return out;
        }
        let Some(entry) = self.iz.get_mut(&meta) else {
            return out;
        };
        match kind {
            TimerKind::AdvWait => {
                if entry.adv_gen != raw_gen || entry.state != IzState::WaitingAdv {
                    return out;
                }
                if self.inner.prone(meta).is_some() {
                    // A local advertiser appeared; let base SPMS finish.
                    entry.state = IzState::Idle;
                    return out;
                }
                if !self.send_iz_req(view, meta, &mut out) {
                    let entry = self.iz.get_mut(&meta).expect("entry");
                    entry.state = IzState::GivenUp;
                    out.push(Action::Abandoned { meta });
                }
            }
            TimerKind::DataWait => {
                if entry.dat_gen != raw_gen || entry.state != IzState::WaitingData {
                    return out;
                }
                if entry.attempts >= self.params.max_attempts {
                    entry.state = IzState::GivenUp;
                    out.push(Action::Abandoned { meta });
                    return out;
                }
                entry.next_path += 1; // rotate to the next border path
                if !self.send_iz_req(view, meta, &mut out) {
                    let entry = self.iz.get_mut(&meta).expect("entry");
                    entry.state = IzState::GivenUp;
                    out.push(Action::Abandoned { meta });
                }
            }
        }
        out
    }
}

impl Protocol for SpmsIzNode {
    fn on_generate(&mut self, view: &NodeView<'_>, meta: MetaId) -> Vec<Action> {
        // The base protocol stores the item and advertises once; upgrade
        // that advertisement into the bordercast query so it can cross
        // zones. Re-advertisements by later holders stay zone-local.
        let ttl = self.params.ttl;
        self.inner
            .on_generate(view, meta)
            .into_iter()
            .map(|a| match a {
                Action::Send(mut frame) if frame.packet.payload == Payload::Adv => {
                    frame.packet.payload = Payload::IzAdv {
                        ttl,
                        path: vec![view.node],
                    };
                    Action::Send(frame)
                }
                other => other,
            })
            .collect()
    }

    fn on_packet(&mut self, view: &NodeView<'_>, packet: &Packet, interested: bool) -> Vec<Action> {
        let meta = packet.meta;
        let mut out = Vec::new();
        match &packet.payload {
            Payload::IzAdv { ttl, path } => {
                self.handle_iz_adv(view, meta, packet.from, *ttl, path, interested, &mut out);
            }
            Payload::IzReq { origin, legs, path } => {
                self.handle_iz_req(view, meta, *origin, legs, path, &mut out);
            }
            _ => {
                // Plain ADV/REQ/DATA: the unmodified base protocol. DATA
                // acceptance also satisfies any pending inter-zone wait
                // (checked lazily when its timers fire).
                out = self.inner.on_packet(view, packet, interested);
            }
        }
        out
    }

    fn on_timer(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        kind: TimerKind,
        gen: u32,
    ) -> Vec<Action> {
        if gen >= IZ_GEN_BASE {
            self.on_iz_timer(view, meta, kind, gen - IZ_GEN_BASE)
        } else {
            self.inner.on_timer(view, meta, kind, gen)
        }
    }

    fn on_failed(&mut self) {
        self.inner.on_failed();
        for entry in self.iz.values_mut() {
            entry.adv_gen += 1;
            entry.dat_gen += 1;
            if matches!(entry.state, IzState::WaitingAdv | IzState::WaitingData) {
                entry.state = IzState::Idle;
            }
        }
    }

    fn on_repaired(&mut self, view: &NodeView<'_>) -> Vec<Action> {
        let mut out = self.inner.on_repaired(view);
        // Resume inter-zone pulls for items the base protocol cannot serve
        // locally (no known originator).
        let pending: Vec<MetaId> = self
            .iz
            .iter()
            .filter(|(m, e)| {
                e.interested
                    && e.state == IzState::Idle
                    && !e.paths.is_empty()
                    && !self.inner.has_data(**m)
                    && self.inner.prone(**m).is_none()
            })
            .map(|(m, _)| *m)
            .collect();
        for meta in pending {
            {
                let entry = self.iz.get_mut(&meta).expect("entry");
                entry.attempts = 0;
            }
            self.send_iz_req(view, meta, &mut out);
        }
        out
    }

    fn on_routes_rebuilt(&mut self, view: &NodeView<'_>) -> Vec<Action> {
        // Stored border paths may have broken; retries rotate through the
        // survivors. Allow queries to be relayed again under the new
        // topology so fresh paths can form.
        self.relayed.clear();
        self.inner.on_routes_rebuilt(view)
    }

    fn has_data(&self, meta: MetaId) -> bool {
        self.inner.has_data(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PacketKind, Timeouts};
    use spms_kernel::SimTime;
    use spms_net::{placement, ZoneTable};
    use spms_phy::RadioProfile;
    use spms_routing::{oracle_tables, RoutingTable};

    /// 13-node line, 5 m spacing, 20 m zones: node 0 and node 12 are 60 m
    /// apart — separate zones with several border relays between them.
    fn fixture() -> (ZoneTable, Vec<RoutingTable>) {
        let topo = placement::grid(13, 1, 5.0).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        let tables = oracle_tables(&zones, 2);
        (zones, tables)
    }

    fn view<'a>(zones: &'a ZoneTable, routing: &'a RoutingTable, node: u32) -> NodeView<'a> {
        NodeView {
            node: NodeId::new(node),
            now: SimTime::ZERO,
            zones,
            routing,
            timeouts: Timeouts {
                adv: SimTime::from_millis(1),
                dat: SimTime::from_millis_f64(2.5),
            },
            battery_frac: 1.0,
            low_battery_threshold: 0.0,
        }
    }

    fn params() -> IzResolved {
        IzResolved {
            ttl: 4,
            paths_kept: 2,
            max_attempts: 4,
        }
    }

    fn node() -> SpmsIzNode {
        SpmsIzNode::new(SpmsParams::default(), params())
    }

    fn meta() -> MetaId {
        MetaId::new(NodeId::new(0), 0)
    }

    fn sends(actions: &[Action]) -> Vec<&OutFrame> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(f) => Some(f),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn generate_upgrades_adv_to_bordercast_query() {
        let (zones, tables) = fixture();
        let mut src = node();
        let v = view(&zones, &tables[0], 0);
        let actions = src.on_generate(&v, meta());
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].to, Addressee::Broadcast);
        assert_eq!(s[0].packet.kind(), PacketKind::Adv);
        match &s[0].packet.payload {
            Payload::IzAdv { ttl, path } => {
                assert_eq!(*ttl, 4);
                assert_eq!(path.as_slice(), &[NodeId::new(0)]);
            }
            other => panic!("expected IzAdv, got {other:?}"),
        }
        assert!(src.has_data(meta()));
    }

    #[test]
    fn border_relay_rebroadcasts_with_decremented_ttl() {
        let (zones, tables) = fixture();
        // Node 4 (20 m from node 0) extends coverage: must relay.
        let mut relay = node();
        let v = view(&zones, &tables[4], 4);
        let q = Packet {
            meta: meta(),
            from: NodeId::new(0),
            payload: Payload::IzAdv {
                ttl: 4,
                path: vec![NodeId::new(0)],
            },
        };
        let actions = relay.on_packet(&v, &q, false);
        let s = sends(&actions);
        assert_eq!(s.len(), 1, "uninterested border node still relays");
        match &s[0].packet.payload {
            Payload::IzAdv { ttl, path } => {
                assert_eq!(*ttl, 3);
                assert_eq!(path.as_slice(), &[NodeId::new(0), NodeId::new(4)]);
            }
            other => panic!("expected IzAdv, got {other:?}"),
        }
        assert!(relay.has_relayed(meta()));
        // Dedup: the same query heard again is not relayed twice.
        let again = relay.on_packet(&v, &q, false);
        assert!(sends(&again).is_empty());
    }

    #[test]
    fn fresher_ttl_triggers_a_re_relay() {
        // A node that relayed a stale (low-TTL) copy must relay again when
        // the optimal chain's fresher copy arrives, or long fields become
        // timing-dependent (the wave dies when near relays win the race).
        let (zones, tables) = fixture();
        let mut relay = node();
        let v = view(&zones, &tables[4], 4);
        let stale = Packet {
            meta: meta(),
            from: NodeId::new(3),
            payload: Payload::IzAdv {
                ttl: 1,
                path: vec![NodeId::new(0), NodeId::new(3)],
            },
        };
        let first = relay.on_packet(&v, &stale, false);
        assert_eq!(sends(&first).len(), 1, "stale copy still relays once");
        let fresh = Packet {
            meta: meta(),
            from: NodeId::new(0),
            payload: Payload::IzAdv {
                ttl: 4,
                path: vec![NodeId::new(0)],
            },
        };
        let second = relay.on_packet(&v, &fresh, false);
        let s = sends(&second);
        assert_eq!(s.len(), 1, "fresher TTL must re-relay");
        match &s[0].packet.payload {
            Payload::IzAdv { ttl, .. } => assert_eq!(*ttl, 3),
            other => panic!("expected IzAdv, got {other:?}"),
        }
        // Equal-or-worse TTL afterwards: silent.
        let worse = relay.on_packet(&v, &fresh, false);
        assert!(sends(&worse).is_empty());
    }

    #[test]
    fn ttl_zero_stops_the_query() {
        let (zones, tables) = fixture();
        let mut relay = node();
        let v = view(&zones, &tables[4], 4);
        let q = Packet {
            meta: meta(),
            from: NodeId::new(0),
            payload: Payload::IzAdv {
                ttl: 0,
                path: vec![NodeId::new(0)],
            },
        };
        assert!(sends(&relay.on_packet(&v, &q, false)).is_empty());
        assert!(!relay.has_relayed(meta()));
    }

    #[test]
    fn interior_node_does_not_relay() {
        let (zones, tables) = fixture();
        // Node 2 hears node 4's rebroadcast but everything node 2 covers,
        // node 4 already covered further out… check via border predicate:
        // node 2's zone ⊆ node 4's ∪ node 0's? Node 2 reaches 0..6; node 4
        // reaches 0..8 — no gain from node 2 after node 4 transmitted.
        let mut n2 = node();
        let v = view(&zones, &tables[2], 2);
        let q = Packet {
            meta: meta(),
            from: NodeId::new(4),
            payload: Payload::IzAdv {
                ttl: 3,
                path: vec![NodeId::new(0), NodeId::new(4)],
            },
        };
        let actions = n2.on_packet(&v, &q, false);
        assert!(
            sends(&actions).is_empty(),
            "node 2 adds no coverage beyond node 4"
        );
    }

    #[test]
    fn source_zone_destination_uses_base_negotiation() {
        let (zones, tables) = fixture();
        // Node 1 hears the query directly from the source: base SPMS rules
        // (adjacent advertiser → immediate direct REQ).
        let mut n1 = node();
        let v = view(&zones, &tables[1], 1);
        let q = Packet {
            meta: meta(),
            from: NodeId::new(0),
            payload: Payload::IzAdv {
                ttl: 4,
                path: vec![NodeId::new(0)],
            },
        };
        let actions = n1.on_packet(&v, &q, true);
        let s = sends(&actions);
        assert!(s
            .iter()
            .any(|f| matches!(f.packet.payload, Payload::Req { .. })));
        assert_eq!(n1.base().prone(meta()), Some(NodeId::new(0)));
    }

    #[test]
    fn remote_destination_waits_then_pulls_over_border_path() {
        let (zones, tables) = fixture();
        // Node 12 hears the query relayed by node 8 (path 0→4→8).
        let mut dest = node();
        let v = view(&zones, &tables[12], 12);
        let q = Packet {
            meta: meta(),
            from: NodeId::new(8),
            payload: Payload::IzAdv {
                ttl: 2,
                path: vec![NodeId::new(0), NodeId::new(4), NodeId::new(8)],
            },
        };
        let actions = dest.on_packet(&v, &q, true);
        // It waits τADV first (a local holder may advertise).
        assert!(sends(&actions)
            .iter()
            .all(|f| !matches!(f.packet.payload, Payload::IzReq { .. })));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer { kind: TimerKind::AdvWait, gen, .. } if *gen >= IZ_GEN_BASE
        )));
        assert_eq!(dest.paths(meta()).len(), 1);

        // τADV expires with no local ADV: the inter-zone REQ launches.
        let actions = dest.on_timer(&v, meta(), TimerKind::AdvWait, IZ_GEN_BASE + 1);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        match &s[0].packet.payload {
            Payload::IzReq { origin, legs, path } => {
                assert_eq!(*origin, NodeId::new(12));
                assert_eq!(
                    legs.as_slice(),
                    &[NodeId::new(8), NodeId::new(4), NodeId::new(0)],
                    "reversed border path"
                );
                assert_eq!(path.as_slice(), &[NodeId::new(12)]);
            }
            other => panic!("expected IzReq, got {other:?}"),
        }
        // τDAT scaled by the number of zone legs.
        let timer = actions.iter().find_map(|a| match a {
            Action::SetTimer {
                kind: TimerKind::DataWait,
                after,
                ..
            } => Some(*after),
            _ => None,
        });
        assert_eq!(timer, Some(SimTime::from_millis_f64(2.5) * 4u64));
    }

    #[test]
    fn waypoints_pop_and_source_serves_reverse_route() {
        let (zones, tables) = fixture();
        let m = meta();
        // Waypoint node 8 receives the REQ addressed to it: pops itself and
        // forwards toward node 4.
        let mut w = node();
        let v8 = view(&zones, &tables[8], 8);
        let req = Packet {
            meta: m,
            from: NodeId::new(9),
            payload: Payload::IzReq {
                origin: NodeId::new(12),
                legs: vec![NodeId::new(8), NodeId::new(4), NodeId::new(0)],
                path: vec![NodeId::new(12), NodeId::new(9)],
            },
        };
        let actions = w.on_packet(&v8, &req, false);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        match &s[0].packet.payload {
            Payload::IzReq { legs, path, .. } => {
                assert_eq!(legs.as_slice(), &[NodeId::new(4), NodeId::new(0)]);
                assert_eq!(
                    path.as_slice(),
                    &[NodeId::new(12), NodeId::new(9), NodeId::new(8)]
                );
            }
            other => panic!("expected IzReq, got {other:?}"),
        }

        // The source holds the data and serves the full reverse route.
        let mut src = node();
        let v0 = view(&zones, &tables[0], 0);
        src.on_generate(&v0, m);
        let full_path: Vec<NodeId> = [12u32, 9, 8, 6, 4, 2]
            .iter()
            .map(|&i| NodeId::new(i))
            .collect();
        let req_at_src = Packet {
            meta: m,
            from: NodeId::new(2),
            payload: Payload::IzReq {
                origin: NodeId::new(12),
                legs: vec![NodeId::new(0)],
                path: full_path.clone(),
            },
        };
        let actions = src.on_packet(&v0, &req_at_src, false);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        match &s[0].packet.payload {
            Payload::Data { dest, route } => {
                assert_eq!(*dest, NodeId::new(12));
                let expect: Vec<NodeId> = full_path.iter().rev().skip(1).copied().collect();
                assert_eq!(route.as_slice(), expect.as_slice());
            }
            other => panic!("expected DATA, got {other:?}"),
        }
        assert_eq!(s[0].to, Addressee::Unicast(NodeId::new(2)));
    }

    #[test]
    fn cached_holder_on_path_serves_early() {
        let (zones, tables) = fixture();
        let m = meta();
        let mut holder = SpmsIzNode::new(
            SpmsParams {
                relay_caching: true,
                ..SpmsParams::default()
            },
            params(),
        );
        let v4 = view(&zones, &tables[4], 4);
        // Give node 4 the data via a relayed DATA packet (caching on).
        let data = Packet {
            meta: m,
            from: NodeId::new(3),
            payload: Payload::Data {
                dest: NodeId::new(5),
                route: vec![NodeId::new(5)],
            },
        };
        holder.on_packet(&v4, &data, false);
        assert!(holder.has_data(m));
        // A later inter-zone REQ passing through is served immediately.
        let req = Packet {
            meta: m,
            from: NodeId::new(6),
            payload: Payload::IzReq {
                origin: NodeId::new(12),
                legs: vec![NodeId::new(4), NodeId::new(0)],
                path: vec![NodeId::new(12), NodeId::new(8), NodeId::new(6)],
            },
        };
        let actions = holder.on_packet(&v4, &req, false);
        let s = sends(&actions);
        assert!(
            s.iter().any(|f| f.packet.kind() == PacketKind::Data),
            "cached holder must answer instead of forwarding"
        );
        assert!(
            !s.iter()
                .any(|f| matches!(f.packet.payload, Payload::IzReq { .. })),
            "no forwarding past a holder"
        );
    }

    #[test]
    fn dat_timeout_rotates_paths_then_abandons() {
        let (zones, tables) = fixture();
        let m = meta();
        let mut dest = SpmsIzNode::new(
            SpmsParams::default(),
            IzResolved {
                ttl: 4,
                paths_kept: 2,
                max_attempts: 2,
            },
        );
        let v = view(&zones, &tables[12], 12);
        // Two distinct border paths arrive.
        for (from, path) in [
            (8u32, vec![NodeId::new(0), NodeId::new(4), NodeId::new(8)]),
            (9u32, vec![NodeId::new(0), NodeId::new(5), NodeId::new(9)]),
        ] {
            let q = Packet {
                meta: m,
                from: NodeId::new(from),
                payload: Payload::IzAdv { ttl: 2, path },
            };
            dest.on_packet(&v, &q, true);
        }
        assert_eq!(dest.paths(m).len(), 2);
        // Engage: τADV expiry → REQ along path 1 (attempt 1).
        let a1 = dest.on_timer(&v, m, TimerKind::AdvWait, IZ_GEN_BASE + 1);
        let first_legs = match &sends(&a1)[0].packet.payload {
            Payload::IzReq { legs, .. } => legs.clone(),
            other => panic!("{other:?}"),
        };
        // τDAT expiry → rotate to the second path (attempt 2).
        let a2 = dest.on_timer(&v, m, TimerKind::DataWait, IZ_GEN_BASE + 1);
        let second_legs = match &sends(&a2)[0].packet.payload {
            Payload::IzReq { legs, .. } => legs.clone(),
            other => panic!("{other:?}"),
        };
        assert_ne!(first_legs, second_legs, "retry must try the other path");
        // Third expiry: retry budget exhausted → abandoned.
        let a3 = dest.on_timer(&v, m, TimerKind::DataWait, IZ_GEN_BASE + 2);
        assert!(a3.iter().any(|a| matches!(a, Action::Abandoned { .. })));
        // A fresh query revives the machinery.
        let q = Packet {
            meta: m,
            from: NodeId::new(8),
            payload: Payload::IzAdv {
                ttl: 2,
                path: vec![NodeId::new(0), NodeId::new(4), NodeId::new(8)],
            },
        };
        let revived = dest.on_packet(&v, &q, true);
        assert!(revived.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::AdvWait,
                ..
            }
        )));
    }

    #[test]
    fn local_adv_preempts_interzone_pull() {
        let (zones, tables) = fixture();
        let m = meta();
        let mut dest = node();
        let v = view(&zones, &tables[12], 12);
        let q = Packet {
            meta: m,
            from: NodeId::new(8),
            payload: Payload::IzAdv {
                ttl: 2,
                path: vec![NodeId::new(0), NodeId::new(4), NodeId::new(8)],
            },
        };
        dest.on_packet(&v, &q, true);
        // A plain ADV from an adjacent holder (node 11, cached) arrives
        // before τADV expires.
        let adv = Packet {
            meta: m,
            from: NodeId::new(11),
            payload: Payload::Adv,
        };
        let actions = dest.on_packet(&v, &adv, true);
        assert!(sends(&actions)
            .iter()
            .any(|f| matches!(f.packet.payload, Payload::Req { .. })));
        // The inter-zone τADV expiry now stands down.
        let after = dest.on_timer(&v, m, TimerKind::AdvWait, IZ_GEN_BASE + 1);
        assert!(sends(&after).is_empty(), "base negotiation owns the item");
    }

    #[test]
    fn failure_invalidates_timers_and_repair_resumes() {
        let (zones, tables) = fixture();
        let m = meta();
        let mut dest = node();
        let v = view(&zones, &tables[12], 12);
        let q = Packet {
            meta: m,
            from: NodeId::new(8),
            payload: Payload::IzAdv {
                ttl: 2,
                path: vec![NodeId::new(0), NodeId::new(4), NodeId::new(8)],
            },
        };
        dest.on_packet(&v, &q, true);
        dest.on_timer(&v, m, TimerKind::AdvWait, IZ_GEN_BASE + 1); // REQ out
        dest.on_failed();
        // Stale τDAT is ignored.
        assert!(dest
            .on_timer(&v, m, TimerKind::DataWait, IZ_GEN_BASE + 1)
            .is_empty());
        // Repair relaunches the pull.
        let actions = dest.on_repaired(&v);
        assert!(sends(&actions)
            .iter()
            .any(|f| matches!(f.packet.payload, Payload::IzReq { .. })));
    }

    #[test]
    fn query_loops_are_cut_by_path_membership() {
        let (zones, tables) = fixture();
        let mut relay = node();
        let v = view(&zones, &tables[4], 4);
        // A (malformed) query that already lists node 4 must not be relayed
        // again even though the dedup set is empty.
        let q = Packet {
            meta: meta(),
            from: NodeId::new(8),
            payload: Payload::IzAdv {
                ttl: 3,
                path: vec![NodeId::new(0), NodeId::new(4), NodeId::new(8)],
            },
        };
        assert!(sends(&relay.on_packet(&v, &q, false)).is_empty());
    }

    #[test]
    fn routes_rebuilt_clears_relay_dedup() {
        let (zones, tables) = fixture();
        let mut relay = node();
        let v = view(&zones, &tables[4], 4);
        let q = Packet {
            meta: meta(),
            from: NodeId::new(0),
            payload: Payload::IzAdv {
                ttl: 4,
                path: vec![NodeId::new(0)],
            },
        };
        relay.on_packet(&v, &q, false);
        assert!(relay.has_relayed(meta()));
        relay.on_routes_rebuilt(&v);
        assert!(!relay.has_relayed(meta()));
    }
}
