//! Protocol packets and transmit descriptors.

use spms_net::NodeId;
use spms_phy::{EnergyCategory, PowerLevel};

use crate::MetaId;

/// The three packet kinds of the SPIN/SPMS negotiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Metadata advertisement, broadcast zone-wide.
    Adv,
    /// Request for data, unicast (directly or along the shortest path).
    Req,
    /// The data itself, unicast (directly or along the reverse REQ path).
    Data,
}

impl PacketKind {
    /// The energy category charges for this kind map to.
    #[must_use]
    pub fn energy_category(self) -> EnergyCategory {
        match self {
            PacketKind::Adv => EnergyCategory::Adv,
            PacketKind::Req => EnergyCategory::Req,
            PacketKind::Data => EnergyCategory::Data,
        }
    }
}

/// On-air packet sizes in bytes (Table 1: ADV = REQ = 2 B, DATA:REQ = 20,
/// i.e. DATA = 40 B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketSizes {
    /// ADV size in bytes.
    pub adv: u32,
    /// REQ size in bytes.
    pub req: u32,
    /// DATA size in bytes.
    pub data: u32,
}

impl PacketSizes {
    /// Table 1 values.
    #[must_use]
    pub fn paper_defaults() -> Self {
        PacketSizes {
            adv: 2,
            req: 2,
            data: 40,
        }
    }

    /// Size of a packet of the given kind.
    #[must_use]
    pub fn bytes(&self, kind: PacketKind) -> u32 {
        match kind {
            PacketKind::Adv => self.adv,
            PacketKind::Req => self.req,
            PacketKind::Data => self.data,
        }
    }

    /// Validates the sizes.
    ///
    /// # Errors
    ///
    /// Returns a message if any size is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.adv == 0 || self.req == 0 || self.data == 0 {
            return Err("packet sizes must be positive".into());
        }
        Ok(())
    }
}

impl Default for PacketSizes {
    fn default() -> Self {
        PacketSizes::paper_defaults()
    }
}

/// Kind-specific packet contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Metadata advertisement.
    Adv,
    /// Data request.
    Req {
        /// The node that wants the data.
        origin: NodeId,
        /// The node the request is destined for (the PRONE / source).
        target: NodeId,
        /// Nodes traversed so far, starting with `origin`, excluding the
        /// current holder — the record route the DATA retraces.
        path: Vec<NodeId>,
    },
    /// Data transfer.
    Data {
        /// The final consumer.
        dest: NodeId,
        /// Remaining relays to visit, in order (empty = this hop is the
        /// final one).
        route: Vec<NodeId>,
    },
    /// Inter-zone metadata query (SPMS-IZ, the paper's §6 extension): a
    /// bordercast advertisement re-broadcast across zones by border relays.
    /// Unlike a plain [`Payload::Adv`], the transmitter does **not**
    /// necessarily hold the data — only the first node of `path` (the
    /// source) is guaranteed to.
    IzAdv {
        /// Remaining rebroadcast budget in zone hops.
        ttl: u32,
        /// Border relays traversed, starting with the source.
        path: Vec<NodeId>,
    },
    /// Inter-zone data request: travels back along the reversed border path
    /// of the [`Payload::IzAdv`] that triggered it, each leg routed over the
    /// intra-zone shortest paths.
    IzReq {
        /// The node that wants the data.
        origin: NodeId,
        /// Remaining border waypoints to visit, ending with the source.
        legs: Vec<NodeId>,
        /// Node-level record route (starting with `origin`) the DATA
        /// retraces.
        path: Vec<NodeId>,
    },
}

impl Payload {
    /// The packet kind of this payload.
    #[must_use]
    pub fn kind(&self) -> PacketKind {
        match self {
            Payload::Adv | Payload::IzAdv { .. } => PacketKind::Adv,
            Payload::Req { .. } | Payload::IzReq { .. } => PacketKind::Req,
            Payload::Data { .. } => PacketKind::Data,
        }
    }
}

/// One protocol packet as handed to a receiver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// The metadata item the packet concerns.
    pub meta: MetaId,
    /// The node that transmitted this frame (the previous hop, not
    /// necessarily the origin).
    pub from: NodeId,
    /// Kind-specific contents.
    pub payload: Payload,
}

impl Packet {
    /// The packet kind.
    #[must_use]
    pub fn kind(&self) -> PacketKind {
        self.payload.kind()
    }
}

/// Link-layer addressing of an outgoing frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Addressee {
    /// Every zone neighbor within the chosen power level's range.
    Broadcast,
    /// A single node (others ignore the frame; per the paper's accounting,
    /// they are not charged receive energy for it).
    Unicast(NodeId),
}

/// A frame a protocol asks the engine to transmit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutFrame {
    /// Addressing.
    pub to: Addressee,
    /// Transmission power level.
    pub level: PowerLevel,
    /// The packet carried.
    pub packet: Packet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_table1() {
        let s = PacketSizes::paper_defaults();
        assert_eq!(s.bytes(PacketKind::Adv), 2);
        assert_eq!(s.bytes(PacketKind::Req), 2);
        assert_eq!(s.bytes(PacketKind::Data), 40);
        assert_eq!(s.data / s.req, 20, "DATA:REQ ratio from Table 1");
        assert!(s.validate().is_ok());
        assert!(PacketSizes {
            adv: 0,
            req: 2,
            data: 40
        }
        .validate()
        .is_err());
    }

    #[test]
    fn payload_kinds() {
        assert_eq!(Payload::Adv.kind(), PacketKind::Adv);
        let req = Payload::Req {
            origin: NodeId::new(1),
            target: NodeId::new(2),
            path: vec![NodeId::new(1)],
        };
        assert_eq!(req.kind(), PacketKind::Req);
        let data = Payload::Data {
            dest: NodeId::new(1),
            route: vec![],
        };
        assert_eq!(data.kind(), PacketKind::Data);
    }

    #[test]
    fn energy_categories_map_by_kind() {
        assert_eq!(PacketKind::Adv.energy_category(), EnergyCategory::Adv);
        assert_eq!(PacketKind::Req.energy_category(), EnergyCategory::Req);
        assert_eq!(PacketKind::Data.energy_category(), EnergyCategory::Data);
    }
}
