//! The SPIN baseline (Heinzelman, Kulik, Balakrishnan — point-to-point
//! variant, as the paper describes it).
//!
//! Every packet is transmitted at the single zone power level. The state
//! machine per data item:
//!
//! 1. A node with new data broadcasts **ADV** to its zone.
//! 2. A node hearing an ADV for data it needs sends **REQ** to the
//!    advertiser (unicast, same power level).
//! 3. The advertiser answers each REQ with a unicast **DATA**.
//! 4. A node that obtains data re-advertises it once in its own zone, which
//!    is how data crosses zone boundaries.
//!
//! SPIN has no routing state and — in Heinzelman et al.'s SPIN-PP, which
//! the paper baselines against — **no timers**: a node simply sends a REQ
//! to every advertiser it hears while it still lacks the data, which also
//! provides its (partial, emergent) fault tolerance ("the nodes which have
//! the data re-advertise and the nodes which could not get the data
//! eventually get the data from them"). That is the default here
//! (`suppression = false`); the cost is SPIN's characteristic request/data
//! implosion, which the run metrics count as duplicates.
//!
//! `suppression = true` selects a politer ablation variant: after sending a
//! REQ, further ADVs for the item are ignored for one τDAT window, and a
//! retry timer re-requests round-robin from known advertisers. The ablation
//! bench compares the two.

use std::collections::BTreeMap;

use crate::{Action, DataStore, MetaId, NodeView, Packet, Payload, Protocol, TimerKind};

/// Per-item negotiation state.
#[derive(Clone, Debug, Default)]
struct SpinEntry {
    interested: bool,
    advertised: bool,
    /// Advertisers heard so far, in arrival order (deduplicated).
    advertisers: Vec<spms_net::NodeId>,
    /// Index of the next advertiser to try on retry.
    next_advertiser: usize,
    /// An outstanding REQ suppresses further REQs until τDAT fires.
    req_outstanding: bool,
    /// Timer generation for lazy cancellation.
    dat_gen: u32,
    /// REQs sent so far (bounds the autonomous retry chain).
    attempts: u32,
    /// Whether this item's retry chain was abandoned (revived by new ADVs).
    abandoned: bool,
}

/// SPIN protocol state for one node.
#[derive(Clone, Debug)]
pub struct SpinNode {
    store: DataStore,
    entries: BTreeMap<MetaId, SpinEntry>,
    suppression: bool,
    max_attempts: u32,
    /// SPIN-BC mode: answer the first REQ with a zone-wide DATA broadcast
    /// serving every requester at once (Heinzelman et al.'s broadcast
    /// variant), instead of one unicast per REQ.
    broadcast_data: bool,
    /// Items already served by broadcast (BC mode de-duplication).
    served_broadcast: std::collections::BTreeSet<MetaId>,
}

impl SpinNode {
    /// Creates a node (point-to-point DATA, as the paper describes).
    ///
    /// `suppression` enables the REQ suppression window; `max_attempts`
    /// bounds autonomous retries (new ADVs always revive an item).
    #[must_use]
    pub fn new(suppression: bool, max_attempts: u32) -> Self {
        SpinNode {
            store: DataStore::new(),
            entries: BTreeMap::new(),
            suppression,
            max_attempts,
            broadcast_data: false,
            served_broadcast: std::collections::BTreeSet::new(),
        }
    }

    /// Switches the node to SPIN-BC (broadcast DATA) mode.
    #[must_use]
    pub fn with_broadcast_data(mut self) -> Self {
        self.broadcast_data = true;
        self
    }

    /// Number of data items held.
    #[must_use]
    pub fn items_held(&self) -> usize {
        self.store.len()
    }

    fn advertise_once(&mut self, view: &NodeView<'_>, meta: MetaId, out: &mut Vec<Action>) {
        let entry = self.entries.entry(meta).or_default();
        if !entry.advertised {
            entry.advertised = true;
            out.push(Action::Send(view.adv_frame(meta)));
        }
    }

    /// Sends a REQ to `to`; in the suppressed variant also arms the
    /// retry/suppression timer (pure SPIN-PP has no timers).
    fn request_from(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        to: spms_net::NodeId,
        out: &mut Vec<Action>,
    ) {
        let suppression = self.suppression;
        let entry = self.entries.entry(meta).or_default();
        // SPIN transmits everything at the zone power level, including REQs
        // (it has no routing tables to pick anything lower).
        let frame = crate::OutFrame {
            to: crate::Addressee::Unicast(to),
            level: view.zones.adv_level(),
            packet: Packet {
                meta,
                from: view.node,
                payload: Payload::Req {
                    origin: view.node,
                    target: to,
                    path: vec![view.node],
                },
            },
        };
        entry.attempts += 1;
        out.push(Action::Send(frame));
        if suppression {
            entry.req_outstanding = true;
            entry.dat_gen += 1;
            out.push(Action::SetTimer {
                meta,
                kind: TimerKind::DataWait,
                gen: entry.dat_gen,
                after: view.timeouts.dat,
            });
        }
    }
}

impl Protocol for SpinNode {
    fn on_generate(&mut self, view: &NodeView<'_>, meta: MetaId) -> Vec<Action> {
        let mut out = Vec::new();
        if self.store.insert(meta) {
            self.advertise_once(view, meta, &mut out);
        }
        out
    }

    fn on_packet(&mut self, view: &NodeView<'_>, packet: &Packet, interested: bool) -> Vec<Action> {
        let meta = packet.meta;
        let mut out = Vec::new();
        match &packet.payload {
            Payload::Adv => {
                if self.store.contains(meta) || !interested {
                    return out;
                }
                let entry = self.entries.entry(meta).or_default();
                entry.interested = true;
                // Each holder advertises once, so a repeated ADV from the
                // same node only occurs after its repair; either way, one
                // REQ per advertiser suffices in pure SPIN.
                if entry.advertisers.contains(&packet.from) {
                    return out;
                }
                entry.advertisers.push(packet.from);
                let suppressed = self.suppression && entry.req_outstanding;
                if !suppressed {
                    // A fresh ADV revives an abandoned item.
                    entry.abandoned = false;
                    entry.attempts = entry.attempts.min(self.max_attempts - 1);
                    self.request_from(view, meta, packet.from, &mut out);
                }
            }
            Payload::Req { origin, .. } => {
                // SPIN is single-hop: every REQ we receive targets us.
                if self.store.contains(meta) {
                    if self.broadcast_data {
                        // SPIN-BC: one zone-wide DATA serves all requesters.
                        if self.served_broadcast.insert(meta) {
                            out.push(Action::Send(crate::OutFrame {
                                to: crate::Addressee::Broadcast,
                                level: view.zones.adv_level(),
                                packet: Packet {
                                    meta,
                                    from: view.node,
                                    payload: Payload::Data {
                                        dest: view.node, // ignored for broadcast
                                        route: vec![],
                                    },
                                },
                            }));
                        }
                        return out;
                    }
                    let frame = crate::OutFrame {
                        to: crate::Addressee::Unicast(*origin),
                        level: view.zones.adv_level(),
                        packet: Packet {
                            meta,
                            from: view.node,
                            payload: Payload::Data {
                                dest: *origin,
                                route: vec![],
                            },
                        },
                    };
                    out.push(Action::Send(frame));
                }
            }
            Payload::Data { .. } => {
                if self.store.insert(meta) {
                    let entry = self.entries.entry(meta).or_default();
                    entry.req_outstanding = false;
                    entry.dat_gen += 1; // cancels the retry timer
                    if interested {
                        out.push(Action::Delivered { meta });
                    }
                    self.advertise_once(view, meta, &mut out);
                } else {
                    out.push(Action::Duplicate { meta });
                }
            }
            // Inter-zone packets belong to SPMS-IZ runs; a SPIN node never
            // participates in one.
            Payload::IzAdv { .. } | Payload::IzReq { .. } => {}
        }
        out
    }

    fn on_timer(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        kind: TimerKind,
        gen: u32,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        if kind != TimerKind::DataWait {
            return out;
        }
        let Some(entry) = self.entries.get_mut(&meta) else {
            return out;
        };
        if entry.dat_gen != gen || self.store.contains(meta) {
            return out; // stale or already satisfied
        }
        entry.req_outstanding = false;
        if entry.attempts >= self.max_attempts {
            if !entry.abandoned {
                entry.abandoned = true;
                out.push(Action::Abandoned { meta });
            }
            return out;
        }
        // Retry from the next known advertiser (round robin).
        if entry.advertisers.is_empty() {
            return out;
        }
        entry.next_advertiser = (entry.next_advertiser + 1) % entry.advertisers.len();
        let to = entry.advertisers[entry.next_advertiser];
        self.request_from(view, meta, to, &mut out);
        out
    }

    fn on_failed(&mut self) {
        // Transient failure: the data store survives; in-flight negotiation
        // is invalidated (timers become stale, outstanding REQs forgotten).
        for entry in self.entries.values_mut() {
            entry.dat_gen += 1;
            entry.req_outstanding = false;
        }
    }

    fn on_repaired(&mut self, view: &NodeView<'_>) -> Vec<Action> {
        let mut out = Vec::new();
        // Resume pending items that already know an advertiser.
        let pending: Vec<(MetaId, spms_net::NodeId)> = self
            .entries
            .iter()
            .filter(|(m, e)| {
                e.interested
                    && !e.abandoned
                    && !self.store.contains(**m)
                    && !e.advertisers.is_empty()
            })
            .map(|(m, e)| (*m, e.advertisers[e.next_advertiser % e.advertisers.len()]))
            .collect();
        for (meta, to) in pending {
            self.request_from(view, meta, to, &mut out);
        }
        out
    }

    fn has_data(&self, meta: MetaId) -> bool {
        self.store.contains(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addressee, PacketKind, Timeouts};
    use spms_kernel::SimTime;
    use spms_net::{placement, NodeId, ZoneTable};
    use spms_phy::RadioProfile;
    use spms_routing::RoutingTable;

    fn fixture() -> (ZoneTable, RoutingTable) {
        let topo = placement::grid(3, 1, 5.0).unwrap();
        (
            ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0),
            RoutingTable::new(2),
        )
    }

    fn view<'a>(zones: &'a ZoneTable, routing: &'a RoutingTable, node: u32) -> NodeView<'a> {
        NodeView {
            node: NodeId::new(node),
            now: SimTime::ZERO,
            zones,
            routing,
            timeouts: Timeouts {
                adv: SimTime::from_millis(1),
                dat: SimTime::from_millis_f64(2.5),
            },
            battery_frac: 1.0,
            low_battery_threshold: 0.0,
        }
    }

    fn meta() -> MetaId {
        MetaId::new(NodeId::new(0), 0)
    }

    fn adv_from(from: u32) -> Packet {
        Packet {
            meta: meta(),
            from: NodeId::new(from),
            payload: Payload::Adv,
        }
    }

    fn data_from(from: u32, dest: u32) -> Packet {
        Packet {
            meta: meta(),
            from: NodeId::new(from),
            payload: Payload::Data {
                dest: NodeId::new(dest),
                route: vec![],
            },
        }
    }

    #[test]
    fn generate_stores_and_advertises_once() {
        let (zones, routing) = fixture();
        let mut n = SpinNode::new(true, 4);
        let v = view(&zones, &routing, 0);
        let actions = n.on_generate(&v, meta());
        assert_eq!(actions.len(), 1);
        assert!(matches!(&actions[0], Action::Send(f) if f.packet.kind() == PacketKind::Adv));
        assert!(n.has_data(meta()));
        // Regenerating the same item does not re-advertise.
        assert!(n.on_generate(&v, meta()).is_empty());
    }

    #[test]
    fn adv_triggers_req_when_interested() {
        let (zones, routing) = fixture();
        let mut n = SpinNode::new(true, 4);
        let v = view(&zones, &routing, 1);
        let actions = n.on_packet(&v, &adv_from(0), true);
        let send = actions.iter().find_map(|a| match a {
            Action::Send(f) => Some(f),
            _ => None,
        });
        let f = send.expect("REQ sent");
        assert_eq!(f.packet.kind(), PacketKind::Req);
        assert_eq!(f.to, Addressee::Unicast(NodeId::new(0)));
        // SPIN transmits at the zone level, never lower.
        assert_eq!(f.level, zones.adv_level());
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::DataWait,
                ..
            }
        )));
    }

    #[test]
    fn adv_ignored_when_uninterested_or_holding() {
        let (zones, routing) = fixture();
        let mut n = SpinNode::new(true, 4);
        let v = view(&zones, &routing, 1);
        assert!(n.on_packet(&v, &adv_from(0), false).is_empty());
        n.on_generate(&v, meta());
        assert!(n.on_packet(&v, &adv_from(0), true).is_empty());
    }

    #[test]
    fn suppression_window_blocks_second_req() {
        let (zones, routing) = fixture();
        let mut n = SpinNode::new(true, 4);
        let v = view(&zones, &routing, 1);
        assert!(!n.on_packet(&v, &adv_from(0), true).is_empty());
        // Second ADV while REQ outstanding: suppressed.
        assert!(n.on_packet(&v, &adv_from(2), true).is_empty());
        // Without suppression, each ADV triggers a REQ (implosion).
        let mut loud = SpinNode::new(false, 4);
        assert!(!loud.on_packet(&v, &adv_from(0), true).is_empty());
        assert!(!loud.on_packet(&v, &adv_from(2), true).is_empty());
    }

    #[test]
    fn req_answered_only_with_data_held() {
        let (zones, routing) = fixture();
        let mut n = SpinNode::new(true, 4);
        let v = view(&zones, &routing, 0);
        let req = Packet {
            meta: meta(),
            from: NodeId::new(1),
            payload: Payload::Req {
                origin: NodeId::new(1),
                target: NodeId::new(0),
                path: vec![NodeId::new(1)],
            },
        };
        assert!(n.on_packet(&v, &req, false).is_empty());
        n.on_generate(&v, meta());
        let actions = n.on_packet(&v, &req, false);
        assert!(matches!(&actions[0], Action::Send(f)
            if f.packet.kind() == PacketKind::Data && f.to == Addressee::Unicast(NodeId::new(1))));
    }

    #[test]
    fn data_delivers_and_readvertises() {
        let (zones, routing) = fixture();
        let mut n = SpinNode::new(true, 4);
        let v = view(&zones, &routing, 1);
        n.on_packet(&v, &adv_from(0), true);
        let actions = n.on_packet(&v, &data_from(0, 1), true);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Delivered { .. })));
        assert!(actions.iter().any(|a| matches!(a, Action::Send(f)
            if f.packet.kind() == PacketKind::Adv)));
        // A second copy counts as a duplicate.
        let dup = n.on_packet(&v, &data_from(2, 1), true);
        assert!(matches!(dup[0], Action::Duplicate { .. }));
    }

    #[test]
    fn timer_retries_next_advertiser_then_abandons() {
        let (zones, routing) = fixture();
        let mut n = SpinNode::new(true, 2);
        let v = view(&zones, &routing, 1);
        n.on_packet(&v, &adv_from(0), true); // attempt 1, advertisers=[0]
        n.on_packet(&v, &adv_from(2), true); // suppressed, advertisers=[0,2]
        let gen1 = 1;
        let actions = n.on_timer(&v, meta(), TimerKind::DataWait, gen1);
        // attempt 2: retry to the other advertiser (round robin).
        let f = actions
            .iter()
            .find_map(|a| match a {
                Action::Send(f) => Some(f),
                _ => None,
            })
            .expect("retry REQ");
        assert_eq!(f.to, Addressee::Unicast(NodeId::new(2)));
        // Next expiry exceeds max_attempts → abandoned.
        let actions = n.on_timer(&v, meta(), TimerKind::DataWait, 2);
        assert!(matches!(actions[0], Action::Abandoned { .. }));
        // Stale timer generations are ignored.
        assert!(n.on_timer(&v, meta(), TimerKind::DataWait, 1).is_empty());
    }

    #[test]
    fn spin_bc_broadcasts_data_once() {
        let (zones, routing) = fixture();
        let mut n = SpinNode::new(true, 4).with_broadcast_data();
        let v = view(&zones, &routing, 0);
        n.on_generate(&v, meta());
        let req = |from: u32| Packet {
            meta: meta(),
            from: NodeId::new(from),
            payload: Payload::Req {
                origin: NodeId::new(from),
                target: NodeId::new(0),
                path: vec![NodeId::new(from)],
            },
        };
        let first = n.on_packet(&v, &req(1), false);
        assert!(matches!(&first[0], Action::Send(f)
            if f.packet.kind() == PacketKind::Data && f.to == Addressee::Broadcast));
        // The second REQ is already covered by the broadcast.
        assert!(n.on_packet(&v, &req(2), false).is_empty());
    }

    #[test]
    fn failure_invalidates_inflight_and_repair_rerequests() {
        let (zones, routing) = fixture();
        let mut n = SpinNode::new(true, 4);
        let v = view(&zones, &routing, 1);
        n.on_packet(&v, &adv_from(0), true);
        n.on_failed();
        // The pre-failure timer generation is now stale.
        assert!(n.on_timer(&v, meta(), TimerKind::DataWait, 1).is_empty());
        let actions = n.on_repaired(&v);
        assert!(actions.iter().any(|a| matches!(a, Action::Send(f)
            if f.packet.kind() == PacketKind::Req)));
    }
}
