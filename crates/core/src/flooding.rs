//! Classic flooding — the strawman baseline the paper's introduction
//! motivates against.
//!
//! "The baseline protocol can be considered to be flooding or broadcast,
//! where each node retransmits the data it receives to all its neighbors
//! … However, it results in data implosion with the destination getting
//! multiple data packets from multiple paths." There is no negotiation:
//! full DATA packets are broadcast zone-wide and rebroadcast once per node.

use std::collections::BTreeSet;

use crate::{
    Action, Addressee, DataStore, MetaId, NodeView, OutFrame, Packet, Payload, Protocol, TimerKind,
};

/// Flooding protocol state for one node.
#[derive(Clone, Debug, Default)]
pub struct FloodingNode {
    store: DataStore,
    rebroadcast_done: BTreeSet<MetaId>,
}

impl FloodingNode {
    /// Creates a node.
    #[must_use]
    pub fn new() -> Self {
        FloodingNode::default()
    }

    /// Number of data items held.
    #[must_use]
    pub fn items_held(&self) -> usize {
        self.store.len()
    }

    fn broadcast_data(&mut self, view: &NodeView<'_>, meta: MetaId) -> Option<Action> {
        if !self.rebroadcast_done.insert(meta) {
            return None;
        }
        Some(Action::Send(OutFrame {
            to: Addressee::Broadcast,
            level: view.zones.adv_level(),
            packet: Packet {
                meta,
                from: view.node,
                payload: Payload::Data {
                    dest: view.node, // ignored for broadcasts
                    route: vec![],
                },
            },
        }))
    }
}

impl Protocol for FloodingNode {
    fn on_generate(&mut self, view: &NodeView<'_>, meta: MetaId) -> Vec<Action> {
        let mut out = Vec::new();
        if self.store.insert(meta) {
            out.extend(self.broadcast_data(view, meta));
        }
        out
    }

    fn on_packet(&mut self, view: &NodeView<'_>, packet: &Packet, interested: bool) -> Vec<Action> {
        let mut out = Vec::new();
        if !matches!(packet.payload, Payload::Data { .. }) {
            return out; // flooding has no ADV/REQ
        }
        let meta = packet.meta;
        if self.store.insert(meta) {
            if interested {
                out.push(Action::Delivered { meta });
            }
            out.extend(self.broadcast_data(view, meta));
        } else {
            // The implosion the paper's introduction describes.
            out.push(Action::Duplicate { meta });
        }
        out
    }

    fn on_timer(
        &mut self,
        _view: &NodeView<'_>,
        _meta: MetaId,
        _kind: TimerKind,
        _gen: u32,
    ) -> Vec<Action> {
        Vec::new() // flooding uses no timers
    }

    fn on_failed(&mut self) {}

    fn on_repaired(&mut self, _view: &NodeView<'_>) -> Vec<Action> {
        Vec::new()
    }

    fn has_data(&self, meta: MetaId) -> bool {
        self.store.contains(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PacketKind, Timeouts};
    use spms_kernel::SimTime;
    use spms_net::{placement, NodeId, ZoneTable};
    use spms_phy::RadioProfile;
    use spms_routing::RoutingTable;

    fn fixture() -> (ZoneTable, RoutingTable) {
        let topo = placement::grid(3, 1, 5.0).unwrap();
        (
            ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0),
            RoutingTable::new(2),
        )
    }

    fn view<'a>(zones: &'a ZoneTable, routing: &'a RoutingTable, node: u32) -> NodeView<'a> {
        NodeView {
            node: NodeId::new(node),
            now: SimTime::ZERO,
            zones,
            routing,
            timeouts: Timeouts {
                adv: SimTime::from_millis(1),
                dat: SimTime::from_millis(2),
            },
            battery_frac: 1.0,
            low_battery_threshold: 0.0,
        }
    }

    fn meta() -> MetaId {
        MetaId::new(NodeId::new(0), 0)
    }

    #[test]
    fn generate_broadcasts_full_data() {
        let (zones, routing) = fixture();
        let mut n = FloodingNode::new();
        let v = view(&zones, &routing, 0);
        let actions = n.on_generate(&v, meta());
        assert_eq!(actions.len(), 1);
        assert!(matches!(&actions[0], Action::Send(f)
            if f.packet.kind() == PacketKind::Data && f.to == Addressee::Broadcast));
    }

    #[test]
    fn first_copy_delivers_and_rebroadcasts_once() {
        let (zones, routing) = fixture();
        let mut n = FloodingNode::new();
        let v = view(&zones, &routing, 1);
        let data = Packet {
            meta: meta(),
            from: NodeId::new(0),
            payload: Payload::Data {
                dest: NodeId::new(0),
                route: vec![],
            },
        };
        let actions = n.on_packet(&v, &data, true);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Delivered { .. })));
        assert!(actions.iter().any(|a| matches!(a, Action::Send(_))));
        // Second copy: duplicate, no rebroadcast.
        let again = n.on_packet(&v, &data, true);
        assert_eq!(again.len(), 1);
        assert!(matches!(again[0], Action::Duplicate { .. }));
    }

    #[test]
    fn ignores_control_packets_and_timers() {
        let (zones, routing) = fixture();
        let mut n = FloodingNode::new();
        let v = view(&zones, &routing, 1);
        let adv = Packet {
            meta: meta(),
            from: NodeId::new(0),
            payload: Payload::Adv,
        };
        assert!(n.on_packet(&v, &adv, true).is_empty());
        assert!(n.on_timer(&v, meta(), TimerKind::AdvWait, 1).is_empty());
        assert!(n.on_repaired(&v).is_empty());
    }
}
