//! Simulation configuration: Table 1 defaults plus protocol knobs.

use spms_kernel::SimTime;
use spms_mac::{ContentionModel, MacTiming};
use spms_net::{ChurnConfig, ContactPlan, FailureConfig, MobilityConfig, ZoneTable};
use spms_phy::RadioProfile;
use spms_routing::TableLayout;

use crate::adversary::AdversaryConfig;
use crate::PacketSizes;

/// Which dissemination protocol a run simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The SPIN baseline: three-way handshake, every packet at the zone
    /// power level, no routing state.
    Spin,
    /// The paper's contribution: shortest-path multi-hop REQ/DATA with
    /// PRONE/SCONE failover.
    Spms,
    /// SPMS plus the §6 inter-zone extension: bordercast metadata queries
    /// and source-routed inter-zone requests (zone routing of the paper's
    /// reference \[4\]).
    SpmsIz,
    /// Classic flooding (the paper's motivating strawman): every node
    /// rebroadcasts every data packet once.
    Flooding,
}

impl ProtocolKind {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Spin => "SPIN",
            ProtocolKind::Spms => "SPMS",
            ProtocolKind::SpmsIz => "SPMS-IZ",
            ProtocolKind::Flooding => "FLOOD",
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which event kernel drives the discrete-event loop.
///
/// All three choices are **wall-clock knobs**: the kernels share one
/// contract — global `(time, insertion seq)` order, FIFO on ties,
/// zero-delay reschedules delivered in the current pass — so a run's
/// `RunMetrics` are byte-identical whichever kernel executes it
/// (differentially proven in `spms-kernel` and re-checked end to end in
/// `tests/integration_determinism.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EventKernel {
    /// Binary-heap [`spms_kernel::EventQueue`] popped one event at a time —
    /// the trusted reference kernel and the default.
    #[default]
    Heap,
    /// Hierarchical [`spms_kernel::TimerWheel`], O(1) amortized
    /// schedule/pop, popped one event at a time.
    Wheel,
    /// The timer wheel drained one *timestamp* at a time
    /// ([`spms_kernel::TimerWheel::drain_next`]): all simultaneous events
    /// are pulled into a reusable buffer and dispatched as one slice,
    /// amortizing queue bookkeeping across ties.
    WheelBatched,
}

impl EventKernel {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKernel::Heap => "heap",
            EventKernel::Wheel => "wheel",
            EventKernel::WheelBatched => "wheel-batched",
        }
    }
}

impl std::fmt::Display for EventKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for EventKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(EventKernel::Heap),
            "wheel" => Ok(EventKernel::Wheel),
            "wheel-batched" => Ok(EventKernel::WheelBatched),
            other => Err(format!(
                "unknown event kernel '{other}' (expected heap, wheel, or wheel-batched)"
            )),
        }
    }
}

/// How SPMS routing tables are produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingMode {
    /// Run the distributed Bellman-Ford message exchange, charging its
    /// energy and pausing data until convergence (the paper's model; used
    /// by the mobility experiments).
    Distributed,
    /// Install converged tables instantly and free of charge. Valid for
    /// static failure-free experiments where the paper's measurements begin
    /// after the initial route formation.
    Oracle,
}

/// Resolved protocol timers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timeouts {
    /// τADV — wait for a closer relay's advertisement.
    pub adv: SimTime,
    /// τDAT — wait for data after sending a REQ.
    pub dat: SimTime,
}

/// How τADV/τDAT are chosen.
///
/// Table 1 lists fixed values (1.0 ms and 2.5 ms), but the paper's own
/// analysis requires the timeouts to exceed a protocol round
/// ("we assume that TOutADV is adjusted properly so that the timer does not
/// go off before B sends ADV", and it derives
/// `TOutADV > G·ns² + R·Ttx + Tproc + D·Ttx + G·ns² + Tproc`). With the
/// paper's own G = 0.01 and n1 = 45, a round is ≈22 ms — far above the
/// Table 1 constants, which would fire spuriously on every transfer. We
/// therefore default to the adaptive rule and keep the fixed values
/// available for sensitivity studies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TimeoutPolicy {
    /// Use the given values verbatim.
    Fixed(Timeouts),
    /// Scale a protocol-round estimate: τADV = `adv_factor` × Tround,
    /// τDAT = `dat_factor` × Tround.
    Adaptive {
        /// Multiplier for τADV.
        adv_factor: f64,
        /// Multiplier for τDAT.
        dat_factor: f64,
    },
}

impl TimeoutPolicy {
    /// The Table 1 constants (1.0 ms / 2.5 ms).
    #[must_use]
    pub fn table1() -> Self {
        TimeoutPolicy::Fixed(Timeouts {
            adv: SimTime::from_millis(1),
            dat: SimTime::from_millis_f64(2.5),
        })
    }

    /// The default adaptive rule.
    #[must_use]
    pub fn adaptive_default() -> Self {
        TimeoutPolicy::Adaptive {
            adv_factor: 1.25,
            dat_factor: 2.0,
        }
    }

    /// Resolves the policy against a concrete deployment and protocol.
    ///
    /// τADV scales the paper's round estimate
    /// `Tround = access(n1) + 2·access(ns) + (A+R+D)·Ttx + 2·Tproc`.
    ///
    /// τDAT is a **failure detector**: it must exceed the protocol's own
    /// worst-case response time or it fires spuriously on every congested
    /// transfer (the paper's "adjusted properly" requirement). The dominant
    /// term is the serving node's transmit queue: a SPIN holder serves its
    /// whole zone (`n1` unicasts at zone power), while an SPMS holder
    /// serves only its low-power neighborhood (`ns` unicasts at minimum
    /// power). τDAT therefore scales `Tround + queue`, with the queue term
    /// protocol-specific.
    ///
    /// Densities use the worst-case zone population for `n1`, the mean
    /// lowest-level population for `ns`, and the *expected* access delay of
    /// the contention model in use.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn resolve(
        &self,
        protocol: ProtocolKind,
        zones: &ZoneTable,
        radio: &RadioProfile,
        timing: &MacTiming,
        contention: ContentionModel,
        sizes: &PacketSizes,
        proc_delay: SimTime,
    ) -> Timeouts {
        match *self {
            TimeoutPolicy::Fixed(t) => t,
            TimeoutPolicy::Adaptive {
                adv_factor,
                dat_factor,
            } => {
                let adv_level = zones.adv_level();
                let min_level = radio.min_power_level();
                let n1 = (0..zones.len())
                    .map(|i| zones.density_at_level(spms_net::NodeId::new(i as u32), adv_level))
                    .max()
                    .unwrap_or(1) as usize;
                let ns_sum: u64 = (0..zones.len())
                    .map(|i| {
                        u64::from(
                            zones.density_at_level(spms_net::NodeId::new(i as u32), min_level),
                        )
                    })
                    .sum();
                let ns = (ns_sum as f64 / zones.len() as f64).ceil() as usize;
                let round = contention.expected_access_delay(timing, n1)
                    + contention.expected_access_delay(timing, ns) * 2
                    + timing.tx_duration(sizes.adv + sizes.req + sizes.data)
                    + proc_delay * 2;
                // Worst-case serving-queue residence for one DATA response.
                let data_service = |n: usize| {
                    (contention.expected_access_delay(timing, n) + timing.tx_duration(sizes.data))
                        * n as u64
                };
                let queue = match protocol {
                    ProtocolKind::Spin => data_service(n1),
                    ProtocolKind::Spms | ProtocolKind::SpmsIz => data_service(ns),
                    ProtocolKind::Flooding => SimTime::ZERO, // no REQ/timer path
                };
                let adv = SimTime::from_millis_f64(round.as_millis_f64() * adv_factor)
                    .max(SimTime::from_micros(100));
                let dat = SimTime::from_millis_f64((round + queue).as_millis_f64() * dat_factor)
                    .max(SimTime::from_micros(100));
                Timeouts { adv, dat }
            }
        }
    }
}

/// Inter-zone (SPMS-IZ) tunables; only consulted when
/// [`ProtocolKind::SpmsIz`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IzConfig {
    /// Bordercast TTL in zone hops. `None` sizes it automatically from the
    /// deployment (the zone overlay's eccentricity), guaranteeing every
    /// reachable node hears the query.
    pub ttl: Option<u32>,
    /// Distinct border paths a destination remembers per item (its
    /// inter-zone failover ladder).
    pub paths_kept: usize,
}

impl IzConfig {
    /// Validates the inter-zone settings.
    ///
    /// # Errors
    ///
    /// Returns a message if `paths_kept` is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.paths_kept == 0 {
            return Err("interzone paths_kept must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for IzConfig {
    fn default() -> Self {
        IzConfig {
            ttl: None,
            paths_kept: 2,
        }
    }
}

/// Full configuration of one simulation run.
///
/// `SimConfig::paper_defaults()` reproduces Table 1; experiments override
/// the swept parameter and the protocol.
///
/// # Example
///
/// ```
/// use spms::{ProtocolKind, SimConfig};
///
/// let config = SimConfig::paper_defaults(ProtocolKind::Spms, 42);
/// assert_eq!(config.zone_radius_m, 20.0);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Which protocol to run.
    pub protocol: ProtocolKind,
    /// Master seed; every stochastic subsystem derives a sub-stream.
    pub seed: u64,
    /// Radio power/range table.
    pub radio: RadioProfile,
    /// MAC timing constants.
    pub mac: MacTiming,
    /// Channel-access delay law.
    pub contention: ContentionModel,
    /// Packet sizes.
    pub sizes: PacketSizes,
    /// τADV/τDAT selection.
    pub timeout_policy: TimeoutPolicy,
    /// Per-packet processing delay `Tproc` (Table 1: 0.02 ms).
    pub proc_delay: SimTime,
    /// The experiment's transmission radius, defining zones (default 20 m).
    pub zone_radius_m: f64,
    /// Route alternatives kept per destination (paper implementation: 2).
    pub k_routes: usize,
    /// Originator stack depth (PRONE + this many SCONEs; paper keeps 1).
    pub scones_kept: usize,
    /// REQ retry ladder length before a destination gives up until the next
    /// ADV (paper: implicit; bounded here for liveness).
    pub max_attempts: u32,
    /// Cache data at relays that merely forward it (paper §6 future work).
    pub relay_caching: bool,
    /// Let relays holding the data answer REQs destined further upstream.
    pub serve_from_cache: bool,
    /// Inter-zone (SPMS-IZ) settings.
    pub interzone: IzConfig,
    /// SPIN: suppress duplicate REQs for one service window after
    /// requesting (keeps the baseline from storming; ablatable).
    pub spin_req_suppression: bool,
    /// SPIN-BC: answer the first REQ with a zone-wide DATA broadcast
    /// instead of per-requester unicasts (the broadcast variant of
    /// Heinzelman et al.; ablatable).
    pub spin_broadcast_data: bool,
    /// How SPMS routing tables are formed.
    pub routing_mode: RoutingMode,
    /// In [`RoutingMode::Distributed`], rebuild routing state after a
    /// mobility epoch *incrementally*: only the zones the moved nodes
    /// actually touched are invalidated and re-converged via delta vectors,
    /// instead of re-executing the DBF from scratch. The resulting tables
    /// are identical (property-tested in `spms-routing`); only the
    /// message/byte/pause accounting shrinks to the triggered-update cost.
    /// Ignored in [`RoutingMode::Oracle`].
    pub incremental_routing: bool,
    /// Maintain the zone table **incrementally** across mobility epochs:
    /// the engine keeps a spatial-hash grid (`spms_net::SpatialGrid`, cell
    /// size = zone radius) over the field, builds zones from grid
    /// candidates (O(n·k) instead of the all-pairs O(n²)), and patches
    /// only the rows a mobility epoch actually perturbed
    /// (`ZoneTable::apply_moves`) — the moved nodes and everyone inside
    /// their old or new zones. The resulting tables are bit-identical to a
    /// from-scratch rebuild (property-tested in `spms-net`); only the
    /// epoch cost shrinks from O(n²) to O(k) rows. `false` rebuilds the
    /// table all-pairs every epoch — the reference path.
    pub incremental_zones: bool,
    /// Shard partitions for the delta re-convergence
    /// ([`spms_routing::DbfEngine::with_shards`]): each mobility window's
    /// dirty-destination exchange is cut into contiguous receiver ranges
    /// of balanced load and run on the engine's persistent worker pool.
    /// The shard count also sizes that pool — `shards − 1` threads,
    /// created lazily on the first heavy round, parked between rounds,
    /// reused across every epoch of the run, and dropped with the engine.
    /// `0` (the default) resolves to [`spms_kernel::host_parallelism`].
    /// The shard count can never change results — tables *and* stats are
    /// bit-identical for every value (property-tested in `spms-routing`),
    /// which `tests/integration_determinism.rs` re-checks end to end on
    /// whole `RunMetrics`.
    pub dbf_shards: usize,
    /// Mobility-epoch batching window: epochs accumulate their zone deltas
    /// (and any silent liveness flips) and re-converge routing **once** per
    /// `batch_epochs` epochs instead of per epoch. `1` (the default)
    /// re-converges every epoch — the paper's model. Larger windows trade
    /// bounded routing staleness inside the window (frames to stale links
    /// drop and protocols fail over, exactly as with
    /// `reconverge_on_failure = false`) for proportionally fewer delta
    /// exchanges; the flushed tables are bit-identical to per-epoch
    /// re-convergence under the final topology (property-tested). Only
    /// consulted with `incremental_routing` in
    /// [`RoutingMode::Distributed`].
    pub batch_epochs: u32,
    /// In [`RoutingMode::Distributed`] with `incremental_routing`, also
    /// re-converge the affected zone when a node fails, repairs, or dies of
    /// battery depletion. The paper's protocol instead rides out failures
    /// on its k alternative routes, so this defaults to `false`; enabling
    /// it models deployments that pay for routing repair instead of
    /// detouring.
    pub reconverge_on_failure: bool,
    /// With `reconverge_on_failure` **off** (the paper's detour model),
    /// still emit a pure-liveness [`spms_net::ZoneDelta`] for every
    /// failure, repair, battery death, and churn flip into the
    /// `batch_epochs` batching window, so the next flush retires the dead
    /// node's routes instead of letting stale next-hops linger until an
    /// unrelated rebuild. Default `true` (the silent-failure fix); `false`
    /// restores the legacy fold-into-next-rebuild behavior for ablations.
    /// Only consulted with `incremental_routing` in
    /// [`RoutingMode::Distributed`].
    pub queue_liveness_flips: bool,
    /// Per-node battery capacity in µJ (`None` = unlimited, the paper's
    /// measurement mode). When set, a node whose cumulative energy spend
    /// reaches the capacity **dies permanently** — the network-lifetime
    /// regime behind the paper's title and the EXT3 experiment.
    pub battery_capacity_uj: Option<f64>,
    /// §3.1 resource adaptation: below this remaining-battery fraction a
    /// node declines *third-party* forwarding duty (SPMS REQ relaying,
    /// SPMS-IZ bordercast relaying); its own exchanges continue. 0.0
    /// disables the behavior (default).
    pub low_battery_threshold: f64,
    /// Idle-listening power draw in mW (None = protocol-energy-only
    /// accounting, as the paper's tables imply). When set, every node is
    /// charged this draw for the whole run duration; since a run lasts
    /// until dissemination completes, slower protocols pay more — the
    /// realistic effect that compresses protocol-level energy ratios (see
    /// the idle-listening ablation and EXPERIMENTS.md).
    pub idle_listening_mw: Option<f64>,
    /// Transient failure injection (None = failure-free).
    pub failures: Option<FailureConfig>,
    /// Mobility process (None = static).
    pub mobility: Option<MobilityConfig>,
    /// Adversarial node behaviors (None = everyone honest). The adversary
    /// set is drawn from its own master-seed sub-stream, so it is a
    /// semantic knob like the seed — never affected by shards, workers,
    /// kernels, or layouts.
    pub adversary: Option<AdversaryConfig>,
    /// Mass join/leave churn process (None = no churn). Cohorts toggle
    /// liveness per epoch, stressing the incremental zone/DBF paths.
    pub churn: Option<ChurnConfig>,
    /// Scheduled connectivity (None = every link always up): per-link
    /// up/down windows fired as timed link flips through the same
    /// delta-batching machinery mobility uses. A semantic knob like
    /// `adversary` — it changes results by design, but never varies with
    /// shards, workers, kernels, or layouts. Node ids the plan names are
    /// range-checked against the topology when the simulation is built.
    pub contact_plan: Option<ContactPlan>,
    /// Hard stop for the run.
    pub horizon: SimTime,
    /// Trace buffer capacity (None = tracing disabled).
    pub trace_capacity: Option<usize>,
    /// Which event kernel drives the run (a wall-clock knob — results are
    /// byte-identical across all choices; default [`EventKernel::Heap`]).
    pub event_kernel: EventKernel,
    /// Arena layout for the distributed routing tables (another wall-clock
    /// knob — results are byte-identical across layouts, proven by the
    /// layout-differential suites in `spms-routing` and re-checked end to
    /// end in `tests/integration_determinism.rs`; default
    /// [`TableLayout::Soa`], with AoS retained as the oracle).
    pub table_layout: TableLayout,
}

impl SimConfig {
    /// Table 1 defaults: MICA2 radio, the paper's `G·n²`-plus-slotted-
    /// backoff MAC, 20 m radius, k = 2 routes, 1 SCONE, adaptive timeouts,
    /// SPIN with a REQ-suppression window (the pure timer-free SPIN-PP
    /// variant is available for ablations via `spin_req_suppression =
    /// false`), no failures, no mobility.
    #[must_use]
    pub fn paper_defaults(protocol: ProtocolKind, seed: u64) -> Self {
        SimConfig {
            protocol,
            seed,
            radio: RadioProfile::mica2(),
            mac: MacTiming::paper_defaults(),
            contention: ContentionModel::QuadraticWithBackoff,
            sizes: PacketSizes::paper_defaults(),
            timeout_policy: TimeoutPolicy::adaptive_default(),
            proc_delay: SimTime::from_micros(20),
            zone_radius_m: 20.0,
            k_routes: 2,
            scones_kept: 1,
            max_attempts: 4,
            relay_caching: false,
            serve_from_cache: false,
            interzone: IzConfig::default(),
            battery_capacity_uj: None,
            low_battery_threshold: 0.0,
            spin_req_suppression: true,
            spin_broadcast_data: false,
            routing_mode: RoutingMode::Oracle,
            incremental_routing: true,
            incremental_zones: true,
            dbf_shards: 0,
            batch_epochs: 1,
            reconverge_on_failure: false,
            queue_liveness_flips: true,
            idle_listening_mw: None,
            failures: None,
            mobility: None,
            adversary: None,
            churn: None,
            contact_plan: None,
            horizon: SimTime::from_secs(600),
            trace_capacity: None,
            event_kernel: EventKernel::Heap,
            table_layout: TableLayout::Soa,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.mac.validate()?;
        self.sizes.validate()?;
        if !(self.zone_radius_m.is_finite() && self.zone_radius_m > 0.0) {
            return Err(format!("bad zone radius {}", self.zone_radius_m));
        }
        if self.k_routes == 0 {
            return Err("k_routes must be at least 1".into());
        }
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1".into());
        }
        self.interzone.validate()?;
        if self.reconverge_on_failure && !self.incremental_routing {
            return Err("reconverge_on_failure requires incremental_routing".into());
        }
        if self.batch_epochs == 0 {
            return Err("batch_epochs must be at least 1".into());
        }
        if self.horizon == SimTime::ZERO {
            return Err("horizon must be positive".into());
        }
        if let Some(p) = self.idle_listening_mw {
            if !p.is_finite() || p < 0.0 {
                return Err(format!("idle listening power {p} must be >= 0"));
            }
        }
        if let Some(cap) = self.battery_capacity_uj {
            if !cap.is_finite() || cap <= 0.0 {
                return Err(format!("battery capacity {cap} must be positive"));
            }
        }
        if !self.low_battery_threshold.is_finite()
            || !(0.0..=1.0).contains(&self.low_battery_threshold)
        {
            return Err(format!(
                "low battery threshold {} outside [0, 1]",
                self.low_battery_threshold
            ));
        }
        if let Some(f) = &self.failures {
            f.validate()?;
        }
        if let Some(a) = &self.adversary {
            a.validate()?;
        }
        if let Some(ch) = &self.churn {
            // Re-validate the pub fields against the constructor's rules.
            ChurnConfig::new(ch.interval, ch.fraction)?;
        }
        if let TimeoutPolicy::Adaptive {
            adv_factor,
            dat_factor,
        } = self.timeout_policy
        {
            if adv_factor <= 0.0 || dat_factor <= 0.0 {
                return Err("timeout factors must be positive".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_net::placement;

    #[test]
    fn defaults_are_valid_and_match_table1() {
        let c = SimConfig::paper_defaults(ProtocolKind::Spms, 1);
        assert!(c.validate().is_ok());
        assert_eq!(c.proc_delay, SimTime::from_micros(20));
        assert_eq!(c.zone_radius_m, 20.0);
        assert_eq!(c.k_routes, 2);
        assert_eq!(c.sizes, PacketSizes::paper_defaults());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = SimConfig::paper_defaults(ProtocolKind::Spin, 1);
        c.zone_radius_m = -1.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_defaults(ProtocolKind::Spin, 1);
        c.k_routes = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_defaults(ProtocolKind::Spin, 1);
        c.timeout_policy = TimeoutPolicy::Adaptive {
            adv_factor: 0.0,
            dat_factor: 1.0,
        };
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_defaults(ProtocolKind::Spms, 1);
        c.batch_epochs = 0;
        assert!(c.validate().is_err());
        c.batch_epochs = 4;
        c.dbf_shards = 16;
        assert!(c.validate().is_ok(), "any shard count is valid (0 = auto)");
    }

    #[test]
    fn adversary_and_churn_settings_are_validated() {
        use crate::adversary::{AdversaryConfig, NodeBehavior};
        let mut c = SimConfig::paper_defaults(ProtocolKind::Spms, 1);
        assert!(c.adversary.is_none() && c.churn.is_none());
        assert!(c.queue_liveness_flips, "the silent-failure fix defaults on");
        c.adversary = Some(AdversaryConfig::new(NodeBehavior::Flooding, 0.25).unwrap());
        c.churn = Some(ChurnConfig::new(SimTime::from_millis(200), 0.3).unwrap());
        assert!(c.validate().is_ok());
        c.adversary.as_mut().unwrap().attack_factor = 0;
        assert!(c.validate().is_err());
        c.adversary.as_mut().unwrap().attack_factor = 3;
        c.adversary.as_mut().unwrap().fraction = 2.0;
        assert!(c.validate().is_err());
        c.adversary.as_mut().unwrap().fraction = 0.25;
        c.churn.as_mut().unwrap().fraction = -0.5;
        assert!(c.validate().is_err());
        c.churn.as_mut().unwrap().fraction = 1.0;
        assert!(
            c.validate().is_ok(),
            "a full-cohort churn fraction is legal"
        );
    }

    #[test]
    fn fixed_timeouts_resolve_verbatim() {
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        let t = TimeoutPolicy::table1().resolve(
            ProtocolKind::Spms,
            &zones,
            &RadioProfile::mica2(),
            &MacTiming::paper_defaults(),
            ContentionModel::BackoffOnly,
            &PacketSizes::paper_defaults(),
            SimTime::from_micros(20),
        );
        assert_eq!(t.adv, SimTime::from_millis(1));
        assert_eq!(t.dat, SimTime::from_millis_f64(2.5));
    }

    #[test]
    fn adaptive_timeouts_scale_with_zone_density_under_quadratic_mac() {
        let radio = RadioProfile::mica2();
        let timing = MacTiming::paper_defaults();
        let sizes = PacketSizes::paper_defaults();
        let proc = SimTime::from_micros(20);
        let policy = TimeoutPolicy::adaptive_default();
        let mac = ContentionModel::Quadratic;

        let small = placement::grid(13, 13, 5.0).unwrap();
        let z_small = ZoneTable::build(&small, &radio, 10.0);
        let z_large = ZoneTable::build(&small, &radio, 25.0);
        let t_small = policy.resolve(
            ProtocolKind::Spms,
            &z_small,
            &radio,
            &timing,
            mac,
            &sizes,
            proc,
        );
        let t_large = policy.resolve(
            ProtocolKind::Spms,
            &z_large,
            &radio,
            &timing,
            mac,
            &sizes,
            proc,
        );
        assert!(t_large.adv > t_small.adv, "denser zones need longer τADV");
        assert!(t_large.dat > t_large.adv, "τDAT exceeds τADV");
        // SPIN's τDAT covers its zone-wide serving queue, so it is larger.
        let spin = policy.resolve(
            ProtocolKind::Spin,
            &z_large,
            &radio,
            &timing,
            mac,
            &sizes,
            proc,
        );
        assert!(spin.dat > t_large.dat, "SPIN queue term dominates");
    }

    #[test]
    fn adaptive_timeouts_are_density_free_under_slotted_mac() {
        let radio = RadioProfile::mica2();
        let timing = MacTiming::paper_defaults();
        let sizes = PacketSizes::paper_defaults();
        let proc = SimTime::from_micros(20);
        let policy = TimeoutPolicy::adaptive_default();
        let mac = ContentionModel::BackoffOnly;
        let topo = placement::grid(13, 13, 5.0).unwrap();
        let z_small = ZoneTable::build(&topo, &radio, 10.0);
        let z_large = ZoneTable::build(&topo, &radio, 25.0);
        let t_small = policy.resolve(
            ProtocolKind::Spms,
            &z_small,
            &radio,
            &timing,
            mac,
            &sizes,
            proc,
        );
        let t_large = policy.resolve(
            ProtocolKind::Spms,
            &z_large,
            &radio,
            &timing,
            mac,
            &sizes,
            proc,
        );
        assert_eq!(
            t_small.adv, t_large.adv,
            "slotted backoff has no density term in τADV"
        );
    }

    #[test]
    fn adaptive_matches_round_formula_on_reference_zone() {
        // 13×13 grid at 20 m under the analytical MAC: n1 = 49, ns ~ 4.x →
        // Tround = 0.01·49² + 2·0.01·ns² + 44·0.05 + 2·0.02.
        let radio = RadioProfile::mica2();
        let topo = placement::grid(13, 13, 5.0).unwrap();
        let zones = ZoneTable::build(&topo, &radio, 20.0);
        let t = TimeoutPolicy::Adaptive {
            adv_factor: 1.0,
            dat_factor: 1.0,
        }
        .resolve(
            ProtocolKind::Spms,
            &zones,
            &radio,
            &MacTiming::paper_defaults(),
            ContentionModel::Quadratic,
            &PacketSizes::paper_defaults(),
            SimTime::from_micros(20),
        );
        let ms = t.adv.as_millis_f64();
        assert!((24.0..32.0).contains(&ms), "Tround estimate {ms} ms");
        // τDAT adds the low-power serving-queue term on top of the round.
        assert!(t.dat > t.adv);
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(ProtocolKind::Spin.label(), "SPIN");
        assert_eq!(ProtocolKind::Spms.label(), "SPMS");
        assert_eq!(format!("{}", ProtocolKind::Flooding), "FLOOD");
    }

    #[test]
    fn event_kernel_labels_round_trip() {
        for kernel in [
            EventKernel::Heap,
            EventKernel::Wheel,
            EventKernel::WheelBatched,
        ] {
            assert_eq!(kernel.label().parse::<EventKernel>(), Ok(kernel));
        }
        assert!("calendar".parse::<EventKernel>().is_err());
        assert_eq!(EventKernel::default(), EventKernel::Heap);
        assert_eq!(
            SimConfig::paper_defaults(ProtocolKind::Spms, 1).event_kernel,
            EventKernel::Heap
        );
    }
}
