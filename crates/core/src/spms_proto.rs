//! The SPMS protocol (§3 of the paper): Shortest Path Minded SPIN.
//!
//! SPMS keeps SPIN's metadata negotiation but moves REQ and DATA over the
//! zone's shortest (least-energy) paths at the lowest possible power
//! levels, and adds a failover mechanism:
//!
//! * **Waiting rule** — a node hearing an ADV from a node that is *not* its
//!   next-hop neighbor starts τADV, expecting a closer relay to obtain and
//!   re-advertise the data first ("every node should request the data from
//!   nodes which are close by"). When a closer ADV arrives, it requests
//!   directly; when the timer fires, it sends the REQ to its PRONE along
//!   the shortest path.
//! * **PRONE/SCONE** — per item, the destination keeps an originator stack:
//!   the closest advertiser heard (PRONE), the previous one (SCONE), and —
//!   when `scones_kept > 1` — older ones below. All stack members are zone
//!   neighbors, so a direct (higher-power) transmission is always possible.
//! * **Failover ladder** (τDAT expiries, matching §3.4/§3.5):
//!   1. after a failed *multi-hop* REQ to PRONE → REQ **directly** to PRONE
//!      at the power its distance requires (paper's failure case 1);
//!   2. after a failed *direct* REQ → pop the stack and REQ directly to the
//!      SCONE (failure case 2), and so on down the stack;
//!   3. when the stack is exhausted after `max_attempts` tries, the item is
//!      abandoned until a new ADV revives it (bounded liveness; the paper
//!      leaves this case implicit).
//! * **Re-advertisement** — every node advertises data it obtains exactly
//!   once in its zone, which is both how data crosses zones and what makes
//!   the relay caching of §6 (future work, implemented here behind
//!   `relay_caching`) useful.
//!
//! Relays forward REQ packets along their own shortest paths, recording the
//! route; DATA retraces it ("the data is sent in exactly the same manner as
//! the received request"). With `serve_from_cache`, a relay already holding
//! the data answers instead of forwarding.

use std::collections::BTreeMap;

use spms_net::NodeId;

use crate::{
    Action, Addressee, DataStore, MetaId, NodeView, OutFrame, Packet, Payload, Protocol, TimerKind,
};

/// Maximum REQ record-route length; REQs exceeding it are dropped (the
/// requester's τDAT recovers). Zone diameters in practice are ≤ 10 hops.
const MAX_PATH: usize = 24;

/// Where the destination currently is in the negotiation for one item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetaState {
    /// No REQ activity yet (or revived after abandonment).
    Fresh,
    /// τADV armed, hoping a closer node advertises.
    WaitingAdv,
    /// REQ sent, τDAT armed.
    WaitingData,
    /// Actively given up until a new ADV arrives.
    GivenUp,
}

/// Per-item destination state.
#[derive(Clone, Debug)]
struct SpmsEntry {
    interested: bool,
    advertised: bool,
    state: MetaState,
    /// Originator stack, closest-first: `[0]` is the PRONE, `[1]` the
    /// SCONE, … All are zone neighbors (we heard their ADV directly).
    originators: Vec<NodeId>,
    /// Ladder position: which stack index the last REQ targeted.
    ladder_idx: usize,
    /// Whether the last REQ was multi-hop (next failover step is then a
    /// direct REQ to the same target).
    last_was_multihop: bool,
    attempts: u32,
    adv_gen: u32,
    dat_gen: u32,
}

impl SpmsEntry {
    fn new() -> Self {
        SpmsEntry {
            interested: false,
            advertised: false,
            state: MetaState::Fresh,
            originators: Vec::new(),
            ladder_idx: 0,
            last_was_multihop: false,
            attempts: 0,
            adv_gen: 0,
            dat_gen: 0,
        }
    }
}

/// Tunables lifted from [`crate::SimConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpmsParams {
    /// Originator stack depth: PRONE plus this many SCONEs.
    pub scones_kept: usize,
    /// Retry budget before abandoning until the next ADV.
    pub max_attempts: u32,
    /// Cache data at pure relays (paper §6 future work).
    pub relay_caching: bool,
    /// Relays holding the data answer REQs instead of forwarding.
    pub serve_from_cache: bool,
}

impl Default for SpmsParams {
    fn default() -> Self {
        SpmsParams {
            scones_kept: 1,
            max_attempts: 4,
            relay_caching: false,
            serve_from_cache: false,
        }
    }
}

/// SPMS protocol state for one node.
#[derive(Clone, Debug)]
pub struct SpmsNode {
    store: DataStore,
    entries: BTreeMap<MetaId, SpmsEntry>,
    params: SpmsParams,
}

impl SpmsNode {
    /// Creates a node.
    #[must_use]
    pub fn new(params: SpmsParams) -> Self {
        SpmsNode {
            store: DataStore::new(),
            entries: BTreeMap::new(),
            params,
        }
    }

    /// Number of data items held.
    #[must_use]
    pub fn items_held(&self) -> usize {
        self.store.len()
    }

    /// The current PRONE for `meta`, if any (visible for tests/examples).
    #[must_use]
    pub fn prone(&self, meta: MetaId) -> Option<NodeId> {
        self.entries.get(&meta)?.originators.first().copied()
    }

    /// The current SCONE for `meta`, if any.
    #[must_use]
    pub fn scone(&self, meta: MetaId) -> Option<NodeId> {
        self.entries.get(&meta)?.originators.get(1).copied()
    }

    fn advertise_once(&mut self, view: &NodeView<'_>, meta: MetaId, out: &mut Vec<Action>) {
        let entry = self.entries.entry(meta).or_insert_with(SpmsEntry::new);
        if !entry.advertised {
            entry.advertised = true;
            out.push(Action::Send(view.adv_frame(meta)));
        }
    }

    /// Updates the originator stack with advertiser `from`; returns `true`
    /// if `from` became the new PRONE.
    ///
    /// §3.4: "If the destination node receives an ADV packet from a closer
    /// node, then it sets the PRONE to be the closer node and the SCONE to
    /// be the PRONE from the earlier stage." Keeping the stack sorted by
    /// route cost generalizes that rule to deeper stacks.
    fn update_originators(
        entry: &mut SpmsEntry,
        view: &NodeView<'_>,
        from: NodeId,
        cap: usize,
    ) -> bool {
        if entry.originators.contains(&from) {
            return entry.originators.first() == Some(&from);
        }
        let cost = |n: NodeId| view.route_cost(n).unwrap_or(f64::INFINITY);
        let c_new = cost(from);
        let pos = entry
            .originators
            .iter()
            .position(|&o| c_new < cost(o))
            .unwrap_or(entry.originators.len());
        entry.originators.insert(pos, from);
        entry.originators.truncate(cap + 1);
        pos == 0
    }

    /// Sends a REQ to `target` (multi-hop via the routing table when
    /// `multihop`, direct at the link's power otherwise) and arms τDAT.
    fn send_req(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        target: NodeId,
        multihop: bool,
        out: &mut Vec<Action>,
    ) -> bool {
        let payload = Payload::Req {
            origin: view.node,
            target,
            path: vec![view.node],
        };
        let frame = if multihop {
            let Some(route) = view.routing.best(target) else {
                return false;
            };
            let Some(level) = view.link_level(route.via) else {
                return false;
            };
            OutFrame {
                to: Addressee::Unicast(route.via),
                level,
                packet: Packet {
                    meta,
                    from: view.node,
                    payload,
                },
            }
        } else {
            // Direct transmission "using a higher transmission power" — the
            // cheapest level that reaches the target, which exists because
            // originators are zone neighbors.
            let Some(level) = view.link_level(target) else {
                return false;
            };
            OutFrame {
                to: Addressee::Unicast(target),
                level,
                packet: Packet {
                    meta,
                    from: view.node,
                    payload,
                },
            }
        };
        let entry = self.entries.get_mut(&meta).expect("entry exists");
        entry.state = MetaState::WaitingData;
        entry.last_was_multihop = multihop;
        entry.attempts += 1;
        entry.dat_gen += 1;
        out.push(Action::Send(frame));
        out.push(Action::SetTimer {
            meta,
            kind: TimerKind::DataWait,
            gen: entry.dat_gen,
            after: view.timeouts.dat,
        });
        true
    }

    /// Marks this node interested in `meta` without requiring an ADV — the
    /// inter-zone extension registers interest when the query arrives via a
    /// bordercast relay that does not itself hold the data.
    pub(crate) fn mark_interested(&mut self, meta: MetaId) {
        self.entries
            .entry(meta)
            .or_insert_with(SpmsEntry::new)
            .interested = true;
    }

    /// Serves `meta` back along the recorded REQ path.
    pub(crate) fn serve_path(
        &self,
        view: &NodeView<'_>,
        meta: MetaId,
        path: &[NodeId],
        out: &mut Vec<Action>,
    ) {
        let Some((&origin, _)) = path.split_first() else {
            return;
        };
        let mut reverse: Vec<NodeId> = path.to_vec();
        reverse.reverse(); // [last relay, …, origin]
        let next = reverse[0];
        let route = reverse[1..].to_vec();
        if let Some(frame) = view.unicast(
            next,
            meta,
            Payload::Data {
                dest: origin,
                route,
            },
        ) {
            out.push(Action::Send(frame));
        }
        // If `next` is no longer a zone neighbor (it moved), the frame is
        // unbuildable and the requester's τDAT recovers.
    }

    /// Consumes a data item at this node. `interested` is the engine's
    /// interest flag for this node — authoritative even when no ADV was
    /// heard first (e.g. data cached out of a passing inter-zone transfer).
    fn accept_data(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        interested: bool,
        out: &mut Vec<Action>,
    ) {
        if !self.store.insert(meta) {
            out.push(Action::Duplicate { meta });
            return;
        }
        let entry = self.entries.entry(meta).or_insert_with(SpmsEntry::new);
        entry.adv_gen += 1;
        entry.dat_gen += 1;
        let was_interested = entry.interested || interested;
        entry.interested = was_interested;
        entry.state = MetaState::Fresh;
        if was_interested {
            out.push(Action::Delivered { meta });
        }
        // "The SPMS protocol requires a node to advertise its own data as
        // well as all received data once amongst its neighbors."
        self.advertise_once(view, meta, out);
    }

    /// Handles an ADV for an item this node wants but lacks.
    fn handle_wanted_adv(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        from: NodeId,
        out: &mut Vec<Action>,
    ) {
        let cap = self.params.scones_kept;
        let entry = self.entries.entry(meta).or_insert_with(SpmsEntry::new);
        entry.interested = true;
        let new_prone = Self::update_originators(entry, view, from, cap);
        match entry.state {
            MetaState::Fresh | MetaState::GivenUp => {
                entry.attempts = 0;
                entry.ladder_idx = 0;
                if view.is_next_hop_neighbor(from) {
                    // Adjacent advertiser: request immediately (§3.3 case I,
                    // node B; and node C once B re-advertises).
                    self.send_req(view, meta, from, false, out);
                } else {
                    // Non-adjacent: wait for a closer relay's ADV.
                    entry.state = MetaState::WaitingAdv;
                    entry.adv_gen += 1;
                    out.push(Action::SetTimer {
                        meta,
                        kind: TimerKind::AdvWait,
                        gen: entry.adv_gen,
                        after: view.timeouts.adv,
                    });
                }
            }
            MetaState::WaitingAdv => {
                if view.is_next_hop_neighbor(from) {
                    // The closer ADV arrived: cancel τADV, request directly
                    // (§3.3 case I, node C).
                    entry.adv_gen += 1;
                    entry.ladder_idx = 0;
                    self.send_req(view, meta, from, false, out);
                } else if new_prone {
                    // Closer but still not adjacent: restart τADV (§3.5:
                    // "C on receiving the ADV packet from r1 resets its
                    // timer τADV and sets its PRONE to r1").
                    entry.adv_gen += 1;
                    out.push(Action::SetTimer {
                        meta,
                        kind: TimerKind::AdvWait,
                        gen: entry.adv_gen,
                        after: view.timeouts.adv,
                    });
                }
            }
            MetaState::WaitingData => {
                // REQ outstanding; the stack update above already recorded
                // the new originator for failover.
            }
        }
    }
}

impl Protocol for SpmsNode {
    fn on_generate(&mut self, view: &NodeView<'_>, meta: MetaId) -> Vec<Action> {
        let mut out = Vec::new();
        if self.store.insert(meta) {
            self.advertise_once(view, meta, &mut out);
        }
        out
    }

    fn on_packet(&mut self, view: &NodeView<'_>, packet: &Packet, interested: bool) -> Vec<Action> {
        let meta = packet.meta;
        let mut out = Vec::new();
        match &packet.payload {
            Payload::Adv => {
                if self.store.contains(meta) || !interested {
                    return out;
                }
                self.handle_wanted_adv(view, meta, packet.from, &mut out);
            }
            Payload::Req {
                origin,
                target,
                path,
            } => {
                if *target == view.node {
                    if self.store.contains(meta) {
                        self.serve_path(view, meta, path, &mut out);
                    }
                    // A target without the data stays silent; the
                    // requester's τDAT escalates to its SCONE.
                    return out;
                }
                // Relay duty. §3.1 resource adaptation: a low-battery
                // node declines third-party forwarding; the requester's
                // τDAT ladder routes around it (direct REQ at higher
                // power).
                if view.declines_forwarding() {
                    return out;
                }
                if self.params.serve_from_cache && self.store.contains(meta) {
                    let mut full = path.clone();
                    full.push(view.node);
                    // Serve as if we were the target; the route back starts
                    // at the previous hop.
                    self.serve_path(view, meta, &full[..full.len() - 1], &mut out);
                    return out;
                }
                if path.len() >= MAX_PATH {
                    return out; // drop: pathological route
                }
                let Some(route) = view.routing.best(*target) else {
                    return out; // no route (topology changed): drop
                };
                // Avoid bouncing straight back to the previous hop when an
                // alternative exists.
                let via = if Some(&route.via) == path.last() {
                    match view.routing.best_avoiding(*target, route.via) {
                        Some(alt) => alt.via,
                        None => route.via,
                    }
                } else {
                    route.via
                };
                let mut new_path = path.clone();
                new_path.push(view.node);
                if let Some(frame) = view.unicast(
                    via,
                    meta,
                    Payload::Req {
                        origin: *origin,
                        target: *target,
                        path: new_path,
                    },
                ) {
                    out.push(Action::Send(frame));
                }
            }
            Payload::Data { dest, route } => {
                if route.is_empty() || *dest == view.node {
                    self.accept_data(view, meta, interested, &mut out);
                    return out;
                }
                // Relay: forward along the recorded route.
                let next = route[0];
                let rest = route[1..].to_vec();
                if let Some(frame) = view.unicast(
                    next,
                    meta,
                    Payload::Data {
                        dest: *dest,
                        route: rest,
                    },
                ) {
                    out.push(Action::Send(frame));
                }
                if self.params.relay_caching && !self.store.contains(meta) {
                    // §6 future work: cache at routing relays and advertise,
                    // improving fault tolerance. An interested relay counts
                    // as delivered — the data reached it, however it came.
                    self.accept_data(view, meta, interested, &mut out);
                }
            }
            // Inter-zone packets are handled by the SPMS-IZ wrapper
            // ([`crate::interzone::SpmsIzNode`]); the base protocol ignores
            // them.
            Payload::IzAdv { .. } | Payload::IzReq { .. } => {}
        }
        out
    }

    fn on_timer(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        kind: TimerKind,
        gen: u32,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        if self.store.contains(meta) {
            return out;
        }
        let Some(entry) = self.entries.get_mut(&meta) else {
            return out;
        };
        match kind {
            TimerKind::AdvWait => {
                if entry.adv_gen != gen || entry.state != MetaState::WaitingAdv {
                    return out;
                }
                // §3.2: on τADV expiry the destination requests from the
                // PRONE through the shortest route.
                let Some(&target) = entry.originators.first() else {
                    entry.state = MetaState::Fresh;
                    return out;
                };
                entry.ladder_idx = 0;
                if !self.send_req(view, meta, target, true, &mut out) {
                    // No route at all: give up until the next ADV.
                    let entry = self.entries.get_mut(&meta).expect("entry");
                    entry.state = MetaState::GivenUp;
                    out.push(Action::Abandoned { meta });
                }
            }
            TimerKind::DataWait => {
                if entry.dat_gen != gen || entry.state != MetaState::WaitingData {
                    return out;
                }
                if entry.attempts >= self.params.max_attempts {
                    entry.state = MetaState::GivenUp;
                    out.push(Action::Abandoned { meta });
                    return out;
                }
                // Failover ladder.
                let (target, multihop) = if entry.last_was_multihop {
                    // Case 1: the multi-hop path failed; go direct to the
                    // same PRONE at higher power.
                    match entry.originators.get(entry.ladder_idx) {
                        Some(&t) => (t, false),
                        None => {
                            entry.state = MetaState::GivenUp;
                            out.push(Action::Abandoned { meta });
                            return out;
                        }
                    }
                } else {
                    // Case 2: a direct REQ failed; fail over to the next
                    // originator down the stack (SCONE, then older ones).
                    entry.ladder_idx += 1;
                    match entry.originators.get(entry.ladder_idx) {
                        Some(&t) => (t, false),
                        None => {
                            entry.state = MetaState::GivenUp;
                            out.push(Action::Abandoned { meta });
                            return out;
                        }
                    }
                };
                if !self.send_req(view, meta, target, multihop, &mut out) {
                    let entry = self.entries.get_mut(&meta).expect("entry");
                    entry.state = MetaState::GivenUp;
                    out.push(Action::Abandoned { meta });
                }
            }
        }
        out
    }

    fn on_failed(&mut self) {
        // Transient failure: cached data survives; every timer and
        // outstanding exchange is invalidated.
        for entry in self.entries.values_mut() {
            entry.adv_gen += 1;
            entry.dat_gen += 1;
            if matches!(entry.state, MetaState::WaitingAdv | MetaState::WaitingData) {
                entry.state = MetaState::Fresh;
            }
        }
    }

    fn on_repaired(&mut self, view: &NodeView<'_>) -> Vec<Action> {
        let mut out = Vec::new();
        // Resume items with a known originator by re-entering the ladder.
        let pending: Vec<(MetaId, NodeId)> = self
            .entries
            .iter()
            .filter(|(m, e)| {
                e.interested
                    && e.state == MetaState::Fresh
                    && !e.originators.is_empty()
                    && !self.store.contains(**m)
            })
            .map(|(m, e)| (*m, e.originators[0]))
            .collect();
        for (meta, target) in pending {
            {
                let entry = self.entries.get_mut(&meta).expect("entry");
                entry.attempts = 0;
                entry.ladder_idx = 0;
            }
            let multihop = !view.is_next_hop_neighbor(target);
            self.send_req(view, meta, target, multihop, &mut out);
        }
        out
    }

    fn on_routes_rebuilt(&mut self, _view: &NodeView<'_>) -> Vec<Action> {
        // Pending exchanges keep their timers; expiries will re-route with
        // the new tables. Nothing to do eagerly.
        Vec::new()
    }

    fn has_data(&self, meta: MetaId) -> bool {
        self.store.contains(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PacketKind, Timeouts};
    use spms_kernel::SimTime;
    use spms_net::{placement, ZoneTable};
    use spms_phy::RadioProfile;
    use spms_routing::{oracle_tables, RoutingTable};

    /// 5-node line, 5 m spacing, 20 m zones: everyone is in everyone's
    /// zone; shortest paths go hop by hop.
    fn fixture() -> (ZoneTable, Vec<RoutingTable>) {
        let topo = placement::grid(5, 1, 5.0).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        let tables = oracle_tables(&zones, 2);
        (zones, tables)
    }

    fn view<'a>(zones: &'a ZoneTable, routing: &'a RoutingTable, node: u32) -> NodeView<'a> {
        NodeView {
            node: NodeId::new(node),
            now: SimTime::ZERO,
            zones,
            routing,
            timeouts: Timeouts {
                adv: SimTime::from_millis(1),
                dat: SimTime::from_millis_f64(2.5),
            },
            battery_frac: 1.0,
            low_battery_threshold: 0.0,
        }
    }

    fn meta() -> MetaId {
        MetaId::new(NodeId::new(0), 0)
    }

    fn adv_from(from: u32) -> Packet {
        Packet {
            meta: meta(),
            from: NodeId::new(from),
            payload: Payload::Adv,
        }
    }

    fn sends(actions: &[Action]) -> Vec<&OutFrame> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(f) => Some(f),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn adjacent_adv_requests_immediately_at_min_power() {
        let (zones, tables) = fixture();
        let mut n = SpmsNode::new(SpmsParams::default());
        let v = view(&zones, &tables[1], 1);
        let actions = n.on_packet(&v, &adv_from(0), true);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].packet.kind(), PacketKind::Req);
        assert_eq!(s[0].to, Addressee::Unicast(NodeId::new(0)));
        // 5 m neighbor: minimum power level.
        assert_eq!(s[0].level.index(), 4);
        assert_eq!(n.prone(meta()), Some(NodeId::new(0)));
    }

    #[test]
    fn distant_adv_waits_for_closer_advertiser() {
        let (zones, tables) = fixture();
        let mut n = SpmsNode::new(SpmsParams::default());
        // Node 3 hears the source (node 0) 15 m away: not adjacent.
        let v = view(&zones, &tables[3], 3);
        let actions = n.on_packet(&v, &adv_from(0), true);
        assert!(sends(&actions).is_empty(), "must not request yet");
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::AdvWait,
                ..
            }
        )));
        assert_eq!(n.prone(meta()), Some(NodeId::new(0)));
    }

    #[test]
    fn closer_adv_updates_prone_and_scone() {
        let (zones, tables) = fixture();
        let mut n = SpmsNode::new(SpmsParams::default());
        let v = view(&zones, &tables[3], 3);
        n.on_packet(&v, &adv_from(0), true); // 15 m away
        let actions = n.on_packet(&v, &adv_from(1), true); // 10 m: closer, not adjacent
        assert_eq!(n.prone(meta()), Some(NodeId::new(1)));
        assert_eq!(n.scone(meta()), Some(NodeId::new(0)));
        // τADV restarted.
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::AdvWait,
                gen: 2,
                ..
            }
        )));
        // Adjacent ADV triggers the REQ and cancels the wait.
        let actions = n.on_packet(&v, &adv_from(2), true);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].to, Addressee::Unicast(NodeId::new(2)));
        assert_eq!(n.prone(meta()), Some(NodeId::new(2)));
    }

    #[test]
    fn advwait_expiry_requests_prone_via_shortest_path() {
        let (zones, tables) = fixture();
        let mut n = SpmsNode::new(SpmsParams::default());
        let v = view(&zones, &tables[3], 3);
        n.on_packet(&v, &adv_from(0), true);
        let actions = n.on_timer(&v, meta(), TimerKind::AdvWait, 1);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        // REQ to PRONE (node 0) goes to the next hop (node 2), destined 0.
        assert_eq!(s[0].to, Addressee::Unicast(NodeId::new(2)));
        match &s[0].packet.payload {
            Payload::Req {
                origin,
                target,
                path,
            } => {
                assert_eq!(*origin, NodeId::new(3));
                assert_eq!(*target, NodeId::new(0));
                assert_eq!(path.as_slice(), &[NodeId::new(3)]);
            }
            other => panic!("expected REQ, got {other:?}"),
        }
    }

    #[test]
    fn relay_forwards_req_and_target_serves_reverse_path() {
        let (zones, tables) = fixture();
        let m = meta();
        // Relay node 2 forwards node 3's REQ toward node 0.
        let mut relay = SpmsNode::new(SpmsParams::default());
        let v2 = view(&zones, &tables[2], 2);
        let req = Packet {
            meta: m,
            from: NodeId::new(3),
            payload: Payload::Req {
                origin: NodeId::new(3),
                target: NodeId::new(0),
                path: vec![NodeId::new(3)],
            },
        };
        let actions = relay.on_packet(&v2, &req, false);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].to, Addressee::Unicast(NodeId::new(1)));
        let fwd_path = match &s[0].packet.payload {
            Payload::Req { path, .. } => path.clone(),
            other => panic!("expected REQ, got {other:?}"),
        };
        assert_eq!(fwd_path, vec![NodeId::new(3), NodeId::new(2)]);

        // The source serves along the reverse of the recorded path.
        let mut src = SpmsNode::new(SpmsParams::default());
        let v0 = view(&zones, &tables[0], 0);
        src.on_generate(&v0, m);
        let req_at_src = Packet {
            meta: m,
            from: NodeId::new(1),
            payload: Payload::Req {
                origin: NodeId::new(3),
                target: NodeId::new(0),
                path: vec![NodeId::new(3), NodeId::new(2), NodeId::new(1)],
            },
        };
        let actions = src.on_packet(&v0, &req_at_src, false);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].packet.kind(), PacketKind::Data);
        assert_eq!(s[0].to, Addressee::Unicast(NodeId::new(1)));
        match &s[0].packet.payload {
            Payload::Data { dest, route } => {
                assert_eq!(*dest, NodeId::new(3));
                assert_eq!(route.as_slice(), &[NodeId::new(2), NodeId::new(3)]);
            }
            other => panic!("expected DATA, got {other:?}"),
        }
    }

    #[test]
    fn data_relay_forwards_and_final_hop_delivers() {
        let (zones, tables) = fixture();
        let m = meta();
        let mut relay = SpmsNode::new(SpmsParams::default());
        let v2 = view(&zones, &tables[2], 2);
        let data = Packet {
            meta: m,
            from: NodeId::new(1),
            payload: Payload::Data {
                dest: NodeId::new(3),
                route: vec![NodeId::new(3)],
            },
        };
        // Wait: route[0] is the next hop from the perspective of the
        // *transmitter*. Node 2 receives with route = [3]: forwards to 3.
        let actions = relay.on_packet(&v2, &data, false);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].to, Addressee::Unicast(NodeId::new(3)));
        assert!(!relay.has_data(m), "plain relays do not cache");

        // Final consumer.
        let mut dest = SpmsNode::new(SpmsParams::default());
        let v3 = view(&zones, &tables[3], 3);
        dest.on_packet(&v3, &adv_from(0), true); // register interest
        let final_data = Packet {
            meta: m,
            from: NodeId::new(2),
            payload: Payload::Data {
                dest: NodeId::new(3),
                route: vec![],
            },
        };
        let actions = dest.on_packet(&v3, &final_data, true);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Delivered { .. })));
        // Re-advertisement duty.
        assert!(actions.iter().any(|a| matches!(a, Action::Send(f)
            if f.packet.kind() == PacketKind::Adv)));
        assert!(dest.has_data(m));
    }

    #[test]
    fn relay_caching_stores_and_advertises() {
        let (zones, tables) = fixture();
        let mut relay = SpmsNode::new(SpmsParams {
            relay_caching: true,
            ..SpmsParams::default()
        });
        let v2 = view(&zones, &tables[2], 2);
        let data = Packet {
            meta: meta(),
            from: NodeId::new(1),
            payload: Payload::Data {
                dest: NodeId::new(3),
                route: vec![NodeId::new(3)],
            },
        };
        let actions = relay.on_packet(&v2, &data, false);
        assert!(relay.has_data(meta()));
        let kinds: Vec<PacketKind> = sends(&actions).iter().map(|f| f.packet.kind()).collect();
        assert!(kinds.contains(&PacketKind::Data));
        assert!(kinds.contains(&PacketKind::Adv));
    }

    #[test]
    fn failure_case1_multihop_timeout_goes_direct_to_prone() {
        // §3.5 case 1: r2 (the relay) failed before advertising; C's τADV
        // expired, its multi-hop REQ through r2 died, τDAT expires → direct
        // REQ to PRONE at higher power.
        let (zones, tables) = fixture();
        let mut n = SpmsNode::new(SpmsParams::default());
        let v = view(&zones, &tables[3], 3);
        n.on_packet(&v, &adv_from(1), true); // PRONE = 1 (10 m, not adjacent)
        n.on_timer(&v, meta(), TimerKind::AdvWait, 1); // multi-hop REQ sent
        let actions = n.on_timer(&v, meta(), TimerKind::DataWait, 1);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].to, Addressee::Unicast(NodeId::new(1)));
        // Direct to a 10 m target: level index 3 — higher power than the
        // min-level hops the multi-hop path used.
        assert_eq!(s[0].level.index(), 3);
    }

    #[test]
    fn failure_case2_direct_timeout_fails_over_to_scone() {
        // §3.5 case 2: r2 advertised then failed; C's direct REQ to r2 times
        // out → REQ directly to the SCONE.
        let (zones, tables) = fixture();
        let mut n = SpmsNode::new(SpmsParams::default());
        let v = view(&zones, &tables[3], 3);
        n.on_packet(&v, &adv_from(1), true); // originators: [1]
        n.on_packet(&v, &adv_from(2), true); // adjacent → direct REQ to 2; stack [2, 1]
        assert_eq!(n.prone(meta()), Some(NodeId::new(2)));
        assert_eq!(n.scone(meta()), Some(NodeId::new(1)));
        let actions = n.on_timer(&v, meta(), TimerKind::DataWait, 1);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].to, Addressee::Unicast(NodeId::new(1)), "SCONE next");
        assert!(matches!(s[0].packet.payload, Payload::Req { .. }));
    }

    #[test]
    fn ladder_abandons_after_max_attempts_and_revives_on_adv() {
        let (zones, tables) = fixture();
        let mut n = SpmsNode::new(SpmsParams {
            max_attempts: 2,
            ..SpmsParams::default()
        });
        let v = view(&zones, &tables[1], 1);
        n.on_packet(&v, &adv_from(0), true); // direct REQ (attempt 1)
        let a2 = n.on_timer(&v, meta(), TimerKind::DataWait, 1); // attempt 2? stack exhausted
                                                                 // Stack is [0] only; direct REQ failed; no SCONE → abandoned.
        assert!(a2.iter().any(|a| matches!(a, Action::Abandoned { .. })));
        // A new ADV revives the item.
        let a3 = n.on_packet(&v, &adv_from(2), true);
        assert!(!sends(&a3).is_empty());
    }

    #[test]
    fn serve_from_cache_short_circuits_relay() {
        let (zones, tables) = fixture();
        let m = meta();
        let mut relay = SpmsNode::new(SpmsParams {
            serve_from_cache: true,
            ..SpmsParams::default()
        });
        let v2 = view(&zones, &tables[2], 2);
        relay.on_generate(&v2, MetaId::new(NodeId::new(2), 0)); // unrelated
                                                                // Give the relay the data via relay-path consumption.
        let own = Packet {
            meta: m,
            from: NodeId::new(1),
            payload: Payload::Data {
                dest: NodeId::new(2),
                route: vec![],
            },
        };
        relay.on_packet(&v2, &own, false);
        assert!(relay.has_data(m));
        let req = Packet {
            meta: m,
            from: NodeId::new(3),
            payload: Payload::Req {
                origin: NodeId::new(3),
                target: NodeId::new(0),
                path: vec![NodeId::new(3)],
            },
        };
        let actions = relay.on_packet(&v2, &req, false);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].packet.kind(), PacketKind::Data);
        assert_eq!(s[0].to, Addressee::Unicast(NodeId::new(3)));
    }

    #[test]
    fn failed_node_forgets_inflight_but_keeps_data() {
        let (zones, tables) = fixture();
        let m = meta();
        let mut n = SpmsNode::new(SpmsParams::default());
        let v = view(&zones, &tables[1], 1);
        n.on_generate(&v, m);
        n.on_packet(&v, &adv_from(0), true);
        n.on_failed();
        assert!(n.has_data(m), "transient failures keep the store");
        // Old timer generations are stale after failure.
        assert!(n.on_timer(&v, m, TimerKind::DataWait, 1).is_empty());
    }

    #[test]
    fn repair_rerequests_pending_items() {
        let (zones, tables) = fixture();
        let mut n = SpmsNode::new(SpmsParams::default());
        let v = view(&zones, &tables[3], 3);
        n.on_packet(&v, &adv_from(1), true); // waiting, PRONE=1
        n.on_failed();
        let actions = n.on_repaired(&v);
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0].packet.payload, Payload::Req { .. }));
    }

    #[test]
    fn uninterested_nodes_ignore_advs() {
        let (zones, tables) = fixture();
        let mut n = SpmsNode::new(SpmsParams::default());
        let v = view(&zones, &tables[1], 1);
        assert!(n.on_packet(&v, &adv_from(0), false).is_empty());
        assert_eq!(n.prone(meta()), None);
    }

    #[test]
    fn low_battery_node_refuses_relay_duty_but_serves_as_target() {
        let (zones, tables) = fixture();
        let m = meta();
        let mut n = SpmsNode::new(SpmsParams::default());
        let mut low = view(&zones, &tables[2], 2);
        low.battery_frac = 0.1;
        low.low_battery_threshold = 0.2;
        assert!(low.declines_forwarding());
        // Third-party REQ relay: refused (§3.1).
        let relay_req = Packet {
            meta: m,
            from: NodeId::new(3),
            payload: Payload::Req {
                origin: NodeId::new(3),
                target: NodeId::new(0),
                path: vec![NodeId::new(3)],
            },
        };
        assert!(sends(&n.on_packet(&low, &relay_req, false)).is_empty());
        // A REQ addressed to this node is first-party duty: served.
        n.on_generate(&low, m);
        let own_req = Packet {
            meta: m,
            from: NodeId::new(3),
            payload: Payload::Req {
                origin: NodeId::new(3),
                target: NodeId::new(2),
                path: vec![NodeId::new(3)],
            },
        };
        let s_own = n.on_packet(&low, &own_req, false);
        assert!(sends(&s_own)
            .iter()
            .any(|f| f.packet.kind() == PacketKind::Data));
    }
}
