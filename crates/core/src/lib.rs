//! # SPMS — Shortest Path Minded SPIN
//!
//! A complete, deterministic reproduction of *"Fault Tolerant Energy Aware
//! Data Dissemination Protocol in Sensor Networks"* (Khanna, Bagchi, Wu —
//! DSN 2004): the SPMS protocol, the SPIN and flooding baselines, and the
//! discrete-event simulation engine that measures them.
//!
//! ## The protocol in one paragraph
//!
//! SPMS keeps SPIN's metadata negotiation — a source broadcasts a tiny ADV,
//! interested nodes send REQ, data follows — but exploits the radio's
//! multiple power levels: ADVs are broadcast zone-wide while REQ and DATA
//! travel hop-by-hop along minimum-energy shortest paths computed by a
//! distributed Bellman-Ford run inside each zone. Destinations track a
//! primary and secondary originator (PRONE/SCONE) per data item and fail
//! over via the τADV/τDAT timers, tolerating source and relay failures.
//!
//! ## Quick start
//!
//! ```
//! use spms::{Generation, Interest, MetaId, ProtocolKind, SimConfig, Simulation, TrafficPlan};
//! use spms_kernel::SimTime;
//! use spms_net::{placement, NodeId};
//!
//! // 25 motes on a 5 m grid, one data item, everyone interested.
//! let topo = placement::grid(5, 5, 5.0).unwrap();
//! let source = NodeId::new(12);
//! let plan = TrafficPlan::new(
//!     vec![Generation { at: SimTime::ZERO, source, meta: MetaId::new(source, 0) }],
//!     Interest::AllNodes,
//! ).unwrap();
//!
//! let metrics = Simulation::run_with(
//!     SimConfig::paper_defaults(ProtocolKind::Spms, 42),
//!     topo,
//!     plan,
//! ).unwrap();
//! assert_eq!(metrics.deliveries, 24);
//! println!("{}", metrics.summary());
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`config`] | [`SimConfig`] (Table 1 defaults), timeout policy |
//! | [`engine`] | [`Simulation`] — the discrete-event engine |
//! | [`spin`] / [`spms_proto`] / [`flooding`] | the protocol state machines |
//! | [`interzone`] | SPMS-IZ — the paper's §6 inter-zone extension |
//! | [`protocol`] | the [`Protocol`] trait and [`Action`] vocabulary |
//! | [`traffic`] | [`TrafficPlan`] / [`Interest`] |
//! | [`results`] | [`RunMetrics`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod config;
pub mod engine;
pub mod flooding;
pub mod interzone;
mod message;
mod metadata;
pub mod protocol;
pub mod results;
pub mod spin;
pub mod spms_proto;
pub mod traffic;

pub use adversary::{AdversaryConfig, NodeBehavior};
pub use config::{
    EventKernel, IzConfig, ProtocolKind, RoutingMode, SimConfig, TimeoutPolicy, Timeouts,
};
pub use engine::Simulation;
pub use flooding::FloodingNode;
pub use interzone::{IzResolved, SpmsIzNode};
pub use message::{Addressee, OutFrame, Packet, PacketKind, PacketSizes, Payload};
pub use metadata::{DataStore, MetaId};
pub use protocol::{Action, NodeProtocol, NodeView, Protocol, TimerKind};
pub use results::{AdversaryStats, MessageCounts, RoutingCost, RunMetrics};
pub use spin::SpinNode;
pub use spms_proto::{SpmsNode, SpmsParams};
pub use spms_routing::TableLayout;
pub use traffic::{Generation, Interest, TrafficPlan};
