//! The protocol abstraction the simulation engine drives.
//!
//! A protocol implementation is a pure state machine: handlers receive a
//! read-only [`NodeView`] of the node's environment and return a list of
//! [`Action`]s. The engine performs the actions (transmissions, timers,
//! delivery bookkeeping), which keeps energy and delay accounting uniform
//! across SPIN, SPMS and flooding, and keeps protocol code deterministic and
//! unit-testable without an engine.

use spms_kernel::SimTime;
use spms_net::{NodeId, ZoneTable};
use spms_phy::PowerLevel;
use spms_routing::RoutingTable;

use crate::{Addressee, MetaId, OutFrame, Packet, Payload, Timeouts};

/// The two protocol timers of SPMS (SPIN reuses `DataWait` as its REQ
/// suppression/retry window).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// τADV — waiting for a closer node's advertisement.
    AdvWait,
    /// τDAT — waiting for data after a REQ.
    DataWait,
}

/// What a protocol asks the engine to do.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Transmit a frame.
    Send(OutFrame),
    /// Arm a timer for `(meta, kind)`; it fires with the given generation,
    /// and the protocol ignores firings whose generation is stale
    /// (cancellation is lazy).
    SetTimer {
        /// The item the timer concerns.
        meta: MetaId,
        /// Which timer.
        kind: TimerKind,
        /// Generation captured at arm time.
        gen: u32,
        /// Delay from now.
        after: SimTime,
    },
    /// The node obtained a data item it was interested in (records the
    /// delivery and its latency).
    Delivered {
        /// The delivered item.
        meta: MetaId,
    },
    /// The node stopped actively retrying for an item (liveness
    /// bookkeeping; a later ADV may still revive it and deliver).
    Abandoned {
        /// The abandoned item.
        meta: MetaId,
    },
    /// A duplicate data reception (energy already charged; counted as
    /// protocol overhead, SPIN's "implosion").
    Duplicate {
        /// The duplicated item.
        meta: MetaId,
    },
}

/// Read-only view of a node's environment during a handler call.
pub struct NodeView<'a> {
    /// The node the handler runs on.
    pub node: NodeId,
    /// Current simulation time.
    pub now: SimTime,
    /// Zone tables (current topology).
    pub zones: &'a ZoneTable,
    /// The node's routing table (empty for SPIN/flooding).
    pub routing: &'a RoutingTable,
    /// Resolved τADV/τDAT.
    pub timeouts: Timeouts,
    /// Remaining battery as a fraction of capacity (1.0 when the run has
    /// no battery budget). §3.1: nodes monitor resource availability and
    /// adapt their dissemination activities.
    pub battery_frac: f64,
    /// The §3.1 adaptation threshold: below this fraction the node
    /// declines third-party forwarding duty (0.0 = never decline).
    pub low_battery_threshold: f64,
}

impl<'a> NodeView<'a> {
    /// `true` when §3.1 resource adaptation tells this node to decline
    /// third-party forwarding (its own exchanges continue regardless).
    #[must_use]
    pub fn declines_forwarding(&self) -> bool {
        self.battery_frac < self.low_battery_threshold
    }

    /// The cheapest power level reaching zone neighbor `to`, if it is one.
    #[must_use]
    pub fn link_level(&self, to: NodeId) -> Option<PowerLevel> {
        self.zones.link_to(self.node, to).map(|l| l.level)
    }

    /// `true` if the best route to `to` is a direct single hop — the
    /// paper's "next hop neighbor" test that decides between requesting
    /// immediately and waiting τADV.
    #[must_use]
    pub fn is_next_hop_neighbor(&self, to: NodeId) -> bool {
        self.routing
            .best(to)
            .is_some_and(|r| r.hops == 1 && r.via == to)
    }

    /// Cost of the best route to `to` (`None` when unknown).
    #[must_use]
    pub fn route_cost(&self, to: NodeId) -> Option<f64> {
        self.routing.best(to).map(|r| r.cost)
    }

    /// Builds a zone-wide ADV broadcast frame.
    #[must_use]
    pub fn adv_frame(&self, meta: MetaId) -> OutFrame {
        OutFrame {
            to: Addressee::Broadcast,
            level: self.zones.adv_level(),
            packet: Packet {
                meta,
                from: self.node,
                payload: Payload::Adv,
            },
        }
    }

    /// Builds a unicast frame to `to` at the cheapest level that reaches it,
    /// or `None` if `to` is not a zone neighbor (e.g. it moved away).
    #[must_use]
    pub fn unicast(&self, to: NodeId, meta: MetaId, payload: Payload) -> Option<OutFrame> {
        let level = self.link_level(to)?;
        Some(OutFrame {
            to: Addressee::Unicast(to),
            level,
            packet: Packet {
                meta,
                from: self.node,
                payload,
            },
        })
    }
}

/// A dissemination protocol as a deterministic state machine.
pub trait Protocol {
    /// The node generated a new data item (it becomes the source).
    fn on_generate(&mut self, view: &NodeView<'_>, meta: MetaId) -> Vec<Action>;

    /// A packet arrived. `interested` says whether this node wants the
    /// packet's item (computed by the engine from the traffic plan).
    fn on_packet(&mut self, view: &NodeView<'_>, packet: &Packet, interested: bool) -> Vec<Action>;

    /// A timer fired. Stale generations must be ignored.
    fn on_timer(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        kind: TimerKind,
        gen: u32,
    ) -> Vec<Action>;

    /// The node failed: in-flight negotiation state is invalidated (data
    /// survives — failures are transient).
    fn on_failed(&mut self);

    /// The node recovered; it may resume pending exchanges.
    fn on_repaired(&mut self, view: &NodeView<'_>) -> Vec<Action>;

    /// Routing tables were rebuilt (after mobility). Default: no reaction;
    /// pending timers pick up the new routes when they fire.
    fn on_routes_rebuilt(&mut self, view: &NodeView<'_>) -> Vec<Action> {
        let _ = view;
        Vec::new()
    }

    /// `true` if the node holds the item (used by tests and the engine's
    /// settlement accounting).
    fn has_data(&self, meta: MetaId) -> bool;
}

/// Monomorphic protocol dispatch (avoids per-node boxing in the hot loop).
#[derive(Clone, Debug)]
pub enum NodeProtocol {
    /// SPIN baseline.
    Spin(crate::spin::SpinNode),
    /// SPMS.
    Spms(crate::spms_proto::SpmsNode),
    /// SPMS with the §6 inter-zone extension.
    SpmsIz(crate::interzone::SpmsIzNode),
    /// Flooding baseline.
    Flooding(crate::flooding::FloodingNode),
}

impl Protocol for NodeProtocol {
    fn on_generate(&mut self, view: &NodeView<'_>, meta: MetaId) -> Vec<Action> {
        match self {
            NodeProtocol::Spin(p) => p.on_generate(view, meta),
            NodeProtocol::Spms(p) => p.on_generate(view, meta),
            NodeProtocol::SpmsIz(p) => p.on_generate(view, meta),
            NodeProtocol::Flooding(p) => p.on_generate(view, meta),
        }
    }

    fn on_packet(&mut self, view: &NodeView<'_>, packet: &Packet, interested: bool) -> Vec<Action> {
        match self {
            NodeProtocol::Spin(p) => p.on_packet(view, packet, interested),
            NodeProtocol::Spms(p) => p.on_packet(view, packet, interested),
            NodeProtocol::SpmsIz(p) => p.on_packet(view, packet, interested),
            NodeProtocol::Flooding(p) => p.on_packet(view, packet, interested),
        }
    }

    fn on_timer(
        &mut self,
        view: &NodeView<'_>,
        meta: MetaId,
        kind: TimerKind,
        gen: u32,
    ) -> Vec<Action> {
        match self {
            NodeProtocol::Spin(p) => p.on_timer(view, meta, kind, gen),
            NodeProtocol::Spms(p) => p.on_timer(view, meta, kind, gen),
            NodeProtocol::SpmsIz(p) => p.on_timer(view, meta, kind, gen),
            NodeProtocol::Flooding(p) => p.on_timer(view, meta, kind, gen),
        }
    }

    fn on_failed(&mut self) {
        match self {
            NodeProtocol::Spin(p) => p.on_failed(),
            NodeProtocol::Spms(p) => p.on_failed(),
            NodeProtocol::SpmsIz(p) => p.on_failed(),
            NodeProtocol::Flooding(p) => p.on_failed(),
        }
    }

    fn on_repaired(&mut self, view: &NodeView<'_>) -> Vec<Action> {
        match self {
            NodeProtocol::Spin(p) => p.on_repaired(view),
            NodeProtocol::Spms(p) => p.on_repaired(view),
            NodeProtocol::SpmsIz(p) => p.on_repaired(view),
            NodeProtocol::Flooding(p) => p.on_repaired(view),
        }
    }

    fn on_routes_rebuilt(&mut self, view: &NodeView<'_>) -> Vec<Action> {
        match self {
            NodeProtocol::Spin(p) => p.on_routes_rebuilt(view),
            NodeProtocol::Spms(p) => p.on_routes_rebuilt(view),
            NodeProtocol::SpmsIz(p) => p.on_routes_rebuilt(view),
            NodeProtocol::Flooding(p) => p.on_routes_rebuilt(view),
        }
    }

    fn has_data(&self, meta: MetaId) -> bool {
        match self {
            NodeProtocol::Spin(p) => p.has_data(meta),
            NodeProtocol::Spms(p) => p.has_data(meta),
            NodeProtocol::SpmsIz(p) => p.has_data(meta),
            NodeProtocol::Flooding(p) => p.has_data(meta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_net::placement;
    use spms_phy::RadioProfile;
    use spms_routing::oracle_tables;

    fn fixture() -> (ZoneTable, Vec<RoutingTable>) {
        let topo = placement::grid(5, 1, 5.0).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        let tables = oracle_tables(&zones, 2);
        (zones, tables)
    }

    fn view<'a>(zones: &'a ZoneTable, routing: &'a RoutingTable, node: u32) -> NodeView<'a> {
        NodeView {
            node: NodeId::new(node),
            now: SimTime::ZERO,
            zones,
            routing,
            timeouts: Timeouts {
                adv: SimTime::from_millis(1),
                dat: SimTime::from_millis(2),
            },
            battery_frac: 1.0,
            low_battery_threshold: 0.0,
        }
    }

    #[test]
    fn next_hop_neighbor_test_matches_paper_semantics() {
        let (zones, tables) = fixture();
        let v = view(&zones, &tables[0], 0);
        // Node 1 is 5 m away: direct next hop.
        assert!(v.is_next_hop_neighbor(NodeId::new(1)));
        // Node 3 is 15 m away: reachable but best route is multi-hop.
        assert!(!v.is_next_hop_neighbor(NodeId::new(3)));
        assert!(v.route_cost(NodeId::new(3)).unwrap() > 0.0);
    }

    #[test]
    fn adv_frame_is_zone_broadcast_at_adv_level() {
        let (zones, tables) = fixture();
        let v = view(&zones, &tables[0], 0);
        let meta = MetaId::new(NodeId::new(0), 0);
        let f = v.adv_frame(meta);
        assert_eq!(f.to, Addressee::Broadcast);
        assert_eq!(f.level, zones.adv_level());
        assert_eq!(f.packet.kind(), crate::PacketKind::Adv);
    }

    #[test]
    fn unicast_uses_cheapest_covering_level() {
        let (zones, tables) = fixture();
        let v = view(&zones, &tables[0], 0);
        let meta = MetaId::new(NodeId::new(0), 0);
        let f = v
            .unicast(
                NodeId::new(1),
                meta,
                Payload::Data {
                    dest: NodeId::new(1),
                    route: vec![],
                },
            )
            .unwrap();
        // 5 m → the minimum power level (index 4).
        assert_eq!(f.level.index(), 4);
        // 20 m neighbor → level index 2.
        let f2 = v.unicast(NodeId::new(4), meta, Payload::Adv).unwrap();
        assert_eq!(f2.level.index(), 2);
        // Out-of-zone target: no frame.
        assert!(v.unicast(NodeId::new(99), meta, Payload::Adv).is_none());
    }
}
