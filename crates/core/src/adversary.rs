//! Adversarial node behaviors.
//!
//! The paper evaluates SPMS/SPIN/Flooding only under benign transient
//! failures; this module adds Byzantine behavior policies in the spirit of
//! Basalt's attack model — a per-node [`NodeBehavior`] that activates at
//! `attack_start` and either floods bogus metadata (`attack_factor` copies
//! per triggering packet), silently swallows traffic, or advertises data it
//! does not hold. Adversary selection is seeded from the master seed (its
//! own [`spms_kernel::SimRng`] sub-stream), so the set is deterministic per
//! run and the knob matrix (shards/workers/kernels/layouts) can never
//! change it.

use spms_kernel::SimTime;
use spms_net::NodeId;

/// Behavior policy of one node.
///
/// Honest nodes run the protocol verbatim. The three adversarial policies
/// activate at [`AdversaryConfig::attack_start`] and replace the node's
/// receive path (its own generation duties stay honest, so the workload's
/// expected-delivery accounting is unchanged):
///
/// * [`NodeBehavior::Flooding`] — answers the first copy of every packet
///   it hears with `attack_factor` bogus zone-wide ADV broadcasts,
///   spending everyone's energy on metadata implosion.
/// * [`NodeBehavior::SilentDropper`] — swallows every packet without
///   responding: a crash that the failure detectors never see.
/// * [`NodeBehavior::MetadataLiar`] — re-advertises every item it hears an
///   ADV for as if it held the data, then never answers the REQs it
///   attracts; honest requesters burn their retry ladders before failing
///   over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum NodeBehavior {
    /// Runs the protocol verbatim (the default).
    #[default]
    Honest,
    /// Floods `attack_factor` bogus ADVs per first-heard packet.
    Flooding,
    /// Swallows every packet silently.
    SilentDropper,
    /// Advertises data it does not hold and never serves it.
    MetadataLiar,
}

impl NodeBehavior {
    /// Short label for reports and CLI flags.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NodeBehavior::Honest => "honest",
            NodeBehavior::Flooding => "flooding",
            NodeBehavior::SilentDropper => "silent-dropper",
            NodeBehavior::MetadataLiar => "metadata-liar",
        }
    }

    /// `true` for every policy except [`NodeBehavior::Honest`].
    #[must_use]
    pub fn is_adversarial(self) -> bool {
        self != NodeBehavior::Honest
    }
}

impl std::fmt::Display for NodeBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for NodeBehavior {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "honest" => Ok(NodeBehavior::Honest),
            "flooding" => Ok(NodeBehavior::Flooding),
            "silent-dropper" => Ok(NodeBehavior::SilentDropper),
            "metadata-liar" => Ok(NodeBehavior::MetadataLiar),
            other => Err(format!(
                "unknown node behavior '{other}' (expected honest, flooding, \
                 silent-dropper, or metadata-liar)"
            )),
        }
    }
}

/// Which nodes misbehave, how, and from when.
#[derive(Clone, Debug, PartialEq)]
pub struct AdversaryConfig {
    /// Fraction of nodes (0..=1) converted to adversaries. Ignored when
    /// [`AdversaryConfig::explicit`] names the set directly.
    pub fraction: f64,
    /// The policy every adversary runs.
    pub behavior: NodeBehavior,
    /// Simulated time at which the adversaries switch on; before this they
    /// behave honestly (Basalt's attack-start model).
    pub attack_start: SimTime,
    /// Bogus ADV broadcasts a [`NodeBehavior::Flooding`] adversary emits
    /// per first-heard packet (must be ≥ 1; other behaviors ignore it).
    pub attack_factor: u32,
    /// Explicit adversary set, overriding the seeded `fraction` draw —
    /// used by the fuzz corpus to pin minimized schedules.
    pub explicit: Option<Vec<NodeId>>,
}

impl AdversaryConfig {
    /// A fraction-based config starting at time zero with `attack_factor`
    /// 2.
    ///
    /// # Errors
    ///
    /// Returns a message if `fraction` is outside `[0, 1]`.
    pub fn new(behavior: NodeBehavior, fraction: f64) -> Result<Self, String> {
        let config = AdversaryConfig {
            fraction,
            behavior,
            attack_start: SimTime::ZERO,
            attack_factor: 2,
            explicit: None,
        };
        config.validate()?;
        Ok(config)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.fraction.is_finite() || !(0.0..=1.0).contains(&self.fraction) {
            return Err(format!(
                "adversary fraction {} outside [0, 1]",
                self.fraction
            ));
        }
        if self.attack_factor == 0 {
            return Err("attack_factor must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_labels_round_trip() {
        for behavior in [
            NodeBehavior::Honest,
            NodeBehavior::Flooding,
            NodeBehavior::SilentDropper,
            NodeBehavior::MetadataLiar,
        ] {
            assert_eq!(behavior.label().parse::<NodeBehavior>(), Ok(behavior));
        }
        assert!("byzantine".parse::<NodeBehavior>().is_err());
        assert_eq!(NodeBehavior::default(), NodeBehavior::Honest);
        assert!(!NodeBehavior::Honest.is_adversarial());
        assert!(NodeBehavior::MetadataLiar.is_adversarial());
    }

    #[test]
    fn config_validation() {
        let c = AdversaryConfig::new(NodeBehavior::Flooding, 0.25).unwrap();
        assert_eq!(c.attack_start, SimTime::ZERO);
        assert_eq!(c.attack_factor, 2);
        assert!(c.validate().is_ok());
        assert!(AdversaryConfig::new(NodeBehavior::Flooding, 1.5).is_err());
        assert!(AdversaryConfig::new(NodeBehavior::Flooding, -0.1).is_err());
        assert!(AdversaryConfig::new(NodeBehavior::Flooding, f64::NAN).is_err());
        let mut c = AdversaryConfig::new(NodeBehavior::SilentDropper, 0.1).unwrap();
        c.attack_factor = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn explicit_sets_survive_validation() {
        let mut c = AdversaryConfig::new(NodeBehavior::MetadataLiar, 0.0).unwrap();
        c.explicit = Some(vec![NodeId::new(3), NodeId::new(7)]);
        assert!(c.validate().is_ok());
    }
}
