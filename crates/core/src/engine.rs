//! The discrete-event simulation engine.
//!
//! The engine owns the network state (topology, zones, routing tables,
//! per-node protocol machines, energy meters, radio queues) and drives it
//! from a single deterministic event queue. Protocol code never touches
//! energy, queues or randomness — it returns [`Action`]s and the engine
//! performs them — so SPIN, SPMS and flooding are measured by exactly the
//! same rules.
//!
//! Event flow for one transmission: a protocol returns `Action::Send`; the
//! engine computes the MAC access delay (`G·n²` + backoff at the frame's
//! power level), reserves the node's half-duplex radio, charges transmit
//! energy, and schedules a `Deliver` event at the end of the on-air time;
//! at delivery, recipients are charged receive energy and their protocol
//! handlers run (after `Tproc`), possibly producing more sends.

use std::collections::{BTreeMap, BTreeSet};

use spms_kernel::stats::Tally;
use spms_kernel::trace::Trace;
use spms_kernel::{Scheduler, SchedulerKind, SimRng, SimTime};
use spms_mac::HalfDuplexQueue;
use spms_net::{
    ChurnEpoch, ChurnProcess, ContactEpoch, ContactProcess, FailureProcess, LinkGate,
    MobilityEpoch, MobilityProcess, NodeId, SpatialGrid, Topology, ZoneDelta, ZoneTable,
};
use spms_phy::{EnergyCategory, EnergyMeter, MicroJoules};
use spms_routing::{oracle_tables, DbfEngine, DbfWireFormat, RoutingTable};

use crate::{
    Action, Addressee, AdversaryStats, EventKernel, MessageCounts, MetaId, NodeBehavior,
    NodeProtocol, NodeView, OutFrame, Packet, PacketKind, Payload, Protocol, ProtocolKind,
    RoutingCost, RoutingMode, RunMetrics, SimConfig, SpmsParams, TimerKind, TrafficPlan,
};

/// Engine events.
#[derive(Clone, Debug)]
enum Event {
    /// Process generation `i` of the traffic plan.
    Generate(usize),
    /// A frame finishes transmission and reaches its recipients.
    Deliver(OutFrame),
    /// A protocol timer fires.
    Timer {
        node: NodeId,
        meta: MetaId,
        kind: TimerKind,
        gen: u32,
    },
    /// A node fails for `down_for`.
    Fail { node: NodeId, down_for: SimTime },
    /// A node repairs (guarded by the failure generation).
    Repair { node: NodeId, gen: u32 },
    /// Draw the next failure from the injection process.
    DrawFailure,
    /// Apply the staged mobility epoch.
    MobilityEpoch,
    /// Apply the staged churn epoch (mass join/leave cohort).
    ChurnEpoch,
    /// Apply the staged contact-plan epoch (scheduled link flips). Every
    /// flip sharing a timestamp rides in one event, so all three event
    /// kernels dispatch a window boundary identically.
    ContactEpoch,
}

/// A configured, runnable simulation.
///
/// # Example
///
/// ```
/// use spms::{Interest, ProtocolKind, SimConfig, Simulation, TrafficPlan, Generation, MetaId};
/// use spms_kernel::SimTime;
/// use spms_net::{placement, NodeId};
///
/// let topo = placement::grid(3, 3, 5.0).unwrap();
/// let source = NodeId::new(4);
/// let plan = TrafficPlan::new(
///     vec![Generation { at: SimTime::ZERO, source, meta: MetaId::new(source, 0) }],
///     Interest::AllNodes,
/// ).unwrap();
/// let config = SimConfig::paper_defaults(ProtocolKind::Spms, 7);
/// let metrics = Simulation::new(config, topo, plan).unwrap().run();
/// assert_eq!(metrics.deliveries, 8); // everyone else got the item
/// ```
pub struct Simulation {
    config: SimConfig,
    plan: TrafficPlan,
    topology: Topology,
    /// Spatial-hash index over the node positions (cell size = zone
    /// radius), kept in sync with mobility so zone maintenance only ever
    /// examines the 3×3 cell neighborhood of a position.
    grid: SpatialGrid,
    zones: ZoneTable,
    tables: Vec<RoutingTable>,
    /// The persistent distributed-routing engine (Distributed mode only).
    /// Owning it across events is what makes incremental re-convergence
    /// possible: its tables and triggered-update state survive mobility
    /// epochs instead of being rebuilt from scratch.
    dbf: Option<DbfEngine>,
    /// The alive mask as of the last DBF convergence. Nodes whose liveness
    /// flipped since then without a re-convergence (failures ridden out on
    /// alternative routes) are invalidated at the next incremental rebuild.
    dbf_alive: Vec<bool>,
    /// The epoch batcher (`SimConfig::batch_epochs`): zone deltas of epochs
    /// that have not re-converged yet, merged into one. `None` when the
    /// window is empty or the run maintains zones all-pairs.
    pending_delta: Option<ZoneDelta>,
    /// Reference-zone (`incremental_zones = false`) counterpart of
    /// `pending_delta`: the zone table as of the window start — the
    /// adjacency the engine's stale routes were converged under.
    pending_old_zones: Option<ZoneTable>,
    /// Movers accumulated since the window started (reference-zone path).
    pending_changed: Vec<NodeId>,
    /// Liveness flips queued on the window (`queue_liveness_flips`). The
    /// flush must invalidate their zone neighborhoods explicitly: a node
    /// that failed *and* repaired inside one window is invisible to the
    /// `dbf_alive` diff, yet its neighbors' routes through it went stale.
    pending_flipped: Vec<NodeId>,
    /// Epochs queued in the current batching window.
    pending_epochs: u32,
    protocols: Vec<NodeProtocol>,
    alive: Vec<bool>,
    down_gen: Vec<u32>,
    queues: Vec<HalfDuplexQueue>,
    meters: Vec<EnergyMeter>,
    events: Scheduler<Event>,
    now: SimTime,
    timeouts: crate::Timeouts,
    pause_until: SimTime,

    rng_mac: SimRng,
    failure_proc: Option<FailureProcess>,
    mobility_proc: Option<MobilityProcess>,
    staged_epoch: Option<MobilityEpoch>,
    churn_proc: Option<ChurnProcess>,
    staged_churn: Option<ChurnEpoch>,
    /// Scheduled-connectivity state (`SimConfig::contact_plan`): the gate
    /// holding current link states and the window-boundary walker. The
    /// zone table is built and patched under this gate, so a down link
    /// vanishes from adjacency and MAC densities alike.
    contact_gate: Option<LinkGate>,
    contact_proc: Option<ContactProcess>,
    staged_contact: Option<ContactEpoch>,
    /// Per-node behavior policy. All-`Honest` for benign runs; adversarial
    /// entries are picked by sub-stream 4 of the master seed (or the
    /// explicit set), so adding adversaries never perturbs the failure,
    /// mobility, churn, or MAC draws.
    behaviors: Vec<NodeBehavior>,
    /// Per-adversary first-seen metadata — bounds bogus-ADV storms to
    /// `attack_factor` per (adversary, item) and keeps attack traffic from
    /// echoing off other adversaries forever.
    adversary_seen: Vec<BTreeSet<MetaId>>,
    winding_down: bool,
    /// Pending Generate/Deliver/Timer events — the protocol's own activity.
    /// When it hits zero with all generations processed, nothing can revive
    /// the run (infrastructure chains only reschedule themselves), so the
    /// engine winds down even if some deliveries never settled.
    protocol_pending: u64,

    // Measurement state.
    meta_adv_at: BTreeMap<MetaId, SimTime>,
    meta_birth: BTreeMap<MetaId, SimTime>,
    settled: Vec<BTreeSet<MetaId>>,
    outstanding: u64,
    generated: u64,
    expected: u64,
    deliveries: u64,
    duplicates: u64,
    abandonments: u64,
    delay: Tally,
    mac_wait: Tally,
    msg: MessageCounts,
    routing_cost: RoutingCost,
    failures_injected: u64,
    mobility_epochs: u64,
    adversary_stats: AdversaryStats,
    events_processed: u64,
    nodes_dead: u64,
    first_death_at: Option<SimTime>,
    trace: Trace,
}

impl Simulation {
    /// Builds a simulation.
    ///
    /// # Errors
    ///
    /// Returns a message if the configuration is invalid or the plan
    /// references nodes outside the topology.
    pub fn new(config: SimConfig, topology: Topology, plan: TrafficPlan) -> Result<Self, String> {
        config.validate()?;
        let n = topology.len();
        for g in &plan.generations {
            if g.source.index() >= n {
                return Err(format!("generation source {} out of range", g.source));
            }
        }
        // Scheduled connectivity: the plan's gate filters every zone build
        // and patch from here on, so the initial table (and the timeouts
        // resolved from it) already reflect which links are up at t = 0.
        let contact_gate = match &config.contact_plan {
            Some(plan) => {
                if let Some(max) = plan.max_node() {
                    if max.index() >= n {
                        return Err(format!(
                            "contact plan names node {max}, topology has {n} nodes"
                        ));
                    }
                }
                Some(plan.initial_gate())
            }
            None => None,
        };
        let contact_proc = config.contact_plan.as_ref().map(ContactProcess::new);
        // Radius-adaptive cells: on fields too small for a zone-radius
        // grid to prune, the grid collapses to one cell and candidate
        // queries become the plain (sort-free) scan, so the indexed zone
        // build no longer loses to the all-pairs reference at small n.
        let grid = SpatialGrid::for_radius(&topology, config.zone_radius_m);
        let zones = if config.incremental_zones {
            ZoneTable::build_indexed_gated(
                &topology,
                &config.radio,
                &grid,
                config.zone_radius_m,
                contact_gate.as_ref(),
            )
        } else {
            // The all-pairs reference build — bit-identical (see the
            // `spms-net` proptests), just O(n²).
            ZoneTable::build_gated(
                &topology,
                &config.radio,
                config.zone_radius_m,
                contact_gate.as_ref(),
            )
        };
        let timeouts = config.timeout_policy.resolve(
            config.protocol,
            &zones,
            &config.radio,
            &config.mac,
            config.contention,
            &config.sizes,
            config.proc_delay,
        );

        let root = SimRng::new(config.seed);
        let rng_mac = root.derive(3);
        let failure_proc = config
            .failures
            .map(|f| FailureProcess::new(f, root.derive(1)));
        let mobility_proc = config
            .mobility
            .map(|m| MobilityProcess::new(m, root.derive(2)));

        // Adversary roster: explicit set, or a seeded draw from the
        // dedicated sub-stream (4). Either way the roster is fixed at build
        // time — `attack_start` only gates when the behaviors *act*.
        let mut behaviors = vec![NodeBehavior::Honest; n];
        let mut adversaries = 0u64;
        if let Some(adv) = &config.adversary {
            if adv.behavior.is_adversarial() {
                let picked: Vec<usize> = match &adv.explicit {
                    Some(nodes) => {
                        for node in nodes {
                            if node.index() >= n {
                                return Err(format!("explicit adversary {node} out of range"));
                            }
                        }
                        nodes.iter().map(|node| node.index()).collect()
                    }
                    None => {
                        let count = if adv.fraction == 0.0 {
                            0
                        } else {
                            ((adv.fraction * n as f64).round() as usize).clamp(1, n)
                        };
                        root.derive(4).choose_indices(n, count)
                    }
                };
                for i in picked {
                    if behaviors[i] == NodeBehavior::Honest {
                        adversaries += 1;
                    }
                    behaviors[i] = adv.behavior;
                }
            }
        }
        let churn_proc = config.churn.map(|c| ChurnProcess::new(c, root.derive(5)));

        // Bordercast TTL: explicit, or auto-sized so every reachable node
        // hears the query (the zone overlay's eccentricity).
        let iz_ttl = if config.protocol == ProtocolKind::SpmsIz {
            config.interzone.ttl.unwrap_or_else(|| {
                spms_interzone::overlay::PreciseOverlay::build(&zones).suggested_ttl()
            })
        } else {
            0
        };
        let protocols: Vec<NodeProtocol> = (0..n)
            .map(|_| match config.protocol {
                ProtocolKind::Spin => {
                    let node = crate::spin::SpinNode::new(
                        config.spin_req_suppression,
                        config.max_attempts,
                    );
                    NodeProtocol::Spin(if config.spin_broadcast_data {
                        node.with_broadcast_data()
                    } else {
                        node
                    })
                }
                ProtocolKind::Spms => {
                    NodeProtocol::Spms(crate::spms_proto::SpmsNode::new(SpmsParams {
                        scones_kept: config.scones_kept,
                        max_attempts: config.max_attempts,
                        relay_caching: config.relay_caching,
                        serve_from_cache: config.serve_from_cache,
                    }))
                }
                ProtocolKind::SpmsIz => NodeProtocol::SpmsIz(crate::interzone::SpmsIzNode::new(
                    SpmsParams {
                        scones_kept: config.scones_kept,
                        max_attempts: config.max_attempts,
                        relay_caching: config.relay_caching,
                        serve_from_cache: config.serve_from_cache,
                    },
                    crate::interzone::IzResolved {
                        ttl: iz_ttl,
                        paths_kept: config.interzone.paths_kept,
                        max_attempts: config.max_attempts,
                    },
                )),
                ProtocolKind::Flooding => {
                    NodeProtocol::Flooding(crate::flooding::FloodingNode::new())
                }
            })
            .collect();

        let trace = match config.trace_capacity {
            Some(cap) => Trace::bounded(cap),
            None => Trace::disabled(),
        };

        let mut sim = Simulation {
            tables: (0..n).map(|_| RoutingTable::new(config.k_routes)).collect(),
            dbf: None,
            dbf_alive: vec![true; n],
            pending_delta: None,
            pending_old_zones: None,
            pending_changed: Vec::new(),
            pending_flipped: Vec::new(),
            pending_epochs: 0,
            protocols,
            alive: vec![true; n],
            down_gen: vec![0; n],
            queues: vec![HalfDuplexQueue::new(); n],
            meters: vec![EnergyMeter::new(); n],
            events: Scheduler::with_capacity(
                match config.event_kernel {
                    EventKernel::Heap => SchedulerKind::Heap,
                    EventKernel::Wheel | EventKernel::WheelBatched => SchedulerKind::Wheel,
                },
                1024,
            ),
            now: SimTime::ZERO,
            timeouts,
            pause_until: SimTime::ZERO,
            rng_mac,
            failure_proc,
            mobility_proc,
            staged_epoch: None,
            churn_proc,
            staged_churn: None,
            contact_gate,
            contact_proc,
            staged_contact: None,
            behaviors,
            adversary_seen: vec![BTreeSet::new(); n],
            winding_down: false,
            protocol_pending: 0,
            meta_adv_at: BTreeMap::new(),
            meta_birth: BTreeMap::new(),
            settled: vec![BTreeSet::new(); n],
            outstanding: 0,
            generated: 0,
            expected: 0,
            deliveries: 0,
            duplicates: 0,
            abandonments: 0,
            delay: Tally::new(),
            mac_wait: Tally::new(),
            msg: MessageCounts::default(),
            routing_cost: RoutingCost::default(),
            failures_injected: 0,
            mobility_epochs: 0,
            adversary_stats: AdversaryStats {
                adversaries,
                ..AdversaryStats::default()
            },
            events_processed: 0,
            nodes_dead: 0,
            first_death_at: None,
            trace,
            config,
            plan,
            topology,
            grid,
            zones,
        };

        sim.build_routing();

        for (i, g) in sim.plan.generations.iter().enumerate() {
            sim.events.schedule(g.at, Event::Generate(i));
            sim.protocol_pending += 1;
        }
        if sim.failure_proc.is_some() {
            sim.events.schedule(SimTime::ZERO, Event::DrawFailure);
        }
        if sim.mobility_proc.is_some() {
            sim.stage_next_epoch();
        }
        if sim.churn_proc.is_some() {
            sim.stage_next_churn();
        }
        if sim.contact_proc.is_some() {
            sim.stage_next_contact();
        }
        Ok(sim)
    }

    /// Convenience: build and run in one call.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulation::new`] errors.
    pub fn run_with(
        config: SimConfig,
        topology: Topology,
        plan: TrafficPlan,
    ) -> Result<RunMetrics, String> {
        Ok(Simulation::new(config, topology, plan)?.run())
    }

    /// The resolved τADV/τDAT for this deployment.
    #[must_use]
    pub fn timeouts(&self) -> crate::Timeouts {
        self.timeouts
    }

    /// The engine trace (enabled via `SimConfig::trace_capacity`).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Runs to completion and returns the metrics.
    ///
    /// The run ends when the horizon is reached or — the normal case — when
    /// every expected delivery has settled *and* all in-flight events have
    /// drained. Once deliveries settle, the failure and mobility processes
    /// stop scheduling new events ("winding down"), so the drain is bounded:
    /// protocol retries are attempt-limited and every other event chain is
    /// finite.
    #[must_use]
    pub fn run(self) -> RunMetrics {
        self.run_traced().0
    }

    /// Runs to completion, returning the metrics **and** the engine trace
    /// (useful for debugging protocol behavior; enable tracing via
    /// [`SimConfig::trace_capacity`] or the trace comes back empty).
    #[must_use]
    pub fn run_traced(mut self) -> (RunMetrics, Trace) {
        if self.config.event_kernel == EventKernel::WheelBatched {
            // Batched dispatch: drain every event sharing the earliest
            // timestamp into a reusable buffer and dispatch the slice.
            // Events a handler schedules *at* the timestamp being
            // dispatched surface on the next drain (same timestamp), so the
            // per-event `step` sequence — and therefore every metric — is
            // byte-identical to the pop-one-at-a-time path.
            let mut batch = Vec::new();
            while let Some(t) = self.events.drain_next(&mut batch) {
                if t > self.config.horizon {
                    break;
                }
                for ev in batch.drain(..) {
                    self.step(t, ev);
                }
            }
        } else {
            while let Some((t, ev)) = self.events.pop() {
                if t > self.config.horizon {
                    break;
                }
                self.step(t, ev);
            }
        }
        let trace = std::mem::replace(&mut self.trace, Trace::disabled());
        (self.into_metrics(), trace)
    }

    /// Dispatches one event: the shared body of the per-event and batched
    /// run loops (kept identical so the event kernel can never change
    /// results).
    fn step(&mut self, t: SimTime, ev: Event) {
        self.now = t;
        self.events_processed += 1;
        if matches!(
            ev,
            Event::Generate(_) | Event::Deliver(_) | Event::Timer { .. }
        ) {
            self.protocol_pending -= 1;
        }
        self.handle(ev);
        if !self.winding_down
            && self.generated == self.plan.generations.len() as u64
            && (self.outstanding == 0 || self.protocol_pending == 0)
        {
            self.winding_down = true;
        }
    }

    // ------------------------------------------------------------------
    // Routing.

    /// (Re)builds routing tables from scratch. SPIN and flooding keep empty
    /// tables; SPMS uses the configured mode. In Distributed mode the
    /// persistent [`DbfEngine`] is reset and fully re-converged through
    /// the shard planner ([`DbfEngine::rebuild_sharded`], bit-identical
    /// to the sequential reference rebuild) — the path that mobility
    /// epochs replace with [`Simulation::reconverge_incrementally`] when
    /// `config.incremental_routing` is set.
    fn build_routing(&mut self) {
        if !matches!(
            self.config.protocol,
            ProtocolKind::Spms | ProtocolKind::SpmsIz
        ) {
            return;
        }
        match self.config.routing_mode {
            RoutingMode::Oracle => {
                // Deliberately unmasked: the oracle is a static routing
                // fabric installed instantly and for free, and nothing
                // triggers an Oracle rebuild when a node repairs — masking
                // here would strand repaired nodes (empty tables, no
                // inbound routes) until the next mobility epoch. Liveness
                // is enforced where it belongs: the engine drops frames
                // to/from dead nodes at delivery time and protocols fail
                // over to their alternative routes, the paper's model.
                self.tables = oracle_tables(&self.zones, self.config.k_routes);
                for table in &mut self.tables {
                    table.convert_layout(self.config.table_layout);
                }
                self.dbf = None;
            }
            RoutingMode::Distributed => {
                let shards = self.resolved_shards();
                let mut dbf = self.dbf.take().unwrap_or_else(|| {
                    DbfEngine::new(&self.zones, self.config.k_routes)
                        .with_shards(shards)
                        .with_table_layout(self.config.table_layout)
                });
                // The sharded full rebuild: reset + full-vector rounds
                // through the shard planner, bit-identical (tables and
                // stats) to the sequential reference rebuild, so metrics
                // stay byte-comparable whatever the host's core count.
                let stats = dbf.rebuild_sharded(&self.zones, &self.alive);
                self.dbf = Some(dbf);
                self.dbf_alive = self.alive.clone();
                self.charge_dbf_run(&stats, false);
            }
        }
    }

    /// The shard count the delta re-convergence runs with: the configured
    /// `dbf_shards`, with `0` resolving to
    /// [`spms_kernel::host_parallelism`]. Also sizes the routing engine's
    /// persistent worker pool. Purely a wall-clock knob — results are
    /// bit-identical for every value.
    fn resolved_shards(&self) -> usize {
        match self.config.dbf_shards {
            0 => spms_kernel::host_parallelism(),
            s => s,
        }
    }

    /// Queues one re-convergence trigger (a mobility epoch or a liveness
    /// delta) on the batching window and flushes the window once
    /// `batch_epochs` have accumulated. Deferred triggers ride out their
    /// staleness exactly like unreported failures do: frames to stale links
    /// drop at delivery and protocols fail over. Returns `true` when the
    /// window flushed.
    fn note_epoch_queued(&mut self) -> bool {
        self.pending_epochs += 1;
        if self.pending_epochs >= self.config.batch_epochs {
            self.flush_pending_reconvergence();
            true
        } else {
            self.routing_cost.epochs_coalesced += 1;
            false
        }
    }

    /// Flushes the epoch-batching window: one delta re-convergence covering
    /// every queued epoch (and every silent liveness flip folded in by the
    /// incremental paths). A no-op on an empty window. Also invoked before
    /// any out-of-band re-convergence (`reconverge_on_failure`), so the
    /// engine never mixes a liveness invalidation with stale pending moves.
    fn flush_pending_reconvergence(&mut self) {
        if self.pending_epochs == 0 {
            return;
        }
        self.pending_epochs = 0;
        self.routing_cost.batch_windows += 1;
        let queued_flips = std::mem::take(&mut self.pending_flipped);
        if let Some(delta) = self.pending_delta.take() {
            self.reconverge_from_zone_delta(&delta, &queued_flips);
        } else if let Some(old_zones) = self.pending_old_zones.take() {
            let mut changed = std::mem::take(&mut self.pending_changed);
            changed.sort_unstable();
            changed.dedup();
            self.reconverge_incrementally(Some(&old_zones), &changed);
        }
    }

    /// Re-converges only the zones that `changed` (moved, failed, or
    /// repaired nodes) can have disturbed, using the delta exchange on the
    /// persistent engine. `old_zones` is the zone table before the event
    /// (identical to the current one for pure liveness flips).
    ///
    /// Liveness flips the engine was *not* told about at the time (failures
    /// and battery deaths ride on alternative routes unless
    /// `reconverge_on_failure` is set) are folded into `changed` here, so
    /// the delta rebuild invalidates their zones too and the tables stay
    /// what a full rebuild under the current mask would produce.
    /// `old_zones` is `None` for pure liveness flips (zones unchanged).
    fn reconverge_incrementally(&mut self, old_zones: Option<&ZoneTable>, changed: &[NodeId]) {
        if self.dbf.is_none() {
            return;
        }
        let mut changed: Vec<NodeId> = changed.to_vec();
        let mut in_changed = vec![false; self.alive.len()];
        for &c in &changed {
            in_changed[c.index()] = true;
        }
        changed.extend(
            self.flipped_since_last_run()
                .filter(|f| !in_changed[f.index()]),
        );
        let dbf = self.dbf.as_mut().expect("checked above");
        let stats = dbf.update_topology(
            old_zones.unwrap_or(&self.zones),
            &self.zones,
            &changed,
            &self.alive,
        );
        self.dbf_alive = self.alive.clone();
        self.charge_dbf_run(&stats, true);
    }

    /// Delta re-convergence after an **in-place** zone patch: the old zone
    /// table no longer exists, so the pre-move adjacency the engine needs
    /// to retire stale routes rides in the [`ZoneDelta`]. Liveness flips
    /// the engine was not told about at the time are folded in exactly as
    /// in [`Simulation::reconverge_incrementally`] (no dedup against the
    /// delta needed — `apply_zone_delta`'s affected marking is idempotent).
    ///
    /// `queued_flips` are the liveness flips explicitly queued on the
    /// window. They must travel as `also_changed` (whose zone neighborhood
    /// gets invalidated), not merely inside the delta's `changed_nodes`
    /// (which `apply_zone_delta` treats as already-expanded move fallout):
    /// a node that failed and repaired within one window cancels out of
    /// the `dbf_alive` diff, but its neighbors' routes through it still
    /// need retiring — the full-rebuild oracle does so via
    /// `update_topology`'s neighbor expansion, and the delta path must
    /// match it bit for bit.
    fn reconverge_from_zone_delta(&mut self, delta: &ZoneDelta, queued_flips: &[NodeId]) {
        if self.dbf.is_none() {
            return;
        }
        let mut flipped: Vec<NodeId> = self.flipped_since_last_run().collect();
        let mut in_flipped = vec![false; self.alive.len()];
        for &f in &flipped {
            in_flipped[f.index()] = true;
        }
        flipped.extend(
            queued_flips
                .iter()
                .copied()
                .filter(|f| !in_flipped[f.index()]),
        );
        let dbf = self.dbf.as_mut().expect("checked above");
        let stats = dbf.apply_zone_delta(&self.zones, delta, &flipped, &self.alive);
        self.dbf_alive = self.alive.clone();
        self.charge_dbf_run(&stats, true);
    }

    /// Nodes whose liveness flipped since the last DBF convergence
    /// (`dbf_alive` snapshot) — the silent failures/repairs/battery deaths
    /// both incremental paths must fold into their changed sets.
    fn flipped_since_last_run(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .zip(self.dbf_alive.iter())
            .enumerate()
            .filter(|(_, (&now_up, &at_last_run))| now_up != at_last_run)
            .map(|(i, _)| NodeId::new(i as u32))
    }

    /// Charges a DBF execution's per-node broadcast energy (at the zone/ADV
    /// power level) to the Routing category, pauses the data plane until
    /// the exchange converges, and folds the stats into the run totals.
    fn charge_dbf_run(&mut self, stats: &spms_routing::DbfStats, incremental: bool) {
        let adv_level = self.zones.adv_level();
        let power = self.config.radio.power_mw(adv_level);
        for (i, &bytes) in stats.per_node_bytes.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            let air = self.config.mac.tx_duration(bytes as u32);
            self.meters[i].charge(
                EnergyCategory::Routing,
                MicroJoules::from_power_duration(power, air),
            );
        }
        // Convergence pause: data transfer waits for the exchange ("the
        // nodes start transmitting after the routing converges"). One round
        // ≈ one max-power channel access plus the mean vector's air time.
        let max_density = (0..self.zones.len())
            .map(|i| {
                self.zones
                    .density_at_level(NodeId::new(i as u32), adv_level)
            })
            .max()
            .unwrap_or(1) as usize;
        let avg_entries = stats.entries_sent.checked_div(stats.messages).unwrap_or(0) as usize;
        let wire = DbfWireFormat::default();
        let round_time = self.config.mac.quadratic_term(max_density)
            + self.config.mac.tx_duration(wire.message_bytes(avg_entries));
        let converge = round_time * u64::from(stats.rounds);
        // Pauses only ever extend: a cheap delta re-convergence landing
        // inside a longer still-running exchange must not release data
        // traffic early.
        self.pause_until = self.pause_until.max(self.now + converge);
        self.routing_cost.executions += 1;
        self.routing_cost.incremental_executions += u64::from(incremental);
        // Counts plans, not threads: bit-identical across shard counts, so
        // same-seed metrics compare byte for byte whatever the host offers.
        let sharded = self.dbf.as_ref().is_some_and(|d| d.shards().is_some());
        self.routing_cost.sharded_executions += u64::from(incremental && sharded);
        self.routing_cost.rounds += u64::from(stats.rounds);
        self.routing_cost.messages += stats.messages;
        self.routing_cost.bytes += stats.bytes_total;
        self.routing_cost.converge_time += converge;
        self.trace.record_with(self.now, "dbf", || {
            format!(
                "DBF{}: {} rounds, {} msgs, {} B, pause {}",
                if incremental { " (delta)" } else { "" },
                stats.rounds,
                stats.messages,
                stats.bytes_total,
                converge
            )
        });
    }

    // ------------------------------------------------------------------
    // Event handling.

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Generate(i) => self.handle_generate(i),
            Event::Deliver(frame) => self.handle_deliver(frame),
            Event::Timer {
                node,
                meta,
                kind,
                gen,
            } => self.handle_timer(node, meta, kind, gen),
            Event::Fail { node, down_for } => self.handle_fail(node, down_for),
            Event::Repair { node, gen } => self.handle_repair(node, gen),
            Event::DrawFailure => self.handle_draw_failure(),
            Event::MobilityEpoch => self.handle_mobility_epoch(),
            Event::ChurnEpoch => self.handle_churn_epoch(),
            Event::ContactEpoch => self.handle_contact_epoch(),
        }
    }

    fn handle_generate(&mut self, i: usize) {
        let g = self.plan.generations[i];
        self.generated += 1;
        if !self.alive[g.source.index()] {
            // The source is down; the item is never created (counted as
            // generated for progress, but no deliveries are expected).
            self.trace.record_with(self.now, "gen", || {
                format!("{} lost: source {} down", g.meta, g.source)
            });
            return;
        }
        self.meta_birth.insert(g.meta, self.now);
        let want = self.plan.interest.count(g.meta, self.topology.len());
        self.outstanding += want;
        self.expected += want;
        let actions = self.call_protocol(g.source, |p, v| p.on_generate(v, g.meta));
        self.process_actions(g.source, actions, SimTime::ZERO);
    }

    fn handle_deliver(&mut self, frame: OutFrame) {
        let from = frame.packet.from;
        if !self.alive[from.index()] {
            // §5.1.2: "any scheduled packet transfer is cancelled".
            self.msg.dropped.incr();
            return;
        }
        let kind = frame.packet.kind();
        let bytes = self.config.sizes.bytes(kind);
        let rx_energy = MicroJoules::from_power_duration(
            self.config.radio.rx_power_mw(),
            self.config.mac.tx_duration(bytes),
        );
        match frame.to {
            Addressee::Broadcast => {
                // All alive zone neighbors within the frame's power range
                // participate (ADV is how they learn about data).
                let recipients: Vec<NodeId> = self
                    .zones
                    .links(from)
                    .iter()
                    .filter(|l| frame.level.index() <= l.level.index())
                    .map(|l| l.neighbor)
                    .filter(|nb| self.alive[nb.index()])
                    .collect();
                for nb in recipients {
                    self.meters[nb.index()].charge(EnergyCategory::Receive, rx_energy);
                    self.check_battery(nb);
                    if self.alive[nb.index()] {
                        self.dispatch_packet(nb, &frame.packet);
                    }
                }
            }
            Addressee::Unicast(dest) => {
                let reachable = self
                    .zones
                    .link_to(from, dest)
                    .is_some_and(|l| frame.level.index() <= l.level.index());
                if reachable && self.alive[dest.index()] {
                    self.meters[dest.index()].charge(EnergyCategory::Receive, rx_energy);
                    self.check_battery(dest);
                    if self.alive[dest.index()] {
                        self.dispatch_packet(dest, &frame.packet);
                    }
                } else {
                    // Dead receiver ("any received message is dropped") or
                    // stale link after mobility.
                    self.msg.dropped.incr();
                }
            }
        }
    }

    fn dispatch_packet(&mut self, receiver: NodeId, packet: &Packet) {
        if self.adversary_intercepts(receiver, packet) {
            return;
        }
        let interested = self.plan.interest.interested(receiver, packet.meta);
        let actions = self.call_protocol(receiver, |p, v| p.on_packet(v, packet, interested));
        self.process_actions(receiver, actions, self.config.proc_delay);
    }

    /// `true` when `node` runs an adversarial policy whose attack window
    /// has opened.
    fn adversary_active(&self, node: NodeId) -> bool {
        self.behaviors[node.index()].is_adversarial()
            && self
                .config
                .adversary
                .as_ref()
                .is_some_and(|a| self.now >= a.attack_start)
    }

    /// Runs the receiver's adversarial policy on an incoming packet.
    /// Returns `true` when the packet was consumed by the adversary — the
    /// honest protocol machine must not see it. All three behaviors swallow
    /// the packet; flooding attackers and metadata liars additionally
    /// broadcast bogus zone-wide ADVs (for data they will never serve), each
    /// at most once per (adversary, item) so attack storms stay bounded and
    /// can never echo between adversaries.
    fn adversary_intercepts(&mut self, receiver: NodeId, packet: &Packet) -> bool {
        if !self.adversary_active(receiver) {
            return false;
        }
        let behavior = self.behaviors[receiver.index()];
        let attack_factor = self
            .config
            .adversary
            .as_ref()
            .map_or(1, |a| a.attack_factor);
        let first_seen = self.adversary_seen[receiver.index()].insert(packet.meta);
        let bogus = match behavior {
            NodeBehavior::Honest | NodeBehavior::SilentDropper => 0,
            NodeBehavior::Flooding => {
                if first_seen {
                    attack_factor
                } else {
                    0
                }
            }
            // The liar re-advertises metadata it heard advertised but does
            // not hold, luring REQs it will swallow.
            NodeBehavior::MetadataLiar => u32::from(first_seen && packet.kind() == PacketKind::Adv),
        };
        self.adversary_stats.packets_dropped += 1;
        self.adversary_stats.bogus_advs += u64::from(bogus);
        let meta = packet.meta;
        for _ in 0..bogus {
            let frame = OutFrame {
                to: Addressee::Broadcast,
                level: self.zones.adv_level(),
                packet: Packet {
                    meta,
                    from: receiver,
                    payload: Payload::Adv,
                },
            };
            self.transmit(receiver, frame, self.config.proc_delay);
        }
        self.trace.record_with(self.now, "adv", || {
            format!("{receiver} ({behavior}) swallowed {meta} ({bogus} bogus ADVs)")
        });
        true
    }

    fn handle_timer(&mut self, node: NodeId, meta: MetaId, kind: TimerKind, gen: u32) {
        if !self.alive[node.index()] {
            return; // timers are implicitly cancelled while down
        }
        if self.adversary_active(node) {
            return; // adversaries let their honest-era timers rot
        }
        let actions = self.call_protocol(node, |p, v| p.on_timer(v, meta, kind, gen));
        self.process_actions(node, actions, SimTime::ZERO);
    }

    fn handle_fail(&mut self, node: NodeId, down_for: SimTime) {
        if !self.alive[node.index()] {
            return; // already down; ignore overlapping failure
        }
        self.alive[node.index()] = false;
        self.down_gen[node.index()] += 1;
        self.queues[node.index()].cancel_pending(self.now);
        self.protocols[node.index()].on_failed();
        self.failures_injected += 1;
        self.trace
            .record_with(self.now, "fail", || format!("{node} down for {down_for}"));
        self.reconverge_after_liveness_flips(&[node]);
        self.events.schedule(
            self.now + down_for,
            Event::Repair {
                node,
                gen: self.down_gen[node.index()],
            },
        );
    }

    /// Routing reaction to liveness flips (failures, repairs, battery
    /// deaths, churn cohorts).
    ///
    /// With `reconverge_on_failure` the affected zones re-converge
    /// immediately (out of band, after flushing any queued window).
    /// Otherwise — the paper's ride-it-out model — `queue_liveness_flips`
    /// (default on) emits a pure-liveness [`ZoneDelta`] into the
    /// epoch-batching window, so the next flush retires the dead nodes'
    /// routes instead of letting stale next-hops linger until an unrelated
    /// mobility rebuild happens by; at the default `batch_epochs = 1` the
    /// flush happens right here. Ablating the fix off
    /// (`queue_liveness_flips = false`) restores the legacy
    /// fold-into-the-next-rebuild behavior.
    ///
    /// Returns `true` when the flip was queued but the window did *not*
    /// flush (the event was coalesced into a later window).
    fn reconverge_after_liveness_flips(&mut self, nodes: &[NodeId]) -> bool {
        if self.config.reconverge_on_failure {
            // Any queued mobility window flushes first: the liveness
            // invalidation below assumes routing state and zone table agree.
            self.flush_pending_reconvergence();
            self.reconverge_incrementally(None, nodes);
            return false;
        }
        if !self.config.queue_liveness_flips
            || !self.config.incremental_routing
            || self.dbf.is_none()
        {
            // Legacy/out-of-scope: ride the flip out on alternative routes
            // until the next rebuild folds it in (`flipped_since_last_run`).
            return false;
        }
        self.routing_cost.liveness_deltas += 1;
        if self.config.incremental_zones {
            // Zones are unchanged by a pure liveness flip — the delta only
            // names the nodes whose rows routing must invalidate.
            let delta = ZoneDelta::liveness(nodes);
            match &mut self.pending_delta {
                Some(pending) => pending.merge(delta),
                None => self.pending_delta = Some(delta),
            }
            self.pending_flipped.extend(nodes.iter().copied());
        } else {
            if self.pending_old_zones.is_none() {
                self.pending_old_zones = Some(self.zones.clone());
            }
            self.pending_changed.extend(nodes.iter().copied());
        }
        !self.note_epoch_queued()
    }

    fn handle_repair(&mut self, node: NodeId, gen: u32) {
        if self.alive[node.index()] || self.down_gen[node.index()] != gen {
            return;
        }
        self.alive[node.index()] = true;
        self.trace
            .record_with(self.now, "fail", || format!("{node} repaired"));
        self.reconverge_after_liveness_flips(&[node]);
        let actions = self.call_protocol(node, |p, v| p.on_repaired(v));
        self.process_actions(node, actions, SimTime::ZERO);
    }

    fn handle_draw_failure(&mut self) {
        if self.winding_down {
            return;
        }
        let n = self.topology.len();
        let Some(proc) = self.failure_proc.as_mut() else {
            return;
        };
        let e = proc.next_event(n);
        if e.at > self.config.horizon {
            return; // stop the chain
        }
        self.events.schedule(
            e.at,
            Event::Fail {
                node: e.node,
                down_for: e.down_for,
            },
        );
        self.events.schedule(e.at, Event::DrawFailure);
    }

    fn stage_next_epoch(&mut self) {
        if self.winding_down {
            return;
        }
        let Some(proc) = self.mobility_proc.as_mut() else {
            return;
        };
        let epoch = proc.next_epoch(self.now, &self.topology);
        if epoch.at > self.config.horizon {
            return;
        }
        self.events.schedule(epoch.at, Event::MobilityEpoch);
        self.staged_epoch = Some(epoch);
    }

    fn handle_mobility_epoch(&mut self) {
        let Some(epoch) = self.staged_epoch.take() else {
            return;
        };
        MobilityProcess::apply_indexed(&epoch, &mut self.topology, &mut self.grid);
        self.mobility_epochs += 1;
        self.trace.record_with(self.now, "move", || {
            format!("mobility epoch: {} nodes moved", epoch.moves.len())
        });
        let moved: Vec<NodeId> = epoch.moves.iter().map(|&(node, _)| node).collect();
        // "As nodes move, the routing tables have to be modified and no
        // packet transfer can take place until the routing tables converge."
        // Zone state always updates immediately (MAC densities and delivery
        // reachability must track real positions); routing re-convergence
        // queues on the batching window and flushes every `batch_epochs`.
        if self.config.incremental_zones {
            // Patch only the zone rows the epoch perturbed; the returned
            // delta names exactly the nodes routing must re-converge for.
            let delta = self.zones.apply_moves_gated(
                &self.topology,
                &self.config.radio,
                &self.grid,
                self.contact_gate.as_ref(),
                &moved,
            );
            self.routing_cost.zone_patches += 1;
            self.routing_cost.zone_rows_patched += delta.rows_patched() as u64;
            self.trace.record_with(self.now, "move", || {
                format!(
                    "zone patch: {} of {} rows rebuilt",
                    delta.rows_patched(),
                    self.topology.len()
                )
            });
            if self.config.incremental_routing && self.dbf.is_some() {
                match &mut self.pending_delta {
                    Some(pending) => pending.merge(delta),
                    None => self.pending_delta = Some(delta),
                }
                self.note_epoch_queued();
            } else {
                self.build_routing();
            }
        } else {
            // Reference path: rebuild the whole table all-pairs.
            let new_zones = ZoneTable::build_gated(
                &self.topology,
                &self.config.radio,
                self.config.zone_radius_m,
                self.contact_gate.as_ref(),
            );
            let old_zones = std::mem::replace(&mut self.zones, new_zones);
            if self.config.incremental_routing && self.dbf.is_some() {
                // The window keeps the *first* pre-epoch table: stale
                // routes were last converged under it, and interior
                // epochs' tables never made it into any routing state.
                self.pending_old_zones.get_or_insert(old_zones);
                self.pending_changed.extend(moved.iter().copied());
                self.note_epoch_queued();
            } else {
                self.build_routing();
            }
        }
        for i in 0..self.protocols.len() {
            if !self.alive[i] {
                continue;
            }
            let node = NodeId::new(i as u32);
            let actions = self.call_protocol(node, |p, v| p.on_routes_rebuilt(v));
            self.process_actions(node, actions, SimTime::ZERO);
        }
        self.stage_next_epoch();
    }

    fn stage_next_churn(&mut self) {
        if self.winding_down {
            return;
        }
        let n = self.topology.len();
        let Some(proc) = self.churn_proc.as_mut() else {
            return;
        };
        let epoch = proc.next_epoch(self.now, n);
        if epoch.at > self.config.horizon {
            return;
        }
        self.events.schedule(epoch.at, Event::ChurnEpoch);
        self.staged_churn = Some(epoch);
    }

    /// Applies the staged churn epoch: every cohort member toggles liveness
    /// — alive nodes leave (exactly like a failure, but with no scheduled
    /// repair), departed nodes rejoin. Battery-depleted nodes are skipped:
    /// those deaths are permanent. The whole cohort's liveness flip lands
    /// as **one** delta on the batching window, the heavy-churn stress case
    /// for the incremental zone/DBF paths.
    fn handle_churn_epoch(&mut self) {
        let Some(epoch) = self.staged_churn.take() else {
            return;
        };
        self.adversary_stats.churn_epochs += 1;
        let mut flips: Vec<NodeId> = Vec::with_capacity(epoch.cohort.len());
        let mut joiners: Vec<NodeId> = Vec::new();
        for &node in &epoch.cohort {
            let i = node.index();
            if !self.alive[i] && self.battery_depleted(node) {
                continue;
            }
            // Bumping the generation invalidates any scheduled Repair, so a
            // churned node cannot be resurrected (or double-toggled) by a
            // stale failure-process event.
            self.down_gen[i] += 1;
            if self.alive[i] {
                self.alive[i] = false;
                self.queues[i].cancel_pending(self.now);
                self.protocols[i].on_failed();
                self.adversary_stats.churn_leaves += 1;
            } else {
                self.alive[i] = true;
                self.adversary_stats.churn_joins += 1;
                joiners.push(node);
            }
            flips.push(node);
        }
        let (left, joined) = (flips.len() - joiners.len(), joiners.len());
        self.trace.record_with(self.now, "churn", || {
            format!("churn epoch: {left} left, {joined} rejoined")
        });
        if !flips.is_empty() && self.reconverge_after_liveness_flips(&flips) {
            self.adversary_stats.churn_coalesced += 1;
        }
        for node in joiners {
            let actions = self.call_protocol(node, |p, v| p.on_repaired(v));
            self.process_actions(node, actions, SimTime::ZERO);
        }
        self.stage_next_churn();
    }

    fn stage_next_contact(&mut self) {
        if self.winding_down {
            return;
        }
        let Some(proc) = self.contact_proc.as_mut() else {
            return;
        };
        let Some(epoch) = proc.next_epoch() else {
            return;
        };
        if epoch.at > self.config.horizon {
            return;
        }
        self.events.schedule(epoch.at, Event::ContactEpoch);
        self.staged_contact = Some(epoch);
    }

    /// Applies the staged contact-plan epoch: every link flip at this
    /// timestamp lands on the gate, the affected zone rows are patched (or
    /// the table rebuilt, on the reference path), and re-convergence is
    /// queued on the same batching window mobility epochs use — so
    /// sharding, batching, the worker pool, and the oracle chain treat a
    /// scheduled window boundary exactly like a mobility epoch.
    fn handle_contact_epoch(&mut self) {
        let Some(epoch) = self.staged_contact.take() else {
            return;
        };
        let gate = self
            .contact_gate
            .as_mut()
            .expect("contact events require a gate");
        let mut endpoints: Vec<NodeId> = Vec::with_capacity(epoch.flips.len() * 2);
        let (mut ups, mut downs) = (0u64, 0u64);
        for flip in &epoch.flips {
            gate.set(flip.a, flip.b, flip.up);
            endpoints.extend([flip.a, flip.b]);
            if flip.up {
                ups += 1;
            } else {
                downs += 1;
            }
        }
        endpoints.sort_unstable();
        endpoints.dedup();
        // Counts plan events — identical whatever the wall-clock knobs.
        self.routing_cost.contact_epochs += 1;
        self.routing_cost.contact_links_up += ups;
        self.routing_cost.contact_links_down += downs;
        self.trace.record_with(self.now, "contact", || {
            format!("contact epoch: {ups} links up, {downs} links down")
        });
        if self.config.incremental_zones {
            // Patch only the endpoint rows; the delta mirrors a mobility
            // patch (pre-flip adjacency as move records, changed rows
            // pre-expanded), so the DBF delta path retires the stale
            // pairings exactly as the full-rebuild oracle would.
            let delta = self.zones.apply_link_flips(
                &self.topology,
                &self.config.radio,
                &self.grid,
                self.contact_gate.as_ref().expect("gate installed above"),
                &endpoints,
            );
            if self.config.incremental_routing && self.dbf.is_some() {
                match &mut self.pending_delta {
                    Some(pending) => pending.merge(delta),
                    None => self.pending_delta = Some(delta),
                }
                self.note_epoch_queued();
            } else {
                self.build_routing();
            }
        } else {
            // Reference path: rebuild the whole table under the new gate.
            let new_zones = ZoneTable::build_gated(
                &self.topology,
                &self.config.radio,
                self.config.zone_radius_m,
                self.contact_gate.as_ref(),
            );
            let old_zones = std::mem::replace(&mut self.zones, new_zones);
            if self.config.incremental_routing && self.dbf.is_some() {
                self.pending_old_zones.get_or_insert(old_zones);
                self.pending_changed.extend(endpoints.iter().copied());
                self.note_epoch_queued();
            } else {
                self.build_routing();
            }
        }
        for i in 0..self.protocols.len() {
            if !self.alive[i] {
                continue;
            }
            let node = NodeId::new(i as u32);
            let actions = self.call_protocol(node, |p, v| p.on_routes_rebuilt(v));
            self.process_actions(node, actions, SimTime::ZERO);
        }
        self.stage_next_contact();
    }

    // ------------------------------------------------------------------
    // Actions.

    /// `true` when `node` has spent its whole battery budget — such deaths
    /// are permanent and churn must not revive them.
    fn battery_depleted(&self, node: NodeId) -> bool {
        self.config
            .battery_capacity_uj
            .is_some_and(|cap| self.meters[node.index()].breakdown().total().value() >= cap)
    }

    /// Remaining battery fraction of `node` (1.0 without a budget).
    fn battery_frac(&self, node: NodeId) -> f64 {
        match self.config.battery_capacity_uj {
            None => 1.0,
            Some(cap) => {
                let spent = self.meters[node.index()].breakdown().total().value();
                ((cap - spent) / cap).max(0.0)
            }
        }
    }

    fn call_protocol<F>(&mut self, node: NodeId, f: F) -> Vec<Action>
    where
        F: FnOnce(&mut NodeProtocol, &NodeView<'_>) -> Vec<Action>,
    {
        let view = NodeView {
            node,
            now: self.now,
            zones: &self.zones,
            routing: match &self.dbf {
                Some(dbf) => dbf.table(node),
                None => &self.tables[node.index()],
            },
            timeouts: self.timeouts,
            battery_frac: self.battery_frac(node),
            low_battery_threshold: self.config.low_battery_threshold,
        };
        f(&mut self.protocols[node.index()], &view)
    }

    /// Checks `node` against its battery budget after an energy charge;
    /// a depleted node dies permanently (no repair is scheduled).
    fn check_battery(&mut self, node: NodeId) {
        let Some(cap) = self.config.battery_capacity_uj else {
            return;
        };
        if !self.alive[node.index()] {
            return;
        }
        let spent = self.meters[node.index()].breakdown().total().value();
        if spent < cap {
            return;
        }
        self.alive[node.index()] = false;
        self.down_gen[node.index()] += 1;
        self.queues[node.index()].cancel_pending(self.now);
        self.protocols[node.index()].on_failed();
        self.nodes_dead += 1;
        if self.first_death_at.is_none() {
            self.first_death_at = Some(self.now);
        }
        self.trace
            .record_with(self.now, "dead", || format!("{node} battery depleted"));
        self.reconverge_after_liveness_flips(&[node]);
    }

    fn process_actions(&mut self, node: NodeId, actions: Vec<Action>, extra: SimTime) {
        for action in actions {
            match action {
                Action::Send(frame) => self.transmit(node, frame, extra),
                Action::SetTimer {
                    meta,
                    kind,
                    gen,
                    after,
                } => {
                    self.events.schedule(
                        self.now + extra + after,
                        Event::Timer {
                            node,
                            meta,
                            kind,
                            gen,
                        },
                    );
                    self.protocol_pending += 1;
                }
                Action::Delivered { meta } => self.record_delivery(node, meta),
                Action::Abandoned { meta } => self.record_abandon(node, meta),
                Action::Duplicate { .. } => self.duplicates += 1,
            }
        }
    }

    fn transmit(&mut self, node: NodeId, frame: OutFrame, extra: SimTime) {
        debug_assert_eq!(frame.packet.from, node, "frames must be sent as self");
        let kind = frame.packet.kind();
        let bytes = self.config.sizes.bytes(kind);
        let density = self.zones.density_at_level(node, frame.level) as usize;
        let access =
            self.config
                .contention
                .access_delay(&self.config.mac, density, &mut self.rng_mac);
        let tx_time = self.config.mac.tx_duration(bytes);
        let request_at = (self.now + extra).max(self.pause_until);
        let res = self.queues[node.index()].reserve(request_at, access, tx_time);
        self.mac_wait.record(res.queue_wait.as_millis_f64());
        let power = self.config.radio.power_mw(frame.level);
        self.meters[node.index()].charge(
            kind.energy_category(),
            MicroJoules::from_power_duration(power, tx_time),
        );
        self.check_battery(node);
        match kind {
            PacketKind::Adv => {
                self.msg.adv.incr();
                // Delay is measured "from the time the ADV packet is sent
                // out by the source" (§5.1): record the source's first ADV.
                let meta = frame.packet.meta;
                if frame.packet.from == meta.source() {
                    self.meta_adv_at.entry(meta).or_insert(res.starts);
                }
            }
            PacketKind::Req => self.msg.req.incr(),
            PacketKind::Data => self.msg.data.incr(),
        }
        self.trace.record_with(self.now, "tx", || {
            format!(
                "{} {:?} {} -> {:?} @{} (starts {}, ends {})",
                frame.packet.meta, kind, node, frame.to, frame.level, res.starts, res.ends
            )
        });
        self.events.schedule(res.ends, Event::Deliver(frame));
        self.protocol_pending += 1;
    }

    fn record_delivery(&mut self, node: NodeId, meta: MetaId) {
        let reference = self
            .meta_adv_at
            .get(&meta)
            .or_else(|| self.meta_birth.get(&meta))
            .copied()
            .unwrap_or(self.now);
        self.delay
            .record(self.now.saturating_sub(reference).as_millis_f64());
        self.deliveries += 1;
        if self.settled[node.index()].insert(meta) {
            self.outstanding = self.outstanding.saturating_sub(1);
        }
        self.trace
            .record_with(self.now, "rx", || format!("{meta} delivered at {node}"));
    }

    fn record_abandon(&mut self, node: NodeId, meta: MetaId) {
        self.abandonments += 1;
        if self.settled[node.index()].insert(meta) {
            self.outstanding = self.outstanding.saturating_sub(1);
        }
        self.trace
            .record_with(self.now, "rx", || format!("{meta} abandoned at {node}"));
    }

    fn into_metrics(mut self) -> RunMetrics {
        // Optional idle-listening accounting: every node's radio draws the
        // configured power for the whole run (slower dissemination ⇒ more
        // idle energy).
        if let Some(p) = self.config.idle_listening_mw {
            let idle = MicroJoules::from_power_duration(p, self.now);
            for m in &mut self.meters {
                m.charge(EnergyCategory::Idle, idle);
            }
        }
        let mut energy = spms_phy::EnergyBreakdown::new();
        let mut per_node_energy_uj = Vec::with_capacity(self.meters.len());
        for m in &self.meters {
            energy.merge(m.breakdown());
            per_node_energy_uj.push(m.breakdown().total().value());
        }
        RunMetrics {
            protocol: self.config.protocol.label(),
            nodes: self.topology.len(),
            zone_radius_m: self.config.zone_radius_m,
            packets_generated: self.generated,
            deliveries_expected: self.expected,
            deliveries: self.deliveries,
            duplicates: self.duplicates,
            abandonments: self.abandonments,
            delay_ms: self.delay,
            energy,
            messages: self.msg,
            routing: self.routing_cost,
            mac_queue_wait_ms: self.mac_wait,
            failures_injected: self.failures_injected,
            mobility_epochs: self.mobility_epochs,
            adversary: self.adversary_stats,
            finished_at: self.now,
            events_processed: self.events_processed,
            per_node_energy_uj,
            nodes_dead: self.nodes_dead,
            first_death_at: self.first_death_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdversaryConfig, Generation, Interest};
    use spms_net::placement;

    fn single_source_plan(source: u32, items: u32) -> TrafficPlan {
        let src = NodeId::new(source);
        let generations = (0..items)
            .map(|i| Generation {
                at: SimTime::from_millis(u64::from(i)),
                source: src,
                meta: MetaId::new(src, i),
            })
            .collect();
        TrafficPlan::new(generations, Interest::AllNodes).unwrap()
    }

    fn run(protocol: ProtocolKind, seed: u64) -> RunMetrics {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let config = SimConfig::paper_defaults(protocol, seed);
        Simulation::run_with(config, topo, single_source_plan(4, 1)).unwrap()
    }

    #[test]
    fn spms_delivers_to_all_interested() {
        let m = run(ProtocolKind::Spms, 1);
        assert_eq!(m.deliveries_expected, 8);
        assert_eq!(m.deliveries, 8);
        assert_eq!(m.delivery_ratio(), 1.0);
        assert!(m.delay_ms.count() == 8);
        assert!(m.energy.total().value() > 0.0);
    }

    #[test]
    fn spin_delivers_to_all_interested() {
        let m = run(ProtocolKind::Spin, 1);
        assert_eq!(m.deliveries, 8);
        assert_eq!(m.messages.adv.value(), 9, "each holder advertises once");
    }

    #[test]
    fn flooding_delivers_with_duplicates() {
        let m = run(ProtocolKind::Flooding, 1);
        assert_eq!(m.deliveries, 8);
        assert!(m.duplicates > 0, "flooding must show implosion");
    }

    #[test]
    fn spms_uses_less_energy_than_spin() {
        let spin = run(ProtocolKind::Spin, 1);
        let spms = run(ProtocolKind::Spms, 1);
        assert!(
            spms.energy.total() < spin.energy.total(),
            "SPMS {} vs SPIN {}",
            spms.energy.total(),
            spin.energy.total()
        );
    }

    #[test]
    fn identical_seeds_give_identical_metrics() {
        let a = run(ProtocolKind::Spms, 42);
        let b = run(ProtocolKind::Spms, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_still_deliver() {
        for seed in [7, 8, 9] {
            let m = run(ProtocolKind::Spms, seed);
            assert_eq!(m.delivery_ratio(), 1.0, "seed {seed}");
        }
    }

    #[test]
    fn distributed_routing_charges_energy_and_pauses() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 3);
        config.routing_mode = RoutingMode::Distributed;
        let m = Simulation::run_with(config, topo, single_source_plan(4, 1)).unwrap();
        assert_eq!(m.routing.executions, 1);
        assert!(m.routing.messages > 0);
        assert!(m.energy.get(EnergyCategory::Routing).value() > 0.0);
        assert_eq!(m.deliveries, 8);
    }

    #[test]
    fn incremental_mobility_rebuild_is_cheaper_than_full() {
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let plan = single_source_plan(12, 3);
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 11);
        config.routing_mode = RoutingMode::Distributed;
        config.mobility =
            Some(spms_net::MobilityConfig::new(SimTime::from_millis(30), 0.1).unwrap());
        config.incremental_routing = true;
        let incremental = Simulation::run_with(config.clone(), topo.clone(), plan.clone()).unwrap();
        config.incremental_routing = false;
        let full = Simulation::run_with(config, topo, plan).unwrap();

        assert!(incremental.mobility_epochs > 0, "epochs must fire");
        assert_eq!(
            incremental.routing.incremental_executions, incremental.mobility_epochs,
            "every epoch re-converges incrementally"
        );
        assert_eq!(
            incremental.routing.executions,
            1 + incremental.mobility_epochs
        );
        assert_eq!(full.routing.incremental_executions, 0);
        assert_eq!(incremental.mobility_epochs, full.mobility_epochs);
        assert!(
            incremental.routing.bytes < full.routing.bytes,
            "delta vectors must shrink the wire cost: {} vs {}",
            incremental.routing.bytes,
            full.routing.bytes
        );
        assert_eq!(incremental.deliveries, incremental.deliveries_expected);
    }

    #[test]
    fn incremental_zone_patches_match_the_reference_rebuild() {
        // Same seed, zones patched in place vs rebuilt all-pairs every
        // epoch: the patched table is bit-identical, so the runs must agree
        // on everything — deliveries, messages, energy, even the DBF
        // re-convergence traffic — except the zone-patch counters.
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let plan = single_source_plan(12, 3);
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 21);
        config.routing_mode = RoutingMode::Distributed;
        config.mobility =
            Some(spms_net::MobilityConfig::new(SimTime::from_millis(30), 0.1).unwrap());
        let patched = Simulation::run_with(config.clone(), topo.clone(), plan.clone()).unwrap();
        config.incremental_zones = false;
        let reference = Simulation::run_with(config, topo, plan).unwrap();

        assert!(patched.mobility_epochs > 0, "epochs must fire");
        assert_eq!(patched.routing.zone_patches, patched.mobility_epochs);
        assert!(patched.routing.zone_rows_patched > 0);
        // On this tiny field one zone spans everything, so a patch may
        // touch every row — but never more than a full rebuild would.
        assert!(
            patched.routing.zone_rows_patched <= patched.mobility_epochs * patched.nodes as u64,
            "patches must not touch more rows than full rebuilds"
        );
        assert_eq!(reference.routing.zone_patches, 0);
        let mut want = reference.clone();
        want.routing.zone_patches = patched.routing.zone_patches;
        want.routing.zone_rows_patched = patched.routing.zone_rows_patched;
        assert_eq!(patched, want);
    }

    #[test]
    fn batched_epochs_reconverge_once_per_window() {
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let plan = single_source_plan(12, 3);
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 11);
        config.routing_mode = RoutingMode::Distributed;
        config.mobility =
            Some(spms_net::MobilityConfig::new(SimTime::from_millis(30), 0.1).unwrap());
        let per_epoch = Simulation::run_with(config.clone(), topo.clone(), plan.clone()).unwrap();
        config.batch_epochs = 3;
        let batched = Simulation::run_with(config, topo, plan).unwrap();

        assert!(per_epoch.mobility_epochs > 1, "epochs must fire");
        assert_eq!(per_epoch.routing.batch_windows, per_epoch.mobility_epochs);
        assert_eq!(per_epoch.routing.epochs_coalesced, 0);
        assert_eq!(
            per_epoch.routing.sharded_executions,
            per_epoch.routing.incremental_executions
        );
        // Batching changes convergence pauses and therefore run pacing, so
        // epoch counts need not match across runs — the invariants are per
        // run: one flush per full 3-epoch window, everything else deferred.
        assert!(batched.mobility_epochs > 1);
        assert_eq!(
            batched.routing.batch_windows,
            batched.mobility_epochs / 3,
            "one flush per full window"
        );
        assert_eq!(
            batched.routing.incremental_executions,
            batched.routing.batch_windows
        );
        // Every epoch either fills its window (flushes) or is coalesced;
        // a trailing partial window stays coalesced to the end of the run.
        assert_eq!(
            batched.routing.epochs_coalesced,
            batched.mobility_epochs - batched.routing.batch_windows
        );
        assert!(
            batched.routing.bytes < per_epoch.routing.bytes,
            "coalesced windows must shrink the wire cost: {} vs {}",
            batched.routing.bytes,
            per_epoch.routing.bytes
        );
        assert_eq!(batched.deliveries, batched.deliveries_expected);
    }

    #[test]
    fn batching_applies_to_the_reference_zone_path_too() {
        // incremental_zones = false still batches: the window keeps the
        // zone table from its start and flushes one update_topology call.
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let plan = single_source_plan(12, 3);
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 21);
        config.routing_mode = RoutingMode::Distributed;
        config.incremental_zones = false;
        config.batch_epochs = 2;
        config.mobility =
            Some(spms_net::MobilityConfig::new(SimTime::from_millis(30), 0.1).unwrap());
        let m = Simulation::run_with(config, topo, plan).unwrap();
        assert!(m.mobility_epochs > 1);
        assert_eq!(m.routing.batch_windows, m.mobility_epochs / 2);
        assert_eq!(m.routing.incremental_executions, m.routing.batch_windows);
        assert_eq!(m.deliveries, m.deliveries_expected);
    }

    fn silent_failure_config(seed: u64) -> SimConfig {
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, seed);
        config.routing_mode = RoutingMode::Distributed;
        config.mobility =
            Some(spms_net::MobilityConfig::new(SimTime::from_millis(40), 0.1).unwrap());
        config.failures = Some(spms_net::FailureConfig {
            mean_interarrival: SimTime::from_millis(20),
            repair_min: SimTime::from_millis(10),
            repair_max: SimTime::from_millis(30),
        });
        config.horizon = SimTime::from_secs(2);
        config
    }

    #[test]
    fn silent_failures_queue_liveness_deltas_into_the_window() {
        // reconverge_on_failure = false (default): a failure used to ride
        // out on alternative routes until the *next mobility epoch* folded
        // it in — stale next-hops survived arbitrarily long on quiet
        // fields. With `queue_liveness_flips` (default on) every flip emits
        // a pure-liveness delta into the batching window, and with the
        // default batch_epochs = 1 the window flushes immediately: no stale
        // next-hop survives past the flip itself.
        let topo = placement::grid(4, 4, 5.0).unwrap();
        let config = silent_failure_config(17);
        let m = Simulation::run_with(config, topo, single_source_plan(5, 3)).unwrap();
        assert!(m.mobility_epochs > 0);
        assert!(m.failures_injected > 0);
        assert!(m.routing.liveness_deltas > 0, "flips must queue deltas");
        assert_eq!(
            m.routing.incremental_executions,
            m.mobility_epochs + m.routing.liveness_deltas,
            "at batch_epochs = 1 every epoch and every flip flushes its own window"
        );
        assert_eq!(m.routing.executions, 1 + m.routing.incremental_executions);
    }

    #[test]
    fn ablating_the_liveness_queue_restores_fold_in_behavior() {
        // queue_liveness_flips = false: the legacy model — flips ride out
        // until the next mobility rebuild folds them in, and only mobility
        // epochs trigger incremental executions.
        let topo = placement::grid(4, 4, 5.0).unwrap();
        let mut config = silent_failure_config(17);
        config.queue_liveness_flips = false;
        let m = Simulation::run_with(config, topo, single_source_plan(5, 3)).unwrap();
        assert!(m.mobility_epochs > 0);
        assert!(m.failures_injected > 0);
        assert_eq!(m.routing.liveness_deltas, 0);
        assert_eq!(m.routing.incremental_executions, m.mobility_epochs);
        assert_eq!(m.routing.executions, 1 + m.mobility_epochs);
    }

    #[test]
    fn failure_reconvergence_repairs_routes_incrementally() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 13);
        config.routing_mode = RoutingMode::Distributed;
        config.reconverge_on_failure = true;
        config.failures = Some(spms_net::FailureConfig {
            mean_interarrival: SimTime::from_millis(5),
            repair_min: SimTime::from_millis(5),
            repair_max: SimTime::from_millis(15),
        });
        config.horizon = SimTime::from_secs(2);
        let m = Simulation::run_with(config, topo, single_source_plan(4, 1)).unwrap();
        assert!(m.failures_injected > 0);
        assert!(
            m.routing.incremental_executions > 0,
            "liveness flips must trigger delta re-convergence"
        );
        assert!(m.energy.get(EnergyCategory::Routing).value() > 0.0);
    }

    #[test]
    fn reconverge_on_failure_requires_incremental_routing() {
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 1);
        config.reconverge_on_failure = true;
        config.incremental_routing = false;
        assert!(config.validate().is_err());
    }

    #[test]
    fn dead_source_generates_nothing() {
        let topo = placement::grid(2, 1, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 4);
        // Inject a guaranteed immediate failure by making the mean tiny and
        // the repair long; node selection is random over 2 nodes, so use a
        // seed that hits the source. (Checked: seed 1 fails node 0 first.)
        config.failures = Some(spms_net::FailureConfig {
            mean_interarrival: SimTime::from_micros(100),
            repair_min: SimTime::from_secs(500),
            repair_max: SimTime::from_secs(600),
        });
        config.horizon = SimTime::from_millis(50);
        let plan = single_source_plan(0, 1);
        let m = Simulation::run_with(config, topo, plan).unwrap();
        // Either the source died before generating (no expectations) or it
        // generated and the other node died (undeliverable); both end by
        // horizon without panicking.
        assert!(m.failures_injected >= 1);
    }

    #[test]
    fn energy_breakdown_has_all_protocol_phases() {
        let m = run(ProtocolKind::Spms, 5);
        assert!(m.energy.get(EnergyCategory::Adv).value() > 0.0);
        assert!(m.energy.get(EnergyCategory::Req).value() > 0.0);
        assert!(m.energy.get(EnergyCategory::Data).value() > 0.0);
        assert!(m.energy.get(EnergyCategory::Receive).value() > 0.0);
    }

    #[test]
    fn idle_listening_charges_every_node() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 8);
        config.idle_listening_mw = Some(0.0125);
        let with_idle =
            Simulation::run_with(config, topo.clone(), single_source_plan(4, 1)).unwrap();
        let without = run(ProtocolKind::Spms, 8);
        assert!(with_idle.energy.get(EnergyCategory::Idle).value() > 0.0);
        assert_eq!(without.energy.get(EnergyCategory::Idle).value(), 0.0);
        assert!(with_idle.energy.total() > without.energy.total());
        // Idle accounting must not change protocol behavior.
        assert_eq!(with_idle.deliveries, without.deliveries);
        assert_eq!(with_idle.messages, without.messages);
    }

    #[test]
    fn spin_bc_reduces_data_transmissions() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spin, 9);
        config.spin_broadcast_data = true;
        let bc = Simulation::run_with(config, topo, single_source_plan(4, 1)).unwrap();
        let pp = run(ProtocolKind::Spin, 9);
        assert_eq!(bc.deliveries, 8);
        assert!(
            bc.messages.data.value() < pp.messages.data.value(),
            "BC {} vs PP {}",
            bc.messages.data.value(),
            pp.messages.data.value()
        );
    }

    #[test]
    fn trace_records_when_enabled() {
        let topo = placement::grid(2, 1, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 6);
        config.trace_capacity = Some(256);
        let sim = Simulation::new(config, topo, single_source_plan(0, 1)).unwrap();
        let trace_enabled = sim.trace().is_enabled();
        assert!(trace_enabled);
        let m = sim.run();
        assert_eq!(m.deliveries, 1);
    }

    #[test]
    fn run_traced_returns_the_event_log() {
        let topo = placement::grid(3, 1, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 6);
        config.trace_capacity = Some(1024);
        let sim = Simulation::new(config, topo, single_source_plan(0, 1)).unwrap();
        let (m, trace) = sim.run_traced();
        assert_eq!(m.deliveries, 2);
        assert!(trace.events().len() > 4, "tx + rx events expected");
        assert!(trace.with_tag("tx").count() as u64 >= m.messages.adv.value());
        assert_eq!(trace.with_tag("rx").count() as u64, m.deliveries);
        // Timestamps are monotone.
        let times: Vec<_> = trace.events().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn silent_droppers_swallow_packets_deterministically() {
        let topo = placement::grid(4, 4, 5.0).unwrap();
        let plan = single_source_plan(5, 2);
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 33);
        config.adversary = Some(AdversaryConfig::new(NodeBehavior::SilentDropper, 0.25).unwrap());
        let a = Simulation::run_with(config.clone(), topo.clone(), plan.clone()).unwrap();
        let b = Simulation::run_with(config, topo.clone(), plan.clone()).unwrap();
        assert_eq!(a, b, "the roster is seeded from the master seed");
        assert_eq!(a.adversary.adversaries, 4, "round(0.25 * 16)");
        assert!(a.adversary.packets_dropped > 0);
        assert_eq!(a.adversary.bogus_advs, 0, "droppers stay silent");
        let honest = Simulation::run_with(
            SimConfig::paper_defaults(ProtocolKind::Spms, 33),
            topo,
            plan,
        )
        .unwrap();
        assert_eq!(honest.adversary, AdversaryStats::default());
        assert!(a.deliveries <= honest.deliveries);
    }

    #[test]
    fn flooding_attackers_emit_bogus_advs_only_after_attack_start() {
        let topo = placement::grid(4, 4, 5.0).unwrap();
        let plan = single_source_plan(5, 2);
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 33);
        let mut adv = AdversaryConfig::new(NodeBehavior::Flooding, 0.25).unwrap();
        adv.attack_factor = 3;
        config.adversary = Some(adv);
        let m = Simulation::run_with(config.clone(), topo.clone(), plan.clone()).unwrap();
        assert!(m.adversary.packets_dropped > 0);
        assert!(m.adversary.bogus_advs > 0);
        assert_eq!(
            m.adversary.bogus_advs % 3,
            0,
            "attack_factor bogus ADVs per first-seen item"
        );
        // Pushing attack_start past the horizon keeps the roster but never
        // opens the attack window: byte-identical to the honest run except
        // for the roster count.
        config.adversary.as_mut().unwrap().attack_start = SimTime::from_secs(10_000);
        let dormant = Simulation::run_with(config, topo.clone(), plan.clone()).unwrap();
        let honest = Simulation::run_with(
            SimConfig::paper_defaults(ProtocolKind::Spms, 33),
            topo,
            plan,
        )
        .unwrap();
        let mut want = honest.clone();
        want.adversary.adversaries = dormant.adversary.adversaries;
        assert_eq!(dormant, want);
    }

    #[test]
    fn explicit_adversary_rosters_are_range_checked() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 1);
        let mut adv = AdversaryConfig::new(NodeBehavior::SilentDropper, 0.0).unwrap();
        adv.explicit = Some(vec![NodeId::new(99)]);
        config.adversary = Some(adv);
        let err = Simulation::new(config.clone(), topo.clone(), single_source_plan(4, 1));
        assert!(err.is_err(), "out-of-range explicit adversary must fail");
        config.adversary.as_mut().unwrap().explicit = Some(vec![NodeId::new(3)]);
        let m = Simulation::run_with(config, topo, single_source_plan(4, 1)).unwrap();
        assert_eq!(m.adversary.adversaries, 1);
        assert!(m.adversary.packets_dropped > 0);
    }

    #[test]
    fn churn_epochs_toggle_cohorts_and_queue_one_delta_each() {
        let topo = placement::grid(4, 4, 5.0).unwrap();
        let plan = single_source_plan(5, 3);
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 29);
        config.routing_mode = RoutingMode::Distributed;
        config.churn = Some(spms_net::ChurnConfig::new(SimTime::from_millis(40), 0.25).unwrap());
        config.horizon = SimTime::from_secs(2);
        let a = Simulation::run_with(config.clone(), topo.clone(), plan.clone()).unwrap();
        let b = Simulation::run_with(config.clone(), topo.clone(), plan.clone()).unwrap();
        assert_eq!(a, b, "churn is seeded from the master seed");
        assert!(a.adversary.churn_epochs > 0);
        assert!(
            a.adversary.churn_leaves > 0,
            "early cohorts tear nodes down"
        );
        assert!(a.adversary.churn_joins > 0, "later cohorts revive them");
        assert_eq!(
            a.routing.liveness_deltas, a.adversary.churn_epochs,
            "each cohort lands as one liveness delta"
        );
        assert_eq!(
            a.adversary.churn_coalesced, 0,
            "batch_epochs = 1 always flushes"
        );
        // A wider batching window defers some cohorts into later flushes.
        config.batch_epochs = 2;
        let batched = Simulation::run_with(config, topo, plan).unwrap();
        assert!(batched.adversary.churn_epochs > 1);
        assert!(batched.adversary.churn_coalesced > 0);
    }

    fn contact_plan(text: &str) -> spms_net::ContactPlan {
        spms_net::ContactPlan::parse(text).unwrap()
    }

    #[test]
    fn gated_down_links_block_delivery() {
        // Two nodes, the only link scheduled to be up from 500 s on: the
        // item generated at t = 0 can never be delivered, and the run still
        // terminates.
        let topo = placement::grid(2, 1, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 3);
        config.contact_plan = Some(contact_plan("0 1 500 600\n"));
        let m = Simulation::run_with(config, topo.clone(), single_source_plan(0, 1)).unwrap();
        assert_eq!(m.deliveries, 0, "no link, no delivery");
        assert_eq!(m.messages.data.value(), 0);
        // The already-staged open boundary still fires; once the run is
        // winding down the chain stops (like mobility), so the 600 s close
        // is never staged.
        assert_eq!(m.routing.contact_epochs, 1);
        assert_eq!(m.routing.contact_links_up, 1);
        assert_eq!(m.routing.contact_links_down, 0);
        // The same run without the plan delivers.
        let open = Simulation::run_with(
            SimConfig::paper_defaults(ProtocolKind::Spms, 3),
            topo,
            single_source_plan(0, 1),
        )
        .unwrap();
        assert_eq!(open.deliveries, 1);
        assert_eq!(open.routing.contact_epochs, 0);
    }

    #[test]
    fn windows_open_at_zero_start_up_and_close_on_schedule() {
        // Link up over [0, 50 ms): the t = 0 generation delivers through
        // it, then the close boundary fires as one contact epoch.
        let topo = placement::grid(2, 1, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 3);
        config.contact_plan = Some(contact_plan("0 1 0 0.05\n"));
        let m = Simulation::run_with(config, topo, single_source_plan(0, 1)).unwrap();
        assert_eq!(m.deliveries, 1, "window covers the exchange");
        assert_eq!(m.routing.contact_epochs, 1, "only the close boundary");
        assert_eq!(
            m.routing.contact_links_up, 0,
            "t = 0 opens fold into the initial gate"
        );
        assert_eq!(m.routing.contact_links_down, 1);
    }

    #[test]
    fn contact_plans_are_range_checked() {
        let topo = placement::grid(2, 1, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 3);
        config.contact_plan = Some(contact_plan("0 7 1 2\n"));
        let err = match Simulation::new(config, topo, single_source_plan(0, 1)) {
            Err(e) => e,
            Ok(_) => panic!("out-of-range contact plan must fail"),
        };
        assert!(err.contains("contact plan names node n7"), "{err}");
    }

    #[test]
    fn contact_runs_are_identical_across_zone_maintenance_paths() {
        // Scheduled flips through the incremental patcher vs the all-pairs
        // reference rebuild: byte-identical RunMetrics, including the DBF
        // delta traffic (contact counters count plan events, not rows).
        let topo = placement::grid(4, 4, 5.0).unwrap();
        let plan = single_source_plan(5, 3);
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 19);
        config.routing_mode = RoutingMode::Distributed;
        config.contact_plan = Some(contact_plan(
            "5 6 0 0.2\n5 6 0.5 0.8\n9 10 0.1 0.6\n0 1 0.3 0.4\n",
        ));
        let incremental = Simulation::run_with(config.clone(), topo.clone(), plan.clone()).unwrap();
        config.incremental_zones = false;
        let reference = Simulation::run_with(config, topo, plan).unwrap();
        assert!(incremental.routing.contact_epochs > 0);
        assert_eq!(incremental, reference);
    }

    #[test]
    fn adversary_attack_start_boundary_is_kernel_invariant() {
        // Regression: an adversary whose `attack_start` equals an event's
        // timestamp must behave identically whether the kernel pops events
        // one at a time (heap/wheel) or drains the whole timestamp into a
        // batch (wheel-batched) — `step` pins `now` per event in all three
        // loops, so `now >= attack_start` must flip at the same event
        // either way. Generations land at exact-millisecond timestamps, so
        // pinning `attack_start` to one of them puts the boundary ON a
        // dispatched timestamp shared by several events.
        let topo = placement::grid(4, 4, 5.0).unwrap();
        let plan = single_source_plan(5, 3);
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 33);
        let mut adv = AdversaryConfig::new(NodeBehavior::Flooding, 0.25).unwrap();
        // The third generation's timestamp: events already in flight from
        // earlier generations share dispatch instants with this one.
        adv.attack_start = SimTime::from_millis(2);
        config.adversary = Some(adv);
        let mut runs = Vec::new();
        for kernel in [
            EventKernel::Heap,
            EventKernel::Wheel,
            EventKernel::WheelBatched,
        ] {
            let mut c = config.clone();
            c.event_kernel = kernel;
            runs.push((
                kernel,
                Simulation::run_with(c, topo.clone(), plan.clone()).unwrap(),
            ));
        }
        assert!(
            runs[0].1.adversary.packets_dropped > 0,
            "the boundary run must actually exercise the adversary"
        );
        for (kernel, m) in &runs[1..] {
            assert_eq!(&runs[0].1, m, "kernel {kernel} diverges at the boundary");
        }
    }

    #[test]
    fn spms_iz_delivers_and_is_labelled() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let config = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 2);
        let m = Simulation::run_with(config, topo, single_source_plan(4, 1)).unwrap();
        assert_eq!(m.deliveries, 8, "single-zone field behaves like base SPMS");
        assert_eq!(m.protocol, "SPMS-IZ");
    }

    #[test]
    fn spms_iz_explicit_ttl_and_paths_are_validated() {
        let mut config = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 2);
        config.interzone.paths_kept = 0;
        assert!(config.validate().is_err());
        config.interzone.paths_kept = 3;
        config.interzone.ttl = Some(7);
        assert!(config.validate().is_ok());
    }
}
