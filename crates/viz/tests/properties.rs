//! Property-based tests for the visualization substrate.

use proptest::prelude::*;
use spms_viz::{node_heatmap, sparkline, Canvas, FieldMap};

proptest! {
    // Fixed seed + bounded case count keeps this suite deterministic in CI.
    #![proptest_config(ProptestConfig {
        cases: 64,
        rng_seed: 0x0071_2004_D51F,
        ..ProptestConfig::default()
    })]

    /// Every in-bounds world point maps to a valid cell; out-of-bounds
    /// points map to none.
    #[test]
    fn cell_mapping_is_total_and_bounded(
        w in 1.0f64..500.0,
        h in 1.0f64..500.0,
        cols in 1usize..120,
        rows in 1usize..60,
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
    ) {
        let c = Canvas::new(0.0, 0.0, w, h, cols, rows).unwrap();
        let (col, row) = c.cell_of(fx * w, fy * h).expect("in bounds");
        prop_assert!(col < cols);
        prop_assert!(row < rows);
        prop_assert_eq!(c.cell_of(-1.0, fy * h), None);
        prop_assert_eq!(c.cell_of(fx * w, h + 1.0), None);
    }

    /// Rendering always yields exactly `rows` lines, each at most `cols`
    /// characters, whatever was drawn.
    #[test]
    fn render_dimensions_are_stable(
        cols in 1usize..80,
        rows in 1usize..40,
        points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 0..50),
    ) {
        let mut c = Canvas::new(0.0, 0.0, 100.0, 100.0, cols, rows).unwrap();
        for &(x, y) in &points {
            c.plot(x, y, '#');
        }
        c.line(0.0, 0.0, 100.0, 100.0, '.');
        c.circle(50.0, 50.0, 25.0, 'o');
        let s = c.render();
        prop_assert_eq!(s.lines().count(), rows);
        for line in s.lines() {
            prop_assert!(line.chars().count() <= cols);
        }
    }

    /// Sparklines are length-preserving, use only ramp characters, and the
    /// maximum element always renders hottest.
    #[test]
    fn sparkline_invariants(values in prop::collection::vec(0.0f64..1e6, 1..64)) {
        let line = sparkline(&values).unwrap();
        prop_assert_eq!(line.chars().count(), values.len());
        for ch in line.chars() {
            prop_assert!(spms_viz::INTENSITY_RAMP.contains(&ch));
        }
        let max = values.iter().cloned().fold(0.0, f64::max);
        if max > 0.0 {
            let arg_max = values.iter().position(|&v| v == max).unwrap();
            prop_assert_eq!(line.chars().nth(arg_max), Some('@'));
        }
    }

    /// Heatmaps render for any non-negative value assignment and always
    /// carry a legend.
    #[test]
    fn heatmap_is_total_over_valid_inputs(
        cols in 2usize..10,
        values in prop::collection::vec(0.0f64..1e3, 6..30),
    ) {
        let n = values.len();
        let rows_in_grid = n / cols + usize::from(n % cols != 0);
        let total = cols * rows_in_grid;
        let mut values = values;
        values.resize(total, 0.0);
        let topo = spms_net::placement::grid(cols, rows_in_grid, 5.0).unwrap();
        let art = node_heatmap(&topo, &values, 40, 12).unwrap();
        prop_assert!(art.contains("legend"));
    }

    /// Field maps draw every node exactly once when the canvas is large
    /// enough that no two nodes share a cell.
    #[test]
    fn field_maps_show_every_node(cols in 2usize..8, rows in 1usize..5) {
        let topo = spms_net::placement::grid(cols, rows, 5.0).unwrap();
        let art = FieldMap::new(&topo, cols * 12, rows * 4 + 1)
            .unwrap()
            .render();
        prop_assert_eq!(art.chars().filter(|&c| c == '·').count(), cols * rows);
    }
}
