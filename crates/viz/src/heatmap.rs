//! Per-node scalar heatmaps and sparklines.

use spms_net::Topology;

use crate::canvas::Canvas;

/// Intensity ramp from cold to hot. The first character (space) encodes
/// "exactly zero", so untouched nodes disappear from the picture.
pub const INTENSITY_RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

fn ramp_char(frac: f64) -> char {
    let frac = frac.clamp(0.0, 1.0);
    if frac == 0.0 {
        return INTENSITY_RAMP[0];
    }
    // Nonzero values always render visibly: skip the blank level.
    let hot = &INTENSITY_RAMP[1..];
    let idx = ((frac * hot.len() as f64).ceil() as usize).clamp(1, hot.len());
    hot[idx - 1]
}

/// Renders per-node values (indexed by node id, e.g.
/// `RunMetrics::per_node_energy_uj`) as a spatial heatmap over the
/// topology, normalized to the maximum value. Includes a legend line.
///
/// # Errors
///
/// Returns a message if `values` does not have one entry per node, any
/// value is negative/non-finite, or the canvas dimensions are zero.
///
/// # Example
///
/// ```
/// use spms_net::placement;
/// use spms_viz::node_heatmap;
///
/// let topo = placement::grid(5, 1, 5.0)?;
/// let art = node_heatmap(&topo, &[0.0, 1.0, 2.0, 3.0, 4.0], 30, 3)?;
/// assert!(art.contains('@'), "hottest node uses the top ramp char");
/// # Ok::<(), String>(())
/// ```
pub fn node_heatmap(
    topology: &Topology,
    values: &[f64],
    cols: usize,
    rows: usize,
) -> Result<String, String> {
    if values.len() != topology.len() {
        return Err(format!(
            "{} values for {} nodes",
            values.len(),
            topology.len()
        ));
    }
    if let Some(bad) = values.iter().find(|v| !v.is_finite() || **v < 0.0) {
        return Err(format!("heatmap values must be finite and >= 0, got {bad}"));
    }
    let field = topology.field();
    let margin = field.width.max(field.height) * 0.03;
    let mut canvas = Canvas::new(
        -margin,
        -margin,
        field.width + margin,
        field.height + margin,
        cols,
        rows,
    )?;
    let max = values.iter().cloned().fold(0.0, f64::max);
    for node in topology.nodes() {
        let v = values[node.index()];
        let frac = if max > 0.0 { v / max } else { 0.0 };
        let p = topology.position(node);
        canvas.plot(p.x, p.y, ramp_char(frac));
    }
    let mut out = canvas.render();
    out.push_str(&format!(
        "legend: '{}' = 0, '{}' > 0 … '{}' = max ({max:.3})\n",
        INTENSITY_RAMP[0],
        INTENSITY_RAMP[1],
        INTENSITY_RAMP[INTENSITY_RAMP.len() - 1],
    ));
    Ok(out)
}

/// Renders a numeric series as a one-line sparkline using the intensity
/// ramp, normalized to the series maximum. Empty input gives an empty
/// string; negative or non-finite values are an error.
///
/// # Errors
///
/// Returns a message if any value is negative or non-finite.
///
/// # Example
///
/// ```
/// use spms_viz::sparkline;
///
/// let line = sparkline(&[0.0, 1.0, 2.0, 4.0, 8.0])?;
/// assert_eq!(line.chars().count(), 5);
/// assert!(line.ends_with('@'));
/// # Ok::<(), String>(())
/// ```
pub fn sparkline(values: &[f64]) -> Result<String, String> {
    if let Some(bad) = values.iter().find(|v| !v.is_finite() || **v < 0.0) {
        return Err(format!(
            "sparkline values must be finite and >= 0, got {bad}"
        ));
    }
    let max = values.iter().cloned().fold(0.0, f64::max);
    Ok(values
        .iter()
        .map(|&v| ramp_char(if max > 0.0 { v / max } else { 0.0 }))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_net::placement;

    #[test]
    fn ramp_is_monotone_and_total() {
        let mut last = 0usize;
        for i in 0..=100 {
            let c = ramp_char(i as f64 / 100.0);
            let pos = INTENSITY_RAMP.iter().position(|&r| r == c).unwrap();
            assert!(pos >= last, "ramp must not cool down");
            last = pos;
        }
        assert_eq!(ramp_char(0.0), ' ');
        assert_ne!(ramp_char(1e-9), ' ', "tiny nonzero values stay visible");
        assert_eq!(ramp_char(1.0), '@');
    }

    #[test]
    fn heatmap_shows_hot_and_cold_nodes() {
        let topo = placement::grid(5, 1, 5.0).unwrap();
        let art = node_heatmap(&topo, &[0.0, 0.1, 1.0, 5.0, 10.0], 30, 3).unwrap();
        assert!(art.contains('@'));
        assert!(art.contains("legend"));
        // The zero node renders blank — only 4 visible intensity marks.
        let marks = art
            .lines()
            .take(3)
            .flat_map(str::chars)
            .filter(|c| INTENSITY_RAMP[1..].contains(c))
            .count();
        assert_eq!(marks, 4, "{art}");
    }

    #[test]
    fn heatmap_validates_inputs() {
        let topo = placement::grid(3, 1, 5.0).unwrap();
        assert!(node_heatmap(&topo, &[1.0, 2.0], 10, 3).is_err());
        assert!(node_heatmap(&topo, &[1.0, -2.0, 3.0], 10, 3).is_err());
        assert!(node_heatmap(&topo, &[1.0, f64::NAN, 3.0], 10, 3).is_err());
        assert!(node_heatmap(&topo, &[1.0, 2.0, 3.0], 0, 3).is_err());
        // An all-zero map is fine (everything cold).
        let art = node_heatmap(&topo, &[0.0, 0.0, 0.0], 10, 3).unwrap();
        assert!(art.contains("legend"));
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]).unwrap(), "");
        let flat = sparkline(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(flat, "@@@");
        let zeros = sparkline(&[0.0, 0.0]).unwrap();
        assert_eq!(zeros, "  ");
        assert!(sparkline(&[1.0, f64::INFINITY]).is_err());
        assert!(sparkline(&[-0.5]).is_err());
    }
}
