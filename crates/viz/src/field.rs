//! Sensor-field maps: node positions with zone and route overlays.

use spms_net::{NodeId, Topology, ZoneTable};

use crate::canvas::Canvas;

/// Default glyph for an unmarked node.
const NODE_GLYPH: char = '·';

/// A field map under construction (builder style: overlays first, marks
/// last, so marks stay visible).
///
/// # Example
///
/// ```
/// use spms_net::{placement, NodeId, ZoneTable};
/// use spms_phy::RadioProfile;
/// use spms_viz::FieldMap;
///
/// let topo = placement::grid(9, 1, 5.0)?;
/// let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
/// let art = FieldMap::new(&topo, 50, 7)?
///     .zone(&zones, NodeId::new(0))
///     .route(&[NodeId::new(0), NodeId::new(4), NodeId::new(8)])
///     .mark(NodeId::new(0), 'S')
///     .mark(NodeId::new(8), 'D')
///     .render();
/// assert!(art.contains('S') && art.contains('D'));
/// # Ok::<(), String>(())
/// ```
#[derive(Clone, Debug)]
pub struct FieldMap<'a> {
    topology: &'a Topology,
    canvas: Canvas,
    marks: Vec<(NodeId, char)>,
}

impl<'a> FieldMap<'a> {
    /// Starts a map of `topology` on a `cols × rows` canvas with a small
    /// world margin so border nodes stay visible.
    ///
    /// # Errors
    ///
    /// Returns a message if the canvas dimensions are zero.
    pub fn new(topology: &'a Topology, cols: usize, rows: usize) -> Result<Self, String> {
        let field = topology.field();
        let margin = (field.width.max(field.height)) * 0.03;
        let canvas = Canvas::new(
            -margin,
            -margin,
            field.width + margin,
            field.height + margin,
            cols,
            rows,
        )?;
        Ok(FieldMap {
            topology,
            canvas,
            marks: Vec::new(),
        })
    }

    /// Overlays the zone of `node`: its reach circle (at the zone radius)
    /// and a `+` on every zone neighbor.
    #[must_use]
    pub fn zone(mut self, zones: &ZoneTable, node: NodeId) -> Self {
        let p = self.topology.position(node);
        self.canvas.circle(p.x, p.y, zones.zone_radius_m(), '~');
        for link in zones.links(node) {
            let q = self.topology.position(link.neighbor);
            self.canvas.plot(q.x, q.y, '+');
        }
        self
    }

    /// Overlays a multi-hop route as line segments between consecutive
    /// nodes.
    #[must_use]
    pub fn route(mut self, path: &[NodeId]) -> Self {
        for pair in path.windows(2) {
            let a = self.topology.position(pair[0]);
            let b = self.topology.position(pair[1]);
            self.canvas.line(a.x, a.y, b.x, b.y, '*');
        }
        self
    }

    /// Marks one node with a glyph (drawn last, over any overlay).
    #[must_use]
    pub fn mark(mut self, node: NodeId, glyph: char) -> Self {
        self.marks.push((node, glyph));
        self
    }

    /// Renders the map: all nodes, overlays, then marks.
    #[must_use]
    pub fn render(mut self) -> String {
        for node in self.topology.nodes() {
            let p = self.topology.position(node);
            // Overlay glyphs (zone members, routes) keep their cells.
            self.canvas.plot_if_empty(p.x, p.y, NODE_GLYPH);
        }
        for &(node, glyph) in &self.marks {
            let p = self.topology.position(node);
            self.canvas.plot(p.x, p.y, glyph);
        }
        self.canvas.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_net::placement;
    use spms_phy::RadioProfile;

    fn topo() -> Topology {
        placement::grid(9, 3, 5.0).unwrap()
    }

    #[test]
    fn all_nodes_appear() {
        let t = topo();
        let art = FieldMap::new(&t, 60, 12).unwrap().render();
        assert_eq!(
            art.chars().filter(|&c| c == NODE_GLYPH).count(),
            27,
            "{art}"
        );
    }

    #[test]
    fn marks_override_node_glyphs() {
        let t = topo();
        let art = FieldMap::new(&t, 60, 12)
            .unwrap()
            .mark(NodeId::new(0), 'S')
            .mark(NodeId::new(26), 'D')
            .render();
        assert!(art.contains('S'));
        assert!(art.contains('D'));
        assert_eq!(art.chars().filter(|&c| c == NODE_GLYPH).count(), 25);
    }

    #[test]
    fn zone_overlay_draws_ring_and_members() {
        let t = topo();
        let zones = ZoneTable::build(&t, &RadioProfile::mica2(), 10.0);
        let art = FieldMap::new(&t, 80, 20)
            .unwrap()
            .zone(&zones, NodeId::new(13))
            .render();
        assert!(art.contains('~'), "ring expected:\n{art}");
        assert!(art.contains('+'), "zone members expected:\n{art}");
    }

    #[test]
    fn route_overlay_connects_hops() {
        let t = topo();
        let art = FieldMap::new(&t, 60, 12)
            .unwrap()
            .route(&[NodeId::new(0), NodeId::new(4), NodeId::new(8)])
            .render();
        assert!(art.matches('*').count() >= 3, "{art}");
        // An empty or single-node route draws nothing.
        let clean = FieldMap::new(&t, 60, 12)
            .unwrap()
            .route(&[NodeId::new(0)])
            .render();
        assert!(!clean.contains('*'));
    }

    #[test]
    fn tiny_canvas_is_rejected() {
        let t = topo();
        assert!(FieldMap::new(&t, 0, 5).is_err());
    }
}
