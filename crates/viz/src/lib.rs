//! Terminal visualization for the SPMS simulator.
//!
//! Three renderers, all pure string builders (no terminal control codes, so
//! output is pipe- and log-friendly):
//!
//! * [`canvas`] — a world-coordinate character canvas with point, line and
//!   circle plotting (the drawing substrate);
//! * [`field`] — sensor-field maps: node positions, one node's zone, a
//!   multi-hop route overlay;
//! * [`heatmap`] — per-node scalar intensity maps (energy hot-spots, zone
//!   sizes) plus a horizontal sparkline for quick series.
//!
//! # Example
//!
//! ```
//! use spms_net::{placement, NodeId};
//! use spms_viz::FieldMap;
//!
//! let topo = placement::grid(5, 3, 5.0)?;
//! let map = FieldMap::new(&topo, 40, 9)?
//!     .mark(NodeId::new(0), 'S')
//!     .mark(NodeId::new(14), 'D');
//! let art = map.render();
//! assert!(art.contains('S') && art.contains('D'));
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canvas;
pub mod field;
pub mod heatmap;

pub use canvas::Canvas;
pub use field::FieldMap;
pub use heatmap::{node_heatmap, sparkline, INTENSITY_RAMP};
