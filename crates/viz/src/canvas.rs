//! A world-coordinate character canvas.
//!
//! The canvas maps a rectangular world region onto a fixed character grid
//! (y grows upward in world space, downward on screen) and offers the
//! primitive plotting operations the field renderers build on. Later draws
//! overwrite earlier ones, so overlays are painted back-to-front.

/// A character grid addressed in world coordinates.
///
/// # Example
///
/// ```
/// use spms_viz::Canvas;
///
/// let mut c = Canvas::new(0.0, 0.0, 10.0, 10.0, 21, 11)?;
/// c.plot(0.0, 0.0, 'a');
/// c.plot(10.0, 10.0, 'b');
/// let s = c.render();
/// assert!(s.lines().next().unwrap().ends_with('b'), "top-right is b");
/// assert!(s.lines().last().unwrap().starts_with('a'), "bottom-left is a");
/// # Ok::<(), String>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Canvas {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    cols: usize,
    rows: usize,
    cells: Vec<char>,
}

impl Canvas {
    /// Creates a canvas covering the world rectangle `[x0, x1] × [y0, y1]`
    /// with the given character dimensions.
    ///
    /// # Errors
    ///
    /// Returns a message if the rectangle is degenerate or non-finite, or
    /// either dimension is zero.
    pub fn new(
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        cols: usize,
        rows: usize,
    ) -> Result<Self, String> {
        if ![x0, y0, x1, y1].iter().all(|v| v.is_finite()) {
            return Err("canvas bounds must be finite".into());
        }
        if x1 <= x0 || y1 <= y0 {
            return Err(format!("degenerate canvas [{x0},{x1}]×[{y0},{y1}]"));
        }
        if cols == 0 || rows == 0 {
            return Err("canvas needs at least one row and column".into());
        }
        Ok(Canvas {
            x0,
            y0,
            x1,
            y1,
            cols,
            rows,
            cells: vec![' '; cols * rows],
        })
    }

    /// Character columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Character rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Maps a world point to a cell, or `None` when outside the canvas.
    #[must_use]
    pub fn cell_of(&self, x: f64, y: f64) -> Option<(usize, usize)> {
        if !(x.is_finite() && y.is_finite()) {
            return None;
        }
        if x < self.x0 || x > self.x1 || y < self.y0 || y > self.y1 {
            return None;
        }
        let fx = (x - self.x0) / (self.x1 - self.x0);
        let fy = (y - self.y0) / (self.y1 - self.y0);
        let col = ((fx * (self.cols - 1) as f64).round() as usize).min(self.cols - 1);
        let row_up = ((fy * (self.rows - 1) as f64).round() as usize).min(self.rows - 1);
        Some((col, self.rows - 1 - row_up))
    }

    /// Plots one world point. Out-of-bounds points are ignored.
    pub fn plot(&mut self, x: f64, y: f64, ch: char) {
        if let Some((c, r)) = self.cell_of(x, y) {
            self.cells[r * self.cols + c] = ch;
        }
    }

    /// Plots one world point only if its cell is still blank — lets a
    /// background layer fill in around existing overlays.
    pub fn plot_if_empty(&mut self, x: f64, y: f64, ch: char) {
        if let Some((c, r)) = self.cell_of(x, y) {
            let cell = &mut self.cells[r * self.cols + c];
            if *cell == ' ' {
                *cell = ch;
            }
        }
    }

    /// Draws a straight world-space segment by dense sampling (robust for
    /// any aspect ratio; the canvas is small, so oversampling is free).
    pub fn line(&mut self, xa: f64, ya: f64, xb: f64, yb: f64, ch: char) {
        let steps = (self.cols + self.rows) * 2;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            self.plot(xa + (xb - xa) * t, ya + (yb - ya) * t, ch);
        }
    }

    /// Draws a world-space circle outline around `(cx, cy)`.
    pub fn circle(&mut self, cx: f64, cy: f64, radius: f64, ch: char) {
        if !(radius.is_finite() && radius > 0.0) {
            return;
        }
        let steps = (self.cols + self.rows) * 2;
        for i in 0..steps {
            let a = std::f64::consts::TAU * i as f64 / steps as f64;
            self.plot(cx + radius * a.cos(), cy + radius * a.sin(), ch);
        }
    }

    /// Writes a label starting at a world point, running right in screen
    /// space; characters falling outside are clipped.
    pub fn label(&mut self, x: f64, y: f64, text: &str) {
        let Some((c0, r)) = self.cell_of(x, y) else {
            return;
        };
        for (i, ch) in text.chars().enumerate() {
            let c = c0 + i;
            if c >= self.cols {
                break;
            }
            self.cells[r * self.cols + c] = ch;
        }
    }

    /// Renders the canvas as `rows` newline-separated lines.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            let row: String = self.cells[r * self.cols..(r + 1) * self.cols]
                .iter()
                .collect();
            out.push_str(row.trim_end());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_canvas() -> Canvas {
        Canvas::new(0.0, 0.0, 10.0, 10.0, 11, 11).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(Canvas::new(0.0, 0.0, 0.0, 1.0, 5, 5).is_err());
        assert!(Canvas::new(0.0, 1.0, 1.0, 1.0, 5, 5).is_err());
        assert!(Canvas::new(0.0, 0.0, 1.0, 1.0, 0, 5).is_err());
        assert!(Canvas::new(f64::NAN, 0.0, 1.0, 1.0, 5, 5).is_err());
        assert!(Canvas::new(0.0, 0.0, 1.0, 1.0, 5, 5).is_ok());
    }

    #[test]
    fn world_y_grows_upward() {
        let mut c = unit_canvas();
        c.plot(0.0, 0.0, 'a'); // bottom-left
        c.plot(0.0, 10.0, 'b'); // top-left
        let rendered = c.render();
        let lines: Vec<&str> = rendered.lines().map(str::trim_end).collect();
        assert_eq!(lines.len(), 11);
        assert!(lines[0].starts_with('b'));
        assert!(lines[10].starts_with('a'));
    }

    #[test]
    fn out_of_bounds_points_are_ignored() {
        let mut c = unit_canvas();
        c.plot(-1.0, 5.0, 'x');
        c.plot(5.0, 11.0, 'x');
        c.plot(f64::NAN, 5.0, 'x');
        assert!(!c.render().contains('x'));
    }

    #[test]
    fn lines_connect_their_endpoints() {
        let mut c = unit_canvas();
        c.line(0.0, 0.0, 10.0, 10.0, '.');
        let s = c.render();
        // The diagonal has one mark per row.
        assert_eq!(s.matches('.').count(), 11);
        assert_eq!(c.cell_of(0.0, 0.0), Some((0, 10)));
        assert_eq!(c.cell_of(10.0, 10.0), Some((10, 0)));
    }

    #[test]
    fn circle_stays_at_radius() {
        let mut c = Canvas::new(0.0, 0.0, 20.0, 20.0, 41, 41).unwrap();
        c.circle(10.0, 10.0, 5.0, 'o');
        // Center stays empty; the ring is present.
        let (cc, cr) = c.cell_of(10.0, 10.0).unwrap();
        let rendered: Vec<Vec<char>> = c
            .render()
            .lines()
            .map(|l| {
                let mut v: Vec<char> = l.chars().collect();
                v.resize(41, ' ');
                v
            })
            .collect();
        assert_ne!(rendered[cr][cc], 'o');
        assert!(c.render().contains('o'));
        // Degenerate radii are a no-op.
        let before = c.render();
        c.circle(10.0, 10.0, -1.0, 'x');
        c.circle(10.0, 10.0, f64::NAN, 'x');
        assert_eq!(before, c.render());
    }

    #[test]
    fn labels_clip_at_the_edge() {
        let mut c = unit_canvas();
        c.label(9.0, 5.0, "wide-label");
        let s = c.render();
        assert!(s.contains("wi"), "{s}");
        assert!(!s.contains("wide-l"), "must clip: {s}");
        // Labels anchored off-canvas vanish entirely.
        c.label(20.0, 5.0, "gone");
        assert!(!c.render().contains("gone"));
    }

    #[test]
    fn render_trims_trailing_spaces() {
        let mut c = unit_canvas();
        c.plot(0.0, 5.0, 'x');
        for line in c.render().lines() {
            assert_eq!(line, line.trim_end());
        }
    }
}
