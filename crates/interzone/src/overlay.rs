//! The zone overlay graph: node-level vertices, border-relay edges.
//!
//! A bordercast query transmitted by `v` is re-broadcast by `v`'s border
//! relays, then by *their* border relays, and so on. The overlay graph whose
//! directed edges run from each node to its border relays therefore
//! describes exactly how far a query with a given TTL can travel; BFS over
//! it yields the minimum number of relay rebroadcasts ("zone hops") between
//! any two nodes, and its eccentricity bounds the TTL an experiment needs.

use std::collections::VecDeque;

use spms_net::{NodeId, ZoneTable};

use crate::border::border_relays;

/// Precomputed overlay over one [`ZoneTable`].
///
/// # Example
///
/// ```
/// use spms_interzone::ZoneOverlay;
/// use spms_net::{placement, NodeId, ZoneTable};
/// use spms_phy::RadioProfile;
///
/// let topo = placement::grid(13, 1, 5.0).unwrap();
/// let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
/// let overlay = ZoneOverlay::build(&zones);
/// // Same zone: zero relays needed.
/// assert_eq!(overlay.zone_hops(NodeId::new(0), NodeId::new(4)), Some(0));
/// // The far end needs a chain of rebroadcasts.
/// assert!(overlay.zone_hops(NodeId::new(0), NodeId::new(12)).unwrap() >= 2);
/// assert!(overlay.suggested_ttl() >= 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneOverlay {
    relays: Vec<Vec<NodeId>>,
}

impl ZoneOverlay {
    /// Computes every node's border-relay set.
    #[must_use]
    pub fn build(zones: &ZoneTable) -> Self {
        let relays = (0..zones.len())
            .map(|i| border_relays(zones, NodeId::new(i as u32)))
            .collect();
        ZoneOverlay { relays }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.relays.len()
    }

    /// `true` when the overlay covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.relays.is_empty()
    }

    /// The border relays of `node`, in id order.
    #[must_use]
    pub fn relays(&self, node: NodeId) -> &[NodeId] {
        &self.relays[node.index()]
    }

    /// Minimum number of relay rebroadcasts for a query from `from` to be
    /// heard by `to`: `Some(0)` when `to` already hears `from`'s own
    /// zone-wide broadcast, `None` when no relay chain reaches it.
    ///
    /// This equals the TTL a bordercast query needs (a query sent with
    /// `ttl >= zone_hops` arrives; one hop consumes one TTL unit).
    #[must_use]
    pub fn zone_hops(&self, from: NodeId, to: NodeId) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        // BFS over relay edges; reaching relay r at depth d means r's
        // broadcast (the d-th rebroadcast) is heard by r's zone.
        // `to` hears the query at depth d if it is in the zone of a node
        // reached at depth d — but zone membership is exactly "is a relay
        // target or interior neighbor", which the relays list alone does
        // not carry. We therefore BFS on relays and separately test
        // audibility via the relay sets' complement: a node hears `x` iff
        // it is a zone neighbor of `x`. The overlay stores only relays, so
        // audibility is checked through `hears`, computed lazily below.
        let mut depth = vec![u32::MAX; self.relays.len()];
        depth[from.index()] = 0;
        let mut queue = VecDeque::from([from]);
        let mut best: Option<u32> = None;
        while let Some(v) = queue.pop_front() {
            let d = depth[v.index()];
            if let Some(b) = best {
                if d >= b {
                    continue;
                }
            }
            if self.hears(v, to) {
                best = Some(best.map_or(d, |b| b.min(d)));
                continue;
            }
            for &r in &self.relays[v.index()] {
                if depth[r.index()] == u32::MAX {
                    depth[r.index()] = d + 1;
                    queue.push_back(r);
                }
            }
        }
        best
    }

    /// `true` if `listener` hears a zone-wide broadcast from `speaker`.
    ///
    /// Derived from the relay structure: every zone neighbor either is a
    /// relay of `speaker` or appears in some relay's edge set; to stay
    /// self-contained the overlay keeps the full neighbor test by storing
    /// relays of *both* endpoints — zone symmetry means `listener` hears
    /// `speaker` iff `speaker` hears `listener`, and a node always hears
    /// its own relays.
    fn hears(&self, speaker: NodeId, listener: NodeId) -> bool {
        self.relays[speaker.index()].contains(&listener)
            || self.relays[listener.index()].contains(&speaker)
            || speaker == listener
    }

    /// The smallest TTL that lets a query from any node reach every node it
    /// can reach at all (the overlay's eccentricity bound). Fields that fit
    /// in one zone report 0.
    #[must_use]
    pub fn suggested_ttl(&self) -> u32 {
        let mut worst = 0;
        for a in 0..self.relays.len() {
            for b in 0..self.relays.len() {
                if let Some(h) = self.zone_hops(NodeId::new(a as u32), NodeId::new(b as u32)) {
                    worst = worst.max(h);
                }
            }
        }
        worst
    }
}

/// Builds the overlay together with an explicit audibility check against
/// the zone table, avoiding the relay-only `hears` approximation. This is
/// the precise variant protocols use; [`ZoneOverlay`] alone suffices for
/// relay-set queries.
#[derive(Clone, Debug)]
pub struct PreciseOverlay<'a> {
    zones: &'a ZoneTable,
    overlay: ZoneOverlay,
}

impl<'a> PreciseOverlay<'a> {
    /// Builds the precise overlay for `zones`.
    #[must_use]
    pub fn build(zones: &'a ZoneTable) -> Self {
        PreciseOverlay {
            zones,
            overlay: ZoneOverlay::build(zones),
        }
    }

    /// The relay-set overlay.
    #[must_use]
    pub fn overlay(&self) -> &ZoneOverlay {
        &self.overlay
    }

    /// Exact zone-hop distances from `from` to **every** node, in one BFS
    /// over the relay edges plus one audibility sweep. `hops[b]` is `None`
    /// when no relay chain makes `b` hear the query.
    #[must_use]
    pub fn hops_from(&self, from: NodeId) -> Vec<Option<u32>> {
        let n = self.overlay.len();
        // BFS depth of each *relay* (number of rebroadcasts before it
        // transmits).
        let mut depth = vec![u32::MAX; n];
        depth[from.index()] = 0;
        let mut queue = VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            let d = depth[v.index()];
            for &r in self.overlay.relays(v) {
                if depth[r.index()] == u32::MAX {
                    depth[r.index()] = d + 1;
                    queue.push_back(r);
                }
            }
        }
        // A node hears the query at the depth of the shallowest transmitter
        // whose zone contains it.
        let mut hears = vec![u32::MAX; n];
        for v in 0..n {
            let d = depth[v];
            if d == u32::MAX {
                continue;
            }
            hears[v] = hears[v].min(d);
            for l in self.zones.links(NodeId::new(v as u32)) {
                let h = &mut hears[l.neighbor.index()];
                *h = (*h).min(d);
            }
        }
        hears
            .into_iter()
            .map(|h| if h == u32::MAX { None } else { Some(h) })
            .collect()
    }

    /// Exact zone-hop distance using true zone membership for audibility.
    #[must_use]
    pub fn zone_hops(&self, from: NodeId, to: NodeId) -> Option<u32> {
        if from == to || self.zones.in_zone(from, to) {
            return Some(0);
        }
        self.hops_from(from)[to.index()]
    }

    /// Exact TTL bound: the maximum finite zone-hop distance over all pairs
    /// (the overlay's eccentricity). Runs one BFS per node.
    #[must_use]
    pub fn suggested_ttl(&self) -> u32 {
        let n = self.overlay.len();
        let mut worst = 0;
        for a in 0..n {
            for h in self.hops_from(NodeId::new(a as u32)).into_iter().flatten() {
                worst = worst.max(h);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_net::placement;
    use spms_phy::RadioProfile;

    fn line(n: usize) -> ZoneTable {
        let topo = placement::grid(n, 1, 5.0).unwrap();
        ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0)
    }

    #[test]
    fn single_zone_needs_no_relays() {
        let zones = line(5); // 20 m line: one zone
        let precise = PreciseOverlay::build(&zones);
        for a in 0..5u32 {
            for b in 0..5u32 {
                assert_eq!(
                    precise.zone_hops(NodeId::new(a), NodeId::new(b)),
                    Some(0),
                    "{a}->{b}"
                );
            }
        }
        assert_eq!(precise.suggested_ttl(), 0);
    }

    #[test]
    fn long_line_distances_grow_monotonically() {
        let zones = line(25); // 120 m line
        let precise = PreciseOverlay::build(&zones);
        let from = NodeId::new(0);
        let mut last = 0;
        for b in 1..25u32 {
            let h = precise.zone_hops(from, NodeId::new(b)).unwrap();
            assert!(h >= last, "hops must not decrease along the line");
            last = h;
        }
        assert!(last >= 3, "120 m needs several 20 m zone hops, got {last}");
        assert_eq!(precise.suggested_ttl(), last);
    }

    #[test]
    fn unreachable_nodes_report_none() {
        let topo = spms_net::Topology::new(
            vec![
                spms_net::Point::new(0.0, 0.0),
                spms_net::Point::new(5.0, 0.0),
                spms_net::Point::new(300.0, 0.0),
            ],
            spms_net::Field::new(300.0, 10.0).unwrap(),
        )
        .unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        let precise = PreciseOverlay::build(&zones);
        assert_eq!(precise.zone_hops(NodeId::new(0), NodeId::new(2)), None);
        assert_eq!(precise.zone_hops(NodeId::new(0), NodeId::new(1)), Some(0));
    }

    #[test]
    fn overlay_and_precise_agree_on_reachability() {
        let zones = line(17);
        let overlay = ZoneOverlay::build(&zones);
        let precise = PreciseOverlay::build(&zones);
        for a in 0..17u32 {
            for b in 0..17u32 {
                let o = overlay.zone_hops(NodeId::new(a), NodeId::new(b));
                let p = precise.zone_hops(NodeId::new(a), NodeId::new(b));
                assert_eq!(o.is_some(), p.is_some(), "{a}->{b}");
                if let (Some(o), Some(p)) = (o, p) {
                    assert!(o >= p, "{a}->{b}: overlay {o} < precise {p}");
                }
            }
        }
    }

    #[test]
    fn relays_match_border_function() {
        let zones = line(13);
        let overlay = ZoneOverlay::build(&zones);
        assert_eq!(overlay.len(), 13);
        assert!(!overlay.is_empty());
        for a in 0..13u32 {
            assert_eq!(
                overlay.relays(NodeId::new(a)),
                crate::border_relays(&zones, NodeId::new(a)).as_slice()
            );
        }
    }

    #[test]
    fn grid_field_ttl_is_bounded_by_diagonal() {
        // 9×9 grid at 10 m spacing: 80 m × 80 m, 20 m zones.
        let topo = placement::grid(9, 9, 10.0).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        let precise = PreciseOverlay::build(&zones);
        let ttl = precise.suggested_ttl();
        // Diagonal ≈ 113 m; one zone hop buys up to ~20 m: TTL in [3, 12].
        assert!((3..=12).contains(&ttl), "ttl = {ttl}");
    }
}
