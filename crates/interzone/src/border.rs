//! Border-relay computation.
//!
//! A *border relay* of node `v` is a zone neighbor `u` whose own zone
//! contains at least one node that `v` cannot reach — rebroadcasting a
//! query at `u` therefore reaches new nodes. This is the geometric-zone
//! analogue of the Zone Routing Protocol's peripheral nodes: ZRP bordercasts
//! queries to the nodes at the edge of the routing zone; with zones defined
//! by a transmission radius, the nodes that matter are exactly those whose
//! coverage extends past the previous transmitter's.

use spms_net::{NodeId, ZoneTable};

/// Number of nodes in `candidate`'s zone that are **not** in `prev`'s zone
/// (and are not `prev` itself) — how much new coverage a rebroadcast at
/// `candidate` buys.
///
/// Zero means relaying at `candidate` is useless: everyone it can reach
/// already heard `prev`'s transmission.
#[must_use]
pub fn coverage_gain(zones: &ZoneTable, prev: NodeId, candidate: NodeId) -> usize {
    zones
        .links(candidate)
        .iter()
        .filter(|l| l.neighbor != prev && !zones.in_zone(prev, l.neighbor))
        .count()
}

/// `true` if `candidate` is a useful border relay for a query last
/// transmitted by `prev`: it is in `prev`'s zone (it heard the query) and
/// its rebroadcast reaches at least one node `prev` could not.
///
/// # Example
///
/// ```
/// use spms_interzone::is_border_relay;
/// use spms_net::{placement, NodeId, ZoneTable};
/// use spms_phy::RadioProfile;
///
/// let topo = placement::grid(13, 1, 5.0).unwrap();
/// let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
/// // Node 4 (20 m out) extends node 0's coverage; node 1 (5 m) does too,
/// // because its zone reaches node 5 (25 m from node 0).
/// assert!(is_border_relay(&zones, NodeId::new(0), NodeId::new(4)));
/// assert!(is_border_relay(&zones, NodeId::new(0), NodeId::new(1)));
/// ```
#[must_use]
pub fn is_border_relay(zones: &ZoneTable, prev: NodeId, candidate: NodeId) -> bool {
    zones.in_zone(prev, candidate) && coverage_gain(zones, prev, candidate) > 0
}

/// All border relays of `node`, in id order (deterministic).
///
/// These are the zone neighbors a bordercast query transmitted by `node`
/// should be re-broadcast from. Interior neighbors — whose zones are wholly
/// contained in `node`'s — are excluded, which is what keeps bordercast
/// cheaper than flooding.
#[must_use]
pub fn border_relays(zones: &ZoneTable, node: NodeId) -> Vec<NodeId> {
    zones
        .links(node)
        .iter()
        .map(|l| l.neighbor)
        .filter(|&nb| coverage_gain(zones, node, nb) > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_net::{placement, Topology};
    use spms_phy::RadioProfile;

    fn line(n: usize) -> ZoneTable {
        let topo = placement::grid(n, 1, 5.0).unwrap();
        ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0)
    }

    #[test]
    fn interior_neighbors_of_a_small_cluster_are_not_border_relays() {
        // 3 nodes 5 m apart: every zone covers everyone, so no relay gains
        // coverage.
        let zones = line(3);
        for a in 0..3u32 {
            assert!(
                border_relays(&zones, NodeId::new(a)).is_empty(),
                "node {a} should have no border relays in a single-cluster field"
            );
        }
    }

    #[test]
    fn line_edges_extend_coverage() {
        // 13 nodes over 60 m with 20 m zones: node 0's far neighbors are
        // border relays, and gains grow with distance from node 0.
        let zones = line(13);
        let n0 = NodeId::new(0);
        let relays = border_relays(&zones, n0);
        assert!(
            relays.contains(&NodeId::new(4)),
            "20 m neighbor extends reach"
        );
        let g1 = coverage_gain(&zones, n0, NodeId::new(1));
        let g4 = coverage_gain(&zones, n0, NodeId::new(4));
        assert!(g4 > g1, "farther relays gain more: g1={g1} g4={g4}");
    }

    #[test]
    fn border_relay_requires_zone_membership() {
        let zones = line(13);
        // Node 7 is 35 m from node 0: outside the 20 m zone, so never a
        // border relay for node 0 even though it would extend coverage.
        assert!(!is_border_relay(&zones, NodeId::new(0), NodeId::new(7)));
    }

    #[test]
    fn gain_never_counts_prev_or_shared_nodes() {
        let zones = line(13);
        let prev = NodeId::new(2);
        for l in zones.links(prev) {
            let gain = coverage_gain(&zones, prev, l.neighbor);
            // Upper bound: candidate's zone size minus itself.
            assert!(gain <= zones.links(l.neighbor).len());
        }
    }

    #[test]
    fn relays_are_sorted_and_unique() {
        let zones = line(13);
        let relays = border_relays(&zones, NodeId::new(6));
        let mut sorted = relays.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(relays, sorted);
    }

    #[test]
    fn two_node_field_has_no_relays() {
        let topo = placement::grid(2, 1, 5.0).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        assert!(border_relays(&zones, NodeId::new(0)).is_empty());
    }

    #[test]
    fn disconnected_node_is_not_a_relay() {
        // 3 nodes: two close, one 95 m away (beyond radio reach).
        let topo = Topology::new(
            vec![
                spms_net::Point::new(0.0, 0.0),
                spms_net::Point::new(5.0, 0.0),
                spms_net::Point::new(95.0, 0.0),
            ],
            spms_net::Field::new(100.0, 10.0).unwrap(),
        )
        .unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        assert!(!is_border_relay(&zones, NodeId::new(0), NodeId::new(2)));
        assert!(border_relays(&zones, NodeId::new(2)).is_empty());
    }
}
