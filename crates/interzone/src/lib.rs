//! Zone-routing substrate for SPMS inter-zone dissemination.
//!
//! The SPMS paper's §6 proposes extending the protocol to "disseminate data
//! when the source and the destination are in separate zones with no
//! interested nodes in the intermediate zones", using the zone routing of
//! Haas & Pearlman (reference \[4\] of the paper). This crate provides the
//! topology-level machinery that extension needs, kept separate from the
//! protocol state machine in the `spms` crate:
//!
//! * [`border`] — which zone neighbors of a node are useful *border relays*
//!   (they extend radio coverage beyond the node's own zone), the analogue
//!   of ZRP's peripheral nodes on a geometric zone;
//! * [`overlay`] — the zone overlay graph whose edges connect a node to its
//!   border relays, giving zone-hop distances, reachability and the TTL
//!   bound a bordercast query needs.
//!
//! Everything here is derived deterministically from a [`ZoneTable`](spms_net::ZoneTable), so it
//! can be recomputed after every mobility epoch exactly like the routing
//! tables are.
//!
//! # Example
//!
//! ```
//! use spms_interzone::{border_relays, ZoneOverlay};
//! use spms_net::{placement, NodeId, ZoneTable};
//! use spms_phy::RadioProfile;
//!
//! // A 60 m line of motes with 20 m zones: three zone-hops end to end.
//! let topo = placement::grid(13, 1, 5.0).unwrap();
//! let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
//! let overlay = ZoneOverlay::build(&zones);
//! let hops = overlay.zone_hops(NodeId::new(0), NodeId::new(12)).unwrap();
//! assert!(hops >= 2, "far ends need multiple bordercast relays, got {hops}");
//! assert!(!border_relays(&zones, NodeId::new(6)).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod border;
pub mod overlay;

pub use border::{border_relays, coverage_gain, is_border_relay};
pub use overlay::ZoneOverlay;
