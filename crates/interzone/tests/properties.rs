//! Property-based tests for the inter-zone substrate.

use proptest::prelude::*;
use spms_interzone::overlay::PreciseOverlay;
use spms_interzone::{border_relays, coverage_gain, is_border_relay, ZoneOverlay};
use spms_net::{placement, NodeId, ZoneTable};
use spms_phy::RadioProfile;

fn zones_for(cols: usize, rows: usize, spacing: f64, radius: f64) -> ZoneTable {
    let topo = placement::grid(cols, rows, spacing).unwrap();
    ZoneTable::build(&topo, &RadioProfile::mica2(), radius)
}

proptest! {
    // Fixed seed + bounded case count keeps this suite deterministic in CI.
    #![proptest_config(ProptestConfig {
        cases: 48,
        rng_seed: 0x0012_2004_D51F,
        ..ProptestConfig::default()
    })]

    /// Border relays are always zone neighbors with positive gain.
    #[test]
    fn relays_are_zone_neighbors_with_gain(
        cols in 2usize..12,
        rows in 1usize..4,
        radius in 10.0f64..30.0,
    ) {
        let zones = zones_for(cols, rows, 5.0, radius);
        for i in 0..zones.len() {
            let v = NodeId::new(i as u32);
            for r in border_relays(&zones, v) {
                prop_assert!(zones.in_zone(v, r));
                prop_assert!(coverage_gain(&zones, v, r) > 0);
                prop_assert!(is_border_relay(&zones, v, r));
            }
        }
    }

    /// Zone-hop distance satisfies the triangle-ish relay inequality:
    /// hops(a, c) <= hops(a, b) + hops(b, c) + 1 (the +1 accounts for b
    /// itself needing one rebroadcast to bridge its two zones).
    #[test]
    fn zone_hops_quasi_triangle(
        cols in 4usize..14,
        radius in 12.0f64..26.0,
    ) {
        let zones = zones_for(cols, 1, 5.0, radius);
        let precise = PreciseOverlay::build(&zones);
        let n = zones.len() as u32;
        for a in (0..n).step_by(3) {
            for b in (0..n).step_by(4) {
                for c in (0..n).step_by(5) {
                    let (ab, bc, ac) = (
                        precise.zone_hops(NodeId::new(a), NodeId::new(b)),
                        precise.zone_hops(NodeId::new(b), NodeId::new(c)),
                        precise.zone_hops(NodeId::new(a), NodeId::new(c)),
                    );
                    if let (Some(ab), Some(bc)) = (ab, bc) {
                        let ac = ac.expect("reachable via b");
                        prop_assert!(ac <= ab + bc + 1,
                            "{a}->{c}: {ac} > {ab}+{bc}+1");
                    }
                }
            }
        }
    }

    /// Growing the zone radius never increases the zone-hop distance.
    #[test]
    fn hops_shrink_with_radius(cols in 4usize..14) {
        let small = zones_for(cols, 1, 5.0, 12.0);
        let large = zones_for(cols, 1, 5.0, 24.0);
        let ps = PreciseOverlay::build(&small);
        let pl = PreciseOverlay::build(&large);
        let far = NodeId::new(cols as u32 - 1);
        let hs = ps.zone_hops(NodeId::new(0), far);
        let hl = pl.zone_hops(NodeId::new(0), far);
        if let Some(hs) = hs {
            let hl = hl.expect("larger radius keeps reachability");
            prop_assert!(hl <= hs, "radius 24: {hl} > radius 12: {hs}");
        }
    }

    /// Suggested TTL is achievable: every reachable pair's distance is at
    /// most the TTL, and some pair attains it.
    #[test]
    fn suggested_ttl_is_tight(
        cols in 3usize..10,
        rows in 1usize..3,
    ) {
        let zones = zones_for(cols, rows, 5.0, 15.0);
        let precise = PreciseOverlay::build(&zones);
        let ttl = precise.suggested_ttl();
        let mut attained = false;
        for a in 0..zones.len() as u32 {
            for b in 0..zones.len() as u32 {
                if let Some(h) = precise.zone_hops(NodeId::new(a), NodeId::new(b)) {
                    prop_assert!(h <= ttl);
                    attained |= h == ttl;
                }
            }
        }
        prop_assert!(attained, "no pair attains the suggested TTL {ttl}");
    }

    /// The relay-only overlay over-approximates but never under-approximates
    /// the precise zone-hop distance.
    #[test]
    fn overlay_upper_bounds_precise(cols in 3usize..12) {
        let zones = zones_for(cols, 1, 5.0, 20.0);
        let overlay = ZoneOverlay::build(&zones);
        let precise = PreciseOverlay::build(&zones);
        for a in 0..zones.len() as u32 {
            for b in 0..zones.len() as u32 {
                if let (Some(o), Some(p)) = (
                    overlay.zone_hops(NodeId::new(a), NodeId::new(b)),
                    precise.zone_hops(NodeId::new(a), NodeId::new(b)),
                ) {
                    prop_assert!(o >= p, "{a}->{b}");
                }
            }
        }
    }
}
