//! Workloads, experiments and figure regeneration for the SPMS
//! reproduction.
//!
//! This crate turns the `spms` engine into the paper's evaluation section:
//!
//! * [`traffic`] — builders for the two communication patterns of §5:
//!   all-to-all with Poisson arrivals, and cluster-based hierarchical
//!   traffic with 5% bystander interest,
//! * [`contact_plans`] — scheduled-connectivity generators (the
//!   satellite-pass backhaul and the inter-regional pipeline cut) feeding
//!   `SimConfig::contact_plan`,
//! * [`experiment`] — run specifications and the deterministic parallel
//!   sweep executor (a [`SweepConfig`]-sized worker pool whose results are
//!   byte-identical to the sequential path for any worker count),
//! * [`figures`] — one generator per paper figure (3, 5, 6–13), each
//!   returning a [`FigureResult`] with the same series the paper plots,
//!   plus the EXT1 (inter-zone) and EXT2 (network-lifetime) extension
//!   experiments,
//! * [`replication`] — multi-seed aggregation with Student-t 95%
//!   confidence intervals,
//! * [`report`] — markdown and CSV rendering for those results.
//!
//! The `repro` binary regenerates everything:
//!
//! ```text
//! cargo run --release -p spms-workloads --bin repro -- all --scale quick
//! cargo run --release -p spms-workloads --bin repro -- fig6 fig8 --scale paper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contact_plans;
pub mod experiment;
pub mod figures;
pub mod replication;
pub mod report;
pub mod traffic;

pub use contact_plans::{interregional, satellite_passes};
pub use experiment::{
    default_adversary, default_contact_plan, default_event_kernel, default_sweep_config,
    default_table_layout, run_specs, run_specs_with, set_default_adversary,
    set_default_contact_plan, set_default_event_kernel, set_default_table_layout,
    set_default_workers, try_run_specs, AdversaryOverride, RunSpec, Scale, SweepConfig,
};
pub use figures::{FigureResult, SeriesData};
pub use replication::{
    render_replicated_csv, render_replicated_markdown, replicate, ReplicatedFigure,
    ReplicatedSeries,
};
pub use report::{render_ascii_chart, render_csv, render_json, render_markdown};
