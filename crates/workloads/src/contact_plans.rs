//! Contact-plan generators: the scheduled-connectivity workloads.
//!
//! Two DTN-flavored scenarios layered on the paper's uniform grid:
//!
//! * [`satellite_passes`] — a constellation-backhaul overlay. The square
//!   field is split at a vertical seam and every link crossing the seam is
//!   treated as a pass to an overhead relay: up for the first
//!   `duty × period` of every period, down between passes. The dense local
//!   field on either side keeps its geometry-derived connectivity (a plan
//!   constrains only the links it names).
//! * [`interregional`] — the inter-zone pipeline of EXT1 with a scheduled
//!   cut: all links crossing a chosen position along the line share the
//!   same pass schedule, so data crosses regions only while the contact is
//!   up. This is the workload that drives `crates/interzone`'s bordercast
//!   pull across scheduled connectivity.
//!
//! Both generators produce an ordinary [`ContactPlan`], so everything
//! downstream — gate, timeline, engine staging, oracle chain — is shared
//! with hand-written `.cp` files.

use spms_kernel::SimTime;
use spms_net::{ContactPlan, ContactWindow, NodeId};

/// Builds the shared pass schedule for a set of links: every listed pair is
/// up for the first `duty × period` of each period, starting at `t = 0`,
/// for every period that begins before `horizon`.
///
/// `duty >= 1` produces one window covering the whole run (the link is
/// gated but never down); `duty <= 0` — or a duty so small the pass rounds
/// to zero nanoseconds — produces one window entirely beyond the horizon,
/// so the link is gated down for the whole run (a zero-length window would
/// be dropped at load and silently un-gate the link instead).
fn pass_schedule(
    pairs: &[(NodeId, NodeId)],
    period: SimTime,
    duty: f64,
    horizon: SimTime,
) -> Result<ContactPlan, String> {
    if period == SimTime::ZERO {
        return Err("contact pass period must be positive".into());
    }
    if !duty.is_finite() {
        return Err(format!("contact duty cycle {duty} must be finite"));
    }
    if horizon == SimTime::ZERO {
        return Err("contact horizon must be positive".into());
    }
    let up = SimTime::from_nanos((period.as_nanos() as f64 * duty.clamp(0.0, 1.0)).round() as u64);
    let mut spans: Vec<(SimTime, SimTime)> = Vec::new();
    if up == SimTime::ZERO {
        // Permanently severed: one never-reached window keeps the link in
        // the plan (and therefore down) without scheduling any flip.
        spans.push((
            horizon.saturating_add(period),
            horizon.saturating_add(period * 2),
        ));
    } else if up >= period {
        spans.push((SimTime::ZERO, horizon.saturating_add(period)));
    } else {
        let mut start = SimTime::ZERO;
        while start < horizon {
            spans.push((start, start + up));
            start = start.saturating_add(period);
        }
    }
    let windows = pairs.iter().flat_map(|&(a, b)| {
        spans
            .iter()
            .map(move |&(start, end)| ContactWindow { a, b, start, end })
    });
    ContactPlan::from_windows(windows)
}

/// Satellite-constellation pass schedule over a `side × side` grid.
///
/// Splits the field at the vertical seam between columns `side/2 - 1` and
/// `side/2` and puts every seam-crossing link on a shared pass schedule:
/// up for the first `duty × period` of every period until `horizon`.
/// Links within either half are untouched. `duty = 1` reproduces the
/// ungated field byte-for-byte; `duty = 0` severs the halves for the whole
/// run.
///
/// # Errors
///
/// Returns a message when `side < 2`, the period or horizon is zero, or
/// the duty cycle is not finite.
pub fn satellite_passes(
    side: usize,
    period: SimTime,
    duty: f64,
    horizon: SimTime,
) -> Result<ContactPlan, String> {
    if side < 2 {
        return Err(format!("satellite pass field needs side >= 2, got {side}"));
    }
    let cut = side / 2;
    let mut pairs = Vec::new();
    for a in 0..side * side {
        if a % side >= cut {
            continue;
        }
        for b in 0..side * side {
            if b % side >= cut {
                pairs.push((NodeId::new(a as u32), NodeId::new(b as u32)));
            }
        }
    }
    pass_schedule(&pairs, period, duty, horizon)
}

/// Inter-regional pipeline contact: a line of `len` nodes (ids `0..len`,
/// as [`ext1`]'s pipeline) cut at `cut` — every link between a node
/// `< cut` and a node `>= cut` shares one pass schedule (up for the first
/// `duty × period` of every period until `horizon`). The regions on
/// either side stay internally connected; only the inter-regional contact
/// is scheduled. Drives the `crates/interzone` bordercast machinery:
/// SPMS-IZ's pull must land while the contact is up.
///
/// [`ext1`]: crate::figures::ext1
///
/// # Errors
///
/// Returns a message when the cut does not split the line (`cut == 0` or
/// `cut >= len`), the period or horizon is zero, or the duty cycle is not
/// finite.
pub fn interregional(
    len: usize,
    cut: usize,
    period: SimTime,
    duty: f64,
    horizon: SimTime,
) -> Result<ContactPlan, String> {
    if cut == 0 || cut >= len {
        return Err(format!(
            "inter-regional cut {cut} must split the {len}-node line"
        ));
    }
    let mut pairs = Vec::new();
    for a in 0..cut {
        for b in cut..len {
            pairs.push((NodeId::new(a as u32), NodeId::new(b as u32)));
        }
    }
    pass_schedule(&pairs, period, duty, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn satellite_passes_gate_exactly_the_seam() {
        let period = SimTime::from_secs(2);
        let horizon = SimTime::from_secs(5);
        let plan = satellite_passes(3, period, 0.5, horizon).unwrap();
        // 3×3 grid, cut = 1: column 0 (nodes 0,3,6) vs columns 1-2.
        assert_eq!(plan.num_links(), 3 * 6);
        assert!(!plan.windows_for(n(0), n(1)).is_empty(), "seam link gated");
        assert!(
            plan.windows_for(n(1), n(2)).is_empty(),
            "right half ungated"
        );
        assert!(plan.windows_for(n(0), n(3)).is_empty(), "left half ungated");
        // Pass 0 covers t=0, so the seam starts up and flips on schedule.
        assert!(plan.initial_gate().is_up(n(0), n(1)));
        assert_eq!(
            plan.windows_for(n(0), n(1)),
            &[
                (SimTime::ZERO, SimTime::from_secs(1)),
                (SimTime::from_secs(2), SimTime::from_secs(3)),
                (SimTime::from_secs(4), SimTime::from_secs(5)),
            ]
        );
        let d = plan.duty_cycle(n(0), n(1), SimTime::from_secs(4));
        assert!((d - 0.5).abs() < 1e-12, "duty cycle round-trips: {d}");
    }

    #[test]
    fn full_duty_gates_but_never_drops() {
        let plan = satellite_passes(3, SimTime::from_secs(2), 1.0, SimTime::from_secs(5)).unwrap();
        assert_eq!(plan.num_windows(), plan.num_links(), "one window per link");
        assert!(plan.initial_gate().is_up(n(0), n(1)));
        // The only boundary (the close) is beyond the horizon.
        assert!(plan.timeline().iter().all(|e| e.at > SimTime::from_secs(5)));
    }

    #[test]
    fn zero_duty_severs_for_the_whole_run() {
        for duty in [0.0, 1e-15] {
            let plan =
                satellite_passes(3, SimTime::from_secs(2), duty, SimTime::from_secs(5)).unwrap();
            assert!(!plan.initial_gate().is_up(n(0), n(1)), "duty {duty}");
            assert!(
                plan.timeline().iter().all(|e| e.at > SimTime::from_secs(5)),
                "duty {duty}: no flip may fire within the horizon"
            );
        }
    }

    #[test]
    fn interregional_cuts_the_line() {
        let plan = interregional(9, 4, SimTime::from_secs(1), 0.25, SimTime::from_secs(2)).unwrap();
        assert_eq!(plan.num_links(), 4 * 5);
        assert!(!plan.windows_for(n(3), n(4)).is_empty());
        assert!(
            plan.windows_for(n(4), n(5)).is_empty(),
            "right region ungated"
        );
        assert!(interregional(9, 0, SimTime::from_secs(1), 0.5, SimTime::from_secs(2)).is_err());
        assert!(interregional(9, 9, SimTime::from_secs(1), 0.5, SimTime::from_secs(2)).is_err());
    }

    #[test]
    fn bad_parameters_are_rejected() {
        let p = SimTime::from_secs(1);
        let h = SimTime::from_secs(2);
        assert!(satellite_passes(1, p, 0.5, h).is_err());
        assert!(satellite_passes(3, SimTime::ZERO, 0.5, h).is_err());
        assert!(satellite_passes(3, p, f64::NAN, h).is_err());
        assert!(satellite_passes(3, p, 0.5, SimTime::ZERO).is_err());
    }
}
