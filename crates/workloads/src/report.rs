//! Rendering figure results as markdown tables and CSV.

use std::fmt::Write as _;

use crate::figures::FigureResult;

/// Renders a figure as a markdown section with one row per x value and one
/// column per series.
///
/// # Example
///
/// ```
/// use spms_workloads::{render_markdown, SeriesData, FigureResult};
///
/// let fig = FigureResult {
///     id: "figX",
///     title: "demo".into(),
///     x_label: "x",
///     y_label: "y",
///     series: vec![SeriesData { name: "A".into(), points: vec![(1.0, 2.0)] }],
///     notes: vec!["note".into()],
/// };
/// let md = render_markdown(&fig);
/// assert!(md.contains("| x | A |"));
/// ```
#[must_use]
pub fn render_markdown(fig: &FigureResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {} — {}", fig.id, fig.title);
    let _ = writeln!(out);
    // Header.
    let mut header = format!("| {} |", fig.x_label);
    let mut rule = String::from("|---|");
    for s in &fig.series {
        let _ = write!(header, " {} |", s.name);
        rule.push_str("---|");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    // Rows keyed by the x values of the first series.
    let xs: Vec<f64> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        let mut row = format!("| {x:.1} |");
        for s in &fig.series {
            match s.points.get(i) {
                Some((_, y)) => {
                    let _ = write!(row, " {y:.3} |");
                }
                None => row.push_str(" – |"),
            }
        }
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "*y-axis: {}*", fig.y_label);
    for n in &fig.notes {
        let _ = writeln!(out, "- {n}");
    }
    let _ = writeln!(out);
    out
}

/// Renders a figure as CSV: `x, series1, series2, …`.
#[must_use]
pub fn render_csv(fig: &FigureResult) -> String {
    let mut out = String::new();
    let mut header = vec![fig.x_label.to_string()];
    header.extend(fig.series.iter().map(|s| s.name.clone()));
    let _ = writeln!(out, "{}", header.join(","));
    let xs: Vec<f64> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        let mut row = vec![format!("{x}")];
        for s in &fig.series {
            row.push(
                s.points
                    .get(i)
                    .map(|(_, y)| format!("{y}"))
                    .unwrap_or_default(),
            );
        }
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

/// Renders a figure as a small JSON document — the machine-readable twin
/// of the CSV: id, title, axis labels, series points, and notes.
///
/// The output is deterministic byte for byte for equal figures (fixed key
/// order, `Display`-formatted floats, no timestamps), which is what the CI
/// `sweep-smoke` step relies on: the same sweep rendered at different
/// worker counts must diff empty.
///
/// # Example
///
/// ```
/// use spms_workloads::{render_json, FigureResult, SeriesData};
///
/// let fig = FigureResult {
///     id: "figX",
///     title: "demo".into(),
///     x_label: "x",
///     y_label: "y",
///     series: vec![SeriesData { name: "A".into(), points: vec![(1.0, 2.5)] }],
///     notes: vec!["note".into()],
/// };
/// let json = render_json(&fig);
/// assert!(json.contains("\"points\": [[1, 2.5]]"));
/// ```
#[must_use]
pub fn render_json(fig: &FigureResult) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"id\": \"{}\",", esc(fig.id));
    let _ = writeln!(out, "  \"title\": \"{}\",", esc(&fig.title));
    let _ = writeln!(out, "  \"x_label\": \"{}\",", esc(fig.x_label));
    let _ = writeln!(out, "  \"y_label\": \"{}\",", esc(fig.y_label));
    out.push_str("  \"series\": [");
    for (i, s) in fig.series.iter().enumerate() {
        let points: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("[{x}, {y}]"))
            .collect();
        let _ = write!(
            out,
            "{}\n    {{\"name\": \"{}\", \"points\": [{}]}}",
            if i == 0 { "" } else { "," },
            esc(&s.name),
            points.join(", ")
        );
    }
    out.push_str(if fig.series.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"notes\": [");
    for (i, n) in fig.notes.iter().enumerate() {
        let _ = write!(out, "{}\n    \"{}\"", if i == 0 { "" } else { "," }, esc(n));
    }
    out.push_str(if fig.notes.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    out.push_str("}\n");
    out
}

/// Renders a figure as a side-by-side ASCII bar chart (one row per x, one
/// bar per series), for eyeballing shapes in terminal output.
///
/// # Example
///
/// ```
/// use spms_workloads::{render_ascii_chart, FigureResult, SeriesData};
///
/// let fig = FigureResult {
///     id: "figX",
///     title: "demo".into(),
///     x_label: "x",
///     y_label: "y",
///     series: vec![SeriesData { name: "A".into(), points: vec![(1.0, 2.0), (2.0, 4.0)] }],
///     notes: vec![],
/// };
/// let chart = render_ascii_chart(&fig, 20);
/// assert!(chart.contains('█'));
/// ```
#[must_use]
pub fn render_ascii_chart(fig: &FigureResult, width: usize) -> String {
    let width = width.clamp(8, 120);
    let mut out = String::new();
    let _ = writeln!(out, "{} — {} (bar = {})", fig.id, fig.title, fig.y_label);
    let max = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0f64, f64::max);
    if max <= 0.0 {
        let _ = writeln!(out, "(no positive values)");
        return out;
    }
    let xs: Vec<f64> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        for s in &fig.series {
            let Some(&(_, y)) = s.points.get(i) else {
                continue;
            };
            let bars = ((y / max) * width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{x:>8.1} {:<8} |{}{} {y:.2}",
                s.name,
                "█".repeat(bars),
                " ".repeat(width.saturating_sub(bars)),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::SeriesData;

    fn fig() -> FigureResult {
        FigureResult {
            id: "figT",
            title: "test figure".into(),
            x_label: "n",
            y_label: "µJ",
            series: vec![
                SeriesData {
                    name: "SPMS".into(),
                    points: vec![(25.0, 1.5), (49.0, 2.5)],
                },
                SeriesData {
                    name: "SPIN".into(),
                    points: vec![(25.0, 3.0), (49.0, 6.0)],
                },
            ],
            notes: vec!["a note".into()],
        }
    }

    #[test]
    fn markdown_has_header_rows_and_notes() {
        let md = render_markdown(&fig());
        assert!(md.contains("### figT — test figure"));
        assert!(md.contains("| n | SPMS | SPIN |"));
        assert!(md.contains("| 25.0 | 1.500 | 3.000 |"));
        assert!(md.contains("- a note"));
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let json = render_json(&fig());
        assert!(json.contains("\"id\": \"figT\""));
        assert!(json.contains("{\"name\": \"SPMS\", \"points\": [[25, 1.5], [49, 2.5]]}"));
        assert!(json.contains("\"notes\": [\n    \"a note\"\n  ]"));
        // Byte-identical on re-render — what the CI sweep diff relies on.
        assert_eq!(json, render_json(&fig()));
        // Quotes and newlines in titles/notes stay valid JSON.
        let mut tricky = fig();
        tricky.title = "say \"hi\"\nback\\slash".into();
        let rendered = render_json(&tricky);
        assert!(rendered.contains("say \\\"hi\\\"\\nback\\\\slash"));
        // Degenerate figure renders without panic.
        let empty = FigureResult {
            id: "fig0",
            title: "empty".into(),
            x_label: "x",
            y_label: "y",
            series: vec![],
            notes: vec![],
        };
        let rendered = render_json(&empty);
        assert!(rendered.contains("\"series\": []"));
        assert!(rendered.contains("\"notes\": []"));
    }

    #[test]
    fn csv_roundtrips_values() {
        let csv = render_csv(&fig());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,SPMS,SPIN");
        assert_eq!(lines[1], "25,1.5,3");
        assert_eq!(lines[2], "49,2.5,6");
    }

    #[test]
    fn ascii_chart_scales_bars_to_max() {
        let chart = render_ascii_chart(&fig(), 20);
        // SPIN at x=49 is the maximum (6.0) → full-width bar.
        assert!(chart.contains(&"█".repeat(20)));
        // SPMS at x=25 (1.5) is a quarter of the max → 5 bars.
        assert!(chart.contains(&format!("|{}", "█".repeat(5))));
        assert!(chart.contains("figT"));
    }

    #[test]
    fn ascii_chart_handles_degenerate_inputs() {
        let f = FigureResult {
            id: "fig0",
            title: "zeros".into(),
            x_label: "x",
            y_label: "y",
            series: vec![SeriesData {
                name: "Z".into(),
                points: vec![(1.0, 0.0)],
            }],
            notes: vec![],
        };
        assert!(render_ascii_chart(&f, 20).contains("no positive values"));
        // Width is clamped, not trusted.
        assert!(!render_ascii_chart(&fig(), 0).is_empty());
    }

    #[test]
    fn empty_series_renders_without_panic() {
        let f = FigureResult {
            id: "fig0",
            title: "empty".into(),
            x_label: "x",
            y_label: "y",
            series: vec![],
            notes: vec![],
        };
        assert!(render_markdown(&f).contains("fig0"));
        assert!(render_csv(&f).starts_with("x"));
    }
}
