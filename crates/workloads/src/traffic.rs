//! Traffic-plan builders for the paper's communication patterns.

use std::collections::{BTreeMap, BTreeSet};

use spms::{Generation, Interest, MetaId, TrafficPlan};
use spms_kernel::{PoissonProcess, SimRng, SimTime};
use spms_net::{NodeId, Point, Topology, ZoneTable};
use spms_phy::RadioProfile;

/// Builds the §5.1 all-to-all workload: every node generates
/// `packets_per_node` items and every other node wants every item.
///
/// Arrivals form one network-wide Poisson process with the given mean gap
/// (Table 1's "λ (Packet Arrivals)"), with sources assigned round-robin so
/// every node contributes equally. The gap controls the offered load: the
/// figure experiments choose it large enough that the network operates in
/// the paper's unsaturated regime (their measured delays — tens of
/// milliseconds — are only reachable when items do not all contend at
/// once), while the kernel's event-driven clock makes long quiet periods
/// free.
///
/// # Errors
///
/// Returns a message if `packets_per_node == 0` or `num_nodes == 0`.
///
/// # Example
///
/// ```
/// use spms_workloads::traffic::all_to_all;
/// use spms_kernel::SimTime;
///
/// let plan = all_to_all(9, 2, SimTime::from_millis(1), 7).unwrap();
/// assert_eq!(plan.len(), 18);
/// assert_eq!(plan.expected_deliveries(9), 18 * 8);
/// ```
pub fn all_to_all(
    num_nodes: usize,
    packets_per_node: u32,
    mean_gap: SimTime,
    seed: u64,
) -> Result<TrafficPlan, String> {
    if packets_per_node == 0 {
        return Err("packets_per_node must be positive".into());
    }
    if num_nodes == 0 {
        return Err("need at least one node".into());
    }
    let root = SimRng::new(seed);
    let process = PoissonProcess::new(root.derive(0xA11), mean_gap);
    let total = num_nodes * packets_per_node as usize;
    let mut generations = Vec::with_capacity(total);
    for (k, at) in process.take(total).enumerate() {
        let source = NodeId::new((k % num_nodes) as u32);
        generations.push(Generation {
            at,
            source,
            meta: MetaId::new(source, (k / num_nodes) as u32),
        });
    }
    TrafficPlan::new(generations, Interest::AllNodes)
}

/// Builds the high-rate many-flow workload: every node runs its **own**
/// independent Poisson arrival process (one flow per node), all flows
/// active concurrently from t = 0, and every other node wants every item.
///
/// Unlike [`all_to_all`] — one network-wide process with round-robin
/// sources, so the event queue holds one generation at a time — this plan
/// front-loads `num_nodes` interleaved flows whose arrivals collide within
/// microseconds of each other. It is the event-kernel stress regime: many
/// near-simultaneous timers, deep pending-event populations, and heavy
/// same-instant FIFO traffic, which is exactly where the timer wheel's
/// O(1) amortized schedule/pop pays off over the heap's `O(log n)` sifts
/// (see the `kernel_event_wheel` benches and the EXT4 figure).
///
/// Generations are merged across flows into one global `(time, source)`
/// order, so the plan — and every run of it — is deterministic.
///
/// # Errors
///
/// Returns a message if `packets_per_node == 0` or `num_nodes == 0`.
///
/// # Example
///
/// ```
/// use spms_workloads::traffic::many_flows;
/// use spms_kernel::SimTime;
///
/// let plan = many_flows(9, 3, SimTime::from_micros(500), 7).unwrap();
/// assert_eq!(plan.len(), 27);
/// assert_eq!(plan.expected_deliveries(9), 27 * 8);
/// ```
pub fn many_flows(
    num_nodes: usize,
    packets_per_node: u32,
    mean_gap: SimTime,
    seed: u64,
) -> Result<TrafficPlan, String> {
    if packets_per_node == 0 {
        return Err("packets_per_node must be positive".into());
    }
    if num_nodes == 0 {
        return Err("need at least one node".into());
    }
    let root = SimRng::new(seed);
    let mut generations = Vec::with_capacity(num_nodes * packets_per_node as usize);
    for node in 0..num_nodes {
        let source = NodeId::new(node as u32);
        let process = PoissonProcess::new(root.derive(0xF10 + node as u64), mean_gap);
        for (k, at) in process.take(packets_per_node as usize).enumerate() {
            generations.push(Generation {
                at,
                source,
                meta: MetaId::new(source, k as u32),
            });
        }
    }
    // Stable merge into global time order; equal instants resolve by the
    // flow id so the plan is independent of the per-flow loop order.
    generations.sort_by_key(|g| (g.at, g.source));
    TrafficPlan::new(generations, Interest::AllNodes)
}

/// Cluster assignment for the §5.2 hierarchical workload: the field is
/// partitioned into square cells with side equal to the cluster radius;
/// the node nearest each populated cell's center is its head.
#[derive(Clone, Debug, PartialEq)]
pub struct Clustering {
    /// head\[i\] = the cluster head responsible for node i.
    pub head_of: Vec<NodeId>,
    /// The distinct heads, in id order.
    pub heads: Vec<NodeId>,
}

/// Computes the clustering.
///
/// # Errors
///
/// Returns a message if `cluster_radius_m` is not positive and finite.
pub fn cluster_assignment(
    topology: &Topology,
    cluster_radius_m: f64,
) -> Result<Clustering, String> {
    if !cluster_radius_m.is_finite() || cluster_radius_m <= 0.0 {
        return Err(format!("bad cluster radius {cluster_radius_m}"));
    }
    let cell = cluster_radius_m;
    // Group nodes by cell.
    let mut cells: BTreeMap<(i64, i64), Vec<NodeId>> = BTreeMap::new();
    for node in topology.nodes() {
        let p = topology.position(node);
        let key = ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        cells.entry(key).or_default().push(node);
    }
    let mut head_of = vec![NodeId::new(0); topology.len()];
    let mut heads = Vec::new();
    for ((cx, cy), members) in &cells {
        let center = Point::new((*cx as f64 + 0.5) * cell, (*cy as f64 + 0.5) * cell);
        let head = *members
            .iter()
            .min_by(|a, b| {
                let da = topology.position(**a).distance_sq(center);
                let db = topology.position(**b).distance_sq(center);
                da.partial_cmp(&db)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.cmp(b))
            })
            .expect("cells are non-empty");
        heads.push(head);
        for m in members {
            head_of[m.index()] = head;
        }
    }
    heads.sort_unstable();
    heads.dedup();
    Ok(Clustering { head_of, heads })
}

/// Builds the §5.2 cluster-based hierarchical workload: each generated item
/// is wanted by the source's cluster head, and by each other node in the
/// source's zone independently with probability `bystander_prob` (the
/// paper's 5%).
///
/// # Errors
///
/// Returns a message on invalid parameters.
pub fn cluster_hierarchical(
    topology: &Topology,
    radio: &RadioProfile,
    zone_radius_m: f64,
    packets_per_node: u32,
    mean_interarrival: SimTime,
    bystander_prob: f64,
    seed: u64,
) -> Result<TrafficPlan, String> {
    if packets_per_node == 0 {
        return Err("packets_per_node must be positive".into());
    }
    if !(0.0..=1.0).contains(&bystander_prob) {
        return Err(format!("bad bystander probability {bystander_prob}"));
    }
    let clustering = cluster_assignment(topology, zone_radius_m)?;
    let zones = ZoneTable::build(topology, radio, zone_radius_m);
    let root = SimRng::new(seed);
    let mut interest_rng = root.derive(0xC1);
    let num_nodes = topology.len();
    let total = num_nodes * packets_per_node as usize;
    let process = PoissonProcess::new(root.derive(0xA11), mean_interarrival);
    let mut generations = Vec::with_capacity(total);
    let mut interest: BTreeMap<MetaId, BTreeSet<NodeId>> = BTreeMap::new();
    for (k, at) in process.take(total).enumerate() {
        let source = NodeId::new((k % num_nodes) as u32);
        let meta = MetaId::new(source, (k / num_nodes) as u32);
        let mut wanted = BTreeSet::new();
        wanted.insert(clustering.head_of[source.index()]);
        for link in zones.links(source) {
            if interest_rng.chance(bystander_prob) {
                wanted.insert(link.neighbor);
            }
        }
        wanted.remove(&source);
        interest.insert(meta, wanted);
        generations.push(Generation { at, source, meta });
    }
    TrafficPlan::new(generations, Interest::PerMeta(interest))
}

/// A single-source broadcast plan (used by examples and integration tests).
///
/// # Errors
///
/// Returns a message if `items == 0`.
pub fn single_source(source: NodeId, items: u32, spacing: SimTime) -> Result<TrafficPlan, String> {
    if items == 0 {
        return Err("items must be positive".into());
    }
    let generations = (0..items)
        .map(|i| Generation {
            at: spacing * u64::from(i),
            source,
            meta: MetaId::new(source, i),
        })
        .collect();
    TrafficPlan::new(generations, Interest::AllNodes)
}

/// The inter-zone pipeline workload (the §6 future-work scenario): one
/// source generates `items` items and only the listed `sinks` want them —
/// every node in between is an uninterested bystander, so base SPMS/SPIN
/// cannot carry the data across zone boundaries.
///
/// # Errors
///
/// Returns a message if `items == 0`, `sinks` is empty, or a sink equals
/// the source.
///
/// # Example
///
/// ```
/// use spms_workloads::traffic::pipeline;
/// use spms_kernel::SimTime;
/// use spms_net::NodeId;
///
/// let plan = pipeline(NodeId::new(0), &[NodeId::new(24)], 2, SimTime::from_millis(5))?;
/// assert_eq!(plan.expected_deliveries(25), 2);
/// # Ok::<(), String>(())
/// ```
pub fn pipeline(
    source: NodeId,
    sinks: &[NodeId],
    items: u32,
    spacing: SimTime,
) -> Result<TrafficPlan, String> {
    if items == 0 {
        return Err("items must be positive".into());
    }
    if sinks.is_empty() {
        return Err("need at least one sink".into());
    }
    if sinks.contains(&source) {
        return Err("a sink cannot be the source".into());
    }
    let sink_set: BTreeSet<NodeId> = sinks.iter().copied().collect();
    let mut map = BTreeMap::new();
    let generations = (0..items)
        .map(|i| {
            let meta = MetaId::new(source, i);
            map.insert(meta, sink_set.clone());
            Generation {
                at: spacing * u64::from(i),
                source,
                meta,
            }
        })
        .collect();
    TrafficPlan::new(generations, Interest::PerMeta(map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_net::placement;

    #[test]
    fn all_to_all_counts_and_determinism() {
        let a = all_to_all(25, 10, SimTime::from_millis(1), 42).unwrap();
        let b = all_to_all(25, 10, SimTime::from_millis(1), 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 250);
        assert_eq!(a.expected_deliveries(25), 250 * 24);
        assert!(all_to_all(25, 0, SimTime::from_millis(1), 42).is_err());
    }

    #[test]
    fn all_to_all_is_time_sorted_with_unique_metas() {
        let plan = all_to_all(10, 5, SimTime::from_millis(1), 7).unwrap();
        let mut prev = SimTime::ZERO;
        let mut metas = BTreeSet::new();
        for g in &plan.generations {
            assert!(g.at >= prev);
            prev = g.at;
            assert!(metas.insert(g.meta));
            assert_eq!(g.meta.source(), g.source);
        }
    }

    #[test]
    fn many_flows_interleaves_concurrent_sources() {
        let a = many_flows(10, 5, SimTime::from_micros(500), 11).unwrap();
        let b = many_flows(10, 5, SimTime::from_micros(500), 11).unwrap();
        assert_eq!(a, b, "deterministic for a fixed seed");
        assert_eq!(a.len(), 50);
        assert_eq!(a.expected_deliveries(10), 50 * 9);
        // Global time order with unique metas.
        let mut prev = SimTime::ZERO;
        let mut metas = BTreeSet::new();
        for g in &a.generations {
            assert!(g.at >= prev);
            prev = g.at;
            assert!(metas.insert(g.meta));
        }
        // The flows genuinely interleave: the first 10 arrivals must come
        // from more than one source (all processes start at t = 0).
        let head_sources: BTreeSet<NodeId> =
            a.generations.iter().take(10).map(|g| g.source).collect();
        assert!(head_sources.len() > 1, "flows must overlap in time");
        assert!(many_flows(0, 1, SimTime::from_micros(500), 1).is_err());
        assert!(many_flows(10, 0, SimTime::from_micros(500), 1).is_err());
    }

    #[test]
    fn clustering_covers_every_node() {
        let topo = placement::grid(10, 10, 5.0).unwrap();
        let c = cluster_assignment(&topo, 20.0).unwrap();
        assert_eq!(c.head_of.len(), 100);
        assert!(!c.heads.is_empty());
        // Every node's head is a head.
        for h in &c.head_of {
            assert!(c.heads.contains(h));
        }
        // Heads lead their own cluster.
        for h in &c.heads {
            assert_eq!(c.head_of[h.index()], *h);
        }
    }

    #[test]
    fn cluster_plan_targets_heads_plus_bystanders() {
        let topo = placement::grid(10, 10, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let plan =
            cluster_hierarchical(&topo, &radio, 20.0, 1, SimTime::from_millis(1), 0.05, 3).unwrap();
        assert_eq!(plan.len(), 100);
        let clustering = cluster_assignment(&topo, 20.0).unwrap();
        let Interest::PerMeta(map) = &plan.interest else {
            panic!("cluster interest must be explicit");
        };
        for g in &plan.generations {
            let wanted = &map[&g.meta];
            let head = clustering.head_of[g.source.index()];
            // The head is interested unless the source IS the head.
            if head != g.source {
                assert!(wanted.contains(&head), "head of {} missing", g.source);
            }
            assert!(!wanted.contains(&g.source));
        }
        // Expected deliveries: ≥ 1 head per item for non-head sources.
        assert!(plan.expected_deliveries(100) >= 90);
    }

    #[test]
    fn cluster_bystander_rate_close_to_probability() {
        let topo = placement::grid(13, 13, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let plan =
            cluster_hierarchical(&topo, &radio, 20.0, 2, SimTime::from_millis(1), 0.05, 9).unwrap();
        let Interest::PerMeta(map) = &plan.interest else {
            panic!()
        };
        // Average interested-set size ≈ 1 head + 5% of ~44 zone neighbors.
        let total: usize = map.values().map(BTreeSet::len).sum();
        let avg = total as f64 / map.len() as f64;
        assert!(
            (1.5..5.5).contains(&avg),
            "avg interest set size {avg} (expect ≈ 3.2)"
        );
    }

    #[test]
    fn cluster_plan_validates_inputs() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        assert!(
            cluster_hierarchical(&topo, &radio, 20.0, 0, SimTime::from_millis(1), 0.05, 1).is_err()
        );
        assert!(
            cluster_hierarchical(&topo, &radio, 20.0, 1, SimTime::from_millis(1), 1.5, 1).is_err()
        );
        assert!(cluster_assignment(&topo, 0.0).is_err());
    }

    #[test]
    fn single_source_plan() {
        let plan = single_source(NodeId::new(3), 4, SimTime::from_millis(2)).unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.generations[3].at, SimTime::from_millis(6));
        assert!(single_source(NodeId::new(0), 0, SimTime::ZERO).is_err());
    }
}
