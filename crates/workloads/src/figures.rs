//! One generator per paper figure.
//!
//! Every generator returns a [`FigureResult`] carrying the same series the
//! paper plots, plus notes comparing the measured shape against the paper's
//! claims. EXPERIMENTS.md records the paper-vs-measured comparison produced
//! by these functions.

use spms::{ProtocolKind, RoutingMode, RunMetrics, SimConfig, TrafficPlan};
use spms_kernel::SimTime;
use spms_net::{placement, FailureConfig, MobilityConfig, Topology};

use crate::experiment::{run_specs, RunSpec, Scale};
use crate::traffic;

/// One plotted series.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesData {
    /// Legend label ("SPMS", "F-SPIN", …).
    pub name: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

/// A regenerated figure.
#[derive(Clone, Debug, PartialEq)]
pub struct FigureResult {
    /// Short id ("fig6").
    pub id: &'static str,
    /// Human title matching the paper caption.
    pub title: String,
    /// X-axis label.
    pub x_label: &'static str,
    /// Y-axis label.
    pub y_label: &'static str,
    /// The series.
    pub series: Vec<SeriesData>,
    /// Shape observations (compared against the paper's claims).
    pub notes: Vec<String>,
}

impl FigureResult {
    /// The series with the given name, if present.
    #[must_use]
    pub fn series_named(&self, name: &str) -> Option<&SeriesData> {
        self.series.iter().find(|s| s.name == name)
    }
}

fn grid(n: usize, spacing: f64) -> Topology {
    placement::square_grid(n, spacing).expect("scale validated perfect squares")
}

fn config(protocol: ProtocolKind, seed: u64, radius: f64) -> SimConfig {
    let mut c = SimConfig::paper_defaults(protocol, seed);
    c.zone_radius_m = radius;
    c
}

/// Percentage savings of `b` relative to `a` at each shared x, as
/// `(min%, max%)`.
fn savings_range(a: &SeriesData, b: &SeriesData) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for ((_, ya), (_, yb)) in a.points.iter().zip(b.points.iter()) {
        if *ya > 0.0 {
            let s = 100.0 * (1.0 - yb / ya);
            lo = lo.min(s);
            hi = hi.max(s);
        }
    }
    (lo, hi)
}

fn series_of(
    results: &[(String, RunMetrics)],
    name: &str,
    f: impl Fn(&RunMetrics) -> f64,
    xs: &[f64],
) -> SeriesData {
    let points = results
        .iter()
        .filter(|(label, _)| label.starts_with(name))
        .zip(xs.iter())
        .map(|((_, m), &x)| (x, f(m)))
        .collect();
    SeriesData {
        name: name.to_string(),
        points,
    }
}

// ---------------------------------------------------------------------
// Analytical figures.

/// Figure 3: analytical SPIN:SPMS delay ratio vs transmission radius.
#[must_use]
pub fn fig3(scale: &Scale) -> FigureResult {
    let density = 1.0 / (scale.spacing_m * scale.spacing_m);
    let radii: Vec<f64> = (1..=30).map(f64::from).collect();
    let s = spms_analysis::figures::fig3_series(&radii, density).expect("static inputs are valid");
    let last = s.points.last().map_or(0.0, |p| p.1);
    FigureResult {
        id: "fig3",
        title: "Ratio of end-to-end latency SPIN/SPMS vs transmission radius (analytical)".into(),
        x_label: "transmission radius (m)",
        y_label: "Delay_SPIN / Delay_SPMS",
        series: vec![SeriesData {
            name: "SPIN/SPMS".into(),
            points: s.points,
        }],
        notes: vec![
            format!("ratio approaches 3 from below (r=30m: {last:.3})"),
            "paper spot value at n1=45, ns=5: 2.7865 (reproduced by unit test)".into(),
        ],
    }
}

/// Figure 5: analytical SPIN:SPMS energy ratio vs transmission radius
/// (relay count on the unit grid).
#[must_use]
pub fn fig5(_scale: &Scale) -> FigureResult {
    let ks: Vec<u32> = (1..=12).collect();
    let s = spms_analysis::figures::fig5_series(&ks).expect("non-empty ks");
    let peak = s
        .points
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .unwrap_or((0.0, 0.0));
    FigureResult {
        id: "fig5",
        title: "Ratio of energy SPIN/SPMS vs radius of transmission (analytical)".into(),
        x_label: "radius of transmission (hops k)",
        y_label: "E_SPIN / E_SPMS",
        series: vec![SeriesData {
            name: "SPIN/SPMS".into(),
            points: s.points,
        }],
        notes: vec![
            format!(
                "SPMS saves energy throughout; peak ratio {:.2} at k={}",
                peak.1, peak.0
            ),
            "per the paper's own formula the ratio returns to parity near k = 1/f = 34".into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Simulation figures.

/// Shared sweep over node counts (static, failure-free): returns per-N
/// metrics for SPMS and SPIN.
fn node_sweep(
    scale: &Scale,
    seed: u64,
    failures: Option<FailureConfig>,
) -> Vec<(String, RunMetrics)> {
    let mut specs = Vec::new();
    for protocol in [ProtocolKind::Spms, ProtocolKind::Spin] {
        for &n in &scale.node_counts {
            let mut c = config(protocol, seed ^ n as u64, 20.0);
            c.failures = failures;
            c.horizon = scale.horizon_for(n);
            let plan = traffic::all_to_all(
                n,
                scale.packets_per_node,
                scale.mean_gap,
                seed ^ (n as u64).rotate_left(17),
            )
            .expect("valid workload");
            specs.push(RunSpec {
                label: format!("{} n={n}", protocol.label()),
                config: c,
                topology: grid(n, scale.spacing_m),
                plan,
            });
        }
    }
    run_specs(specs)
}

/// Shared sweep over transmission radii at the scale's default node count.
fn radius_sweep(
    scale: &Scale,
    seed: u64,
    failures: Option<FailureConfig>,
    mobility: Option<MobilityConfig>,
    cluster: bool,
) -> Vec<(String, RunMetrics)> {
    let n = scale.default_nodes;
    let topo = grid(n, scale.spacing_m);
    let mut specs = Vec::new();
    for protocol in [ProtocolKind::Spms, ProtocolKind::Spin] {
        for &r in &scale.radii_m {
            let mut c = config(protocol, seed ^ (r as u64) << 8, r);
            c.failures = failures;
            c.mobility = mobility;
            c.horizon = scale.horizon_for(n);
            if mobility.is_some() && protocol == ProtocolKind::Spms {
                // Mobility runs charge SPMS its routing-table formation
                // (§5.1.3: "The energy expended in SPMS in forming routing
                // tables is included in the energy measurement"). Epoch
                // re-convergence is incremental: only the zones the moved
                // nodes touched exchange delta vectors, and only those
                // bytes are charged.
                c.routing_mode = RoutingMode::Distributed;
                c.incremental_routing = true;
            }
            let plan: TrafficPlan = if cluster {
                traffic::cluster_hierarchical(
                    &topo,
                    &c.radio,
                    r,
                    scale.packets_per_node,
                    scale.mean_gap,
                    0.05,
                    seed ^ 0xC0FFEE,
                )
                .expect("valid cluster workload")
            } else {
                traffic::all_to_all(n, scale.packets_per_node, scale.mean_gap, seed ^ 0xBEEF)
                    .expect("valid workload")
            };
            specs.push(RunSpec {
                label: format!("{} r={r}", protocol.label()),
                config: c,
                topology: topo.clone(),
                plan,
            });
        }
    }
    run_specs(specs)
}

/// Figures 6 and 8: energy per packet and average delay vs node count
/// (static failure-free, radius 20 m).
#[must_use]
pub fn fig6_fig8(scale: &Scale, seed: u64) -> (FigureResult, FigureResult) {
    let results = node_sweep(scale, seed, None);
    let xs: Vec<f64> = scale.node_counts.iter().map(|&n| n as f64).collect();
    let spms_e = series_of(&results, "SPMS", RunMetrics::energy_per_packet_uj, &xs);
    let spin_e = series_of(&results, "SPIN", RunMetrics::energy_per_packet_uj, &xs);
    let (lo, hi) = savings_range(&spin_e, &spms_e);
    let fig6 = FigureResult {
        id: "fig6",
        title: "Energy consumed by SPIN and SPMS with varying number of sensor nodes \
                (radius 20 m)"
            .into(),
        x_label: "number of nodes",
        y_label: "energy per packet (µJ)",
        series: vec![spms_e, spin_e],
        notes: vec![
            format!("SPMS saves {lo:.0}%–{hi:.0}% (paper: 26%–43%)"),
            "gap widens with network size, as in the paper".into(),
        ],
    };
    let spms_d = series_of(&results, "SPMS", RunMetrics::avg_delay_ms, &xs);
    let spin_d = series_of(&results, "SPIN", RunMetrics::avg_delay_ms, &xs);
    let speedups: Vec<f64> = spin_d
        .points
        .iter()
        .zip(spms_d.points.iter())
        .filter(|(_, (_, y))| *y > 0.0)
        .map(|((_, a), (_, b))| a / b)
        .collect();
    let avg_speedup = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    let fig8 = FigureResult {
        id: "fig8",
        title: "End-to-end delay with varying number of nodes (radius 20 m)".into(),
        x_label: "number of nodes",
        y_label: "delay (ms/packet)",
        series: vec![spms_d, spin_d],
        notes: vec![format!(
            "SPIN/SPMS delay ratio averages {avg_speedup:.1}× (paper: ≈10×)"
        )],
    };
    (fig6, fig8)
}

/// Figures 7 and 9: energy per packet and average delay vs transmission
/// radius (static failure-free, N = default).
#[must_use]
pub fn fig7_fig9(scale: &Scale, seed: u64) -> (FigureResult, FigureResult) {
    let results = radius_sweep(scale, seed, None, None, false);
    let xs = scale.radii_m.clone();
    let spms_e = series_of(&results, "SPMS", RunMetrics::energy_per_packet_uj, &xs);
    let spin_e = series_of(&results, "SPIN", RunMetrics::energy_per_packet_uj, &xs);
    let (lo, hi) = savings_range(&spin_e, &spms_e);
    let fig7 = FigureResult {
        id: "fig7",
        title: format!(
            "Energy consumed by SPIN and SPMS with different transmission radii \
             (nodes = {})",
            scale.default_nodes
        ),
        x_label: "radius of transmission (m)",
        y_label: "energy per packet (µJ)",
        series: vec![spms_e, spin_e],
        notes: vec![format!(
            "SPMS advantage grows with radius: savings {lo:.0}%–{hi:.0}% across the sweep"
        )],
    };
    let spms_d = series_of(&results, "SPMS", RunMetrics::avg_delay_ms, &xs);
    let spin_d = series_of(&results, "SPIN", RunMetrics::avg_delay_ms, &xs);
    let fig9 = FigureResult {
        id: "fig9",
        title: format!(
            "End-to-end delay variation with transmission radius (nodes = {})",
            scale.default_nodes
        ),
        x_label: "radius of transmission (m)",
        y_label: "delay (ms/packet)",
        series: vec![spms_d, spin_d],
        notes: vec![
            "SPMS below SPIN at every radius".into(),
            "hop-count reduction dominates at small radii; the paper's G·n² \
             contention model makes delay rise again at large radii (see \
             EXPERIMENTS.md)"
                .into(),
        ],
    };
    (fig7, fig9)
}

/// Figure 10: delay vs node count with transient failures — four series
/// (SPMS, F-SPMS, SPIN, F-SPIN).
#[must_use]
pub fn fig10(scale: &Scale, seed: u64) -> FigureResult {
    let ff = node_sweep(scale, seed, None);
    let f = node_sweep(scale, seed, Some(FailureConfig::paper_defaults()));
    let xs: Vec<f64> = scale.node_counts.iter().map(|&n| n as f64).collect();
    let spms = series_of(&ff, "SPMS", RunMetrics::avg_delay_ms, &xs);
    let spin = series_of(&ff, "SPIN", RunMetrics::avg_delay_ms, &xs);
    let mut fspms = series_of(&f, "SPMS", RunMetrics::avg_delay_ms, &xs);
    let mut fspin = series_of(&f, "SPIN", RunMetrics::avg_delay_ms, &xs);
    fspms.name = "F-SPMS".into();
    fspin.name = "F-SPIN".into();
    let bump = |ff: &SeriesData, f: &SeriesData| -> f64 {
        ff.points
            .iter()
            .zip(f.points.iter())
            .map(|((_, a), (_, b))| b - a)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let notes = vec![
        format!(
            "failures add up to {:.1} ms (SPMS) / {:.1} ms (SPIN) of delay",
            bump(&spms, &fspms),
            bump(&spin, &fspin)
        ),
        "failure/failure-free gap grows with network size, as in the paper".into(),
    ];
    FigureResult {
        id: "fig10",
        title: "End-to-end delay with varying number of nodes for static nodes with \
                transient failures"
            .into(),
        x_label: "number of nodes",
        y_label: "delay (ms/packet)",
        series: vec![spms, fspms, spin, fspin],
        notes,
    }
}

/// Figure 11: delay vs transmission radius with transient failures.
#[must_use]
pub fn fig11(scale: &Scale, seed: u64) -> FigureResult {
    let ff = radius_sweep(scale, seed, None, None, false);
    let f = radius_sweep(
        scale,
        seed,
        Some(FailureConfig::paper_defaults()),
        None,
        false,
    );
    let xs = scale.radii_m.clone();
    let spms = series_of(&ff, "SPMS", RunMetrics::avg_delay_ms, &xs);
    let spin = series_of(&ff, "SPIN", RunMetrics::avg_delay_ms, &xs);
    let mut fspms = series_of(&f, "SPMS", RunMetrics::avg_delay_ms, &xs);
    let mut fspin = series_of(&f, "SPIN", RunMetrics::avg_delay_ms, &xs);
    fspms.name = "F-SPMS".into();
    fspin.name = "F-SPIN".into();
    FigureResult {
        id: "fig11",
        title: "End-to-end delay with transmission radius for static nodes with \
                transient failures"
            .into(),
        x_label: "radius of transmission (m)",
        y_label: "delay (ms/packet)",
        series: vec![spms, fspms, spin, fspin],
        notes: vec![
            "failure curves sit above failure-free counterparts; the gap grows \
             with radius as relay chains lengthen (paper §5.1.2)"
                .into(),
        ],
    }
}

/// The mobility configuration used by Figure 12 (the paper does not publish
/// its values): an epoch every ~80 packet births relocating 5% of the
/// nodes. §5.1.3's own break-even analysis says ≥ ~239 packets must flow
/// between epochs for SPMS to win at the reference zone; 80 packets sits
/// below that at the largest radii (visible erosion, the paper's 5–21%
/// regime) while keeping SPMS ahead at moderate ones.
#[must_use]
pub fn fig12_mobility(scale: &Scale) -> MobilityConfig {
    MobilityConfig::new(scale.mean_gap * 80, 0.05).expect("static config is valid")
}

/// Figure 12: energy vs transmission radius under mobility (all-to-all).
/// SPMS runs distributed Bellman-Ford and is charged for every
/// re-convergence.
#[must_use]
pub fn fig12(scale: &Scale, seed: u64) -> FigureResult {
    let results = radius_sweep(scale, seed, None, Some(fig12_mobility(scale)), false);
    let xs = scale.radii_m.clone();
    let spms = series_of(&results, "SPMS", RunMetrics::energy_per_packet_uj, &xs);
    let spin = series_of(&results, "SPIN", RunMetrics::energy_per_packet_uj, &xs);
    let (lo, hi) = savings_range(&spin, &spms);
    let routing_share: Vec<f64> = results
        .iter()
        .filter(|(l, _)| l.starts_with("SPMS"))
        .map(|(_, m)| {
            100.0 * m.energy.get(spms_phy::EnergyCategory::Routing).value()
                / m.energy.total().value().max(f64::MIN_POSITIVE)
        })
        .collect();
    let max_share = routing_share.iter().fold(0.0f64, |a, &b| a.max(b));
    let (delta_execs, total_execs) =
        results
            .iter()
            .filter(|(l, _)| l.starts_with("SPMS"))
            .fold((0, 0), |(d, t), (_, m)| {
                (
                    d + m.routing.incremental_executions,
                    t + m.routing.executions,
                )
            });
    let (zone_patches, zone_rows) = results
        .iter()
        .filter(|(l, _)| l.starts_with("SPMS"))
        .fold((0, 0), |(p, r), (_, m)| {
            (p + m.routing.zone_patches, r + m.routing.zone_rows_patched)
        });
    let (sharded_execs, batch_windows, coalesced) = results
        .iter()
        .filter(|(l, _)| l.starts_with("SPMS"))
        .fold((0, 0, 0), |(s, w, c), (_, m)| {
            (
                s + m.routing.sharded_executions,
                w + m.routing.batch_windows,
                c + m.routing.epochs_coalesced,
            )
        });
    FigureResult {
        id: "fig12",
        title: "Energy consumed with transmission radius for mobile nodes in \
                all-to-all communication"
            .into(),
        x_label: "radius of transmission (m)",
        y_label: "energy per packet (µJ)",
        series: vec![spms, spin],
        notes: vec![
            format!("SPMS saves {lo:.0}%–{hi:.0}% under mobility (paper: 5%–21%)"),
            format!("DBF re-execution accounts for up to {max_share:.0}% of SPMS energy"),
            format!(
                "{delta_execs} of {total_execs} DBF executions were incremental \
                 delta re-convergences"
            ),
            format!(
                "{zone_patches} mobility epochs patched the zone table in place \
                 ({zone_rows} rows rebuilt vs a full O(n²) build per epoch)"
            ),
            format!(
                "{sharded_execs} delta re-convergences ran through the zone-shard \
                 planner over {batch_windows} batching windows \
                 ({coalesced} epochs coalesced at batch_epochs = 1)"
            ),
        ],
    }
}

/// Figure 13: energy vs transmission radius for cluster-based hierarchical
/// communication, failure-free and with failures.
#[must_use]
pub fn fig13(scale: &Scale, seed: u64) -> FigureResult {
    let ff = radius_sweep(scale, seed, None, None, true);
    let f = radius_sweep(
        scale,
        seed,
        Some(FailureConfig::paper_defaults()),
        None,
        true,
    );
    let xs = scale.radii_m.clone();
    let spms = series_of(&ff, "SPMS", RunMetrics::energy_per_packet_uj, &xs);
    let spin = series_of(&ff, "SPIN", RunMetrics::energy_per_packet_uj, &xs);
    let mut fspms = series_of(&f, "SPMS", RunMetrics::energy_per_packet_uj, &xs);
    let mut fspin = series_of(&f, "SPIN", RunMetrics::energy_per_packet_uj, &xs);
    fspms.name = "F-SPMS".into();
    fspin.name = "F-SPIN".into();
    let (lo, hi) = savings_range(&spin, &spms);
    FigureResult {
        id: "fig13",
        title: "Energy consumed with transmission radius for cluster-based \
                hierarchical communication"
            .into(),
        x_label: "radius of transmission (m)",
        y_label: "energy per packet (µJ)",
        series: vec![spms, spin, fspms, fspin],
        notes: vec![
            format!("SPMS saves {lo:.0}%–{hi:.0}% failure-free (paper: 35%–59%)"),
            "failure runs consume more energy than failure-free runs".into(),
        ],
    }
}

/// EXT1 (the paper's §6 future work, implemented here): inter-zone
/// dissemination on a pipeline field — a line of motes with the source at
/// one end, sinks at the other, and **no interested node in between**.
///
/// Sweeps the pipeline length and compares:
/// * `SPMS-IZ` — the bordercast + inter-zone REQ extension;
/// * `SPMS-IZ+cache` — the same plus relay caching/serve-from-cache;
/// * `FLOOD` — the only baseline that also delivers;
/// * `SPMS` — shown to confirm the motivating gap (delivery drops to zero
///   once the sink leaves the source's zone).
///
/// Returns (delivery-ratio figure, energy-per-delivery figure). The energy
/// figure omits protocols/points with zero deliveries.
#[must_use]
pub fn ext1(scale: &Scale, seed: u64) -> (FigureResult, FigureResult) {
    let lengths: &[usize] = if scale.node_counts.len() >= 4 {
        &[9, 13, 17, 21, 25]
    } else {
        &[9, 17, 25]
    };
    let items = scale.packets_per_node.min(4);
    let mut specs = Vec::new();
    for &(label, protocol, caching) in &[
        ("SPMS-IZ", ProtocolKind::SpmsIz, false),
        ("SPMS-IZ+cache", ProtocolKind::SpmsIz, true),
        ("FLOOD", ProtocolKind::Flooding, false),
        ("SPMS", ProtocolKind::Spms, false),
    ] {
        for &len in lengths {
            let mut c = config(protocol, seed ^ (len as u64) << 4, 20.0);
            c.relay_caching = caching;
            c.serve_from_cache = caching;
            c.horizon = SimTime::from_secs(120);
            let sink = spms_net::NodeId::new(len as u32 - 1);
            let plan = traffic::pipeline(spms_net::NodeId::new(0), &[sink], items, scale.mean_gap)
                .expect("valid pipeline workload");
            specs.push(RunSpec {
                label: format!("{label} len={len}"),
                config: c,
                topology: placement::grid(len, 1, scale.spacing_m).expect("valid line"),
                plan,
            });
        }
    }
    let results = run_specs(specs);
    let xs: Vec<f64> = lengths
        .iter()
        .map(|&l| (l as f64 - 1.0) * scale.spacing_m)
        .collect();
    let names = ["SPMS-IZ+cache", "SPMS-IZ", "FLOOD", "SPMS"];
    // `series_of` matches by prefix, so test the longer name first and
    // filter exact-prefix collisions via the label format "{name} len=".
    let pick = |name: &str, f: &dyn Fn(&RunMetrics) -> f64| SeriesData {
        name: name.to_string(),
        points: results
            .iter()
            .filter(|(label, _)| label.rsplit_once(" len=").map(|(p, _)| p) == Some(name))
            .zip(xs.iter())
            .map(|((_, m), &x)| (x, f(m)))
            .collect(),
    };
    let ratio_series: Vec<SeriesData> = names
        .iter()
        .map(|n| pick(n, &|m: &RunMetrics| m.delivery_ratio()))
        .collect();
    let iz_full = ratio_series[1].points.iter().all(|&(_, y)| y == 1.0);
    let spms_gap = ratio_series[3]
        .points
        .iter()
        .filter(|&&(x, _)| x > 20.0)
        .all(|&(_, y)| y == 0.0);
    let ext1a = FigureResult {
        id: "ext1a",
        title: "EXT1: delivery ratio vs pipeline length (source and sinks in \
                separate zones, uninterested middle)"
            .into(),
        x_label: "pipeline length (m)",
        y_label: "delivery ratio",
        series: ratio_series,
        notes: vec![
            format!("SPMS-IZ delivers everywhere: {iz_full}"),
            format!("base SPMS delivers nothing beyond one zone: {spms_gap}"),
        ],
    };
    let energy_series: Vec<SeriesData> = names
        .iter()
        .map(|n| {
            let mut s = pick(n, &|m: &RunMetrics| {
                if m.deliveries == 0 {
                    f64::NAN
                } else {
                    m.energy.total().value() / m.deliveries as f64
                }
            });
            s.points.retain(|p| p.1.is_finite());
            s
        })
        .filter(|s| !s.points.is_empty())
        .collect();
    let cheaper = {
        let iz = energy_series.iter().find(|s| s.name == "SPMS-IZ");
        let fl = energy_series.iter().find(|s| s.name == "FLOOD");
        match (iz, fl) {
            (Some(iz), Some(fl)) => iz
                .points
                .iter()
                .zip(fl.points.iter())
                .all(|((_, a), (_, b))| a < b),
            _ => false,
        }
    };
    let model = spms_analysis::InterZoneModel::mica2_instance();
    let predicted: Vec<String> = lengths
        .iter()
        .map(|&l| format!("{:.1}×@{}n", model.ratio(l as u32), l))
        .collect();
    let ext1b = FigureResult {
        id: "ext1b",
        title: "EXT1: energy per delivered item vs pipeline length".into(),
        x_label: "pipeline length (m)",
        y_label: "energy per delivery (µJ)",
        series: energy_series,
        notes: vec![
            format!("bordercast pull beats flooding at every length: {cheaper}"),
            format!(
                "closed-form FLOOD/IZ ratio (spms-analysis MICA2 instance): {}",
                predicted.join(", ")
            ),
        ],
    };
    (ext1a, ext1b)
}

/// EXT2 (no paper figure): network-lifetime view of the energy results.
///
/// The paper reports *network-total* energy, but sensor-network lifetime
/// is set by the **hottest battery**. Using the engine's per-node energy
/// accounting, this figure sweeps the transmission radius (all-to-all
/// workload, as Figure 7) and plots the hottest node's energy per packet
/// for SPMS and SPIN, with max-to-mean imbalance in the notes. SPIN
/// serves every requester with a maximum-power unicast from the holder,
/// so its hottest node runs away with the radius; SPMS spreads the load
/// across relays.
#[must_use]
pub fn ext2(scale: &Scale, seed: u64) -> FigureResult {
    let results = radius_sweep(scale, seed, None, None, false);
    let xs = scale.radii_m.clone();
    let hottest_per_packet = |m: &RunMetrics| {
        if m.packets_generated == 0 {
            0.0
        } else {
            m.per_node_energy_uj.iter().cloned().fold(0.0, f64::max) / m.packets_generated as f64
        }
    };
    let spms_hot = series_of(&results, "SPMS", hottest_per_packet, &xs);
    let spin_hot = series_of(&results, "SPIN", hottest_per_packet, &xs);
    let (lo, hi) = savings_range(&spin_hot, &spms_hot);
    let imbalance = |name: &str| {
        let vals: Vec<f64> = results
            .iter()
            .filter(|(label, _)| label.starts_with(name))
            .map(|(_, m)| m.energy_imbalance())
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let mut spms_hot = spms_hot;
    let mut spin_hot = spin_hot;
    spms_hot.name = "SPMS hottest".into();
    spin_hot.name = "SPIN hottest".into();
    FigureResult {
        id: "ext2",
        title: "EXT2: hottest-node energy per packet vs transmission radius \
                (network-lifetime view of Figure 7)"
            .into(),
        x_label: "radius of transmission (m)",
        y_label: "hottest node energy per packet (µJ)",
        series: vec![spms_hot, spin_hot],
        notes: vec![
            format!("hottest-battery savings of SPMS over SPIN: {lo:.0}%–{hi:.0}%"),
            format!(
                "mean max-to-mean imbalance: SPMS {:.1}×, SPIN {:.1}×",
                imbalance("SPMS"),
                imbalance("SPIN")
            ),
        ],
    }
}

/// EXT3 (no paper figure): deliveries before battery exhaustion vs
/// per-node battery capacity — the "energy aware" title made literal.
///
/// Every node gets the same finite budget (`SimConfig::
/// battery_capacity_uj`); depleted nodes die permanently. Under a
/// sustained all-to-all stream, the plotted series show how much useful
/// work each protocol extracts from the same total battery: SPMS's
/// low-power multi-hop spends roughly an order of magnitude less per
/// delivery, so its curve dominates SPIN's at every capacity.
#[must_use]
pub fn ext3(scale: &Scale, seed: u64) -> FigureResult {
    let n = 25usize; // 5×5 grid: lifetime runs execute to total exhaustion
    let capacities = [1.0f64, 2.0, 4.0, 8.0, 16.0];
    let packets = scale.packets_per_node.max(6);
    let mut specs = Vec::new();
    for protocol in [ProtocolKind::Spms, ProtocolKind::Spin] {
        for &cap in &capacities {
            let mut c = config(protocol, seed ^ (cap as u64) << 3, 20.0);
            c.battery_capacity_uj = Some(cap);
            c.horizon = SimTime::from_secs(300);
            let plan = traffic::all_to_all(n, packets, SimTime::from_millis(300), seed ^ 0xBA77)
                .expect("valid workload");
            specs.push(RunSpec {
                label: format!("{} cap={cap}", protocol.label()),
                config: c,
                topology: placement::grid(5, 5, scale.spacing_m).expect("5×5 grid"),
                plan,
            });
        }
    }
    let results = run_specs(specs);
    let xs: Vec<f64> = capacities.to_vec();
    let spms = series_of(&results, "SPMS", |m| m.deliveries as f64, &xs);
    let spin = series_of(&results, "SPIN", |m| m.deliveries as f64, &xs);
    let advantage: Vec<f64> = spms
        .points
        .iter()
        .zip(spin.points.iter())
        .filter(|(_, (_, b))| *b > 0.0)
        .map(|((_, a), (_, b))| a / b)
        .collect();
    let mean_adv = advantage.iter().sum::<f64>() / advantage.len().max(1) as f64;
    let first_deaths: Vec<String> = results
        .iter()
        .filter(|(label, _)| label.ends_with("cap=4"))
        .map(|(label, m)| {
            format!(
                "{}: first death {}",
                label,
                m.first_death_at
                    .map_or("never".to_string(), |t| format!("{t}"))
            )
        })
        .collect();
    FigureResult {
        id: "ext3",
        title: "EXT3: deliveries before battery exhaustion vs per-node capacity \
                (25 nodes, sustained all-to-all)"
            .into(),
        x_label: "battery capacity (µJ/node)",
        y_label: "deliveries completed",
        series: vec![spms, spin],
        notes: vec![
            format!("SPMS delivers {mean_adv:.1}× more from the same batteries"),
            first_deaths.join("; "),
        ],
    }
}

/// EXT4 (no paper figure): the high-rate many-flow regime — every node a
/// concurrent Poisson source ([`traffic::many_flows`]), arrival gap swept
/// from relaxed to saturating. This is the event-kernel stress workload:
/// at the tightest gap the engine's pending-event population and
/// same-instant tie traffic peak, which is the regime the timer-wheel
/// kernel exists for. The plotted series (deliveries and events processed
/// per generated packet) are **kernel-independent by construction** —
/// sweep-smoke CI runs this figure under `--event-kernel heap` and
/// `--event-kernel wheel` and byte-diffs the JSON.
#[must_use]
pub fn ext4(scale: &Scale, seed: u64) -> FigureResult {
    let n = 25usize; // 5×5 grid keeps the saturating sweep CI-sized
    let gaps_us = [2000.0f64, 500.0, 100.0, 25.0];
    let packets = scale.packets_per_node.max(4);
    let mut specs = Vec::new();
    for protocol in [ProtocolKind::Spms, ProtocolKind::Spin] {
        for &gap in &gaps_us {
            let mut c = config(protocol, seed ^ (gap as u64) << 2, 20.0);
            c.horizon = scale.horizon_for(n);
            let plan =
                traffic::many_flows(n, packets, SimTime::from_micros(gap as u64), seed ^ 0xEF04)
                    .expect("valid many-flow workload");
            specs.push(RunSpec {
                label: format!("{} gap={gap}", protocol.label()),
                config: c,
                topology: placement::grid(5, 5, scale.spacing_m).expect("5×5 grid"),
                plan,
            });
        }
    }
    let results = run_specs(specs);
    let xs: Vec<f64> = gaps_us.to_vec();
    let deliveries = |m: &RunMetrics| m.deliveries as f64;
    let events_per_packet = |m: &RunMetrics| {
        if m.packets_generated == 0 {
            0.0
        } else {
            m.events_processed as f64 / m.packets_generated as f64
        }
    };
    let mut spms_del = series_of(&results, "SPMS", deliveries, &xs);
    let mut spin_del = series_of(&results, "SPIN", deliveries, &xs);
    spms_del.name = "SPMS deliveries".into();
    spin_del.name = "SPIN deliveries".into();
    let mut spms_ev = series_of(&results, "SPMS", events_per_packet, &xs);
    let mut spin_ev = series_of(&results, "SPIN", events_per_packet, &xs);
    spms_ev.name = "SPMS events/packet".into();
    spin_ev.name = "SPIN events/packet".into();
    let total_events: u64 = results.iter().map(|(_, m)| m.events_processed).sum();
    let peak_ev = spms_ev
        .points
        .iter()
        .chain(spin_ev.points.iter())
        .map(|&(_, y)| y)
        .fold(0.0, f64::max);
    FigureResult {
        id: "ext4",
        title: "EXT4: many concurrent flows at shrinking arrival gaps \
                (25 nodes, one Poisson source per node)"
            .into(),
        x_label: "mean arrival gap (µs, log-spaced)",
        y_label: "deliveries / engine events per packet",
        series: vec![spms_del, spin_del, spms_ev, spin_ev],
        notes: vec![
            format!(
                "{total_events} engine events across the sweep (kernel-independent; \
                 CI byte-diffs this figure across --event-kernel heap/wheel)"
            ),
            format!("peak event amplification: {peak_ev:.0} engine events per generated packet"),
        ],
    }
}

/// EXT5 (no paper figure): delivery ratio and energy per packet vs
/// adversary fraction, per protocol — the robustness counterpart of the
/// failure figures. A seeded roster of flooding attackers (bogus zone-wide
/// ADVs for data they never serve, `attack_factor` per first-seen item,
/// every received packet swallowed) is grown from 0 to the sweep's top
/// fraction. Flooding and SPIN lose exactly the swallowed receivers; SPMS
/// additionally pays REQ/τDAT failovers for requests lured to attackers.
///
/// Every spec pins its own [`spms::AdversaryConfig`], so the figure is
/// immune to the process-wide `--adversary-*` override — which is what
/// lets the adversarial-smoke CI step byte-diff its JSON across `--workers`
/// while still sweeping fractions *inside* the figure.
#[must_use]
pub fn ext5(scale: &Scale, seed: u64) -> FigureResult {
    // A 5×5 grid as EXT3/EXT4. Two fractions at smoke scale (the CI
    // adversarial-smoke sweep), a five-point curve at quick/paper scale.
    let n = 25usize;
    let fractions: Vec<f64> = if scale.node_counts.len() <= 2 {
        vec![0.0, 0.2]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.4]
    };
    let packets = scale.packets_per_node.max(2);
    let protocols = [
        ProtocolKind::Flooding,
        ProtocolKind::Spin,
        ProtocolKind::Spms,
    ];
    let mut specs = Vec::new();
    for protocol in protocols {
        for &fraction in &fractions {
            let mut c = config(protocol, seed ^ ((fraction * 100.0) as u64) << 3, 20.0);
            c.adversary = Some(spms::AdversaryConfig {
                fraction,
                behavior: spms::NodeBehavior::Flooding,
                attack_start: SimTime::ZERO,
                attack_factor: 3,
                explicit: None,
            });
            c.horizon = scale.horizon_for(n);
            let plan = traffic::all_to_all(n, packets, scale.mean_gap, seed ^ 0xADF5)
                .expect("valid workload");
            specs.push(RunSpec {
                label: format!("{} f={fraction}", protocol.label()),
                config: c,
                topology: placement::grid(5, 5, scale.spacing_m).expect("5×5 grid"),
                plan,
            });
        }
    }
    let results = run_specs(specs);
    let xs: Vec<f64> = fractions.clone();
    let mut series = Vec::new();
    for protocol in protocols {
        let name = protocol.label();
        let mut delivery = series_of(&results, name, RunMetrics::delivery_ratio, &xs);
        delivery.name = format!("{name} delivery");
        series.push(delivery);
    }
    for protocol in protocols {
        let name = protocol.label();
        let mut energy = series_of(&results, name, RunMetrics::energy_per_packet_uj, &xs);
        energy.name = format!("{name} energy");
        series.push(energy);
    }
    let dropped: u64 = results
        .iter()
        .map(|(_, m)| m.adversary.packets_dropped)
        .sum();
    let bogus: u64 = results.iter().map(|(_, m)| m.adversary.bogus_advs).sum();
    let adversaries: u64 = results.iter().map(|(_, m)| m.adversary.adversaries).sum();
    FigureResult {
        id: "ext5",
        title: format!(
            "EXT5: delivery ratio and energy per packet vs adversary fraction \
             (25 nodes, flooding attackers ×3, fractions up to {:.1})",
            fractions.last().copied().unwrap_or(0.0)
        ),
        x_label: "adversary fraction",
        y_label: "delivery ratio / energy per packet (µJ)",
        series,
        notes: vec![
            format!(
                "{adversaries} adversaries fielded across the sweep: packets_dropped={dropped}, \
                 bogus_advs={bogus} (byte-checked by the adversarial-smoke CI step)"
            ),
            "every spec pins its own AdversaryConfig, so the figure is immune to the \
             process-wide --adversary-* override"
                .into(),
        ],
    }
}

/// EXT6 (no paper figure): scheduled connectivity — delivery ratio and
/// energy per delivered item vs contact duty cycle, per protocol.
///
/// The 5×5 field is split by a satellite-pass backhaul
/// ([`crate::contact_plans::satellite_passes`]): every link crossing the
/// vertical seam is up only for the first `duty × period` of each pass
/// period, while both halves keep their full local connectivity. At
/// `duty = 1` the plan gates but never drops, reproducing the ungated
/// field; as the duty cycle shrinks, items born while the seam is down
/// never cross it, so delivery degrades toward the intra-half ceiling.
///
/// Every spec pins its own [`SimConfig::contact_plan`], so the figure is
/// immune to the process-wide `--contact-plan` override — which is what
/// lets the sweep-smoke CI step byte-diff its JSON across `--workers` and
/// `--event-kernel` while still sweeping duty cycles *inside* the figure.
/// Returns (delivery-ratio figure, energy-per-delivery figure).
#[must_use]
pub fn ext6(scale: &Scale, seed: u64) -> (FigureResult, FigureResult) {
    // A 5×5 grid as EXT3–EXT5. Two duty cycles at smoke scale (the CI
    // sweep-smoke step), a five-point curve at quick/paper scale.
    let side = 5usize;
    let n = side * side;
    let duties: Vec<f64> = if scale.node_counts.len() <= 2 {
        vec![0.3, 1.0]
    } else {
        vec![0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let period = scale.mean_gap * 5;
    let horizon = scale.horizon_for(n);
    let packets = scale.packets_per_node.max(2);
    let protocols = [
        ProtocolKind::Flooding,
        ProtocolKind::Spin,
        ProtocolKind::Spms,
    ];
    let mut specs = Vec::new();
    for protocol in protocols {
        for &duty in &duties {
            let mut c = config(protocol, seed ^ ((duty * 100.0) as u64) << 3, 20.0);
            c.horizon = horizon;
            c.contact_plan = Some(
                crate::contact_plans::satellite_passes(side, period, duty, horizon)
                    .expect("valid pass schedule"),
            );
            let plan = traffic::all_to_all(n, packets, scale.mean_gap, seed ^ 0xC067)
                .expect("valid workload");
            specs.push(RunSpec {
                label: format!("{} d={duty}", protocol.label()),
                config: c,
                topology: placement::grid(side, side, scale.spacing_m).expect("5×5 grid"),
                plan,
            });
        }
    }
    let results = run_specs(specs);
    // Labels are "{name} d={duty}"; match on the full prefix so FLOOD
    // cannot swallow a future FLOOD-variant the way bare prefixes would.
    let pick = |name: &str, f: &dyn Fn(&RunMetrics) -> f64| SeriesData {
        name: name.to_string(),
        points: results
            .iter()
            .filter(|(label, _)| label.rsplit_once(" d=").map(|(p, _)| p) == Some(name))
            .zip(duties.iter())
            .map(|((_, m), &x)| (x, f(m)))
            .collect(),
    };
    let delivery_series: Vec<SeriesData> = protocols
        .iter()
        .map(|p| pick(p.label(), &RunMetrics::delivery_ratio))
        .collect();
    let epochs: u64 = results.iter().map(|(_, m)| m.routing.contact_epochs).sum();
    let ups: u64 = results
        .iter()
        .map(|(_, m)| m.routing.contact_links_up)
        .sum();
    let downs: u64 = results
        .iter()
        .map(|(_, m)| m.routing.contact_links_down)
        .sum();
    let ext6a = FigureResult {
        id: "ext6a",
        title: format!(
            "EXT6: delivery ratio vs contact duty cycle (25 nodes, satellite-pass \
             backhaul across the seam, period {period})"
        ),
        x_label: "contact duty cycle",
        y_label: "delivery ratio",
        series: delivery_series,
        notes: vec![
            format!(
                "scheduled connectivity exercised across the sweep: contact_epochs={epochs}, \
                 contact_links_up={ups}, contact_links_down={downs} (byte-checked by the \
                 sweep-smoke CI step)"
            ),
            "every spec pins its own SimConfig::contact_plan, so the figure is immune to \
             the process-wide --contact-plan override"
                .into(),
        ],
    };
    let energy_series: Vec<SeriesData> = protocols
        .iter()
        .map(|p| {
            let mut s = pick(p.label(), &|m: &RunMetrics| {
                if m.deliveries == 0 {
                    f64::NAN
                } else {
                    m.energy.total().value() / m.deliveries as f64
                }
            });
            s.points.retain(|p| p.1.is_finite());
            s
        })
        .filter(|s| !s.points.is_empty())
        .collect();
    let scheduled: Vec<String> = duties
        .iter()
        .map(|&d| {
            let plan = crate::contact_plans::satellite_passes(side, period, d, horizon)
                .expect("valid pass schedule");
            let got = plan.duty_cycle(
                spms_net::NodeId::new(0),
                spms_net::NodeId::new(side as u32 / 2),
                horizon,
            );
            format!("{d}→{got:.3}")
        })
        .collect();
    let ext6b = FigureResult {
        id: "ext6b",
        title: "EXT6: energy per delivered item vs contact duty cycle".into(),
        x_label: "contact duty cycle",
        y_label: "energy per delivery (µJ)",
        series: energy_series,
        notes: vec![format!(
            "requested → scheduled seam duty cycle: {}",
            scheduled.join(", ")
        )],
    };
    (ext6a, ext6b)
}

/// Table 1 as a rendered parameter listing.
#[must_use]
pub fn table1() -> String {
    let c = SimConfig::paper_defaults(ProtocolKind::Spms, 0);
    let radio = &c.radio;
    let mut out = String::from("Table 1: simulation parameters\n");
    out.push_str(&format!(
        "  packet arrivals          Poisson, mean 1/ms per node\n\
         \x20 failure inter-arrival    {} (mean)\n\
         \x20 MTTR                     10ms (uniform 5..15ms)\n\
         \x20 processing time          {}\n\
         \x20 slot time                {} x {} slots\n\
         \x20 time of transmission    {}/byte\n\
         \x20 sizes ADV/REQ/DATA       {}/{}/{} bytes (DATA:REQ = {})\n",
        SimTime::from_millis(50),
        c.proc_delay,
        c.mac.slot_time,
        c.mac.num_slots,
        c.mac.tx_per_byte,
        c.sizes.adv,
        c.sizes.req,
        c.sizes.data,
        c.sizes.data / c.sizes.req,
    ));
    out.push_str("  power levels (mW @ m):  ");
    for level in radio.levels() {
        out.push_str(&format!(
            " {:.4}@{:.2}",
            radio.power_mw(level),
            radio.range_m(level)
        ));
    }
    out.push('\n');
    out
}

/// The §5.1.3 break-even analysis, rendered.
#[must_use]
pub fn breakeven_report() -> String {
    let inst = spms_analysis::BreakevenInstance::mica2_reference();
    match inst.packets_needed() {
        Ok(pkts) => format!(
            "Mobility break-even: one DBF re-execution costs {:.1} µJ; SPMS saves \
             {:.3} µJ/packet ({:.3} vs {:.3}), so ≥ {:.2} packets must flow between \
             mobility events (paper reports 239.18 for its instance).\n",
            inst.dbf_energy_uj(),
            inst.spin_per_packet_uj - inst.spms_per_packet_uj,
            inst.spin_per_packet_uj,
            inst.spms_per_packet_uj,
            pkts
        ),
        Err(e) => format!("break-even analysis failed: {e}\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_and_fig5_are_cheap_and_labelled() {
        let scale = Scale::smoke();
        let f3 = fig3(&scale);
        assert_eq!(f3.series.len(), 1);
        assert_eq!(f3.series[0].points.len(), 30);
        let f5 = fig5(&scale);
        assert!(f5.series[0].points.iter().all(|p| p.1 >= 1.0));
    }

    #[test]
    fn fig6_fig8_shapes_hold_at_smoke_scale() {
        let scale = Scale::smoke();
        let (f6, f8) = fig6_fig8(&scale, 1);
        let spms = f6.series_named("SPMS").unwrap();
        let spin = f6.series_named("SPIN").unwrap();
        // SPMS uses less energy per packet at every network size.
        for (a, b) in spms.points.iter().zip(spin.points.iter()) {
            assert!(a.1 < b.1, "SPMS {a:?} must beat SPIN {b:?}");
        }
        // SPMS is faster at every network size.
        let spms_d = f8.series_named("SPMS").unwrap();
        let spin_d = f8.series_named("SPIN").unwrap();
        for (a, b) in spms_d.points.iter().zip(spin_d.points.iter()) {
            assert!(a.1 < b.1, "SPMS delay {a:?} must beat SPIN {b:?}");
        }
    }

    #[test]
    fn ext4_many_flow_figure_is_kernel_independent() {
        use crate::experiment::set_default_event_kernel;
        use spms::EventKernel;
        let scale = Scale::smoke();
        let heap = ext4(&scale, 3);
        assert_eq!(heap.series.len(), 4);
        for s in &heap.series {
            assert_eq!(s.points.len(), 4, "one point per arrival gap");
        }
        assert!(
            heap.notes.iter().any(|n| n.contains("engine events")),
            "notes must surface the event volume: {:?}",
            heap.notes
        );
        // The sweep-smoke CI step byte-diffs this figure's JSON across
        // kernels; assert the same equality in-process for both wheel
        // modes (every series point, title, and note identical).
        for kernel in [EventKernel::Wheel, EventKernel::WheelBatched] {
            set_default_event_kernel(kernel);
            let got = ext4(&scale, 3);
            set_default_event_kernel(EventKernel::Heap);
            assert_eq!(got, heap, "{kernel} vs heap");
        }
    }

    #[test]
    fn fig12_figure_is_table_layout_independent() {
        use crate::experiment::set_default_table_layout;
        use spms::TableLayout;
        // The sweep-smoke CI step byte-diffs fig12's JSON across
        // `--table-layout soa|aos`; assert the same equality in-process —
        // the routing-arena layout is a wall-clock knob only, never a
        // results knob.
        let scale = Scale::smoke();
        let soa = fig12(&scale, 5);
        set_default_table_layout(TableLayout::Aos);
        let aos = fig12(&scale, 5);
        set_default_table_layout(TableLayout::Soa);
        assert_eq!(aos, soa, "aos vs soa");
    }

    #[test]
    fn table1_and_breakeven_render() {
        let t = table1();
        assert!(t.contains("3.1622"));
        assert!(t.contains("DATA:REQ = 20"));
        let b = breakeven_report();
        assert!(b.contains("packets"));
    }

    #[test]
    fn fig12_notes_surface_the_routing_counters() {
        // The fig12 sweep is where every incremental-routing substrate
        // meets the paper's mobility workload: its notes must surface the
        // zone-patch, shard-planner and epoch-batching counters with the
        // values the runs actually recorded.
        let scale = Scale::smoke();
        let results = radius_sweep(&scale, 7, None, Some(fig12_mobility(&scale)), false);
        let spms: Vec<&RunMetrics> = results
            .iter()
            .filter(|(l, _)| l.starts_with("SPMS"))
            .map(|(_, m)| m)
            .collect();
        let epochs: u64 = spms.iter().map(|m| m.mobility_epochs).sum();
        assert!(epochs > 0, "the sweep must exercise mobility");
        // Every SPMS mobility run re-converges through the shard planner
        // once per epoch at the default batch_epochs = 1.
        for m in &spms {
            assert_eq!(m.routing.zone_patches, m.mobility_epochs);
            assert_eq!(m.routing.incremental_executions, m.mobility_epochs);
            assert_eq!(m.routing.sharded_executions, m.mobility_epochs);
            assert_eq!(m.routing.batch_windows, m.mobility_epochs);
            assert_eq!(m.routing.epochs_coalesced, 0);
        }
        let fig = fig12(&scale, 7);
        let sharded: u64 = spms.iter().map(|m| m.routing.sharded_executions).sum();
        let windows: u64 = spms.iter().map(|m| m.routing.batch_windows).sum();
        let patches: u64 = spms.iter().map(|m| m.routing.zone_patches).sum();
        assert!(
            fig.notes
                .iter()
                .any(|n| n.contains(&format!("{sharded} delta re-convergences"))
                    && n.contains(&format!("{windows} batching windows"))),
            "shard/batch counters missing from notes: {:?}",
            fig.notes
        );
        assert!(
            fig.notes
                .iter()
                .any(|n| n.contains(&format!("{patches} mobility epochs patched"))),
            "zone-patch counter missing from notes: {:?}",
            fig.notes
        );
    }

    #[test]
    fn ext1_delivery_and_energy_shapes_hold() {
        let scale = Scale::smoke();
        let (a, b) = ext1(&scale, 3);
        // Delivery: SPMS-IZ and FLOOD full, base SPMS empty beyond a zone.
        let ratio =
            |fig: &FigureResult, name: &str| fig.series_named(name).unwrap().points.to_vec();
        assert!(ratio(&a, "SPMS-IZ").iter().all(|&(_, y)| y == 1.0));
        assert!(ratio(&a, "FLOOD").iter().all(|&(_, y)| y == 1.0));
        assert!(ratio(&a, "SPMS")
            .iter()
            .all(|&(x, y)| x <= 20.0 || y == 0.0));
        // Energy: IZ below flooding at every shared length.
        let iz = ratio(&b, "SPMS-IZ");
        let fl = ratio(&b, "FLOOD");
        for ((_, e_iz), (_, e_fl)) in iz.iter().zip(fl.iter()) {
            assert!(e_iz < e_fl, "IZ {e_iz} vs FLOOD {e_fl}");
        }
        assert!(b.notes.iter().any(|n| n.contains("closed-form")));
    }

    #[test]
    fn ext3_lifetime_curves_dominate() {
        let scale = Scale::smoke();
        let f = ext3(&scale, 5);
        let spms = f.series_named("SPMS").unwrap();
        let spin = f.series_named("SPIN").unwrap();
        assert_eq!(spms.points.len(), 5);
        for ((cap, a), (_, b)) in spms.points.iter().zip(spin.points.iter()) {
            assert!(a > b, "cap {cap}: SPMS {a} must beat SPIN {b}");
        }
        // More battery, more work.
        assert!(spms.points.windows(2).all(|w| w[1].1 >= w[0].1));
        assert!(f.notes.iter().any(|n| n.contains("×")));
    }

    #[test]
    fn ext5_adversary_figure_degrades_delivery_and_is_knob_independent() {
        use crate::experiment::{set_default_event_kernel, set_default_table_layout};
        use spms::{EventKernel, TableLayout};
        let scale = Scale::smoke();
        let base = ext5(&scale, 9);
        assert_eq!(base.series.len(), 6, "delivery + energy per protocol");
        for s in &base.series {
            assert_eq!(s.points.len(), 2, "smoke scale sweeps two fractions");
        }
        // Adversaries are interested receivers that swallow instead of
        // delivering: every protocol's attacked delivery ratio must sit
        // strictly below its benign baseline.
        for name in ["FLOOD delivery", "SPIN delivery", "SPMS delivery"] {
            let s = base.series_named(name).unwrap();
            let benign = s.points[0].1;
            let attacked = s.points[1].1;
            assert!(benign > 0.0, "{name}: benign runs must deliver");
            assert!(
                attacked < benign,
                "{name}: attacked {attacked} must degrade below benign {benign}"
            );
        }
        assert!(
            base.notes
                .iter()
                .any(|n| n.contains("packets_dropped") && n.contains("bogus_advs")),
            "notes must surface the adversary counters: {:?}",
            base.notes
        );
        // Adversaries and churn are semantic knobs; kernels, layouts, and
        // worker pools stay wall-clock-only even under attack. The
        // adversarial-smoke CI step byte-diffs this figure's JSON across
        // --workers; assert the kernel/layout legs in-process.
        for kernel in [EventKernel::Wheel, EventKernel::WheelBatched] {
            set_default_event_kernel(kernel);
            let got = ext5(&scale, 9);
            set_default_event_kernel(EventKernel::Heap);
            assert_eq!(got, base, "{kernel} vs heap");
        }
        set_default_table_layout(TableLayout::Aos);
        let aos = ext5(&scale, 9);
        set_default_table_layout(TableLayout::Soa);
        assert_eq!(aos, base, "aos vs soa");
    }

    #[test]
    fn ext6_contact_figure_degrades_delivery_and_is_knob_independent() {
        use crate::experiment::{set_default_event_kernel, set_default_table_layout};
        use spms::{EventKernel, TableLayout};
        let scale = Scale::smoke();
        let (base, energy) = ext6(&scale, 11);
        assert_eq!(base.series.len(), 3, "delivery per protocol");
        for s in &base.series {
            assert_eq!(s.points.len(), 2, "smoke scale sweeps two duty cycles");
        }
        // Items born while the seam is down never cross it: every
        // protocol's duty-cycled delivery ratio must sit strictly below
        // its full-duty baseline (the last point, duty = 1).
        for name in ["FLOOD", "SPIN", "SPMS"] {
            let s = base.series_named(name).unwrap();
            let gated = s.points[0].1;
            let full = s.points[1].1;
            assert!(full > 0.0, "{name}: full-duty runs must deliver");
            assert!(
                gated < full,
                "{name}: duty-cycled {gated} must degrade below full-duty {full}"
            );
        }
        assert!(
            base.notes.iter().any(|n| n.contains("contact_epochs=")
                && n.contains("contact_links_up=")
                && n.contains("contact_links_down=")),
            "notes must surface the contact counters: {:?}",
            base.notes
        );
        // The sweep actually flipped links (a plan-free sweep would pass
        // the byte-diff and still be meaningless).
        assert!(
            base.notes
                .iter()
                .any(|n| n.contains("contact_epochs=") && !n.contains("contact_epochs=0,")),
            "the sweep must fire contact epochs: {:?}",
            base.notes
        );
        assert!(
            energy.notes.iter().any(|n| n.contains("duty cycle")),
            "energy notes must round-trip the schedule: {:?}",
            energy.notes
        );
        // The contact plan is a semantic knob; kernels, layouts, and
        // worker pools stay wall-clock-only even under scheduled
        // connectivity. The sweep-smoke CI step byte-diffs this figure's
        // JSON across --workers and --event-kernel; assert the
        // kernel/layout legs in-process.
        for kernel in [EventKernel::Wheel, EventKernel::WheelBatched] {
            set_default_event_kernel(kernel);
            let got = ext6(&scale, 11);
            set_default_event_kernel(EventKernel::Heap);
            assert_eq!(got.0, base, "{kernel} vs heap");
            assert_eq!(got.1, energy, "{kernel} vs heap (energy)");
        }
        set_default_table_layout(TableLayout::Aos);
        let aos = ext6(&scale, 11);
        set_default_table_layout(TableLayout::Soa);
        assert_eq!(aos.0, base, "aos vs soa");
        assert_eq!(aos.1, energy, "aos vs soa (energy)");
    }

    #[test]
    fn ext2_hottest_node_favors_spms() {
        let scale = Scale::smoke();
        let f = ext2(&scale, 4);
        let spms = f.series_named("SPMS hottest").unwrap();
        let spin = f.series_named("SPIN hottest").unwrap();
        assert_eq!(spms.points.len(), scale.radii_m.len());
        for ((_, a), (_, b)) in spms.points.iter().zip(spin.points.iter()) {
            assert!(a > &0.0);
            assert!(a <= b, "SPMS hottest {a} must not exceed SPIN's {b}");
        }
        assert!(f.notes.iter().any(|n| n.contains("imbalance")));
    }
}
