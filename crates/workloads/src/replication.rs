//! Multi-seed replication: run a figure generator across independent seeds
//! and report per-point means with 95% confidence intervals.
//!
//! The paper plots single-run curves; a reproduction should show how much
//! of each gap is signal. Replication reuses the existing generators
//! unchanged — each seed produces a complete [`FigureResult`], and the
//! aggregator folds matching series/points across seeds with Student-t
//! intervals from [`spms_kernel::stats`].

use std::fmt::Write as _;

use spms_kernel::stats::Tally;

use crate::figures::{FigureResult, SeriesData};

/// One aggregated series: `(x, mean, ci95 half-width)` per point.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicatedSeries {
    /// Legend label.
    pub name: String,
    /// Points in x order.
    pub points: Vec<(f64, f64, f64)>,
}

/// A figure aggregated over seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicatedFigure {
    /// Short id of the underlying figure ("fig6").
    pub id: &'static str,
    /// Title of the underlying figure.
    pub title: String,
    /// X-axis label.
    pub x_label: &'static str,
    /// Y-axis label.
    pub y_label: &'static str,
    /// Number of seeds aggregated.
    pub replications: usize,
    /// Aggregated series.
    pub series: Vec<ReplicatedSeries>,
}

impl ReplicatedFigure {
    /// The aggregated series with the given name, if present.
    #[must_use]
    pub fn series_named(&self, name: &str) -> Option<&ReplicatedSeries> {
        self.series.iter().find(|s| s.name == name)
    }
}

/// Runs `generate` once per seed and aggregates the results.
///
/// Series are matched by name and points by position; a series or point
/// absent from some replication is aggregated over the seeds that produced
/// it (its interval widens accordingly).
///
/// # Errors
///
/// Returns a message if `seeds` is empty or the replications disagree on
/// figure identity (different `id`).
pub fn replicate<F>(seeds: &[u64], generate: F) -> Result<ReplicatedFigure, String>
where
    F: Fn(u64) -> FigureResult,
{
    if seeds.is_empty() {
        return Err("need at least one seed".into());
    }
    let runs: Vec<FigureResult> = seeds.iter().map(|&s| generate(s)).collect();
    let first = &runs[0];
    if runs.iter().any(|r| r.id != first.id) {
        return Err("replications produced different figures".into());
    }
    // Collect series names in first-seen order.
    let mut names: Vec<String> = Vec::new();
    for r in &runs {
        for s in &r.series {
            if !names.contains(&s.name) {
                names.push(s.name.clone());
            }
        }
    }
    let mut series = Vec::with_capacity(names.len());
    for name in names {
        let instances: Vec<&SeriesData> = runs
            .iter()
            .filter_map(|r| r.series.iter().find(|s| s.name == name))
            .collect();
        let longest = instances.iter().map(|s| s.points.len()).max().unwrap_or(0);
        let mut points = Vec::with_capacity(longest);
        for i in 0..longest {
            let mut tally = Tally::new();
            let mut x = f64::NAN;
            for inst in &instances {
                if let Some(&(px, py)) = inst.points.get(i) {
                    x = px;
                    tally.record(py);
                }
            }
            if tally.count() > 0 {
                points.push((x, tally.mean(), tally.ci95_half_width()));
            }
        }
        series.push(ReplicatedSeries { name, points });
    }
    Ok(ReplicatedFigure {
        id: first.id,
        title: first.title.clone(),
        x_label: first.x_label,
        y_label: first.y_label,
        replications: seeds.len(),
        series,
    })
}

/// Renders an aggregated figure as a markdown table with `mean ± ci`
/// cells.
#[must_use]
pub fn render_replicated_markdown(fig: &ReplicatedFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### {} — {} ({} seeds, 95% CI)",
        fig.id, fig.title, fig.replications
    );
    let _ = writeln!(out);
    let mut header = format!("| {} |", fig.x_label);
    let mut rule = String::from("|---|");
    for s in &fig.series {
        let _ = write!(header, " {} |", s.name);
        rule.push_str("---|");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    let xs: Vec<f64> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        let mut row = format!("| {x:.1} |");
        for s in &fig.series {
            match s.points.get(i) {
                Some((_, mean, ci)) => {
                    let _ = write!(row, " {mean:.3} ± {ci:.3} |");
                }
                None => row.push_str(" – |"),
            }
        }
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "*y-axis: {}*", fig.y_label);
    let _ = writeln!(out);
    out
}

/// Renders an aggregated figure as CSV:
/// `x, <name> mean, <name> ci95, …` per series.
#[must_use]
pub fn render_replicated_csv(fig: &ReplicatedFigure) -> String {
    let mut out = fig.x_label.to_string();
    for s in &fig.series {
        let _ = write!(out, ",{} mean,{} ci95", s.name, s.name);
    }
    out.push('\n');
    let xs: Vec<f64> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        let _ = write!(out, "{x}");
        for s in &fig.series {
            match s.points.get(i) {
                Some((_, mean, ci)) => {
                    let _ = write!(out, ",{mean},{ci}");
                }
                None => out.push_str(",,"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig_with(id: &'static str, ys: &[f64]) -> FigureResult {
        FigureResult {
            id,
            title: "demo".into(),
            x_label: "x",
            y_label: "y",
            series: vec![SeriesData {
                name: "A".into(),
                points: ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect(),
            }],
            notes: vec![],
        }
    }

    #[test]
    fn aggregation_means_and_cis_are_correct() {
        // Three "seeds" producing y = seed at every x.
        let rep = replicate(&[1, 2, 3], |s| fig_with("f", &[s as f64, 2.0 * s as f64])).unwrap();
        assert_eq!(rep.replications, 3);
        let a = rep.series_named("A").unwrap();
        assert_eq!(a.points.len(), 2);
        let (x0, m0, ci0) = a.points[0];
        assert_eq!(x0, 0.0);
        assert!((m0 - 2.0).abs() < 1e-12);
        // s = 1, t(2) = 4.303 → ci = 4.303/sqrt(3).
        assert!((ci0 - 4.303 / 3f64.sqrt()).abs() < 1e-9);
        let (_, m1, _) = a.points[1];
        assert!((m1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_seed_has_zero_interval() {
        let rep = replicate(&[7], |_| fig_with("f", &[5.0])).unwrap();
        assert_eq!(rep.series[0].points[0], (0.0, 5.0, 0.0));
    }

    #[test]
    fn empty_seed_list_is_an_error() {
        assert!(replicate(&[], |_| fig_with("f", &[1.0])).is_err());
    }

    #[test]
    fn mismatched_ids_are_rejected() {
        let result = replicate(&[1, 2], |s| {
            fig_with(if s == 1 { "a" } else { "b" }, &[1.0])
        });
        assert!(result.is_err());
    }

    #[test]
    fn missing_series_aggregates_over_present_seeds() {
        let rep = replicate(&[1, 2, 3], |s| {
            let mut f = fig_with("f", &[s as f64]);
            if s == 2 {
                f.series.push(SeriesData {
                    name: "B".into(),
                    points: vec![(0.0, 9.0)],
                });
            }
            f
        })
        .unwrap();
        let b = rep.series_named("B").unwrap();
        assert_eq!(b.points, vec![(0.0, 9.0, 0.0)]);
    }

    #[test]
    fn renderers_include_means_and_cis() {
        let rep = replicate(&[1, 2], |s| fig_with("f", &[s as f64])).unwrap();
        let md = render_replicated_markdown(&rep);
        assert!(md.contains("2 seeds"));
        assert!(md.contains("±"));
        let csv = render_replicated_csv(&rep);
        assert!(csv.lines().next().unwrap().contains("A mean,A ci95"));
        assert_eq!(csv.lines().count(), 2);
    }
}
