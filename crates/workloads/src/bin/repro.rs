//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [fig3|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|ext1|ext2|ext3|ext4|ext5|ext6|table1|breakeven|all]...
//!       [--scale smoke|quick|paper] [--seed N] [--seeds R] [--out DIR] [--workers W]
//!       [--event-kernel heap|wheel|wheel-batched] [--table-layout soa|aos]
//!       [--adversary-fraction F] [--adversary-behavior B] [--attack-start MS]
//!       [--attack-factor K] [--churn-rate F] [--contact-plan FILE]
//! ```
//!
//! Markdown goes to stdout; CSVs and their machine-readable JSON twins are
//! written under `--out` (default `results/`). With `--seeds R` (R > 1)
//! every simulation figure is replicated over R seeds and reported as
//! mean ± 95% CI (analytical figures are seed-free and unaffected);
//! replicated output is the `{id}_ci.csv` aggregate only — no JSON twin,
//! so `xtask sweep-diff` applies to single-seed sweeps.
//! `--workers W` sizes the sweep executor's worker pool (`0` = the host's
//! available parallelism, the default) — a wall-clock knob only: every
//! output byte is identical for every value, which CI verifies by diffing
//! the JSON of a workers-1 run against a workers-auto run.
//! `--event-kernel` selects the discrete-event kernel every simulation
//! runs on (binary heap, timer wheel, or timer wheel with batched
//! same-timestamp dispatch) — likewise wall-clock only: RunMetrics are
//! byte-identical across kernels, so CI diffs a heap run against a wheel
//! run the same way. `--table-layout` selects the routing-arena layout
//! (SoA relaxation planes, the default, or the original array-of-structs
//! oracle) — the third wall-clock-only knob: RunMetrics are bit-identical
//! across layouts, so CI byte-diffs an `aos` run against a `soa` run too.
//!
//! `--adversary-fraction`, `--adversary-behavior` (honest, flooding,
//! silent-dropper, metadata-liar), `--attack-start` (ms),
//! `--attack-factor`, and `--churn-rate` inject adversarial behavior and
//! mass join/leave churn into every figure whose specs did not pin their
//! own (EXT5 pins its own sweep and is immune). Unlike the three knobs
//! above these are **semantic** — they change results exactly like a seed
//! does — but under any fixed setting the wall-clock knobs still cannot
//! change a byte, which is what the adversarial-smoke CI step verifies.
//! `--contact-plan FILE` loads a `.cp`-style scheduled-connectivity plan
//! (`node_a node_b t_start t_end` per line, seconds) and overlays it on
//! every figure whose specs did not pin their own — the fourth semantic
//! knob. EXT6 pins its own duty-cycle sweep and is immune.
//! Run with `--release`; the paper scale sweeps take minutes.

use std::collections::BTreeSet;
use std::path::PathBuf;

use spms::{EventKernel, TableLayout};
use spms_kernel::SimTime;
use spms_net::ContactPlan;
use spms_workloads::figures;
use spms_workloads::{
    render_ascii_chart, render_csv, render_json, render_markdown, render_replicated_csv,
    render_replicated_markdown, replicate, set_default_adversary, set_default_contact_plan,
    set_default_event_kernel, set_default_table_layout, set_default_workers, AdversaryOverride,
    FigureResult, Scale,
};

struct Args {
    targets: BTreeSet<String>,
    scale: Scale,
    scale_name: String,
    seed: u64,
    seeds: usize,
    out: PathBuf,
    workers: usize,
    event_kernel: EventKernel,
    table_layout: TableLayout,
    adversary: AdversaryOverride,
    contact_plan: Option<ContactPlan>,
}

fn parse_args() -> Result<Args, String> {
    let mut targets = BTreeSet::new();
    let mut scale_name = "quick".to_string();
    let mut seed = 42u64;
    let mut seeds = 1usize;
    let mut out = PathBuf::from("results");
    let mut workers = 0usize;
    let mut event_kernel = EventKernel::Heap;
    let mut table_layout = TableLayout::Soa;
    let mut adversary = AdversaryOverride::default();
    let mut contact_plan = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                scale_name = argv.next().ok_or("--scale needs a value")?;
            }
            "--workers" => {
                workers = argv
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--seeds" => {
                seeds = argv
                    .next()
                    .ok_or("--seeds needs a value")?
                    .parse()
                    .map_err(|e| format!("bad replication count: {e}"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--event-kernel" => {
                event_kernel = argv.next().ok_or("--event-kernel needs a value")?.parse()?;
            }
            "--table-layout" => {
                table_layout = argv.next().ok_or("--table-layout needs a value")?.parse()?;
            }
            "--adversary-fraction" => {
                let v: f64 = argv
                    .next()
                    .ok_or("--adversary-fraction needs a value")?
                    .parse()
                    .map_err(|e| format!("bad adversary fraction: {e}"))?;
                adversary.fraction = Some(v);
            }
            "--adversary-behavior" => {
                adversary.behavior = Some(
                    argv.next()
                        .ok_or("--adversary-behavior needs a value")?
                        .parse()?,
                );
            }
            "--attack-start" => {
                let ms: f64 = argv
                    .next()
                    .ok_or("--attack-start needs a value (ms)")?
                    .parse()
                    .map_err(|e| format!("bad attack start: {e}"))?;
                adversary.attack_start = Some(SimTime::from_millis_f64(ms));
            }
            "--attack-factor" => {
                let k: u32 = argv
                    .next()
                    .ok_or("--attack-factor needs a value")?
                    .parse()
                    .map_err(|e| format!("bad attack factor: {e}"))?;
                adversary.attack_factor = Some(k);
            }
            "--contact-plan" => {
                let path = PathBuf::from(argv.next().ok_or("--contact-plan needs a file")?);
                contact_plan = Some(ContactPlan::load(&path)?);
            }
            "--churn-rate" => {
                let v: f64 = argv
                    .next()
                    .ok_or("--churn-rate needs a value")?
                    .parse()
                    .map_err(|e| format!("bad churn rate: {e}"))?;
                adversary.churn_rate = Some(v);
            }
            "--help" | "-h" => {
                return Err("usage: repro [FIGURES|all] [--scale smoke|quick|paper] \
                            [--seed N] [--seeds R] [--out DIR] [--workers W] \
                            [--event-kernel heap|wheel|wheel-batched] \
                            [--table-layout soa|aos] \
                            [--adversary-fraction F] \
                            [--adversary-behavior honest|flooding|silent-dropper|metadata-liar] \
                            [--attack-start MS] [--attack-factor K] [--churn-rate F] \
                            [--contact-plan FILE]"
                    .into())
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            other => {
                targets.insert(other.to_string());
            }
        }
    }
    if targets.is_empty() {
        targets.insert("all".to_string());
    }
    let scale = match scale_name.as_str() {
        "smoke" => Scale::smoke(),
        "quick" => Scale::quick(),
        "paper" => Scale::paper(),
        other => return Err(format!("unknown scale {other}")),
    };
    Ok(Args {
        targets,
        scale,
        scale_name,
        seed,
        seeds,
        out,
        workers,
        event_kernel,
        table_layout,
        adversary,
        contact_plan,
    })
}

fn wants(targets: &BTreeSet<String>, id: &str) -> bool {
    targets.contains("all") || targets.contains(id)
}

fn emit(fig: &FigureResult, out_dir: &PathBuf) {
    print!("{}", render_markdown(fig));
    println!("{}", render_ascii_chart(fig, 48));
    write_file(out_dir, &format!("{}.csv", fig.id), &render_csv(fig));
    // The machine-readable twin CI diffs across sweep worker counts.
    write_file(out_dir, &format!("{}.json", fig.id), &render_json(fig));
}

/// Emits a simulation figure, replicated over `args.seeds` seeds when more
/// than one was requested.
fn emit_sim(args: &Args, generate: impl Fn(u64) -> FigureResult) {
    if args.seeds <= 1 {
        emit(&generate(args.seed), &args.out);
        return;
    }
    let seeds: Vec<u64> = (0..args.seeds as u64).map(|i| args.seed + i).collect();
    match replicate(&seeds, generate) {
        Ok(rep) => {
            print!("{}", render_replicated_markdown(&rep));
            write_file(
                &args.out,
                &format!("{}_ci.csv", rep.id),
                &render_replicated_csv(&rep),
            );
        }
        Err(e) => eprintln!("replication failed: {e}"),
    }
}

fn write_file(out_dir: &PathBuf, name: &str, contents: &str) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
        return;
    }
    let path = out_dir.join(name);
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // Route every figure sweep through a pool of the requested size
    // (0 = auto), onto the requested event kernel, and onto the requested
    // routing-arena layout. All three are purely wall-clock: outputs are
    // byte-identical for every combination.
    set_default_workers(args.workers);
    set_default_event_kernel(args.event_kernel);
    set_default_table_layout(args.table_layout);
    // The semantic overrides (adversary/churn and the contact plan) —
    // only figures that leave those config slots unset pick them up.
    set_default_adversary(args.adversary);
    set_default_contact_plan(args.contact_plan.clone());
    let t = &args.targets;
    eprintln!(
        "repro: scale={} seed={} workers={} event-kernel={} table-layout={} targets={:?}",
        args.scale_name,
        args.seed,
        if args.workers == 0 {
            "auto".to_string()
        } else {
            args.workers.to_string()
        },
        args.event_kernel,
        args.table_layout,
        t
    );
    if let Some(plan) = &args.contact_plan {
        eprintln!(
            "repro: contact-plan override: {} link(s), {} window(s) (semantic knob: \
             outputs differ by design)",
            plan.num_links(),
            plan.num_windows(),
        );
    }
    if args.adversary != AdversaryOverride::default() {
        eprintln!(
            "repro: adversary override: fraction={:?} behavior={:?} attack-start={:?} \
             attack-factor={:?} churn-rate={:?} (semantic knob: outputs differ by design)",
            args.adversary.fraction,
            args.adversary.behavior,
            args.adversary.attack_start,
            args.adversary.attack_factor,
            args.adversary.churn_rate,
        );
    }

    if wants(t, "table1") {
        println!("{}", figures::table1());
    }
    if wants(t, "fig3") {
        emit(&figures::fig3(&args.scale), &args.out);
    }
    if wants(t, "fig5") {
        emit(&figures::fig5(&args.scale), &args.out);
    }
    // Paired generators share one sweep per call; under replication each
    // member re-runs the sweep, trading CPU for generator reuse.
    if wants(t, "fig6") || wants(t, "fig8") {
        if args.seeds <= 1 {
            let (f6, f8) = figures::fig6_fig8(&args.scale, args.seed);
            if wants(t, "fig6") {
                emit(&f6, &args.out);
            }
            if wants(t, "fig8") {
                emit(&f8, &args.out);
            }
        } else {
            if wants(t, "fig6") {
                emit_sim(&args, |s| figures::fig6_fig8(&args.scale, s).0);
            }
            if wants(t, "fig8") {
                emit_sim(&args, |s| figures::fig6_fig8(&args.scale, s).1);
            }
        }
    }
    if wants(t, "fig7") || wants(t, "fig9") {
        if args.seeds <= 1 {
            let (f7, f9) = figures::fig7_fig9(&args.scale, args.seed);
            if wants(t, "fig7") {
                emit(&f7, &args.out);
            }
            if wants(t, "fig9") {
                emit(&f9, &args.out);
            }
        } else {
            if wants(t, "fig7") {
                emit_sim(&args, |s| figures::fig7_fig9(&args.scale, s).0);
            }
            if wants(t, "fig9") {
                emit_sim(&args, |s| figures::fig7_fig9(&args.scale, s).1);
            }
        }
    }
    if wants(t, "fig10") {
        emit_sim(&args, |s| figures::fig10(&args.scale, s));
    }
    if wants(t, "fig11") {
        emit_sim(&args, |s| figures::fig11(&args.scale, s));
    }
    if wants(t, "fig12") {
        emit_sim(&args, |s| figures::fig12(&args.scale, s));
    }
    if wants(t, "fig13") {
        emit_sim(&args, |s| figures::fig13(&args.scale, s));
    }
    if wants(t, "ext1") {
        if args.seeds <= 1 {
            let (a, b) = figures::ext1(&args.scale, args.seed);
            emit(&a, &args.out);
            emit(&b, &args.out);
        } else {
            emit_sim(&args, |s| figures::ext1(&args.scale, s).0);
            emit_sim(&args, |s| figures::ext1(&args.scale, s).1);
        }
    }
    if wants(t, "ext2") {
        emit_sim(&args, |s| figures::ext2(&args.scale, s));
    }
    if wants(t, "ext3") {
        emit_sim(&args, |s| figures::ext3(&args.scale, s));
    }
    if wants(t, "ext4") {
        emit_sim(&args, |s| figures::ext4(&args.scale, s));
    }
    if wants(t, "ext5") {
        emit_sim(&args, |s| figures::ext5(&args.scale, s));
    }
    if wants(t, "ext6") {
        if args.seeds <= 1 {
            let (a, b) = figures::ext6(&args.scale, args.seed);
            emit(&a, &args.out);
            emit(&b, &args.out);
        } else {
            emit_sim(&args, |s| figures::ext6(&args.scale, s).0);
            emit_sim(&args, |s| figures::ext6(&args.scale, s).1);
        }
    }
    if wants(t, "breakeven") {
        println!("{}", figures::breakeven_report());
    }
}
