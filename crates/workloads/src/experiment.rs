//! Experiment specifications and the parallel sweep runner.

use spms::{RunMetrics, SimConfig, Simulation, TrafficPlan};
use spms_kernel::SimTime;
use spms_net::Topology;

/// Experiment scale: the paper's full parameter grid, or a laptop-friendly
/// subset for CI and Criterion benches.
#[derive(Clone, Debug, PartialEq)]
pub struct Scale {
    /// Node counts for the N sweeps (perfect squares; the paper uses
    /// 25–225 at uniform density).
    pub node_counts: Vec<usize>,
    /// Transmission radii for the radius sweeps (m).
    pub radii_m: Vec<f64>,
    /// Packets generated per node (Table 1 workload: 10).
    pub packets_per_node: u32,
    /// Node count used by radius sweeps (paper: 169).
    pub default_nodes: usize,
    /// Grid spacing (m); 5 m keeps the paper's n1 ≈ 45, ns = 5 densities.
    pub spacing_m: f64,
    /// Mean network-wide gap between packet births. Chosen so each item's
    /// dissemination largely completes before the next begins — the
    /// unsaturated regime the paper's measured delays imply (see
    /// EXPERIMENTS.md). The event-driven kernel makes idle time free.
    pub mean_gap: SimTime,
}

impl Scale {
    /// The paper's full grid.
    #[must_use]
    pub fn paper() -> Self {
        Scale {
            node_counts: vec![25, 49, 100, 169, 225],
            radii_m: vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0],
            packets_per_node: 10,
            default_nodes: 169,
            spacing_m: 5.0,
            mean_gap: SimTime::from_secs(5),
        }
    }

    /// A reduced grid with the same shape (minutes instead of tens of
    /// minutes; used by the Criterion benches and CI).
    #[must_use]
    pub fn quick() -> Self {
        Scale {
            node_counts: vec![25, 49, 81],
            radii_m: vec![10.0, 15.0, 20.0],
            packets_per_node: 2,
            default_nodes: 49,
            spacing_m: 5.0,
            mean_gap: SimTime::from_millis(1500),
        }
    }

    /// A minimal grid for smoke tests.
    #[must_use]
    pub fn smoke() -> Self {
        Scale {
            node_counts: vec![16, 25],
            radii_m: vec![10.0, 20.0],
            packets_per_node: 1,
            default_nodes: 25,
            spacing_m: 5.0,
            mean_gap: SimTime::from_millis(400),
        }
    }

    /// A horizon comfortably beyond the whole paced workload for `n` nodes.
    #[must_use]
    pub fn horizon_for(&self, n: usize) -> SimTime {
        let total_packets = n as u64 * u64::from(self.packets_per_node);
        self.mean_gap * (2 * total_packets + 50) + SimTime::from_secs(60)
    }

    /// Validates the scale.
    ///
    /// # Errors
    ///
    /// Returns a message if any sweep list is empty, a node count is not a
    /// perfect square, or the spacing is invalid.
    pub fn validate(&self) -> Result<(), String> {
        if self.node_counts.is_empty() || self.radii_m.is_empty() {
            return Err("sweep lists must be non-empty".into());
        }
        for &n in &self.node_counts {
            let side = (n as f64).sqrt().round() as usize;
            if side * side != n {
                return Err(format!("{n} is not a perfect square"));
            }
        }
        if self.packets_per_node == 0 {
            return Err("packets_per_node must be positive".into());
        }
        if !self.spacing_m.is_finite() || self.spacing_m <= 0.0 {
            return Err(format!("bad spacing {}", self.spacing_m));
        }
        Ok(())
    }
}

/// One run to execute: a labelled (config, topology, plan) triple.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Label carried into the results (e.g. "SPMS n=169 r=20").
    pub label: String,
    /// Simulation configuration.
    pub config: SimConfig,
    /// The network.
    pub topology: Topology,
    /// The traffic.
    pub plan: TrafficPlan,
}

/// Runs every spec, in parallel across OS threads, preserving input order.
///
/// Each run is independently deterministic (all randomness comes from the
/// spec's config seed), so parallelism cannot change results.
///
/// # Panics
///
/// Panics if a spec fails to build — specs are produced by this crate's
/// figure generators, so a failure is a bug, not an input error.
#[must_use]
pub fn run_specs(specs: Vec<RunSpec>) -> Vec<(String, RunMetrics)> {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(specs.len().max(1));
    let mut results: Vec<Option<(String, RunMetrics)>> = Vec::new();
    results.resize_with(specs.len(), || None);
    let jobs: Vec<(usize, RunSpec)> = specs.into_iter().enumerate().collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let jobs_ref = &jobs;
    let next_ref = &next;
    let slots = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs_ref.len() {
                    break;
                }
                let (slot, spec) = &jobs_ref[i];
                let metrics = Simulation::run_with(
                    spec.config.clone(),
                    spec.topology.clone(),
                    spec.plan.clone(),
                )
                .unwrap_or_else(|e| panic!("spec '{}' failed: {e}", spec.label));
                let mut guard = slots.lock().expect("no poisoned runs");
                guard[*slot] = Some((spec.label.clone(), metrics));
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::single_source;
    use spms::ProtocolKind;
    use spms_kernel::SimTime;
    use spms_net::{placement, NodeId};

    #[test]
    fn scales_are_valid() {
        assert!(Scale::paper().validate().is_ok());
        assert!(Scale::quick().validate().is_ok());
        assert!(Scale::smoke().validate().is_ok());
        let mut bad = Scale::quick();
        bad.node_counts = vec![26];
        assert!(bad.validate().is_err());
        let mut bad = Scale::quick();
        bad.radii_m.clear();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn run_specs_preserves_order_and_determinism() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let plan = single_source(NodeId::new(4), 1, SimTime::ZERO).unwrap();
        let mk = |label: &str, protocol| RunSpec {
            label: label.to_string(),
            config: SimConfig::paper_defaults(protocol, 11),
            topology: topo.clone(),
            plan: plan.clone(),
        };
        let specs = vec![
            mk("a", ProtocolKind::Spms),
            mk("b", ProtocolKind::Spin),
            mk("c", ProtocolKind::Spms),
        ];
        let out = run_specs(specs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, "a");
        assert_eq!(out[1].0, "b");
        assert_eq!(out[2].0, "c");
        // Identical specs give identical metrics regardless of scheduling.
        assert_eq!(out[0].1, out[2].1);
        assert_eq!(out[0].1.deliveries, 8);
    }
}
