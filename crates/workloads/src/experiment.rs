//! Experiment specifications and the deterministic parallel sweep
//! executor.
//!
//! Every paper figure is a parameter sweep: a vector of [`RunSpec`]s, each
//! an independently deterministic simulation (all randomness comes from the
//! spec's config seed). [`run_specs_with`] executes them on a scoped-thread
//! worker pool ([`SweepConfig`]): workers claim specs from a shared index
//! and scatter results back **by spec index**, so the output order and
//! every [`RunMetrics`] byte are identical to the sequential path for any
//! worker count — thread count is a wall-clock knob, never a semantic one
//! (property-tested in `tests/sweep.rs`). A spec that fails (engine error
//! or panic) is contained to its own slot and can neither poison nor
//! reorder its siblings.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use spms::{
    AdversaryConfig, EventKernel, NodeBehavior, RunMetrics, SimConfig, Simulation, TableLayout,
    TrafficPlan,
};
use spms_kernel::SimTime;
use spms_net::{ChurnConfig, ContactPlan, Topology};

/// Experiment scale: the paper's full parameter grid, or a laptop-friendly
/// subset for CI and Criterion benches.
#[derive(Clone, Debug, PartialEq)]
pub struct Scale {
    /// Node counts for the N sweeps (perfect squares; the paper uses
    /// 25–225 at uniform density).
    pub node_counts: Vec<usize>,
    /// Transmission radii for the radius sweeps (m).
    pub radii_m: Vec<f64>,
    /// Packets generated per node (Table 1 workload: 10).
    pub packets_per_node: u32,
    /// Node count used by radius sweeps (paper: 169).
    pub default_nodes: usize,
    /// Grid spacing (m); 5 m keeps the paper's n1 ≈ 45, ns = 5 densities.
    pub spacing_m: f64,
    /// Mean network-wide gap between packet births. Chosen so each item's
    /// dissemination largely completes before the next begins — the
    /// unsaturated regime the paper's measured delays imply (see
    /// EXPERIMENTS.md). The event-driven kernel makes idle time free.
    pub mean_gap: SimTime,
}

impl Scale {
    /// The paper's full grid.
    #[must_use]
    pub fn paper() -> Self {
        Scale {
            node_counts: vec![25, 49, 100, 169, 225],
            radii_m: vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0],
            packets_per_node: 10,
            default_nodes: 169,
            spacing_m: 5.0,
            mean_gap: SimTime::from_secs(5),
        }
    }

    /// A reduced grid with the same shape (minutes instead of tens of
    /// minutes; used by the Criterion benches and CI).
    #[must_use]
    pub fn quick() -> Self {
        Scale {
            node_counts: vec![25, 49, 81],
            radii_m: vec![10.0, 15.0, 20.0],
            packets_per_node: 2,
            default_nodes: 49,
            spacing_m: 5.0,
            mean_gap: SimTime::from_millis(1500),
        }
    }

    /// A minimal grid for smoke tests.
    #[must_use]
    pub fn smoke() -> Self {
        Scale {
            node_counts: vec![16, 25],
            radii_m: vec![10.0, 20.0],
            packets_per_node: 1,
            default_nodes: 25,
            spacing_m: 5.0,
            mean_gap: SimTime::from_millis(400),
        }
    }

    /// A horizon comfortably beyond the whole paced workload for `n` nodes.
    #[must_use]
    pub fn horizon_for(&self, n: usize) -> SimTime {
        let total_packets = n as u64 * u64::from(self.packets_per_node);
        self.mean_gap * (2 * total_packets + 50) + SimTime::from_secs(60)
    }

    /// Validates the scale.
    ///
    /// # Errors
    ///
    /// Returns a message if any sweep list is empty, a node count is not a
    /// perfect square, or the spacing is invalid.
    pub fn validate(&self) -> Result<(), String> {
        if self.node_counts.is_empty() || self.radii_m.is_empty() {
            return Err("sweep lists must be non-empty".into());
        }
        for &n in &self.node_counts {
            let side = (n as f64).sqrt().round() as usize;
            if side * side != n {
                return Err(format!("{n} is not a perfect square"));
            }
        }
        if self.packets_per_node == 0 {
            return Err("packets_per_node must be positive".into());
        }
        if !self.spacing_m.is_finite() || self.spacing_m <= 0.0 {
            return Err(format!("bad spacing {}", self.spacing_m));
        }
        Ok(())
    }
}

/// One run to execute: a labelled (config, topology, plan) triple.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Label carried into the results (e.g. "SPMS n=169 r=20").
    pub label: String,
    /// Simulation configuration.
    pub config: SimConfig,
    /// The network.
    pub topology: Topology,
    /// The traffic.
    pub plan: TrafficPlan,
}

/// Worker-pool configuration for the sweep executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepConfig {
    /// Worker threads claiming specs; `0` resolves to the host's available
    /// parallelism. Purely a wall-clock knob — results are byte-identical
    /// for every value, because each run is a pure function of its spec
    /// and results land in slots keyed by spec index, not completion time.
    pub workers: usize,
}

impl SweepConfig {
    /// Auto-sized pool (`workers = 0`: the host's available parallelism).
    #[must_use]
    pub fn auto() -> Self {
        SweepConfig { workers: 0 }
    }

    /// A fixed-size pool (`1` = the sequential reference path, inline on
    /// the calling thread).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        SweepConfig { workers }
    }

    /// The thread count a `jobs`-spec sweep actually runs with.
    fn resolved(self, jobs: usize) -> usize {
        let workers = match self.workers {
            0 => spms_kernel::host_parallelism(),
            w => w,
        };
        workers.clamp(1, jobs.max(1))
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Process-wide default worker count used by [`run_specs`] (`0` = auto).
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count, routing every sweep that
/// goes through [`run_specs`] — all the `figures` generators, and through
/// them the `repro` bin's `--workers` flag — onto a pool of that size.
/// `0` restores auto-sizing. Worker count can never change results, only
/// wall-clock time.
pub fn set_default_workers(workers: usize) {
    DEFAULT_WORKERS.store(workers, Ordering::Relaxed);
}

/// The process-wide default sweep configuration (see
/// [`set_default_workers`]).
#[must_use]
pub fn default_sweep_config() -> SweepConfig {
    SweepConfig {
        workers: DEFAULT_WORKERS.load(Ordering::Relaxed),
    }
}

/// Process-wide event-kernel selection applied to every spec the executor
/// runs (stored as the enum's discriminant; 0 = heap).
static DEFAULT_EVENT_KERNEL: AtomicUsize = AtomicUsize::new(0);

/// Routes every sweep that goes through [`run_specs`] — all the `figures`
/// generators, and through them the `repro` bin's `--event-kernel` flag —
/// onto the given event kernel, overriding each spec's
/// `SimConfig::event_kernel`. Like the worker pool, the kernel can never
/// change results, only wall-clock time (proven byte-identical in
/// `tests/integration_determinism.rs`), which is what lets CI byte-diff
/// figure JSON across kernels.
pub fn set_default_event_kernel(kernel: EventKernel) {
    let code = match kernel {
        EventKernel::Heap => 0,
        EventKernel::Wheel => 1,
        EventKernel::WheelBatched => 2,
    };
    DEFAULT_EVENT_KERNEL.store(code, Ordering::Relaxed);
}

/// The process-wide event kernel (see [`set_default_event_kernel`]).
#[must_use]
pub fn default_event_kernel() -> EventKernel {
    match DEFAULT_EVENT_KERNEL.load(Ordering::Relaxed) {
        1 => EventKernel::Wheel,
        2 => EventKernel::WheelBatched,
        _ => EventKernel::Heap,
    }
}

/// Process-wide routing-table layout applied to every spec the executor
/// runs (stored as the enum's discriminant; 0 = SoA, the default).
static DEFAULT_TABLE_LAYOUT: AtomicUsize = AtomicUsize::new(0);

/// Routes every sweep that goes through [`run_specs`] — all the `figures`
/// generators, and through them the `repro` bin's `--table-layout` flag —
/// onto the given routing-arena layout, overriding each spec's
/// `SimConfig::table_layout`. Like the event kernel, the layout can never
/// change results, only wall-clock time (proven bit-identical by the
/// layout-differential suites in `spms-routing` and re-checked end to end
/// in `tests/integration_determinism.rs`), which is what lets CI byte-diff
/// figure JSON across layouts.
pub fn set_default_table_layout(layout: TableLayout) {
    let code = match layout {
        TableLayout::Soa => 0,
        TableLayout::Aos => 1,
    };
    DEFAULT_TABLE_LAYOUT.store(code, Ordering::Relaxed);
}

/// The process-wide routing-table layout (see
/// [`set_default_table_layout`]).
#[must_use]
pub fn default_table_layout() -> TableLayout {
    match DEFAULT_TABLE_LAYOUT.load(Ordering::Relaxed) {
        1 => TableLayout::Aos,
        _ => TableLayout::Soa,
    }
}

/// Process-wide adversary/churn override applied to every spec the
/// executor runs (the `repro` bin's `--adversary-*` / `--churn-rate`
/// flags). Unlike the worker pool, event kernel, and table layout — pure
/// wall-clock knobs — this one is **semantic**: it changes what the
/// simulation computes, exactly like a seed. It only fills in specs whose
/// config left `adversary` / `churn` unset, so figure generators that pin
/// their own adversarial settings (EXT5) are immune.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AdversaryOverride {
    /// Adversary fraction; `Some` activates the adversary subsystem for
    /// every spec that did not configure its own.
    pub fraction: Option<f64>,
    /// Behavior the adversaries run (default flooding attacker).
    pub behavior: Option<NodeBehavior>,
    /// When the attack window opens (default: the start of the run).
    pub attack_start: Option<SimTime>,
    /// Bogus ADVs per first-seen item for flooding attackers.
    pub attack_factor: Option<u32>,
    /// Churn fraction per epoch; `Some` activates mass join/leave churn
    /// (at [`AdversaryOverride::DEFAULT_CHURN_INTERVAL`]) for every spec
    /// that did not configure its own.
    pub churn_rate: Option<f64>,
}

impl AdversaryOverride {
    /// Epoch interval used when churn is activated by `churn_rate` alone.
    pub const DEFAULT_CHURN_INTERVAL: SimTime = SimTime::from_millis(400);

    /// Fills `config`'s unset `adversary` / `churn` slots from this
    /// override. Values are validated by `Simulation::new`, not here, so a
    /// bad override fails the spec with a message instead of panicking.
    pub fn apply(&self, config: &mut SimConfig) {
        if config.adversary.is_none() {
            if let Some(fraction) = self.fraction {
                config.adversary = Some(AdversaryConfig {
                    fraction,
                    behavior: self.behavior.unwrap_or(NodeBehavior::Flooding),
                    attack_start: self.attack_start.unwrap_or(SimTime::ZERO),
                    attack_factor: self.attack_factor.unwrap_or(2),
                    explicit: None,
                });
            }
        }
        if config.churn.is_none() {
            if let Some(fraction) = self.churn_rate {
                config.churn = Some(ChurnConfig {
                    interval: Self::DEFAULT_CHURN_INTERVAL,
                    fraction,
                });
            }
        }
    }
}

/// The process-wide [`AdversaryOverride`] (see [`set_default_adversary`]).
static DEFAULT_ADVERSARY: Mutex<AdversaryOverride> = Mutex::new(AdversaryOverride {
    fraction: None,
    behavior: None,
    attack_start: None,
    attack_factor: None,
    churn_rate: None,
});

/// Sets the process-wide adversary/churn override routed into every sweep
/// that goes through [`run_specs`] — all the `figures` generators, and
/// through them the `repro` bin's `--adversary-fraction`,
/// `--adversary-behavior`, `--attack-start`, `--attack-factor`, and
/// `--churn-rate` flags. A **semantic** knob: byte-diffing figure JSON
/// across different overrides is expected to differ; byte-diffing across
/// worker/kernel/layout knobs under the *same* override must not.
pub fn set_default_adversary(over: AdversaryOverride) {
    *DEFAULT_ADVERSARY.lock().expect("override mutex poisoned") = over;
}

/// The process-wide adversary/churn override (see
/// [`set_default_adversary`]).
#[must_use]
pub fn default_adversary() -> AdversaryOverride {
    *DEFAULT_ADVERSARY.lock().expect("override mutex poisoned")
}

/// The process-wide contact-plan override (see
/// [`set_default_contact_plan`]).
static DEFAULT_CONTACT_PLAN: Mutex<Option<ContactPlan>> = Mutex::new(None);

/// Sets the process-wide contact-plan override routed into every sweep
/// that goes through [`run_specs`] — all the `figures` generators, and
/// through them the `repro` bin's `--contact-plan` flag. Like the
/// adversary/churn override this is a **semantic** knob: scheduled
/// connectivity changes what the simulation computes, exactly like a
/// seed. It only fills in specs whose config left `contact_plan` unset,
/// so figure generators that pin their own plans (EXT6) are immune.
/// `None` clears the override.
pub fn set_default_contact_plan(plan: Option<ContactPlan>) {
    *DEFAULT_CONTACT_PLAN
        .lock()
        .expect("contact-plan mutex poisoned") = plan;
}

/// The process-wide contact-plan override (see
/// [`set_default_contact_plan`]).
#[must_use]
pub fn default_contact_plan() -> Option<ContactPlan> {
    DEFAULT_CONTACT_PLAN
        .lock()
        .expect("contact-plan mutex poisoned")
        .clone()
}

/// Runs one spec, containing failures: an engine error or a panic inside
/// the run becomes an `Err` carrying the message, so one bad spec can
/// never poison, reorder, or abort its siblings.
fn run_one(spec: &RunSpec) -> Result<RunMetrics, String> {
    let run = || {
        let mut config = spec.config.clone();
        config.event_kernel = default_event_kernel();
        config.table_layout = default_table_layout();
        default_adversary().apply(&mut config);
        if config.contact_plan.is_none() {
            config.contact_plan = default_contact_plan();
        }
        Simulation::run_with(config, spec.topology.clone(), spec.plan.clone())
    };
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(Ok(metrics)) => Ok(metrics),
        Ok(Err(e)) => Err(e),
        Err(payload) => Err(panic_text(payload.as_ref())),
    }
}

/// Best-effort text of a caught panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "spec panicked".into()
    }
}

/// Runs every spec on a [`SweepConfig`]-sized worker pool, preserving
/// input order and containing per-spec failures to their own slot.
///
/// Workers claim specs from a shared atomic index and keep their results
/// in worker-local buffers; after the scope joins, results scatter into
/// the output by spec index. No slot is ever shared between workers, so
/// there is nothing to lock, nothing to poison, and nothing whose order
/// depends on scheduling.
#[must_use]
pub fn try_run_specs(
    specs: Vec<RunSpec>,
    config: SweepConfig,
) -> Vec<(String, Result<RunMetrics, String>)> {
    let workers = config.resolved(specs.len());
    let mut outcomes: Vec<Option<Result<RunMetrics, String>>> = Vec::new();
    outcomes.resize_with(specs.len(), || None);
    if workers <= 1 {
        // The sequential reference path every pool size must reproduce.
        for (slot, spec) in specs.iter().enumerate() {
            outcomes[slot] = Some(run_one(spec));
        }
    } else {
        let next = AtomicUsize::new(0);
        let specs_ref = &specs;
        std::thread::scope(|scope| {
            let pool: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut claimed: Vec<(usize, Result<RunMetrics, String>)> = Vec::new();
                        loop {
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            if slot >= specs_ref.len() {
                                break;
                            }
                            claimed.push((slot, run_one(&specs_ref[slot])));
                        }
                        claimed
                    })
                })
                .collect();
            for worker in pool {
                let claimed = worker.join().expect("run_one contains spec panics");
                for (slot, outcome) in claimed {
                    outcomes[slot] = Some(outcome);
                }
            }
        });
    }
    specs
        .into_iter()
        .zip(outcomes)
        .map(|(spec, outcome)| {
            (
                spec.label,
                outcome.expect("every slot is claimed exactly once"),
            )
        })
        .collect()
}

/// Runs every spec on a [`SweepConfig`]-sized worker pool, preserving
/// input order.
///
/// # Panics
///
/// Panics if a spec fails — specs are produced by this crate's figure
/// generators, so a failure is a bug, not an input error. The panic names
/// the **first failed spec in input order** (not completion order), after
/// every sibling has finished: one bad spec is deterministic to diagnose
/// and cannot poison the rest of the sweep.
#[must_use]
pub fn run_specs_with(specs: Vec<RunSpec>, config: SweepConfig) -> Vec<(String, RunMetrics)> {
    try_run_specs(specs, config)
        .into_iter()
        .map(|(label, outcome)| match outcome {
            Ok(metrics) => (label, metrics),
            Err(e) => panic!("spec '{label}' failed: {e}"),
        })
        .collect()
}

/// [`run_specs_with`] under the process-wide default pool size (auto,
/// unless [`set_default_workers`] overrode it) — the entry point every
/// figure sweep routes through.
///
/// # Panics
///
/// As [`run_specs_with`].
#[must_use]
pub fn run_specs(specs: Vec<RunSpec>) -> Vec<(String, RunMetrics)> {
    run_specs_with(specs, default_sweep_config())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::single_source;
    use spms::ProtocolKind;
    use spms_kernel::SimTime;
    use spms_net::{placement, NodeId};

    #[test]
    fn scales_are_valid() {
        assert!(Scale::paper().validate().is_ok());
        assert!(Scale::quick().validate().is_ok());
        assert!(Scale::smoke().validate().is_ok());
        let mut bad = Scale::quick();
        bad.node_counts = vec![26];
        assert!(bad.validate().is_err());
        let mut bad = Scale::quick();
        bad.radii_m.clear();
        assert!(bad.validate().is_err());
    }

    fn mk(
        topo: &spms_net::Topology,
        plan: &TrafficPlan,
        label: &str,
        protocol: ProtocolKind,
    ) -> RunSpec {
        RunSpec {
            label: label.to_string(),
            config: SimConfig::paper_defaults(protocol, 11),
            topology: topo.clone(),
            plan: plan.clone(),
        }
    }

    #[test]
    fn run_specs_preserves_order_and_determinism() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let plan = single_source(NodeId::new(4), 1, SimTime::ZERO).unwrap();
        let specs = vec![
            mk(&topo, &plan, "a", ProtocolKind::Spms),
            mk(&topo, &plan, "b", ProtocolKind::Spin),
            mk(&topo, &plan, "c", ProtocolKind::Spms),
        ];
        let out = run_specs(specs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, "a");
        assert_eq!(out[1].0, "b");
        assert_eq!(out[2].0, "c");
        // Identical specs give identical metrics regardless of scheduling.
        assert_eq!(out[0].1, out[2].1);
        assert_eq!(out[0].1.deliveries, 8);
    }

    #[test]
    fn adversary_override_fills_only_unset_slots() {
        // Untouched by default.
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 1);
        AdversaryOverride::default().apply(&mut config);
        assert_eq!(config.adversary, None);
        assert_eq!(config.churn, None);

        // Fills both slots, with documented defaults for unset fields.
        let over = AdversaryOverride {
            fraction: Some(0.2),
            churn_rate: Some(0.1),
            ..AdversaryOverride::default()
        };
        over.apply(&mut config);
        let adv = config.adversary.clone().expect("adversary filled");
        assert_eq!(adv.fraction, 0.2);
        assert_eq!(adv.behavior, spms::NodeBehavior::Flooding);
        assert_eq!(adv.attack_start, SimTime::ZERO);
        assert_eq!(adv.attack_factor, 2);
        assert_eq!(adv.explicit, None);
        let churn = config.churn.expect("churn filled");
        assert_eq!(churn.interval, AdversaryOverride::DEFAULT_CHURN_INTERVAL);
        assert_eq!(churn.fraction, 0.1);
        assert!(config.validate().is_ok(), "filled defaults must validate");

        // Specs that pin their own settings are immune (EXT5's guarantee).
        let mut pinned = SimConfig::paper_defaults(ProtocolKind::Spms, 1);
        pinned.adversary =
            Some(AdversaryConfig::new(spms::NodeBehavior::SilentDropper, 0.5).unwrap());
        pinned.churn = Some(ChurnConfig::new(SimTime::from_millis(40), 0.25).unwrap());
        let before = pinned.clone();
        over.apply(&mut pinned);
        assert_eq!(pinned.adversary, before.adversary);
        assert_eq!(pinned.churn, before.churn);
    }

    #[test]
    fn worker_counts_resolve_sanely() {
        assert_eq!(SweepConfig::default(), SweepConfig::auto());
        assert_eq!(SweepConfig::with_workers(3).resolved(10), 3);
        // Never more workers than specs, never fewer than one.
        assert_eq!(SweepConfig::with_workers(8).resolved(2), 2);
        assert_eq!(SweepConfig::with_workers(5).resolved(0), 1);
        assert!(SweepConfig::auto().resolved(64) >= 1);
    }

    #[test]
    fn failed_specs_do_not_poison_or_reorder_siblings() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let plan = single_source(NodeId::new(4), 1, SimTime::ZERO).unwrap();
        // An out-of-range generator node makes the engine reject the spec.
        let bad_plan = single_source(NodeId::new(99), 1, SimTime::ZERO).unwrap();
        let specs = vec![
            mk(&topo, &plan, "good-0", ProtocolKind::Spms),
            RunSpec {
                plan: bad_plan,
                ..mk(&topo, &plan, "bad", ProtocolKind::Spms)
            },
            mk(&topo, &plan, "good-2", ProtocolKind::Spms),
        ];
        for workers in [1usize, 2, 4] {
            let out = try_run_specs(specs.clone(), SweepConfig::with_workers(workers));
            let labels: Vec<&str> = out.iter().map(|(l, _)| l.as_str()).collect();
            assert_eq!(labels, ["good-0", "bad", "good-2"], "{workers} workers");
            assert!(out[1].1.is_err(), "{workers} workers: bad spec must fail");
            let good = out[0].1.as_ref().unwrap();
            assert_eq!(good, out[2].1.as_ref().unwrap(), "{workers} workers");
            assert_eq!(good.deliveries, 8, "{workers} workers");
        }
    }

    #[test]
    fn run_specs_with_panics_on_the_first_failed_spec_in_input_order() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let plan = single_source(NodeId::new(4), 1, SimTime::ZERO).unwrap();
        let bad = |label: &str| RunSpec {
            plan: single_source(NodeId::new(99), 1, SimTime::ZERO).unwrap(),
            ..mk(&topo, &plan, label, ProtocolKind::Spms)
        };
        let specs = vec![
            mk(&topo, &plan, "good", ProtocolKind::Spms),
            bad("bad-early"),
            bad("bad-late"),
        ];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_specs_with(specs, SweepConfig::with_workers(2))
        }))
        .expect_err("a failed spec must fail the sweep");
        let text = panic_text(err.as_ref());
        assert!(
            text.contains("bad-early"),
            "panic must name the first failed spec in input order: {text}"
        );
    }
}
