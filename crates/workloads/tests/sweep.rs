//! Differential sweep-equivalence suite for the parallel experiment
//! executor.
//!
//! Two claims, mirroring the style of the routing layer's
//! differential-oracle harness:
//!
//! 1. **Worker count cannot change results.** For random `RunSpec`
//!    vectors, running the sweep at 1 worker (the sequential reference
//!    path, inline on the calling thread), 2 workers, the host's
//!    available parallelism (`0`), and a deliberately excessive 16
//!    workers produces byte-identical `Vec<(String, RunMetrics)>` —
//!    labels, order, and every metrics field.
//! 2. **A failed spec cannot poison or reorder its siblings.** A spec the
//!    engine rejects — or one that panics outright mid-run — fails only
//!    its own slot: every sibling still lands in input order with the
//!    metrics a clean sweep produces, and `run_specs_with` reports the
//!    first failure in *input* order, not completion order.

use proptest::prelude::*;
use spms::{ProtocolKind, SimConfig, TrafficPlan};
use spms_kernel::SimTime;
use spms_net::{placement, NodeId, Topology};
use spms_workloads::traffic;
use spms_workloads::{run_specs_with, try_run_specs, RunSpec, SweepConfig};

fn spec(
    topo: &Topology,
    label: &str,
    protocol: ProtocolKind,
    seed: u64,
    plan: TrafficPlan,
) -> RunSpec {
    RunSpec {
        label: label.to_string(),
        config: SimConfig::paper_defaults(protocol, seed),
        topology: topo.clone(),
        plan,
    }
}

/// A spec whose run **panics** (rather than returning an error): a
/// zero-capacity trace ring slips past `SimConfig::validate` and trips
/// the kernel's `Trace::bounded` assertion mid-construction. The executor
/// must contain that unwind to the spec's own slot.
fn panicking_spec(topo: &Topology, label: &str, plan: TrafficPlan) -> RunSpec {
    let mut spec = spec(topo, label, ProtocolKind::Spms, 7, plan);
    spec.config.trace_capacity = Some(0);
    spec
}

proptest! {
    // Fixed seed + bounded case count keeps this suite deterministic in
    // CI (each case runs up to 5 specs × 4 worker counts of simulation).
    #![proptest_config(ProptestConfig {
        cases: 6,
        rng_seed: 0x0000_D8F1_2006,
        ..ProptestConfig::default()
    })]

    /// Random spec vectors across protocols, seeds, and workloads: every
    /// worker count reproduces the 1-worker reference byte for byte.
    #[test]
    fn worker_count_cannot_change_sweep_results(
        raw in prop::collection::vec((0u8..3, 0u64..1_000, 1u32..3, 0u16..9), 1..5),
    ) {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let specs: Vec<RunSpec> = raw
            .iter()
            .enumerate()
            .map(|(i, &(proto, seed, items, source))| {
                let protocol = match proto {
                    0 => ProtocolKind::Spms,
                    1 => ProtocolKind::Spin,
                    _ => ProtocolKind::Flooding,
                };
                let plan = traffic::single_source(
                    NodeId::new(u32::from(source)),
                    items,
                    SimTime::from_millis(100),
                )
                .unwrap();
                spec(&topo, &format!("spec-{i}"), protocol, seed, plan)
            })
            .collect();
        let reference = run_specs_with(specs.clone(), SweepConfig::with_workers(1));
        for workers in [2usize, 0, 16] {
            let got = run_specs_with(specs.clone(), SweepConfig::with_workers(workers));
            prop_assert_eq!(&got, &reference, "workers = {} diverged", workers);
        }
    }
}

#[test]
fn a_panicking_spec_does_not_poison_or_reorder_its_siblings() {
    let topo = placement::grid(3, 3, 5.0).unwrap();
    let plan = traffic::single_source(NodeId::new(4), 1, SimTime::ZERO).unwrap();
    let clean = vec![
        spec(&topo, "good-0", ProtocolKind::Spms, 7, plan.clone()),
        spec(&topo, "good-2", ProtocolKind::Spin, 8, plan.clone()),
        spec(&topo, "good-3", ProtocolKind::Spms, 9, plan.clone()),
    ];
    let reference = run_specs_with(clean.clone(), SweepConfig::with_workers(1));

    // The same siblings with a panicking spec spliced in at index 1.
    let mut poisoned = clean;
    poisoned.insert(1, panicking_spec(&topo, "boom", plan));
    for workers in [1usize, 2, 4] {
        let out = try_run_specs(poisoned.clone(), SweepConfig::with_workers(workers));
        let labels: Vec<&str> = out.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            ["good-0", "boom", "good-2", "good-3"],
            "{workers} workers: order must survive the panic"
        );
        assert!(
            out[1].1.is_err(),
            "{workers} workers: the panicking spec must fail its own slot"
        );
        for (slot, reference_slot) in [(0usize, 0usize), (2, 1), (3, 2)] {
            let got = out[slot].1.as_ref().expect("sibling must succeed");
            assert_eq!(
                got, &reference[reference_slot].1,
                "{workers} workers: sibling {slot} diverged from the clean sweep"
            );
        }
    }
}

#[test]
fn run_specs_with_reports_the_first_panicking_spec_in_input_order() {
    let topo = placement::grid(3, 3, 5.0).unwrap();
    let plan = traffic::single_source(NodeId::new(4), 1, SimTime::ZERO).unwrap();
    let specs = vec![
        spec(&topo, "good", ProtocolKind::Spms, 7, plan.clone()),
        panicking_spec(&topo, "boom-early", plan.clone()),
        panicking_spec(&topo, "boom-late", plan),
    ];
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_specs_with(specs, SweepConfig::with_workers(4))
    }))
    .expect_err("a sweep with failing specs must fail");
    let text = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        text.contains("boom-early"),
        "the sweep must name the first failed spec in input order: {text}"
    );
}
