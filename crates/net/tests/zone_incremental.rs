//! Property-based equivalence of incremental zone maintenance against the
//! all-pairs reference build.
//!
//! Three claims, each asserted with `ZoneTable`'s derived `PartialEq` so
//! the match is **bit-identical** (same rows, same order, same link
//! weights, same density counts — even the floating-point distances):
//!
//! 1. `ZoneTable::build_indexed` (spatial-grid candidates) equals
//!    `ZoneTable::build` (all-pairs scan) on any topology and radius.
//! 2. `ZoneTable::apply_moves` patched across an arbitrary sequence of
//!    mobility epochs equals a from-scratch build of the final topology —
//!    after *every* epoch, not just the last.
//! 3. The `ZoneDelta` a patch returns names every row that differs from
//!    the pre-move table (nothing outside `changed_nodes` changed).
//!
//! The move generator deliberately produces repeated moves of the same
//! node, moves across grid-cell boundaries, and moves that empty or fill
//! cells (destinations are uniform over the field, so small fields hit all
//! three constantly); targeted deterministic tests below pin each case.

use proptest::prelude::*;
use spms_net::{
    placement, MobilityEpoch, MobilityProcess, MovedZone, NodeId, Point, SpatialGrid, ZoneDelta,
    ZoneTable,
};
use spms_phy::RadioProfile;

/// Applies one epoch of `moves` to topology + grid and patches `zones`,
/// returning the delta's changed set for inspection.
fn apply_epoch(
    topo: &mut spms_net::Topology,
    grid: &mut SpatialGrid,
    zones: &mut ZoneTable,
    radio: &RadioProfile,
    moves: &[(NodeId, Point)],
) -> Vec<NodeId> {
    let epoch = MobilityEpoch {
        at: spms_kernel::SimTime::ZERO,
        moves: moves.to_vec(),
    };
    MobilityProcess::apply_indexed(&epoch, topo, grid);
    let moved: Vec<NodeId> = moves.iter().map(|&(n, _)| n).collect();
    zones.apply_moves(topo, radio, grid, &moved).changed_nodes
}

proptest! {
    // Fixed seed + bounded case count keeps this suite deterministic in CI.
    #![proptest_config(ProptestConfig {
        cases: 32,
        rng_seed: 0x0000_D8F1_2005,
        ..ProptestConfig::default()
    })]

    /// The grid-indexed build is the all-pairs build, bit for bit, across
    /// field shapes and radii (including radii beyond the radio's reach
    /// and cells larger than the field).
    #[test]
    fn indexed_build_matches_reference(
        cols in 2usize..9,
        rows in 2usize..6,
        spacing in 3.0f64..9.0,
        radius in 6.0f64..120.0,
    ) {
        let topo = placement::grid(cols, rows, spacing).unwrap();
        let radio = RadioProfile::mica2();
        let grid = SpatialGrid::build(&topo, radius);
        prop_assert_eq!(
            ZoneTable::build_indexed(&topo, &radio, &grid, radius),
            ZoneTable::build(&topo, &radio, radius)
        );
    }

    /// Arbitrary mobility-epoch sequences (1–3 moves each, uniform
    /// destinations, repeats allowed): after every epoch the patched table
    /// equals a from-scratch reference build, and rows outside the
    /// reported `changed_nodes` are untouched from the previous state.
    #[test]
    fn epoch_sequences_patch_to_the_reference(
        cols in 2usize..8,
        rows in 2usize..5,
        radius in 8.0f64..26.0,
        raw_epochs in prop::collection::vec(
            prop::collection::vec((0u16..64, 0.0f64..1.0, 0.0f64..1.0), 1..4),
            1..8,
        ),
    ) {
        let mut topo = placement::grid(cols, rows, 5.0).unwrap();
        let n = topo.len();
        let radio = RadioProfile::mica2();
        let mut grid = SpatialGrid::build(&topo, radius);
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, radius);
        let field = topo.field();

        for (step, raw) in raw_epochs.iter().enumerate() {
            // Distinct nodes in id order, as MobilityProcess guarantees.
            let mut moves: Vec<(NodeId, Point)> = raw
                .iter()
                .map(|&(node, fx, fy)| {
                    (
                        NodeId::new(node as u32 % n as u32),
                        Point::new(fx * field.width, fy * field.height),
                    )
                })
                .collect();
            moves.sort_by_key(|&(node, _)| node);
            moves.dedup_by_key(|&mut (node, _)| node);

            let before = zones.clone();
            let changed = apply_epoch(&mut topo, &mut grid, &mut zones, &radio, &moves);
            prop_assert_eq!(
                &zones,
                &ZoneTable::build(&topo, &radio, radius),
                "step {}: patched table diverged from the reference build",
                step
            );
            // The delta is sound: every row outside it is untouched.
            for i in 0..n {
                let node = NodeId::new(i as u32);
                if !changed.contains(&node) {
                    prop_assert_eq!(
                        zones.links(node),
                        before.links(node),
                        "step {}: unreported row {} changed",
                        step,
                        node
                    );
                }
            }
        }
    }

    /// `ZoneDelta::merge` is associative: folding a window's epochs left
    /// to right, or pre-merging a suffix and folding it in, produces the
    /// same accumulated delta — so the engine may flush a batching window
    /// at any internal boundary without changing what routing sees.
    /// Deltas are synthesized directly (sorted changed rows, arbitrary
    /// move records): associativity is a property of the merge itself,
    /// not of how a patch produced its operands.
    #[test]
    fn merge_is_associative(
        raw in prop::collection::vec(
            (
                prop::collection::vec(0u16..48, 0..6),          // changed rows
                prop::collection::vec((0u16..48, 0u16..48), 0..3), // moves
            ),
            3..7,
        ),
    ) {
        let deltas: Vec<ZoneDelta> = raw
            .iter()
            .map(|(rows, moves)| {
                let mut changed_nodes: Vec<NodeId> =
                    rows.iter().map(|&r| NodeId::new(u32::from(r))).collect();
                changed_nodes.sort_unstable();
                changed_nodes.dedup();
                ZoneDelta {
                    moves: moves
                        .iter()
                        .map(|&(node, nb)| MovedZone {
                            node: NodeId::new(u32::from(node)),
                            old_neighbors: if nb == node {
                                vec![]
                            } else {
                                vec![NodeId::new(u32::from(nb))]
                            },
                        })
                        .collect(),
                    changed_nodes,
                }
            })
            .collect();
        for split in 1..deltas.len() {
            // Left-fold everything one epoch at a time…
            let mut left_to_right = deltas[0].clone();
            for d in &deltas[1..] {
                left_to_right.merge(d.clone());
            }
            // …vs pre-merging the suffix starting at `split`.
            let mut prefix = deltas[0].clone();
            for d in &deltas[1..split] {
                prefix.merge(d.clone());
            }
            let mut suffix = deltas[split].clone();
            for d in &deltas[split + 1..] {
                suffix.merge(d.clone());
            }
            prefix.merge(suffix);
            prop_assert_eq!(
                &prefix,
                &left_to_right,
                "associativity broke at split {}",
                split
            );
        }
    }

    /// Churn cohorts ride the same batching window as mobility epochs:
    /// merging a cohort-sized liveness delta with a move delta — in either
    /// order — unions the changed rows, preserves the move records
    /// verbatim (a liveness flip has no pre-move adjacency to retire), and
    /// never perturbs the patched zone table itself.
    #[test]
    fn liveness_cohorts_merge_into_move_windows(
        cols in 2usize..8,
        rows in 2usize..5,
        radius in 8.0f64..26.0,
        cohort_raw in prop::collection::vec(0u16..64, 0..16),
        raw_moves in prop::collection::vec((0u16..64, 0.0f64..1.0, 0.0f64..1.0), 1..4),
        cohort_first in any::<bool>(),
    ) {
        let mut topo = placement::grid(cols, rows, 5.0).unwrap();
        let n = topo.len();
        let radio = RadioProfile::mica2();
        let mut grid = SpatialGrid::build(&topo, radius);
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, radius);
        let field = topo.field();

        let cohort: Vec<NodeId> = cohort_raw
            .iter()
            .map(|&r| NodeId::new(u32::from(r) % n as u32))
            .collect();
        let liveness = ZoneDelta::liveness(&cohort);
        prop_assert!(liveness.moves.is_empty());

        let mut moves: Vec<(NodeId, Point)> = raw_moves
            .iter()
            .map(|&(node, fx, fy)| {
                (
                    NodeId::new(node as u32 % n as u32),
                    Point::new(fx * field.width, fy * field.height),
                )
            })
            .collect();
        moves.sort_by_key(|&(node, _)| node);
        moves.dedup_by_key(|&mut (node, _)| node);
        let epoch = MobilityEpoch {
            at: spms_kernel::SimTime::ZERO,
            moves: moves.clone(),
        };
        MobilityProcess::apply_indexed(&epoch, &mut topo, &mut grid);
        let moved: Vec<NodeId> = moves.iter().map(|&(m, _)| m).collect();
        let move_delta = zones.apply_moves(&topo, &radio, &grid, &moved);
        prop_assert_eq!(&zones, &ZoneTable::build(&topo, &radio, radius));

        let (mut window, other) = if cohort_first {
            (liveness.clone(), move_delta.clone())
        } else {
            (move_delta.clone(), liveness.clone())
        };
        window.merge(other);
        prop_assert_eq!(&window.moves, &move_delta.moves, "moves must survive");
        let mut want: Vec<NodeId> = liveness
            .changed_nodes
            .iter()
            .chain(move_delta.changed_nodes.iter())
            .copied()
            .collect();
        want.sort_unstable();
        want.dedup();
        prop_assert_eq!(&window.changed_nodes, &want, "changed rows must union");
    }

    /// The same node moved over and over (the paper's ping-ponging mobile
    /// mote) never accumulates drift: each patch still lands exactly on
    /// the reference build.
    #[test]
    fn repeated_moves_of_one_node_stay_exact(
        node in 0u16..25,
        hops in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..10),
    ) {
        let mut topo = placement::grid(5, 5, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let mut grid = SpatialGrid::build(&topo, 10.0);
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, 10.0);
        let field = topo.field();
        let m = NodeId::new(u32::from(node) % 25);
        for &(fx, fy) in &hops {
            let dest = Point::new(fx * field.width, fy * field.height);
            apply_epoch(&mut topo, &mut grid, &mut zones, &radio, &[(m, dest)]);
            prop_assert_eq!(&zones, &ZoneTable::build(&topo, &radio, 10.0));
        }
    }
}

#[test]
fn empty_and_full_cohort_liveness_deltas() {
    // The two edge cases of the cohort path: an empty field (nobody
    // flipped) yields the identity delta, and a full-cohort flip marks
    // every row exactly once even when the caller reports duplicates.
    let empty = ZoneDelta::liveness(&[]);
    assert!(empty.moves.is_empty());
    assert!(empty.changed_nodes.is_empty());
    assert_eq!(empty.rows_patched(), 0);

    let everyone: Vec<NodeId> = (0..16u32).map(NodeId::new).collect();
    let twice: Vec<NodeId> = everyone.iter().chain(everyone.iter()).copied().collect();
    let full = ZoneDelta::liveness(&twice);
    assert_eq!(full.changed_nodes, everyone, "sorted, deduped, complete");
    assert_eq!(full.rows_patched(), 16);
    assert!(full.moves.is_empty(), "liveness never fabricates adjacency");

    // A full-cohort flip merged over a move window keeps the move records.
    let mut window = ZoneDelta {
        moves: vec![MovedZone {
            node: NodeId::new(3),
            old_neighbors: vec![NodeId::new(2)],
        }],
        changed_nodes: vec![NodeId::new(2), NodeId::new(3)],
    };
    window.merge(full);
    assert_eq!(window.moves.len(), 1);
    assert_eq!(window.changed_nodes, everyone);
}

#[test]
fn merging_empty_windows_is_the_identity() {
    // A batching window that flushes before any move lands holds an empty
    // delta; merging one in (from either side) must change nothing, and
    // empty ⊕ empty stays empty.
    let empty = || ZoneDelta {
        moves: Vec::new(),
        changed_nodes: Vec::new(),
    };
    let populated = || ZoneDelta {
        moves: vec![MovedZone {
            node: NodeId::new(7),
            old_neighbors: vec![NodeId::new(2), NodeId::new(8)],
        }],
        changed_nodes: vec![NodeId::new(2), NodeId::new(7), NodeId::new(8)],
    };
    let mut left = empty();
    left.merge(populated());
    assert_eq!(left, populated(), "empty ⊕ d must be d");
    let mut right = populated();
    right.merge(empty());
    assert_eq!(right, populated(), "d ⊕ empty must be d");
    let mut both = empty();
    both.merge(empty());
    assert_eq!(both, empty(), "empty ⊕ empty must stay empty");
}

#[test]
fn out_and_back_mover_merges_both_legs_within_one_window() {
    // A mover that leaves its cell and returns to its origin within one
    // batching window: the merged delta must carry BOTH move records in
    // event order — each leg with the pre-move adjacency of *its* move,
    // which is exactly the stale-pair set routing retires — while the
    // patched table lands back on the original build bit for bit.
    let mut topo = placement::grid(5, 5, 5.0).unwrap();
    let radio = RadioProfile::mica2();
    let mut grid = SpatialGrid::build(&topo, 10.0);
    let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, 10.0);
    let reference = zones.clone();
    let m = NodeId::new(12);
    let home = topo.position(m);
    let away = Point::new(1.0, 1.0);

    let mut window = ZoneDelta {
        moves: Vec::new(),
        changed_nodes: Vec::new(),
    };
    for dest in [away, home] {
        let epoch = MobilityEpoch {
            at: spms_kernel::SimTime::ZERO,
            moves: vec![(m, dest)],
        };
        MobilityProcess::apply_indexed(&epoch, &mut topo, &mut grid);
        window.merge(zones.apply_moves(&topo, &radio, &grid, &[m]));
    }

    assert_eq!(zones, reference, "out-and-back must restore the table");
    assert_eq!(window.moves.len(), 2, "both legs must be recorded");
    assert_eq!(window.moves[0].node, m);
    assert_eq!(window.moves[1].node, m);
    // Leg 1 retires the home neighbors, leg 2 the away neighbors.
    assert_eq!(
        window.moves[0].old_neighbors,
        reference
            .links(m)
            .iter()
            .map(|l| l.neighbor)
            .collect::<Vec<_>>()
    );
    assert_ne!(
        window.moves[0].old_neighbors, window.moves[1].old_neighbors,
        "the two legs saw different pre-move zones"
    );
    // The union covers everyone either leg perturbed, sorted and distinct.
    assert!(window.changed_nodes.windows(2).all(|w| w[0] < w[1]));
    assert!(window.changed_nodes.contains(&m));
    for mv in &window.moves {
        for nb in &mv.old_neighbors {
            assert!(window.changed_nodes.contains(nb), "missing row {nb}");
        }
    }
}

#[test]
fn cross_cell_ping_pong_empties_and_refills_cells() {
    // 2×1 line, 4 m cells: node 1 starts alone in cell (1,0). Bouncing it
    // between the two cells empties and refills its bucket every hop, and
    // each hop crosses a grid-cell boundary.
    let mut topo = placement::grid(2, 1, 5.0).unwrap();
    let radio = RadioProfile::mica2();
    let mut grid = SpatialGrid::build(&topo, 4.0);
    let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, 4.0);
    let near = Point::new(0.5, 0.0);
    let far = Point::new(5.0, 0.0);
    for hop in 0..6 {
        let dest = if hop % 2 == 0 { near } else { far };
        let epoch = MobilityEpoch {
            at: spms_kernel::SimTime::ZERO,
            moves: vec![(NodeId::new(1), dest)],
        };
        MobilityProcess::apply_indexed(&epoch, &mut topo, &mut grid);
        let delta = zones.apply_moves(&topo, &radio, &grid, &[NodeId::new(1)]);
        assert_eq!(zones, ZoneTable::build(&topo, &radio, 4.0), "hop {hop}");
        // Both nodes' rows flip between linked and unlinked states.
        assert!(delta.changed_nodes.contains(&NodeId::new(1)));
        assert_eq!(zones.in_zone(NodeId::new(0), NodeId::new(1)), hop % 2 == 0);
    }
}

#[test]
fn move_within_one_cell_patches_only_the_neighborhood() {
    // 13×13 grid, 20 m cells: nudging a corner node inside its own cell
    // must rebuild only rows near the corner, not the opposite side.
    let mut topo = placement::grid(13, 13, 5.0).unwrap();
    let radio = RadioProfile::mica2();
    let mut grid = SpatialGrid::build(&topo, 20.0);
    let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, 20.0);
    let epoch = MobilityEpoch {
        at: spms_kernel::SimTime::ZERO,
        moves: vec![(NodeId::new(0), Point::new(2.0, 1.0))],
    };
    MobilityProcess::apply_indexed(&epoch, &mut topo, &mut grid);
    let delta = zones.apply_moves(&topo, &radio, &grid, &[NodeId::new(0)]);
    assert_eq!(zones, ZoneTable::build(&topo, &radio, 20.0));
    assert!(
        delta.rows_patched() < topo.len() / 2,
        "corner nudge rebuilt {} of {} rows",
        delta.rows_patched(),
        topo.len()
    );
    assert!(!delta.changed_nodes.contains(&NodeId::new(168)));
}
