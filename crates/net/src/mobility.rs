//! Epoch-based node mobility.
//!
//! §5.1.3 of the paper: "At some discrete times in the simulator clock, a
//! predefined fraction of nodes move. The nodes which are to move and their
//! destination are chosen randomly. Once the routing tables converge, the
//! data transmission starts all over again."

use spms_kernel::{SimRng, SimTime};

use crate::{NodeId, Point, Topology};

/// Mobility parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MobilityConfig {
    /// Time between mobility epochs.
    pub interval: SimTime,
    /// Fraction of nodes (0..=1) relocated at each epoch.
    pub fraction: f64,
}

impl MobilityConfig {
    /// Creates a config.
    ///
    /// # Errors
    ///
    /// Returns a message if `interval` is zero or `fraction` is outside
    /// `[0, 1]`.
    pub fn new(interval: SimTime, fraction: f64) -> Result<Self, String> {
        if interval == SimTime::ZERO {
            return Err("mobility interval must be positive".into());
        }
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(format!("mobility fraction {fraction} outside [0, 1]"));
        }
        Ok(MobilityConfig { interval, fraction })
    }
}

/// One mobility epoch: the instant and the set of relocations.
#[derive(Clone, Debug, PartialEq)]
pub struct MobilityEpoch {
    /// When the epoch occurs.
    pub at: SimTime,
    /// `(node, new position)` pairs, in node-id order for determinism.
    pub moves: Vec<(NodeId, Point)>,
}

/// Generates mobility epochs on demand.
///
/// # Example
///
/// ```
/// use spms_kernel::{SimRng, SimTime};
/// use spms_net::{placement, MobilityConfig, MobilityProcess};
///
/// let topo = placement::grid(5, 5, 5.0).unwrap();
/// let config = MobilityConfig::new(SimTime::from_millis(100), 0.2).unwrap();
/// let mut mobility = MobilityProcess::new(config, SimRng::new(9));
/// let epoch = mobility.next_epoch(SimTime::ZERO, &topo);
/// assert_eq!(epoch.at, SimTime::from_millis(100));
/// assert_eq!(epoch.moves.len(), 5); // 20% of 25
/// ```
#[derive(Clone, Debug)]
pub struct MobilityProcess {
    config: MobilityConfig,
    rng: SimRng,
}

impl MobilityProcess {
    /// Creates a process with its own RNG sub-stream.
    #[must_use]
    pub fn new(config: MobilityConfig, rng: SimRng) -> Self {
        MobilityProcess { config, rng }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> MobilityConfig {
        self.config
    }

    /// Produces the next epoch after `now`: picks `fraction × N` nodes
    /// (rounded, at least one when `fraction > 0`) and uniform destinations
    /// within the field.
    pub fn next_epoch(&mut self, now: SimTime, topology: &Topology) -> MobilityEpoch {
        let at = now + self.config.interval;
        let n = topology.len();
        let count = if self.config.fraction == 0.0 {
            0
        } else {
            ((self.config.fraction * n as f64).round() as usize).clamp(1, n)
        };
        let mut picked = self.rng.choose_indices(n, count);
        picked.sort_unstable(); // node-id order for deterministic application
        let field = topology.field();
        let moves = picked
            .into_iter()
            .map(|i| {
                let dest = Point::new(
                    self.rng.uniform_f64(0.0, field.width),
                    self.rng.uniform_f64(0.0, field.height),
                );
                (NodeId::new(i as u32), dest)
            })
            .collect();
        MobilityEpoch { at, moves }
    }

    /// Applies an epoch's relocations to `topology`.
    pub fn apply(epoch: &MobilityEpoch, topology: &mut Topology) {
        for (node, dest) in &epoch.moves {
            topology.move_node(*node, *dest);
        }
    }

    /// Applies an epoch's relocations to `topology` and keeps a
    /// [`SpatialGrid`] bucketed over it in sync (re-bucketing each moved
    /// node at its clamped final position).
    ///
    /// [`SpatialGrid`]: crate::SpatialGrid
    pub fn apply_indexed(
        epoch: &MobilityEpoch,
        topology: &mut Topology,
        grid: &mut crate::SpatialGrid,
    ) {
        for (node, dest) in &epoch.moves {
            topology.move_node(*node, *dest);
            grid.move_node(*node, topology.position(*node));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement;

    fn topo() -> Topology {
        placement::grid(5, 5, 5.0).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(MobilityConfig::new(SimTime::from_millis(1), 0.5).is_ok());
        assert!(MobilityConfig::new(SimTime::ZERO, 0.5).is_err());
        assert!(MobilityConfig::new(SimTime::from_millis(1), 1.5).is_err());
        assert!(MobilityConfig::new(SimTime::from_millis(1), -0.1).is_err());
    }

    #[test]
    fn epoch_times_advance_by_interval() {
        let cfg = MobilityConfig::new(SimTime::from_millis(100), 0.1).unwrap();
        let mut p = MobilityProcess::new(cfg, SimRng::new(1));
        let t = topo();
        let e1 = p.next_epoch(SimTime::ZERO, &t);
        let e2 = p.next_epoch(e1.at, &t);
        assert_eq!(e1.at, SimTime::from_millis(100));
        assert_eq!(e2.at, SimTime::from_millis(200));
    }

    #[test]
    fn moves_are_distinct_sorted_and_in_field() {
        let cfg = MobilityConfig::new(SimTime::from_millis(100), 0.3).unwrap();
        let mut p = MobilityProcess::new(cfg, SimRng::new(2));
        let t = topo();
        let e = p.next_epoch(SimTime::ZERO, &t);
        assert_eq!(e.moves.len(), 8); // round(0.3 × 25)
        let ids: Vec<u32> = e.moves.iter().map(|(n, _)| n.raw()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "moves must be sorted and distinct");
        for (_, dest) in &e.moves {
            assert!(t.field().contains(*dest));
        }
    }

    #[test]
    fn zero_fraction_moves_nobody() {
        let cfg = MobilityConfig::new(SimTime::from_millis(100), 0.0).unwrap();
        let mut p = MobilityProcess::new(cfg, SimRng::new(3));
        let e = p.next_epoch(SimTime::ZERO, &topo());
        assert!(e.moves.is_empty());
    }

    #[test]
    fn tiny_positive_fraction_moves_at_least_one() {
        let cfg = MobilityConfig::new(SimTime::from_millis(100), 0.001).unwrap();
        let mut p = MobilityProcess::new(cfg, SimRng::new(4));
        let e = p.next_epoch(SimTime::ZERO, &topo());
        assert_eq!(e.moves.len(), 1);
    }

    #[test]
    fn apply_relocates_nodes() {
        let cfg = MobilityConfig::new(SimTime::from_millis(100), 0.2).unwrap();
        let mut p = MobilityProcess::new(cfg, SimRng::new(5));
        let mut t = topo();
        let before = t.clone();
        let e = p.next_epoch(SimTime::ZERO, &t);
        MobilityProcess::apply(&e, &mut t);
        for (node, dest) in &e.moves {
            assert_eq!(t.position(*node), *dest);
        }
        let unmoved = t
            .nodes()
            .filter(|n| e.moves.iter().all(|(m, _)| m != n))
            .all(|n| t.position(n) == before.position(n));
        assert!(unmoved);
    }

    #[test]
    fn apply_indexed_matches_a_rebucketed_grid() {
        let cfg = MobilityConfig::new(SimTime::from_millis(100), 0.3).unwrap();
        let mut p = MobilityProcess::new(cfg, SimRng::new(7));
        let mut t = topo();
        let mut grid = crate::SpatialGrid::build(&t, 10.0);
        let e = p.next_epoch(SimTime::ZERO, &t);
        MobilityProcess::apply_indexed(&e, &mut t, &mut grid);
        assert_eq!(grid, crate::SpatialGrid::build(&t, 10.0));
    }

    #[test]
    fn same_seed_same_epochs() {
        let cfg = MobilityConfig::new(SimTime::from_millis(50), 0.4).unwrap();
        let t = topo();
        let e1 = MobilityProcess::new(cfg, SimRng::new(6)).next_epoch(SimTime::ZERO, &t);
        let e2 = MobilityProcess::new(cfg, SimRng::new(6)).next_epoch(SimTime::ZERO, &t);
        assert_eq!(e1, e2);
    }
}
