//! Node positions and range queries.

use crate::{NodeId, Point};

/// The rectangular extent of the sensor field, metres.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Field {
    /// Width (m).
    pub width: f64,
    /// Height (m).
    pub height: f64,
}

impl Field {
    /// Creates a field.
    ///
    /// # Errors
    ///
    /// Returns a message unless both dimensions are positive and finite.
    pub fn new(width: f64, height: f64) -> Result<Self, String> {
        if !width.is_finite() || !height.is_finite() || width <= 0.0 || height <= 0.0 {
            return Err(format!("bad field dimensions {width}×{height}"));
        }
        Ok(Field { width, height })
    }

    /// Field area in m².
    #[must_use]
    pub fn area(self) -> f64 {
        self.width * self.height
    }

    /// Clamps a point into the field.
    #[must_use]
    pub fn clamp(self, p: Point) -> Point {
        Point::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// `true` if `p` lies inside the field (inclusive of edges).
    #[must_use]
    pub fn contains(self, p: Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }
}

/// Node positions in a sensor field.
///
/// The topology is mutable only through [`Topology::move_node`] — the
/// mobility process relocates nodes, after which zone tables and routing
/// state must be rebuilt (the engine orchestrates that, mirroring the
/// paper's "no packet transfer can take place until the routing tables
/// converge").
///
/// # Example
///
/// ```
/// use spms_net::{placement, Topology};
///
/// let topo = placement::grid(3, 3, 5.0).unwrap();
/// assert_eq!(topo.len(), 9);
/// // Center node sees 4 orthogonal neighbors within 5 m (plus itself at 0).
/// let center = spms_net::NodeId::new(4);
/// let near = topo.nodes_within(topo.position(center), 5.0);
/// assert_eq!(near.len(), 5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    positions: Vec<Point>,
    field: Field,
}

impl Topology {
    /// Builds a topology from explicit positions.
    ///
    /// # Errors
    ///
    /// Returns a message if `positions` is empty or any position lies
    /// outside the field.
    pub fn new(positions: Vec<Point>, field: Field) -> Result<Self, String> {
        if positions.is_empty() {
            return Err("topology needs at least one node".into());
        }
        for (i, p) in positions.iter().enumerate() {
            if !p.x.is_finite() || !p.y.is_finite() {
                return Err(format!("node {i} has non-finite position"));
            }
            if !field.contains(*p) {
                return Err(format!("node {i} at {p} outside field"));
            }
        }
        Ok(Topology { positions, field })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `false` — a topology always has at least one node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The field extent.
    #[must_use]
    pub fn field(&self) -> Field {
        self.field
    }

    /// Position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// All node ids in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len()).map(|i| NodeId::new(i as u32))
    }

    /// Distance between two nodes in metres.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance(self.position(b))
    }

    /// Ids of all nodes within `radius` of `center` (inclusive), in index
    /// order. A node at exactly `center` is included.
    #[must_use]
    pub fn nodes_within(&self, center: Point, radius: f64) -> Vec<NodeId> {
        let r2 = radius * radius;
        self.positions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_sq(center) <= r2)
            .map(|(i, _)| NodeId::new(i as u32))
            .collect()
    }

    /// Moves `node` to `to` (clamped into the field). Returns the previous
    /// position.
    pub fn move_node(&mut self, node: NodeId, to: Point) -> Point {
        let clamped = self.field.clamp(to);
        std::mem::replace(&mut self.positions[node.index()], clamped)
    }

    /// Average node density in nodes per m².
    #[must_use]
    pub fn density(&self) -> f64 {
        self.positions.len() as f64 / self.field.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Topology {
        let field = Field::new(20.0, 20.0).unwrap();
        Topology::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(10.0, 0.0),
            ],
            field,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let field = Field::new(10.0, 10.0).unwrap();
        assert!(Topology::new(vec![], field).is_err());
        assert!(Topology::new(vec![Point::new(11.0, 0.0)], field).is_err());
        assert!(Topology::new(vec![Point::new(f64::NAN, 0.0)], field).is_err());
        assert!(Field::new(-1.0, 5.0).is_err());
        assert!(Field::new(0.0, 5.0).is_err());
    }

    #[test]
    fn range_query_inclusive_and_ordered() {
        let t = line3();
        let near = t.nodes_within(Point::new(0.0, 0.0), 5.0);
        assert_eq!(near, vec![NodeId::new(0), NodeId::new(1)]);
        let all = t.nodes_within(Point::new(5.0, 0.0), 5.0);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn distances() {
        let t = line3();
        assert_eq!(t.distance(NodeId::new(0), NodeId::new(2)), 10.0);
        assert_eq!(t.distance(NodeId::new(1), NodeId::new(1)), 0.0);
    }

    #[test]
    fn move_node_clamps_and_returns_old() {
        let mut t = line3();
        let old = t.move_node(NodeId::new(0), Point::new(-5.0, 100.0));
        assert_eq!(old, Point::new(0.0, 0.0));
        assert_eq!(t.position(NodeId::new(0)), Point::new(0.0, 20.0));
    }

    #[test]
    fn density_is_n_over_area() {
        let t = line3();
        assert!((t.density() - 3.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn nodes_iterator_is_dense() {
        let t = line3();
        let ids: Vec<usize> = t.nodes().map(|n| n.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(!t.is_empty());
    }
}
