//! Node placement strategies.
//!
//! The paper's experiments "use a sensor field with uniform density of
//! nodes. This implies that as the number of nodes increases, the sensor
//! field area increases." Its analytical section further assumes a unit grid
//! ("grid granularity of 1 unit and a node on every grid point"). We provide
//! that grid placement — the default for all figure reproductions, with 5 m
//! spacing so the lowest MICA2 power level (5.48 m) exactly reaches grid
//! neighbors — plus uniform-random placement for robustness tests.

use spms_kernel::SimRng;

use crate::{Field, Point, Topology};

/// Places `cols × rows` nodes on a square grid with `spacing_m` metres
/// between adjacent nodes.
///
/// Node ids are assigned row-major, so node `r·cols + c` sits at
/// `(c·spacing, r·spacing)`.
///
/// # Errors
///
/// Returns a message if either dimension is zero or the spacing is not
/// positive and finite.
///
/// # Example
///
/// ```
/// use spms_net::placement;
///
/// // The paper's reference configuration: 169 nodes = 13×13 grid.
/// let topo = placement::grid(13, 13, 5.0).unwrap();
/// assert_eq!(topo.len(), 169);
/// ```
pub fn grid(cols: usize, rows: usize, spacing_m: f64) -> Result<Topology, String> {
    if cols == 0 || rows == 0 {
        return Err("grid needs at least 1×1 nodes".into());
    }
    if !spacing_m.is_finite() || spacing_m <= 0.0 {
        return Err(format!("bad grid spacing {spacing_m}"));
    }
    let field = Field::new(
        spacing_m * (cols.max(2) - 1) as f64,
        spacing_m * (rows.max(2) - 1) as f64,
    )?;
    let mut positions = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            positions.push(Point::new(c as f64 * spacing_m, r as f64 * spacing_m));
        }
    }
    Topology::new(positions, field)
}

/// Places a square grid of `n` nodes (`n` must be a perfect square) — the
/// shape used for the paper's node-count sweeps (25, 49, 100, 169, 225).
///
/// # Errors
///
/// Returns a message if `n` is not a perfect square or the spacing is
/// invalid.
pub fn square_grid(n: usize, spacing_m: f64) -> Result<Topology, String> {
    let side = (n as f64).sqrt().round() as usize;
    if side * side != n {
        return Err(format!("{n} is not a perfect square"));
    }
    grid(side, side, spacing_m)
}

/// Places `n` nodes uniformly at random in a field sized to keep the same
/// average density as a grid with the given spacing.
///
/// # Errors
///
/// Returns a message if `n == 0` or the spacing is invalid.
pub fn uniform_random(n: usize, spacing_m: f64, rng: &mut SimRng) -> Result<Topology, String> {
    if n == 0 {
        return Err("need at least one node".into());
    }
    if !spacing_m.is_finite() || spacing_m <= 0.0 {
        return Err(format!("bad spacing {spacing_m}"));
    }
    // Same density as a grid: one node per spacing² square.
    let side = spacing_m * (n as f64).sqrt();
    let field = Field::new(side, side)?;
    let positions = (0..n)
        .map(|_| {
            Point::new(
                rng.uniform_f64(0.0, field.width),
                rng.uniform_f64(0.0, field.height),
            )
        })
        .collect();
    Topology::new(positions, field)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn grid_positions_are_row_major() {
        let t = grid(3, 2, 5.0).unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(t.position(NodeId::new(0)), Point::new(0.0, 0.0));
        assert_eq!(t.position(NodeId::new(2)), Point::new(10.0, 0.0));
        assert_eq!(t.position(NodeId::new(3)), Point::new(0.0, 5.0));
    }

    #[test]
    fn grid_validates() {
        assert!(grid(0, 3, 5.0).is_err());
        assert!(grid(3, 3, 0.0).is_err());
        assert!(grid(3, 3, f64::INFINITY).is_err());
    }

    #[test]
    fn square_grid_checks_perfect_square() {
        assert!(square_grid(169, 5.0).is_ok());
        assert!(square_grid(170, 5.0).is_err());
        assert_eq!(square_grid(25, 5.0).unwrap().len(), 25);
    }

    #[test]
    fn single_node_grid_is_allowed() {
        let t = grid(1, 1, 5.0).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn uniform_random_respects_density_and_bounds() {
        let mut rng = SimRng::new(42);
        let t = uniform_random(100, 5.0, &mut rng).unwrap();
        assert_eq!(t.len(), 100);
        // Field side = 5 × √100 = 50 m; density = 100 / 2500 = 1/25.
        assert!((t.field().width - 50.0).abs() < 1e-9);
        assert!((t.density() - 0.04).abs() < 1e-9);
        for n in t.nodes() {
            assert!(t.field().contains(t.position(n)));
        }
    }

    #[test]
    fn uniform_random_is_seed_deterministic() {
        let a = uniform_random(20, 5.0, &mut SimRng::new(7)).unwrap();
        let b = uniform_random(20, 5.0, &mut SimRng::new(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn paper_zone_sizes_emerge_from_5m_grid() {
        // With 5 m spacing and a 20 m transmission radius the central zone
        // holds ≈45 nodes (n1 = 45 in the paper's analysis) and the lowest
        // power level (5.48 m) reaches ≈5 (ns = 5, counting self + 4
        // orthogonal neighbors).
        let t = grid(13, 13, 5.0).unwrap();
        let center = NodeId::new(6 * 13 + 6);
        let zone = t.nodes_within(t.position(center), 20.0);
        assert!(
            (41..=49).contains(&zone.len()),
            "zone size {} not ≈45",
            zone.len()
        );
        let close = t.nodes_within(t.position(center), 5.48);
        assert_eq!(close.len(), 5);
    }
}
