//! Node identity.

use std::fmt;

/// Identifier of a sensor node: a dense index into the topology's node
/// arrays.
///
/// Dense indices (rather than opaque handles) let every per-node table in
/// the simulator be a `Vec` indexed by `NodeId::index`, which keeps
/// iteration order — and therefore simulation results — deterministic.
///
/// # Example
///
/// ```
/// use spms_net::NodeId;
///
/// let n = NodeId::new(7);
/// assert_eq!(n.index(), 7);
/// assert_eq!(format!("{n}"), "n7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw u32 value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_formats() {
        let n = NodeId::new(12);
        assert_eq!(n.index(), 12);
        assert_eq!(n.raw(), 12);
        assert_eq!(NodeId::from(12u32), n);
        assert_eq!(format!("{n}"), "n12");
        assert_eq!(format!("{n:?}"), "n12");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
