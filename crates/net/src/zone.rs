//! Zone computation: the weighted graph the routing layer operates on.

use spms_phy::{PowerLevel, RadioProfile};

use crate::{LinkGate, NodeId, SpatialGrid, Topology};

/// One link from a node to a zone neighbor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZoneLink {
    /// The neighbor's id.
    pub neighbor: NodeId,
    /// Distance in metres.
    pub distance_m: f64,
    /// The cheapest power level that reaches the neighbor.
    pub level: PowerLevel,
    /// Link weight for shortest-path routing: the transmit power (mW) of
    /// `level`. The paper: "the weight w on an edge (i,j) denotes the
    /// minimum power at which i needs to transmit to reach j".
    pub weight: f64,
}

/// Per-node zone neighbor lists plus the per-level density counts the MAC
/// model needs.
///
/// A *zone* is "the region that the node can reach by transmitting at the
/// maximum power level" — here parameterized by the experiment's
/// transmission radius, which selects that maximum level from the radio's
/// table. The table is rebuilt whenever nodes move.
///
/// # Example
///
/// ```
/// use spms_net::{placement, NodeId, ZoneTable};
/// use spms_phy::RadioProfile;
///
/// let topo = placement::grid(13, 13, 5.0).unwrap();
/// let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
/// let center = NodeId::new(6 * 13 + 6);
/// // Grid neighbors 5 m away are reached at the cheapest level.
/// let cheapest = zones
///     .links(center)
///     .iter()
///     .filter(|l| l.level.index() == 4)
///     .count();
/// assert_eq!(cheapest, 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ZoneTable {
    zone_radius_m: f64,
    adv_level: PowerLevel,
    links: Vec<Vec<ZoneLink>>,
    /// `level_counts[node][level]` = number of nodes (including the node
    /// itself) within that level's range — the MAC contention `n`.
    level_counts: Vec<Vec<u32>>,
}

/// One relocated node plus its zone neighbors *before* the move.
///
/// The routing layer needs the pre-move adjacency to retire state the new
/// zone table can no longer justify: the moved node and its old neighbors
/// may still hold routes to each other, and nothing in the patched table
/// names that stale pairing.
#[derive(Clone, Debug, PartialEq)]
pub struct MovedZone {
    /// The relocated node.
    pub node: NodeId,
    /// Its zone neighbors before the move, in id order.
    pub old_neighbors: Vec<NodeId>,
}

/// The result of an incremental zone patch ([`ZoneTable::apply_moves`]):
/// which rows changed and the pre-move adjacency of each relocated node.
#[derive(Clone, Debug, PartialEq)]
pub struct ZoneDelta {
    /// One record per relocated node, in the order they were reported.
    pub moves: Vec<MovedZone>,
    /// Every node whose links row and density counts were rebuilt — the
    /// moved nodes plus everyone inside either their old or new zones — in
    /// ascending id order. This is exactly the `changed` set the routing
    /// layer's incremental re-convergence needs.
    pub changed_nodes: Vec<NodeId>,
}

impl ZoneDelta {
    /// A pure-liveness delta: no rows changed, but the given nodes failed,
    /// repaired, joined, or left, so the routing layer must retire and
    /// re-derive any state that ran through them. Merges into a batching
    /// window like any mobility delta ([`ZoneDelta::merge`]); the engine
    /// uses it to flush silent failures into the next re-convergence
    /// instead of letting stale next-hops linger until a rebuild.
    #[must_use]
    pub fn liveness(nodes: &[NodeId]) -> Self {
        let mut changed_nodes = nodes.to_vec();
        changed_nodes.sort_unstable();
        changed_nodes.dedup();
        ZoneDelta {
            moves: Vec::new(),
            changed_nodes,
        }
    }

    /// Number of zone rows the patch rebuilt (out of `n` in the table).
    #[must_use]
    pub fn rows_patched(&self) -> usize {
        self.changed_nodes.len()
    }

    /// Folds a later patch's delta into this one, so several mobility
    /// epochs can share a single routing re-convergence (the engine's
    /// `batch_epochs` window). Move records append in event order — a node
    /// that moved twice appears twice, each with the pre-move adjacency of
    /// *its* move, which is exactly the stale-pair set routing must retire
    /// — and the changed-row sets union (kept sorted and distinct).
    pub fn merge(&mut self, later: ZoneDelta) {
        self.moves.extend(later.moves);
        let earlier = std::mem::take(&mut self.changed_nodes);
        let mut a = earlier.into_iter().peekable();
        let mut b = later.changed_nodes.into_iter().peekable();
        while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
            let next = match x.cmp(&y) {
                std::cmp::Ordering::Less => a.next(),
                std::cmp::Ordering::Greater => b.next(),
                std::cmp::Ordering::Equal => {
                    b.next();
                    a.next()
                }
            };
            self.changed_nodes.extend(next);
        }
        self.changed_nodes.extend(a);
        self.changed_nodes.extend(b);
    }
}

/// Recomputes `node`'s zone links and per-level density counts from a
/// candidate set, writing into `row`/`counts` (cleared first).
///
/// `candidates` must be a superset of every node within `zone_radius_m` of
/// `node`, sorted ascending — rows inherit that order, which the binary
/// search in [`ZoneTable::link_to`] relies on. Candidates outside the
/// radius are distance-filtered here, so a grid's whole-cell supersets are
/// fine. The arithmetic is identical to the all-pairs reference build, so
/// tables assembled from either path compare equal bit for bit.
///
/// `gate` is the scheduled-connectivity filter ([`LinkGate`]): a gated-down
/// neighbor vanishes from both the links row and the density counts — for
/// this node, it might as well be out of radio range. `None` means every
/// link is up (the classic geometry-only table).
#[allow(clippy::too_many_arguments)] // private kernel shared by all four build paths
fn compute_row(
    topology: &Topology,
    radio: &RadioProfile,
    zone_radius_m: f64,
    gate: Option<&LinkGate>,
    node: NodeId,
    candidates: &[NodeId],
    row: &mut Vec<ZoneLink>,
    counts: &mut [u32],
) {
    row.clear();
    counts.fill(0);
    let pa = topology.position(node);
    for &b in candidates {
        if let Some(g) = gate {
            if !g.is_up(node, b) {
                continue;
            }
        }
        let d = pa.distance(topology.position(b));
        // The contention domain is capped at the zone radius: only zone
        // members participate in the protocol with this node, which is
        // also what makes the paper's n1 ≈ 45 at a 20 m radius. Neighbors
        // beyond the radio's absolute reach contribute nothing even inside
        // the configured radius.
        if d > zone_radius_m {
            continue;
        }
        let Some(level) = radio.level_for_distance(d) else {
            continue;
        };
        // A node within level ℓ's range is also within the range of every
        // stronger level. Counts include self at d = 0; links do not.
        for count in &mut counts[..=level.index()] {
            *count += 1;
        }
        if b != node {
            row.push(ZoneLink {
                neighbor: b,
                distance_m: d,
                level,
                weight: radio.power_mw(level),
            });
        }
    }
}

impl ZoneTable {
    /// Expected zone population for pre-sizing link rows: the field's mean
    /// density over a zone-radius disc, capped at the node count.
    fn row_capacity(topology: &Topology, zone_radius_m: f64) -> usize {
        let expected = std::f64::consts::PI * zone_radius_m * zone_radius_m * topology.density();
        (expected.ceil() as usize).min(topology.len())
    }

    /// Builds zone tables for every node by the all-pairs distance pass —
    /// O(n²), kept as the reference oracle the indexed and incremental
    /// paths are property-tested against.
    ///
    /// `zone_radius_m` is the experiment's transmission radius; the ADV
    /// broadcast level is the cheapest level covering it (saturating at the
    /// radio's maximum). Neighbors beyond the radio's absolute reach are
    /// excluded even if inside the configured radius.
    #[must_use]
    pub fn build(topology: &Topology, radio: &RadioProfile, zone_radius_m: f64) -> Self {
        Self::build_gated(topology, radio, zone_radius_m, None)
    }

    /// [`ZoneTable::build`] under a [`LinkGate`]: gated-down links are
    /// excluded from adjacency rows and density counts exactly as if the
    /// endpoints were out of range. `None` reproduces the ungated build bit
    /// for bit.
    #[must_use]
    pub fn build_gated(
        topology: &Topology,
        radio: &RadioProfile,
        zone_radius_m: f64,
        gate: Option<&LinkGate>,
    ) -> Self {
        let n = topology.len();
        let all: Vec<NodeId> = topology.nodes().collect();
        let cap = Self::row_capacity(topology, zone_radius_m);
        let mut links = Vec::with_capacity(n);
        let mut level_counts = vec![vec![0u32; radio.num_levels()]; n];
        for a in topology.nodes() {
            let mut row = Vec::with_capacity(cap);
            compute_row(
                topology,
                radio,
                zone_radius_m,
                gate,
                a,
                &all,
                &mut row,
                &mut level_counts[a.index()],
            );
            links.push(row);
        }
        ZoneTable {
            zone_radius_m,
            adv_level: radio.level_for_radius_saturating(zone_radius_m),
            links,
            level_counts,
        }
    }

    /// Builds the same table as [`ZoneTable::build`] — bit for bit — but
    /// sources each node's candidate neighbors from a [`SpatialGrid`]
    /// instead of scanning all `n` positions: O(n·k) for zone population
    /// `k` when the grid's cell size is the zone radius.
    ///
    /// # Panics
    ///
    /// Panics if the grid tracks a different node count than `topology`.
    ///
    /// # Example
    ///
    /// ```
    /// use spms_net::{placement, SpatialGrid, ZoneTable};
    /// use spms_phy::RadioProfile;
    ///
    /// let topo = placement::grid(13, 13, 5.0).unwrap();
    /// let radio = RadioProfile::mica2();
    /// let grid = SpatialGrid::build(&topo, 20.0);
    /// let indexed = ZoneTable::build_indexed(&topo, &radio, &grid, 20.0);
    /// assert_eq!(indexed, ZoneTable::build(&topo, &radio, 20.0));
    /// ```
    #[must_use]
    pub fn build_indexed(
        topology: &Topology,
        radio: &RadioProfile,
        grid: &SpatialGrid,
        zone_radius_m: f64,
    ) -> Self {
        Self::build_indexed_gated(topology, radio, grid, zone_radius_m, None)
    }

    /// [`ZoneTable::build_indexed`] under a [`LinkGate`] — bit-identical to
    /// [`ZoneTable::build_gated`] with the same gate.
    ///
    /// # Panics
    ///
    /// Panics if the grid tracks a different node count than `topology`.
    #[must_use]
    pub fn build_indexed_gated(
        topology: &Topology,
        radio: &RadioProfile,
        grid: &SpatialGrid,
        zone_radius_m: f64,
        gate: Option<&LinkGate>,
    ) -> Self {
        assert_eq!(grid.len(), topology.len(), "grid/topology length mismatch");
        let n = topology.len();
        let cap = Self::row_capacity(topology, zone_radius_m);
        let mut links = Vec::with_capacity(n);
        let mut level_counts = vec![vec![0u32; radio.num_levels()]; n];
        let mut candidates = Vec::with_capacity(cap);
        for a in topology.nodes() {
            grid.candidates_within(topology.position(a), zone_radius_m, &mut candidates);
            let mut row = Vec::with_capacity(cap);
            compute_row(
                topology,
                radio,
                zone_radius_m,
                gate,
                a,
                &candidates,
                &mut row,
                &mut level_counts[a.index()],
            );
            links.push(row);
        }
        ZoneTable {
            zone_radius_m,
            adv_level: radio.level_for_radius_saturating(zone_radius_m),
            links,
            level_counts,
        }
    }

    /// Patches the table in place after the nodes in `moved` relocated,
    /// rebuilding **only** the affected rows: each moved node plus every
    /// node inside either its old zone (read from this table before the
    /// patch) or its new zone (queried from the grid). Everything else is
    /// untouched — a single-node move costs O(k²) row work instead of the
    /// O(n²) full build — and the result is bit-identical to a from-scratch
    /// [`ZoneTable::build`] of the new topology (property-tested).
    ///
    /// `topology` and `grid` must already reflect the **new** positions
    /// (see [`MobilityProcess::apply_indexed`]); this table still holds the
    /// pre-move state, which is how the old zones are recovered. Returns
    /// the [`ZoneDelta`] naming every rebuilt row, ready to feed the
    /// routing layer's incremental re-convergence.
    ///
    /// [`MobilityProcess::apply_indexed`]: crate::MobilityProcess::apply_indexed
    ///
    /// # Panics
    ///
    /// Panics if the table, topology, and grid disagree on the node count.
    pub fn apply_moves(
        &mut self,
        topology: &Topology,
        radio: &RadioProfile,
        grid: &SpatialGrid,
        moved: &[NodeId],
    ) -> ZoneDelta {
        self.apply_moves_gated(topology, radio, grid, None, moved)
    }

    /// [`ZoneTable::apply_moves`] under a [`LinkGate`]: the rebuilt rows
    /// honor the gate, so a patched table stays bit-identical to
    /// [`ZoneTable::build_gated`] of the new topology under the same gate.
    /// The gate must be the one the table was last built/patched with —
    /// gate *changes* go through [`ZoneTable::apply_link_flips`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the table, topology, and grid disagree on the node count.
    pub fn apply_moves_gated(
        &mut self,
        topology: &Topology,
        radio: &RadioProfile,
        grid: &SpatialGrid,
        gate: Option<&LinkGate>,
        moved: &[NodeId],
    ) -> ZoneDelta {
        let n = self.links.len();
        assert_eq!(topology.len(), n, "table/topology length mismatch");
        assert_eq!(grid.len(), n, "table/grid length mismatch");
        let mut affected = vec![false; n];
        let mut moves = Vec::with_capacity(moved.len());
        let mut candidates = Vec::new();
        for &m in moved {
            affected[m.index()] = true;
            // The old zone, by symmetry: the nodes whose rows mention `m`
            // are exactly the nodes `m`'s stale row mentions.
            let old_neighbors: Vec<NodeId> =
                self.links[m.index()].iter().map(|l| l.neighbor).collect();
            for &a in &old_neighbors {
                affected[a.index()] = true;
            }
            // The new zone: everyone within the radius of the new position
            // (a candidate superset is fine — rebuilding an untouched row
            // reproduces it exactly, so over-approximation costs only
            // time, and the distance filter keeps the set tight). A
            // gated-down neighbor is adjacent under neither the old nor the
            // new table, so its row cannot have changed: skip it, keeping
            // `changed_nodes` aligned with what the routing layer's
            // old/new-adjacency expansion would name.
            let pm = topology.position(m);
            grid.candidates_within(pm, self.zone_radius_m, &mut candidates);
            for &b in &candidates {
                if gate.is_some_and(|g| !g.is_up(m, b)) {
                    continue;
                }
                if topology.position(b).within(pm, self.zone_radius_m) {
                    affected[b.index()] = true;
                }
            }
            moves.push(MovedZone {
                node: m,
                old_neighbors,
            });
        }
        // Old rows are all captured; now rebuild every affected row from
        // the grid, exactly as `build_indexed` would.
        let mut changed_nodes = Vec::new();
        for (i, &hit) in affected.iter().enumerate() {
            if !hit {
                continue;
            }
            let a = NodeId::new(i as u32);
            grid.candidates_within(topology.position(a), self.zone_radius_m, &mut candidates);
            let mut row = std::mem::take(&mut self.links[i]);
            compute_row(
                topology,
                radio,
                self.zone_radius_m,
                gate,
                a,
                &candidates,
                &mut row,
                &mut self.level_counts[i],
            );
            self.links[i] = row;
            changed_nodes.push(a);
        }
        ZoneDelta {
            moves,
            changed_nodes,
        }
    }

    /// Patches the table in place after the scheduled-connectivity gate
    /// flipped the links touching `endpoints` (sorted, distinct, and
    /// containing **both** ends of every flipped link), rebuilding **only**
    /// the endpoint rows — a link flip changes exactly the edge between its
    /// endpoints, so no other row or density count can differ.
    /// `gate` must already reflect the **new** link states; the result is
    /// bit-identical to a from-scratch [`ZoneTable::build_gated`] under the
    /// new gate (property-tested).
    ///
    /// The returned [`ZoneDelta`] mirrors what a mobility patch would
    /// produce for the same adjacency change: one [`MovedZone`] per
    /// endpoint carrying its pre-flip neighbors (the stale pairs routing
    /// must retire — for a down-flip that names the lost partner), and
    /// `changed_nodes` = endpoints ∪ their pre-flip ∪ post-flip neighbors —
    /// exactly the set the reference path's old/new-adjacency expansion
    /// names, which is what keeps the incremental and full-rebuild oracles
    /// byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if the table, topology, and grid disagree on the node count.
    pub fn apply_link_flips(
        &mut self,
        topology: &Topology,
        radio: &RadioProfile,
        grid: &SpatialGrid,
        gate: &LinkGate,
        endpoints: &[NodeId],
    ) -> ZoneDelta {
        let n = self.links.len();
        assert_eq!(topology.len(), n, "table/topology length mismatch");
        assert_eq!(grid.len(), n, "table/grid length mismatch");
        let mut moves = Vec::with_capacity(endpoints.len());
        let mut changed_nodes: Vec<NodeId> = Vec::new();
        let mut candidates = Vec::new();
        for &e in endpoints {
            let old_neighbors: Vec<NodeId> =
                self.links[e.index()].iter().map(|l| l.neighbor).collect();
            changed_nodes.extend(old_neighbors.iter().copied());
            grid.candidates_within(topology.position(e), self.zone_radius_m, &mut candidates);
            let mut row = std::mem::take(&mut self.links[e.index()]);
            compute_row(
                topology,
                radio,
                self.zone_radius_m,
                Some(gate),
                e,
                &candidates,
                &mut row,
                &mut self.level_counts[e.index()],
            );
            changed_nodes.extend(row.iter().map(|l| l.neighbor));
            self.links[e.index()] = row;
            changed_nodes.push(e);
            moves.push(MovedZone {
                node: e,
                old_neighbors,
            });
        }
        changed_nodes.sort_unstable();
        changed_nodes.dedup();
        ZoneDelta {
            moves,
            changed_nodes,
        }
    }

    /// The configured zone (transmission) radius in metres.
    #[must_use]
    pub fn zone_radius_m(&self) -> f64 {
        self.zone_radius_m
    }

    /// The power level used for zone-wide (ADV) broadcasts.
    #[must_use]
    pub fn adv_level(&self) -> PowerLevel {
        self.adv_level
    }

    /// Number of nodes in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` when the table is empty (never, for a valid topology).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The zone links of `node` (its zone neighbors), in id order.
    #[must_use]
    pub fn links(&self, node: NodeId) -> &[ZoneLink] {
        &self.links[node.index()]
    }

    /// Looks up the link from `node` to `neighbor`, if the latter is a zone
    /// neighbor. Links are stored in neighbor-id order, so this is a binary
    /// search — it sits on the DBF `receive` hot path, where every vector
    /// entry triggers a zone-membership check.
    #[must_use]
    pub fn link_to(&self, node: NodeId, neighbor: NodeId) -> Option<&ZoneLink> {
        let row = &self.links[node.index()];
        row.binary_search_by(|l| l.neighbor.cmp(&neighbor))
            .ok()
            .map(|i| &row[i])
    }

    /// `true` if `b` is in `a`'s zone. Symmetric for a shared radio profile.
    #[must_use]
    pub fn in_zone(&self, a: NodeId, b: NodeId) -> bool {
        self.link_to(a, b).is_some()
    }

    /// Zone size of `node` **including itself** — the paper's `n1` when the
    /// radius is the zone radius.
    #[must_use]
    pub fn zone_size(&self, node: NodeId) -> usize {
        self.links[node.index()].len() + 1
    }

    /// Number of nodes (including self) within `level`'s range of `node` —
    /// the `n` in the MAC contention term `G·n²`.
    #[must_use]
    pub fn density_at_level(&self, node: NodeId, level: PowerLevel) -> u32 {
        self.level_counts[node.index()][level.index()]
    }

    /// Mean zone size across nodes (including self) — reported by
    /// experiments for context.
    #[must_use]
    pub fn mean_zone_size(&self) -> f64 {
        let total: usize = (0..self.links.len()).map(|i| self.links[i].len() + 1).sum();
        total as f64 / self.links.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement;

    fn zones_13x13() -> (Topology, ZoneTable) {
        let topo = placement::grid(13, 13, 5.0).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        (topo, zones)
    }

    #[test]
    fn adv_level_matches_radius() {
        let (_, zones) = zones_13x13();
        // 20 m radius needs level index 2 (22.86 m).
        assert_eq!(zones.adv_level().index(), 2);
        assert_eq!(zones.zone_radius_m(), 20.0);
    }

    #[test]
    fn links_are_sorted_and_binary_lookup_agrees_with_scan() {
        let (topo, zones) = zones_13x13();
        for a in topo.nodes() {
            let row = zones.links(a);
            assert!(
                row.windows(2).all(|w| w[0].neighbor < w[1].neighbor),
                "{a}: links must stay in neighbor-id order for binary search"
            );
            for b in topo.nodes() {
                let scanned = row.iter().find(|l| l.neighbor == b);
                assert_eq!(
                    zones.link_to(a, b).map(|l| l.neighbor),
                    scanned.map(|l| l.neighbor)
                );
            }
        }
    }

    #[test]
    fn zone_membership_is_symmetric() {
        let (topo, zones) = zones_13x13();
        for a in topo.nodes() {
            for l in zones.links(a) {
                assert!(
                    zones.in_zone(l.neighbor, a),
                    "{a}↔{} asymmetric",
                    l.neighbor
                );
            }
        }
    }

    #[test]
    fn links_exclude_self_and_far_nodes() {
        let (topo, zones) = zones_13x13();
        let corner = NodeId::new(0);
        for l in zones.links(corner) {
            assert_ne!(l.neighbor, corner);
            assert!(l.distance_m <= 20.0);
            assert!(topo.distance(corner, l.neighbor) <= 20.0);
        }
    }

    #[test]
    fn center_densities_match_paper_analysis() {
        let (_, zones) = zones_13x13();
        let center = NodeId::new(6 * 13 + 6);
        let radio = RadioProfile::mica2();
        // ns (lowest level, 5.48 m): self + 4 orthogonal neighbors.
        assert_eq!(zones.density_at_level(center, radio.min_power_level()), 5);
        // n at the ADV level (22.86 m) ≈ the paper's n1 = 45.
        let n1 = zones.density_at_level(center, radio.level(2).unwrap());
        assert!((41..=57).contains(&n1), "n1 = {n1}");
        // Stronger levels see at least as many nodes.
        let counts: Vec<u32> = radio
            .levels()
            .map(|l| zones.density_at_level(center, l))
            .collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{counts:?}");
    }

    #[test]
    fn weights_are_min_power_to_reach() {
        let (_, zones) = zones_13x13();
        let center = NodeId::new(6 * 13 + 6);
        let radio = RadioProfile::mica2();
        for l in zones.links(center) {
            assert_eq!(l.weight, radio.power_mw(l.level));
            assert!(radio.range_m(l.level) >= l.distance_m);
            // The next level down (if any) must NOT reach.
            if let Some(cheaper) = radio.level(l.level.index() + 1) {
                assert!(radio.range_m(cheaper) < l.distance_m);
            }
        }
    }

    #[test]
    fn zone_size_includes_self() {
        let topo = placement::grid(2, 1, 5.0).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        assert_eq!(zones.zone_size(NodeId::new(0)), 2);
        assert_eq!(zones.links(NodeId::new(0)).len(), 1);
        assert!(zones.mean_zone_size() > 1.9);
    }

    #[test]
    fn indexed_build_is_bit_identical_to_reference() {
        for radius in [5.0, 12.5, 20.0, 150.0] {
            let topo = placement::grid(7, 5, 5.0).unwrap();
            let radio = RadioProfile::mica2();
            let grid = SpatialGrid::build(&topo, radius);
            assert_eq!(
                ZoneTable::build_indexed(&topo, &radio, &grid, radius),
                ZoneTable::build(&topo, &radio, radius),
                "radius {radius}"
            );
        }
    }

    #[test]
    fn apply_moves_patches_to_the_full_rebuild() {
        let mut topo = placement::grid(7, 7, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let mut grid = SpatialGrid::build(&topo, 20.0);
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, 20.0);
        // A two-cell hop by the center node.
        let moved = NodeId::new(24);
        topo.move_node(moved, crate::Point::new(2.5, 2.5));
        grid.move_node(moved, topo.position(moved));
        let delta = zones.apply_moves(&topo, &radio, &grid, &[moved]);
        assert_eq!(zones, ZoneTable::build(&topo, &radio, 20.0));
        // The delta names the moved node, is sorted, and is a strict
        // subset of the field.
        assert!(delta.changed_nodes.contains(&moved));
        assert!(delta.changed_nodes.windows(2).all(|w| w[0] < w[1]));
        assert!(delta.rows_patched() < topo.len());
        assert_eq!(delta.moves.len(), 1);
        assert_eq!(delta.moves[0].node, moved);
        assert!(!delta.moves[0].old_neighbors.is_empty());
    }

    #[test]
    fn merged_deltas_union_rows_and_keep_move_order() {
        let mut topo = placement::grid(7, 7, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let mut grid = SpatialGrid::build(&topo, 20.0);
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, 20.0);
        let first = NodeId::new(24);
        let second = NodeId::new(3);
        topo.move_node(first, crate::Point::new(2.5, 2.5));
        grid.move_node(first, topo.position(first));
        let mut merged = zones.apply_moves(&topo, &radio, &grid, &[first]);
        topo.move_node(second, crate::Point::new(27.5, 27.5));
        grid.move_node(second, topo.position(second));
        let later = zones.apply_moves(&topo, &radio, &grid, &[second]);
        let union: Vec<NodeId> = {
            let mut u = merged.changed_nodes.clone();
            u.extend(later.changed_nodes.iter().copied());
            u.sort_unstable();
            u.dedup();
            u
        };
        merged.merge(later);
        assert_eq!(merged.changed_nodes, union);
        assert!(merged.changed_nodes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(merged.moves.len(), 2);
        assert_eq!(merged.moves[0].node, first, "event order preserved");
        assert_eq!(merged.moves[1].node, second);
    }

    #[test]
    fn indexed_build_over_adaptive_grids_matches_at_the_crossover_sizes() {
        // The sizes around the old n ≈ 400 crossover where the fixed-cell
        // grid lost to the all-pairs build: the adaptive grid must stay
        // bit-identical to the reference whichever sizing it picks.
        let radio = RadioProfile::mica2();
        for side in [13usize, 15, 20, 25] {
            let topo = placement::grid(side, side, 5.0).unwrap();
            let grid = SpatialGrid::for_radius(&topo, 20.0);
            assert_eq!(
                ZoneTable::build_indexed(&topo, &radio, &grid, 20.0),
                ZoneTable::build(&topo, &radio, 20.0),
                "n = {}",
                side * side
            );
        }
    }

    #[test]
    fn apply_moves_tracks_the_reference_across_an_adaptive_grid() {
        // Patching over the degenerate single-cell grid (small field) must
        // be as bit-identical as over a pruning grid.
        let mut topo = placement::grid(9, 9, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let mut grid = SpatialGrid::for_radius(&topo, 20.0);
        assert_eq!(grid.dims(), (1, 1), "small field collapses");
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, 20.0);
        let moved = NodeId::new(40);
        topo.move_node(moved, crate::Point::new(1.0, 38.0));
        grid.move_node(moved, topo.position(moved));
        zones.apply_moves(&topo, &radio, &grid, &[moved]);
        assert_eq!(zones, ZoneTable::build(&topo, &radio, 20.0));
    }

    #[test]
    fn apply_moves_with_no_moves_changes_nothing() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let grid = SpatialGrid::build(&topo, 20.0);
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, 20.0);
        let before = zones.clone();
        let delta = zones.apply_moves(&topo, &radio, &grid, &[]);
        assert_eq!(zones, before);
        assert_eq!(delta.rows_patched(), 0);
        assert!(delta.moves.is_empty());
    }

    #[test]
    fn liveness_deltas_sort_dedup_and_merge_like_moves() {
        let d = ZoneDelta::liveness(&[NodeId::new(7), NodeId::new(2), NodeId::new(7)]);
        assert!(d.moves.is_empty());
        assert_eq!(d.changed_nodes, vec![NodeId::new(2), NodeId::new(7)]);
        assert_eq!(d.rows_patched(), 2);
        // Merging a liveness delta into a mobility delta unions rows and
        // leaves the move records untouched.
        let mut topo = placement::grid(7, 7, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let mut grid = SpatialGrid::build(&topo, 20.0);
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, 20.0);
        let moved = NodeId::new(24);
        topo.move_node(moved, crate::Point::new(2.5, 2.5));
        grid.move_node(moved, topo.position(moved));
        let mut merged = zones.apply_moves(&topo, &radio, &grid, &[moved]);
        let moves_before = merged.moves.clone();
        let mut expect = merged.changed_nodes.clone();
        expect.extend([NodeId::new(2), NodeId::new(48)]);
        expect.sort_unstable();
        expect.dedup();
        merged.merge(ZoneDelta::liveness(&[NodeId::new(48), NodeId::new(2)]));
        assert_eq!(merged.moves, moves_before);
        assert_eq!(merged.changed_nodes, expect);
    }

    #[test]
    fn gated_builds_drop_links_and_densities_consistently() {
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let grid = SpatialGrid::for_radius(&topo, 20.0);
        let mut gate = crate::LinkGate::all_up();
        let (a, b) = (NodeId::new(12), NodeId::new(13));
        gate.set(a, b, false);
        let gated = ZoneTable::build_gated(&topo, &radio, 20.0, Some(&gate));
        let open = ZoneTable::build(&topo, &radio, 20.0);
        assert!(open.in_zone(a, b));
        assert!(!gated.in_zone(a, b), "gated-down link vanishes");
        assert!(!gated.in_zone(b, a), "symmetrically");
        // Densities shrink by exactly the gated neighbor, both sides.
        for &(x, y) in &[(a, b), (b, a)] {
            let lvl = open.link_to(x, y).unwrap().level;
            assert_eq!(
                gated.density_at_level(x, lvl) + 1,
                open.density_at_level(x, lvl)
            );
        }
        // All build paths agree under the same gate.
        assert_eq!(
            ZoneTable::build_indexed_gated(&topo, &radio, &grid, 20.0, Some(&gate)),
            gated
        );
        // A `None` gate and an all-up gate are both the classic table.
        assert_eq!(
            ZoneTable::build_gated(&topo, &radio, 20.0, Some(&crate::LinkGate::all_up())),
            open
        );
    }

    #[test]
    fn apply_link_flips_matches_the_gated_rebuild() {
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let grid = SpatialGrid::for_radius(&topo, 20.0);
        let mut gate = crate::LinkGate::all_up();
        let mut zones = ZoneTable::build_indexed_gated(&topo, &radio, &grid, 20.0, Some(&gate));
        let (a, b) = (NodeId::new(6), NodeId::new(7));
        let old_a: Vec<NodeId> = zones.links(a).iter().map(|l| l.neighbor).collect();

        // Down-flip: patched table equals a gated rebuild; the delta names
        // the endpoints, their old and new neighborhoods, and carries the
        // pre-flip rows as move records.
        gate.set(a, b, false);
        let delta = zones.apply_link_flips(&topo, &radio, &grid, &gate, &[a, b]);
        assert_eq!(
            zones,
            ZoneTable::build_gated(&topo, &radio, 20.0, Some(&gate))
        );
        assert!(delta.changed_nodes.contains(&a));
        assert!(delta.changed_nodes.contains(&b));
        assert!(delta.changed_nodes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(delta.moves.len(), 2);
        assert_eq!(delta.moves[0].node, a);
        assert_eq!(delta.moves[0].old_neighbors, old_a, "pre-flip row");
        assert!(delta.moves[1].old_neighbors.contains(&a));

        // Up-flip restores the ungated table exactly.
        gate.set(a, b, true);
        zones.apply_link_flips(&topo, &radio, &grid, &gate, &[a, b]);
        assert_eq!(zones, ZoneTable::build(&topo, &radio, 20.0));
    }

    #[test]
    fn gated_moves_track_the_gated_rebuild() {
        // Mobility on a gated table: the patched result must equal the
        // gated reference rebuild of the new topology, and the gated-down
        // neighbor must not leak into `changed_nodes`.
        let mut topo = placement::grid(5, 5, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let mut grid = SpatialGrid::for_radius(&topo, 20.0);
        let mut gate = crate::LinkGate::all_up();
        let mover = NodeId::new(12);
        let partner = NodeId::new(13);
        gate.set(mover, partner, false);
        let mut zones = ZoneTable::build_indexed_gated(&topo, &radio, &grid, 20.0, Some(&gate));
        topo.move_node(mover, crate::Point::new(16.0, 11.0));
        grid.move_node(mover, topo.position(mover));
        let delta = zones.apply_moves_gated(&topo, &radio, &grid, Some(&gate), &[mover]);
        assert_eq!(
            zones,
            ZoneTable::build_gated(&topo, &radio, 20.0, Some(&gate))
        );
        assert!(
            !delta.changed_nodes.contains(&partner),
            "gated-down neighbor's row cannot have changed"
        );
    }

    #[test]
    fn radius_beyond_radio_reach_drops_links() {
        // Two nodes 100 m apart: inside a 150 m configured radius but beyond
        // the radio's 91.44 m maximum: no link.
        let topo = Topology::new(
            vec![crate::Point::new(0.0, 0.0), crate::Point::new(100.0, 0.0)],
            crate::Field::new(100.0, 10.0).unwrap(),
        )
        .unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 150.0);
        assert!(zones.links(NodeId::new(0)).is_empty());
        assert_eq!(zones.adv_level().index(), 0);
    }
}
