//! Zone computation: the weighted graph the routing layer operates on.

use spms_phy::{PowerLevel, RadioProfile};

use crate::{NodeId, Topology};

/// One link from a node to a zone neighbor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZoneLink {
    /// The neighbor's id.
    pub neighbor: NodeId,
    /// Distance in metres.
    pub distance_m: f64,
    /// The cheapest power level that reaches the neighbor.
    pub level: PowerLevel,
    /// Link weight for shortest-path routing: the transmit power (mW) of
    /// `level`. The paper: "the weight w on an edge (i,j) denotes the
    /// minimum power at which i needs to transmit to reach j".
    pub weight: f64,
}

/// Per-node zone neighbor lists plus the per-level density counts the MAC
/// model needs.
///
/// A *zone* is "the region that the node can reach by transmitting at the
/// maximum power level" — here parameterized by the experiment's
/// transmission radius, which selects that maximum level from the radio's
/// table. The table is rebuilt whenever nodes move.
///
/// # Example
///
/// ```
/// use spms_net::{placement, NodeId, ZoneTable};
/// use spms_phy::RadioProfile;
///
/// let topo = placement::grid(13, 13, 5.0).unwrap();
/// let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
/// let center = NodeId::new(6 * 13 + 6);
/// // Grid neighbors 5 m away are reached at the cheapest level.
/// let cheapest = zones
///     .links(center)
///     .iter()
///     .filter(|l| l.level.index() == 4)
///     .count();
/// assert_eq!(cheapest, 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ZoneTable {
    zone_radius_m: f64,
    adv_level: PowerLevel,
    links: Vec<Vec<ZoneLink>>,
    /// `level_counts[node][level]` = number of nodes (including the node
    /// itself) within that level's range — the MAC contention `n`.
    level_counts: Vec<Vec<u32>>,
}

impl ZoneTable {
    /// Builds zone tables for every node.
    ///
    /// `zone_radius_m` is the experiment's transmission radius; the ADV
    /// broadcast level is the cheapest level covering it (saturating at the
    /// radio's maximum). Neighbors beyond the radio's absolute reach are
    /// excluded even if inside the configured radius.
    #[must_use]
    pub fn build(topology: &Topology, radio: &RadioProfile, zone_radius_m: f64) -> Self {
        let adv_level = radio.level_for_radius_saturating(zone_radius_m);
        let n = topology.len();
        let mut links = Vec::with_capacity(n);
        let mut level_counts = vec![vec![0u32; radio.num_levels()]; n];
        for a in topology.nodes() {
            let pa = topology.position(a);
            let mut row = Vec::new();
            for b in topology.nodes() {
                let d = pa.distance(topology.position(b));
                // Per-level density counts (including self at d = 0). The
                // contention domain is capped at the zone radius: only zone
                // members participate in the protocol with this node, which
                // is also what makes the paper's n1 ≈ 45 at a 20 m radius.
                if d <= zone_radius_m {
                    if let Some(lvl) = radio.level_for_distance(d) {
                        // A node within level ℓ's range is also within the
                        // range of every stronger level.
                        for count in &mut level_counts[a.index()][..=lvl.index()] {
                            *count += 1;
                        }
                    }
                }
                if a == b || d > zone_radius_m {
                    continue;
                }
                if let Some(level) = radio.level_for_distance(d) {
                    row.push(ZoneLink {
                        neighbor: b,
                        distance_m: d,
                        level,
                        weight: radio.power_mw(level),
                    });
                }
            }
            links.push(row);
        }
        ZoneTable {
            zone_radius_m,
            adv_level,
            links,
            level_counts,
        }
    }

    /// The configured zone (transmission) radius in metres.
    #[must_use]
    pub fn zone_radius_m(&self) -> f64 {
        self.zone_radius_m
    }

    /// The power level used for zone-wide (ADV) broadcasts.
    #[must_use]
    pub fn adv_level(&self) -> PowerLevel {
        self.adv_level
    }

    /// Number of nodes in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` when the table is empty (never, for a valid topology).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The zone links of `node` (its zone neighbors), in id order.
    #[must_use]
    pub fn links(&self, node: NodeId) -> &[ZoneLink] {
        &self.links[node.index()]
    }

    /// Looks up the link from `node` to `neighbor`, if the latter is a zone
    /// neighbor. Links are stored in neighbor-id order, so this is a binary
    /// search — it sits on the DBF `receive` hot path, where every vector
    /// entry triggers a zone-membership check.
    #[must_use]
    pub fn link_to(&self, node: NodeId, neighbor: NodeId) -> Option<&ZoneLink> {
        let row = &self.links[node.index()];
        row.binary_search_by(|l| l.neighbor.cmp(&neighbor))
            .ok()
            .map(|i| &row[i])
    }

    /// `true` if `b` is in `a`'s zone. Symmetric for a shared radio profile.
    #[must_use]
    pub fn in_zone(&self, a: NodeId, b: NodeId) -> bool {
        self.link_to(a, b).is_some()
    }

    /// Zone size of `node` **including itself** — the paper's `n1` when the
    /// radius is the zone radius.
    #[must_use]
    pub fn zone_size(&self, node: NodeId) -> usize {
        self.links[node.index()].len() + 1
    }

    /// Number of nodes (including self) within `level`'s range of `node` —
    /// the `n` in the MAC contention term `G·n²`.
    #[must_use]
    pub fn density_at_level(&self, node: NodeId, level: PowerLevel) -> u32 {
        self.level_counts[node.index()][level.index()]
    }

    /// Mean zone size across nodes (including self) — reported by
    /// experiments for context.
    #[must_use]
    pub fn mean_zone_size(&self) -> f64 {
        let total: usize = (0..self.links.len()).map(|i| self.links[i].len() + 1).sum();
        total as f64 / self.links.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement;

    fn zones_13x13() -> (Topology, ZoneTable) {
        let topo = placement::grid(13, 13, 5.0).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        (topo, zones)
    }

    #[test]
    fn adv_level_matches_radius() {
        let (_, zones) = zones_13x13();
        // 20 m radius needs level index 2 (22.86 m).
        assert_eq!(zones.adv_level().index(), 2);
        assert_eq!(zones.zone_radius_m(), 20.0);
    }

    #[test]
    fn links_are_sorted_and_binary_lookup_agrees_with_scan() {
        let (topo, zones) = zones_13x13();
        for a in topo.nodes() {
            let row = zones.links(a);
            assert!(
                row.windows(2).all(|w| w[0].neighbor < w[1].neighbor),
                "{a}: links must stay in neighbor-id order for binary search"
            );
            for b in topo.nodes() {
                let scanned = row.iter().find(|l| l.neighbor == b);
                assert_eq!(
                    zones.link_to(a, b).map(|l| l.neighbor),
                    scanned.map(|l| l.neighbor)
                );
            }
        }
    }

    #[test]
    fn zone_membership_is_symmetric() {
        let (topo, zones) = zones_13x13();
        for a in topo.nodes() {
            for l in zones.links(a) {
                assert!(
                    zones.in_zone(l.neighbor, a),
                    "{a}↔{} asymmetric",
                    l.neighbor
                );
            }
        }
    }

    #[test]
    fn links_exclude_self_and_far_nodes() {
        let (topo, zones) = zones_13x13();
        let corner = NodeId::new(0);
        for l in zones.links(corner) {
            assert_ne!(l.neighbor, corner);
            assert!(l.distance_m <= 20.0);
            assert!(topo.distance(corner, l.neighbor) <= 20.0);
        }
    }

    #[test]
    fn center_densities_match_paper_analysis() {
        let (_, zones) = zones_13x13();
        let center = NodeId::new(6 * 13 + 6);
        let radio = RadioProfile::mica2();
        // ns (lowest level, 5.48 m): self + 4 orthogonal neighbors.
        assert_eq!(zones.density_at_level(center, radio.min_power_level()), 5);
        // n at the ADV level (22.86 m) ≈ the paper's n1 = 45.
        let n1 = zones.density_at_level(center, radio.level(2).unwrap());
        assert!((41..=57).contains(&n1), "n1 = {n1}");
        // Stronger levels see at least as many nodes.
        let counts: Vec<u32> = radio
            .levels()
            .map(|l| zones.density_at_level(center, l))
            .collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{counts:?}");
    }

    #[test]
    fn weights_are_min_power_to_reach() {
        let (_, zones) = zones_13x13();
        let center = NodeId::new(6 * 13 + 6);
        let radio = RadioProfile::mica2();
        for l in zones.links(center) {
            assert_eq!(l.weight, radio.power_mw(l.level));
            assert!(radio.range_m(l.level) >= l.distance_m);
            // The next level down (if any) must NOT reach.
            if let Some(cheaper) = radio.level(l.level.index() + 1) {
                assert!(radio.range_m(cheaper) < l.distance_m);
            }
        }
    }

    #[test]
    fn zone_size_includes_self() {
        let topo = placement::grid(2, 1, 5.0).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        assert_eq!(zones.zone_size(NodeId::new(0)), 2);
        assert_eq!(zones.links(NodeId::new(0)).len(), 1);
        assert!(zones.mean_zone_size() > 1.9);
    }

    #[test]
    fn radius_beyond_radio_reach_drops_links() {
        // Two nodes 100 m apart: inside a 150 m configured radius but beyond
        // the radio's 91.44 m maximum: no link.
        let topo = Topology::new(
            vec![crate::Point::new(0.0, 0.0), crate::Point::new(100.0, 0.0)],
            crate::Field::new(100.0, 10.0).unwrap(),
        )
        .unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 150.0);
        assert!(zones.links(NodeId::new(0)).is_empty());
        assert_eq!(zones.adv_level().index(), 0);
    }
}
