//! Uniform spatial-hash grid over the sensor field.
//!
//! Zone maintenance needs one query, many times: "which nodes sit within
//! one zone radius of this point?". Scanning all `n` positions makes every
//! zone rebuild O(n²); bucketing nodes into square cells whose side is the
//! zone radius bounds the search to the 3×3 cell neighborhood of the query
//! point, so the same rebuild touches only the O(k) actual candidates.
//!
//! Cell sizing is radius-adaptive: [`SpatialGrid::for_radius`] uses cells
//! of the query radius only when the field is wide enough for the 3×3
//! query window to actually prune, and otherwise collapses to a single
//! cell so queries degenerate to the (sort-free) all-pairs scan — the
//! small-field regime where a non-pruning grid used to cost more than it
//! saved. [`SpatialGrid::build`] keeps the explicit cell size for callers
//! that want one.
//!
//! The grid is a plain acceleration structure: it holds node ids bucketed
//! by position and nothing else. [`ZoneTable::build_indexed`] and
//! [`ZoneTable::apply_moves`] consume it; the simulation engine keeps it in
//! sync with mobility by calling [`SpatialGrid::move_node`] for every
//! relocation (see [`MobilityProcess::apply_indexed`]).
//!
//! Determinism: cell buckets are kept sorted by node id and candidate
//! queries return ids in ascending order, so everything built from a grid
//! query is independent of insertion history.
//!
//! [`ZoneTable::build_indexed`]: crate::ZoneTable::build_indexed
//! [`ZoneTable::apply_moves`]: crate::ZoneTable::apply_moves
//! [`MobilityProcess::apply_indexed`]: crate::MobilityProcess::apply_indexed
//!
//! # Example
//!
//! ```
//! use spms_net::{placement, NodeId, SpatialGrid};
//!
//! let topo = placement::grid(13, 13, 5.0).unwrap();
//! let grid = SpatialGrid::build(&topo, 20.0);
//! let mut near = Vec::new();
//! let corner = NodeId::new(0);
//! grid.candidates_within(topo.position(corner), 20.0, &mut near);
//! // Superset of the true 20 m neighborhood, a fraction of the field.
//! assert!(near.len() < topo.len());
//! assert!(near.contains(&corner));
//! ```

use crate::{NodeId, Point, Topology};

/// A uniform grid of square cells bucketing node ids by position.
#[derive(Clone, Debug, PartialEq)]
pub struct SpatialGrid {
    cell_m: f64,
    cols: usize,
    rows: usize,
    /// `cells[cy * cols + cx]` = ids in that cell, ascending.
    cells: Vec<Vec<NodeId>>,
    /// Linear cell index currently holding each node.
    cell_of: Vec<u32>,
}

/// Minimum cells per axis for the grid to actually prune: a radius query
/// spans up to 3 cells per axis, so below 5 the query window covers most
/// of the field and the grid only adds bucket-gather and sort overhead on
/// top of the same distance checks — the small-n regime where the indexed
/// zone build used to lose to the all-pairs scan.
const MIN_PRUNING_CELLS: usize = 5;

impl SpatialGrid {
    /// Builds a grid over `topology`'s field with square cells of side
    /// `cell_m` (use the zone radius, so a radius query never needs more
    /// than the 3×3 neighborhood).
    ///
    /// # Panics
    ///
    /// Panics unless `cell_m` is positive and finite (the engine validates
    /// the zone radius before building a grid).
    #[must_use]
    pub fn build(topology: &Topology, cell_m: f64) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "bad spatial grid cell size {cell_m}"
        );
        let field = topology.field();
        let cols = ((field.width / cell_m).ceil() as usize).max(1);
        let rows = ((field.height / cell_m).ceil() as usize).max(1);
        let mut grid = SpatialGrid {
            cell_m,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            cell_of: vec![0; topology.len()],
        };
        // Nodes iterate in id order, so pushes keep every bucket sorted.
        for node in topology.nodes() {
            let cell = grid.cell_index(topology.position(node));
            grid.cell_of[node.index()] = cell as u32;
            grid.cells[cell].push(node);
        }
        grid
    }

    /// Builds the grid that serves `radius_m` queries best: cells of the
    /// query radius when **either** axis is long enough for the 3-cell
    /// query window to prune, otherwise one cell spanning the whole field.
    /// An elongated field (say a pipeline 10 cells long and 1 tall) keeps
    /// its radius cells — pruning along the long axis is exactly what a
    /// line deployment needs — while a compact small field collapses.
    ///
    /// The degenerate single-cell grid is deliberate, not a failure mode:
    /// on a small field every radius query window covers most of the cells
    /// anyway, so the grid gathers ~all `n` ids *and* pays a sort to
    /// restore id order — measurably slower than the all-pairs scan below
    /// n ≈ 400 (see ROADMAP). With one cell, [`SpatialGrid::candidates_within`]
    /// returns the single already-sorted bucket without sorting, which is
    /// exactly the all-pairs candidate enumeration; the indexed zone build
    /// then matches the reference build's cost instead of losing to it,
    /// while large fields keep the O(n·k) pruning.
    ///
    /// # Panics
    ///
    /// Panics unless `radius_m` is positive and finite.
    #[must_use]
    pub fn for_radius(topology: &Topology, radius_m: f64) -> Self {
        assert!(
            radius_m.is_finite() && radius_m > 0.0,
            "bad spatial grid query radius {radius_m}"
        );
        let field = topology.field();
        let cols = ((field.width / radius_m).ceil() as usize).max(1);
        let rows = ((field.height / radius_m).ceil() as usize).max(1);
        let cell_m = if cols < MIN_PRUNING_CELLS && rows < MIN_PRUNING_CELLS {
            field.width.max(field.height).max(radius_m)
        } else {
            radius_m
        };
        Self::build(topology, cell_m)
    }

    /// The cell side length in metres.
    #[must_use]
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Grid dimensions as `(cols, rows)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Number of nodes tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cell_of.len()
    }

    /// `false` — grids are built from topologies, which are never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cell_of.is_empty()
    }

    /// Column index of an x coordinate, clamped into the grid: the `as`
    /// cast saturates negatives to 0 (radius queries probe past the edges)
    /// and the `min` catches the rightmost edge, where `width / cell_m`
    /// lands exactly on `cols`.
    fn col(&self, x: f64) -> usize {
        ((x / self.cell_m) as usize).min(self.cols - 1)
    }

    /// Row index of a y coordinate, clamped into the grid.
    fn row(&self, y: f64) -> usize {
        ((y / self.cell_m) as usize).min(self.rows - 1)
    }

    /// Linear cell index holding point `p`.
    fn cell_index(&self, p: Point) -> usize {
        self.row(p.y) * self.cols + self.col(p.x)
    }

    /// Re-buckets `node` after it moved to `to`. O(cell population) for the
    /// sorted remove/insert; a move within one cell is free.
    ///
    /// # Panics
    ///
    /// Panics if the buckets disagree with the per-node cell record — that
    /// would mean the grid drifted out of sync with the topology, which
    /// must surface immediately rather than corrupt candidate queries.
    pub fn move_node(&mut self, node: NodeId, to: Point) {
        let new_cell = self.cell_index(to);
        let old_cell = self.cell_of[node.index()] as usize;
        if new_cell == old_cell {
            return;
        }
        // Both searches assert the buckets and `cell_of` agree: a desync
        // must fail loudly here, not silently corrupt candidate queries.
        let bucket = &mut self.cells[old_cell];
        let at = bucket
            .binary_search(&node)
            .expect("node missing from its recorded grid cell");
        bucket.remove(at);
        let bucket = &mut self.cells[new_cell];
        let at = bucket
            .binary_search(&node)
            .expect_err("node already present in its destination grid cell");
        bucket.insert(at, node);
        self.cell_of[node.index()] = new_cell as u32;
    }

    /// Collects into `out` every node bucketed within `radius` of `center`
    /// — a **superset** of the true Euclidean neighborhood (whole cells are
    /// taken; callers still distance-filter). Ids come back ascending and
    /// distinct. `out` is cleared first so hot loops can reuse one buffer.
    pub fn candidates_within(&self, center: Point, radius: f64, out: &mut Vec<NodeId>) {
        out.clear();
        let c0 = self.col(center.x - radius);
        let c1 = self.col(center.x + radius);
        let r0 = self.row(center.y - radius);
        let r1 = self.row(center.y + radius);
        for cy in r0..=r1 {
            for cx in c0..=c1 {
                out.extend_from_slice(&self.cells[cy * self.cols + cx]);
            }
        }
        if r0 == r1 && c0 == c1 {
            return; // a single bucket is already id-sorted
        }
        // Buckets are id-sorted but concatenation is not; one unstable sort
        // over the O(k) candidates restores the global order determinism
        // (and the zone tables' sorted-row invariant) relies on.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement;

    fn grid_13() -> (Topology, SpatialGrid) {
        let topo = placement::grid(13, 13, 5.0).unwrap();
        let grid = SpatialGrid::build(&topo, 20.0);
        (topo, grid)
    }

    #[test]
    fn build_buckets_every_node_once() {
        let (topo, grid) = grid_13();
        let total: usize = grid.cells.iter().map(Vec::len).sum();
        assert_eq!(total, topo.len());
        assert_eq!(grid.len(), topo.len());
        assert!(!grid.is_empty());
        // 60 m field at 20 m cells → 3×3 cells.
        assert_eq!(grid.dims(), (3, 3));
        assert_eq!(grid.cell_m(), 20.0);
    }

    #[test]
    fn candidates_cover_the_true_neighborhood() {
        let (topo, grid) = grid_13();
        let mut cand = Vec::new();
        for node in topo.nodes() {
            let center = topo.position(node);
            grid.candidates_within(center, 20.0, &mut cand);
            for want in topo.nodes_within(center, 20.0) {
                assert!(cand.contains(&want), "{node}: missing {want}");
            }
            assert!(cand.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        }
    }

    #[test]
    fn candidates_prune_far_cells() {
        let (topo, grid) = grid_13();
        let mut cand = Vec::new();
        // A corner query must not see the opposite corner's cell.
        grid.candidates_within(topo.position(NodeId::new(0)), 20.0, &mut cand);
        assert!(!cand.contains(&NodeId::new(168)));
        assert!(cand.len() < topo.len());
    }

    #[test]
    fn move_node_rebuckets_and_requeries() {
        let (mut topo, mut grid) = grid_13();
        let node = NodeId::new(0);
        let dest = Point::new(60.0, 60.0); // opposite corner, clamped edge
        topo.move_node(node, dest);
        grid.move_node(node, topo.position(node));
        let mut cand = Vec::new();
        grid.candidates_within(Point::new(60.0, 60.0), 5.0, &mut cand);
        assert!(cand.contains(&node));
        grid.candidates_within(Point::new(0.0, 0.0), 5.0, &mut cand);
        assert!(!cand.contains(&node));
        let total: usize = grid.cells.iter().map(Vec::len).sum();
        assert_eq!(total, topo.len());
    }

    #[test]
    fn move_within_cell_is_a_no_op() {
        let (mut topo, mut grid) = grid_13();
        let before = grid.clone();
        let node = NodeId::new(84);
        topo.move_node(node, Point::new(31.0, 31.0)); // same 20 m cell
        grid.move_node(node, topo.position(node));
        assert_eq!(grid, before);
    }

    #[test]
    fn emptying_and_filling_a_cell_round_trips() {
        let topo = placement::grid(2, 1, 5.0).unwrap();
        let mut grid = SpatialGrid::build(&topo, 4.0);
        // Node 1 starts alone at (5, 0) in cell (1, 0); move it into node
        // 0's cell and back.
        grid.move_node(NodeId::new(1), Point::new(0.5, 0.0));
        let mut cand = Vec::new();
        grid.candidates_within(Point::new(5.0, 0.0), 1.0, &mut cand);
        assert!(cand.is_empty(), "old cell emptied");
        grid.move_node(NodeId::new(1), Point::new(5.0, 0.0));
        grid.candidates_within(Point::new(5.0, 0.0), 1.0, &mut cand);
        assert_eq!(cand, vec![NodeId::new(1)], "cell refilled");
    }

    #[test]
    fn cell_larger_than_field_degenerates_to_one_bucket() {
        let topo = placement::grid(3, 3, 5.0).unwrap();
        let grid = SpatialGrid::build(&topo, 1000.0);
        assert_eq!(grid.dims(), (1, 1));
        let mut cand = Vec::new();
        grid.candidates_within(Point::new(0.0, 0.0), 1.0, &mut cand);
        assert_eq!(cand.len(), topo.len());
    }

    #[test]
    #[should_panic(expected = "bad spatial grid cell size")]
    fn zero_cell_size_panics() {
        let topo = placement::grid(2, 2, 5.0).unwrap();
        let _ = SpatialGrid::build(&topo, 0.0);
    }

    #[test]
    #[should_panic(expected = "bad spatial grid query radius")]
    fn bad_radius_panics() {
        let topo = placement::grid(2, 2, 5.0).unwrap();
        let _ = SpatialGrid::for_radius(&topo, f64::NAN);
    }

    #[test]
    fn for_radius_collapses_small_fields_to_one_cell() {
        // 13×13 at 5 m spacing = a 60 m field: 3 cells per axis at a 20 m
        // radius cannot prune, so the adaptive grid degenerates to a single
        // already-sorted bucket and queries skip the sort entirely.
        let topo = placement::grid(13, 13, 5.0).unwrap();
        let grid = SpatialGrid::for_radius(&topo, 20.0);
        assert_eq!(grid.dims(), (1, 1));
        let mut cand = Vec::new();
        grid.candidates_within(topo.position(NodeId::new(0)), 20.0, &mut cand);
        assert_eq!(cand.len(), topo.len(), "degenerate grid scans everyone");
        assert!(cand.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn for_radius_keeps_radius_cells_on_elongated_fields() {
        // A pipeline: 40×2 at 5 m spacing = 195 m × 5 m. The y axis can
        // never prune, but the x axis prunes hard — the grid must keep its
        // radius cells instead of collapsing to an all-pairs scan.
        let topo = placement::grid(40, 2, 5.0).unwrap();
        let grid = SpatialGrid::for_radius(&topo, 20.0);
        assert_eq!(grid.dims(), (10, 1));
        let mut cand = Vec::new();
        grid.candidates_within(topo.position(NodeId::new(0)), 20.0, &mut cand);
        assert!(
            cand.len() < topo.len() / 2,
            "end-of-line query must prune most of the pipeline"
        );
    }

    #[test]
    fn for_radius_keeps_pruning_cells_on_large_fields() {
        // 25×25 at 5 m = a 120 m field: 6 cells per axis prune for real.
        let topo = placement::grid(25, 25, 5.0).unwrap();
        let grid = SpatialGrid::for_radius(&topo, 20.0);
        assert_eq!(grid.dims(), (6, 6));
        assert_eq!(grid.cell_m(), 20.0);
        let mut cand = Vec::new();
        grid.candidates_within(topo.position(NodeId::new(0)), 20.0, &mut cand);
        assert!(cand.len() < topo.len(), "corner query must prune");
    }
}
