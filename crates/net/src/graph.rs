//! Centralized shortest-path oracle.
//!
//! The distributed Bellman-Ford implementation in `spms-routing` must agree
//! with a trusted oracle; this module provides that oracle (Dijkstra over
//! the zone graph). It is also used by tests and by the "oracle routing"
//! fast path for failure-free static experiments where simulating the DBF
//! message exchange adds runtime without changing results.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{NodeId, ZoneTable};

/// Cost of the best path from a node to a destination.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathCost {
    /// Sum of link weights (mW) along the path.
    pub cost: f64,
    /// Number of hops.
    pub hops: u32,
    /// The first hop to take from the node toward the destination.
    pub next_hop: NodeId,
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    hops: u32,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (cost, hops, node id) — node id is the deterministic
        // tie-break so equal-cost routes resolve identically on every run.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.hops.cmp(&self.hops))
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Computes, for every node in `dest`'s zone, the cheapest path **to**
/// `dest` constrained to intermediate nodes that also have `dest` in their
/// zone.
///
/// The constraint mirrors the protocol: a node only maintains routes for
/// destinations inside its own zone, so a usable relay must know the
/// destination too. Returns a dense vector indexed by node: `None` for nodes
/// with no path (outside the zone, or partitioned within it).
///
/// Ties between equal-cost paths break toward fewer hops, then the smaller
/// node id — the same rule the distributed implementation uses, so the two
/// agree exactly.
///
/// # Example
///
/// ```
/// use spms_net::{dijkstra, placement, NodeId, ZoneTable};
/// use spms_phy::RadioProfile;
///
/// let topo = placement::grid(5, 1, 5.0).unwrap();
/// let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
/// let to_first = dijkstra(&zones, NodeId::new(0));
/// // The node 4 hops away routes through its 5 m neighbor.
/// let pc = to_first[4].unwrap();
/// assert_eq!(pc.hops, 4);
/// assert_eq!(pc.next_hop, NodeId::new(3));
/// ```
#[must_use]
pub fn dijkstra(zones: &ZoneTable, dest: NodeId) -> Vec<Option<PathCost>> {
    dijkstra_masked(zones, dest, &vec![true; zones.len()])
}

/// [`dijkstra`] with a liveness mask: dead nodes are skipped as sources,
/// relays, and destination (a dead destination yields no routes at all) —
/// the centralized counterpart of the masked distributed exchange.
///
/// # Panics
///
/// Panics if the mask length does not match the zone table.
#[must_use]
pub fn dijkstra_masked(zones: &ZoneTable, dest: NodeId, alive: &[bool]) -> Vec<Option<PathCost>> {
    let n = zones.len();
    assert_eq!(alive.len(), n, "alive mask length mismatch");
    let mut best: Vec<Option<PathCost>> = vec![None; n];
    if !alive[dest.index()] {
        return best;
    }
    let mut heap = BinaryHeap::new();

    // Work outward from the destination over symmetric links. `next_hop`
    // for a node u is the neighbor v that u forwards to; when we relax
    // u ← v (v already settled), u's next hop is v — unless v IS the
    // destination, in which case the hop is direct.
    best[dest.index()] = Some(PathCost {
        cost: 0.0,
        hops: 0,
        next_hop: dest,
    });
    heap.push(HeapEntry {
        cost: 0.0,
        hops: 0,
        node: dest,
    });

    while let Some(HeapEntry { cost, hops, node }) = heap.pop() {
        let settled = best[node.index()].expect("pushed implies set");
        if cost > settled.cost + 1e-12 {
            continue; // stale entry
        }
        for link in zones.links(node) {
            let u = link.neighbor;
            if !alive[u.index()] {
                continue;
            }
            // Relay constraint: u must have dest in its zone (or be dest's
            // direct neighbor, which the same predicate covers since node
            // iterates outward from dest).
            if u != dest && !zones.in_zone(u, dest) {
                continue;
            }
            let cand_cost = cost + link.weight;
            let cand_hops = hops + 1;
            let cand = PathCost {
                cost: cand_cost,
                hops: cand_hops,
                next_hop: node,
            };
            let better = match best[u.index()] {
                None => true,
                Some(cur) => {
                    cand_cost < cur.cost - 1e-12
                        || ((cand_cost - cur.cost).abs() <= 1e-12
                            && (cand_hops, node) < (cur.hops, cur.next_hop))
                }
            };
            if better {
                best[u.index()] = Some(cand);
                heap.push(HeapEntry {
                    cost: cand_cost,
                    hops: cand_hops,
                    node: u,
                });
            }
        }
    }

    // The destination's self-entry is an artifact of the search; callers
    // want per-source routes only.
    best[dest.index()] = None;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement;
    use spms_phy::RadioProfile;

    fn zones(cols: usize, rows: usize, radius: f64) -> ZoneTable {
        let topo = placement::grid(cols, rows, 5.0).unwrap();
        ZoneTable::build(&topo, &RadioProfile::mica2(), radius)
    }

    #[test]
    fn line_routes_hop_by_hop() {
        let z = zones(5, 1, 20.0);
        let to0 = dijkstra(&z, NodeId::new(0));
        for (i, slot) in to0.iter().enumerate().skip(1) {
            let pc = slot.unwrap();
            assert_eq!(pc.hops as usize, i);
            assert_eq!(pc.next_hop, NodeId::new(i as u32 - 1));
            // Cost = i × min power.
            assert!((pc.cost - 0.0125 * i as f64).abs() < 1e-9);
        }
        assert!(to0[0].is_none(), "no self route");
    }

    #[test]
    fn multihop_beats_direct_in_cost() {
        let z = zones(5, 1, 20.0);
        let to0 = dijkstra(&z, NodeId::new(0));
        let four_hops = to0[4].unwrap().cost;
        // Direct at 20 m needs level 3 power (0.1995 mW) — more than 4 min
        // hops (4 × 0.0125 = 0.05 mW).
        assert!(four_hops < 0.1995);
    }

    #[test]
    fn out_of_zone_nodes_have_no_route() {
        let z = zones(9, 1, 20.0);
        let to0 = dijkstra(&z, NodeId::new(0));
        // Node 8 is 40 m away: outside node 0's 20 m zone.
        assert!(to0[8].is_none());
        assert!(to0[4].is_some());
        assert!(to0[5].is_none());
    }

    #[test]
    fn ties_break_deterministically() {
        // Square grid: two equal-cost two-hop routes exist between diagonal
        // neighbors; the tie must resolve to the lower-id relay.
        let z = zones(2, 2, 20.0);
        let to3 = dijkstra(&z, NodeId::new(3));
        let via = to3[0].unwrap().next_hop;
        assert_eq!(via, NodeId::new(1), "ties should pick the lower relay id");
    }

    #[test]
    fn direct_neighbor_routes_directly() {
        let z = zones(3, 1, 20.0);
        let to0 = dijkstra(&z, NodeId::new(0));
        assert_eq!(to0[1].unwrap().next_hop, NodeId::new(0));
        assert_eq!(to0[1].unwrap().hops, 1);
    }

    #[test]
    fn masked_search_avoids_dead_relays() {
        let z = zones(3, 1, 20.0);
        let mut alive = vec![true; 3];
        alive[1] = false;
        let to0 = dijkstra_masked(&z, NodeId::new(0), &alive);
        // Node 2 still reaches node 0 directly (10 m), never via dead node 1.
        let pc = to0[2].unwrap();
        assert_eq!(pc.next_hop, NodeId::new(0));
        assert_eq!(pc.hops, 1);
        assert!(to0[1].is_none(), "dead nodes hold no routes");
        // A dead destination yields nothing.
        let to1 = dijkstra_masked(&z, NodeId::new(1), &alive);
        assert!(to1.iter().all(Option::is_none));
    }

    #[test]
    fn oracle_is_deterministic() {
        let z = zones(7, 7, 20.0);
        let a = dijkstra(&z, NodeId::new(24));
        let b = dijkstra(&z, NodeId::new(24));
        for (x, y) in a.iter().zip(b.iter()) {
            match (x, y) {
                (None, None) => {}
                (Some(p), Some(q)) => {
                    assert_eq!(p.next_hop, q.next_hop);
                    assert_eq!(p.hops, q.hops);
                    assert!((p.cost - q.cost).abs() < 1e-15);
                }
                _ => panic!("mismatch"),
            }
        }
    }
}
