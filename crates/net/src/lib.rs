//! Sensor-field topology substrate for the SPMS reproduction.
//!
//! The paper evaluates on "a sensor field with uniform density of nodes"
//! whose area grows with the node count, with three dynamic processes layered
//! on top: zone formation (the set of nodes reachable at maximum power),
//! node mobility ("at some discrete times in the simulator clock, a
//! predefined fraction of nodes move"), and transient node failures
//! ("exponential inter-arrival time … stay failed for a time drawn from a
//! uniform distribution").
//!
//! This crate provides those pieces:
//!
//! * [`NodeId`] / [`Point`] — identity and 2-D geometry,
//! * [`placement`] — uniform-grid (the paper's uniform-density field) and
//!   uniform-random placement,
//! * [`Topology`] — positions plus range queries,
//! * [`SpatialGrid`] — a uniform spatial-hash index over the field (cell
//!   size = zone radius) bounding neighbor queries to O(k),
//! * [`ZoneTable`] — per-node zone neighbor lists with the minimum power
//!   level and link weight for each neighbor (the weighted graph DBF runs
//!   on), buildable all-pairs ([`ZoneTable::build`], the reference
//!   oracle), grid-indexed ([`ZoneTable::build_indexed`]), or patched
//!   incrementally after mobility ([`ZoneTable::apply_moves`] →
//!   [`ZoneDelta`]),
//! * [`ContactPlan`] / [`ContactProcess`] — scheduled connectivity in the
//!   DTN contact-plan tradition: per-link up/down windows loaded from
//!   `.cp`-style text, walked as timed link flips a [`LinkGate`] applies
//!   to the zone builders,
//! * [`MobilityProcess`] — the epoch-based random relocation model,
//! * [`ChurnProcess`] — epoch-based mass join/leave cohorts (the
//!   heavy-churn stress regime for the incremental zone/DBF paths),
//! * [`FailureProcess`] — the transient-failure injection schedule,
//! * [`dijkstra`] — a centralized shortest-path oracle used to verify the
//!   distributed Bellman-Ford implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod contact;
mod failure;
mod graph;
mod mobility;
mod node;
pub mod placement;
mod point;
mod spatial;
mod topology;
mod zone;

pub use churn::{ChurnConfig, ChurnEpoch, ChurnProcess};
pub use contact::{ContactEpoch, ContactPlan, ContactProcess, ContactWindow, LinkFlip, LinkGate};
pub use failure::{FailureConfig, FailureEvent, FailureProcess};
pub use graph::{dijkstra, dijkstra_masked, PathCost};
pub use mobility::{MobilityConfig, MobilityEpoch, MobilityProcess};
pub use node::NodeId;
pub use point::Point;
pub use spatial::SpatialGrid;
pub use topology::{Field, Topology};
pub use zone::{MovedZone, ZoneDelta, ZoneLink, ZoneTable};
