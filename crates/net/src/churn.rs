//! Epoch-based mass churn: cohorts of nodes leaving and rejoining.
//!
//! Where [`MobilityProcess`] relocates a fraction of nodes per epoch,
//! churn flips their *liveness*: at each epoch a seeded cohort toggles —
//! alive members leave (indistinguishable from a silent crash) and
//! previously-departed members rejoin at their old position. This is the
//! mass join/leave stress regime for the incremental zone-delta and
//! delta-DBF paths, which otherwise only see one liveness flip at a time.
//!
//! [`MobilityProcess`]: crate::MobilityProcess

use spms_kernel::{SimRng, SimTime};

use crate::NodeId;

/// Churn parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnConfig {
    /// Time between churn epochs.
    pub interval: SimTime,
    /// Fraction of nodes (0..=1) whose liveness toggles at each epoch.
    pub fraction: f64,
}

impl ChurnConfig {
    /// Creates a config.
    ///
    /// # Errors
    ///
    /// Returns a message if `interval` is zero or `fraction` is outside
    /// `[0, 1]`.
    pub fn new(interval: SimTime, fraction: f64) -> Result<Self, String> {
        if interval == SimTime::ZERO {
            return Err("churn interval must be positive".into());
        }
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(format!("churn fraction {fraction} outside [0, 1]"));
        }
        Ok(ChurnConfig { interval, fraction })
    }
}

/// One churn epoch: the instant and the cohort whose liveness toggles.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnEpoch {
    /// When the epoch occurs.
    pub at: SimTime,
    /// The toggled nodes, in node-id order for determinism.
    pub cohort: Vec<NodeId>,
}

/// Generates churn epochs on demand.
///
/// # Example
///
/// ```
/// use spms_kernel::{SimRng, SimTime};
/// use spms_net::{ChurnConfig, ChurnProcess};
///
/// let config = ChurnConfig::new(SimTime::from_millis(100), 0.2).unwrap();
/// let mut churn = ChurnProcess::new(config, SimRng::new(9));
/// let epoch = churn.next_epoch(SimTime::ZERO, 25);
/// assert_eq!(epoch.at, SimTime::from_millis(100));
/// assert_eq!(epoch.cohort.len(), 5); // 20% of 25
/// ```
#[derive(Clone, Debug)]
pub struct ChurnProcess {
    config: ChurnConfig,
    rng: SimRng,
}

impl ChurnProcess {
    /// Creates a process with its own RNG sub-stream.
    #[must_use]
    pub fn new(config: ChurnConfig, rng: SimRng) -> Self {
        ChurnProcess { config, rng }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> ChurnConfig {
        self.config
    }

    /// Produces the next epoch after `now`: picks `fraction × n` distinct
    /// nodes (rounded, at least one when `fraction > 0`) from a field of
    /// `n`.
    pub fn next_epoch(&mut self, now: SimTime, n: usize) -> ChurnEpoch {
        let at = now + self.config.interval;
        let count = if self.config.fraction == 0.0 {
            0
        } else {
            ((self.config.fraction * n as f64).round() as usize).clamp(1, n)
        };
        let mut picked = self.rng.choose_indices(n, count);
        picked.sort_unstable(); // node-id order for deterministic application
        let cohort = picked.into_iter().map(|i| NodeId::new(i as u32)).collect();
        ChurnEpoch { at, cohort }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(ChurnConfig::new(SimTime::from_millis(1), 0.5).is_ok());
        assert!(ChurnConfig::new(SimTime::ZERO, 0.5).is_err());
        assert!(ChurnConfig::new(SimTime::from_millis(1), 1.5).is_err());
        assert!(ChurnConfig::new(SimTime::from_millis(1), -0.1).is_err());
        assert!(ChurnConfig::new(SimTime::from_millis(1), f64::NAN).is_err());
    }

    #[test]
    fn epoch_times_advance_by_interval() {
        let cfg = ChurnConfig::new(SimTime::from_millis(100), 0.1).unwrap();
        let mut p = ChurnProcess::new(cfg, SimRng::new(1));
        let e1 = p.next_epoch(SimTime::ZERO, 25);
        let e2 = p.next_epoch(e1.at, 25);
        assert_eq!(e1.at, SimTime::from_millis(100));
        assert_eq!(e2.at, SimTime::from_millis(200));
    }

    #[test]
    fn cohorts_are_distinct_sorted_and_sized() {
        let cfg = ChurnConfig::new(SimTime::from_millis(100), 0.3).unwrap();
        let mut p = ChurnProcess::new(cfg, SimRng::new(2));
        let e = p.next_epoch(SimTime::ZERO, 25);
        assert_eq!(e.cohort.len(), 8); // round(0.3 × 25)
        let ids: Vec<u32> = e.cohort.iter().map(|n| n.raw()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "cohort must be sorted and distinct");
        assert!(ids.iter().all(|&i| i < 25));
    }

    #[test]
    fn zero_fraction_toggles_nobody() {
        let cfg = ChurnConfig::new(SimTime::from_millis(100), 0.0).unwrap();
        let mut p = ChurnProcess::new(cfg, SimRng::new(3));
        assert!(p.next_epoch(SimTime::ZERO, 25).cohort.is_empty());
    }

    #[test]
    fn tiny_positive_fraction_toggles_at_least_one() {
        let cfg = ChurnConfig::new(SimTime::from_millis(100), 0.001).unwrap();
        let mut p = ChurnProcess::new(cfg, SimRng::new(4));
        assert_eq!(p.next_epoch(SimTime::ZERO, 25).cohort.len(), 1);
    }

    #[test]
    fn full_fraction_toggles_everyone() {
        let cfg = ChurnConfig::new(SimTime::from_millis(100), 1.0).unwrap();
        let mut p = ChurnProcess::new(cfg, SimRng::new(5));
        let e = p.next_epoch(SimTime::ZERO, 9);
        let all: Vec<NodeId> = (0..9u32).map(NodeId::new).collect();
        assert_eq!(e.cohort, all);
    }

    #[test]
    fn same_seed_same_epochs() {
        let cfg = ChurnConfig::new(SimTime::from_millis(50), 0.4).unwrap();
        let e1 = ChurnProcess::new(cfg, SimRng::new(6)).next_epoch(SimTime::ZERO, 25);
        let e2 = ChurnProcess::new(cfg, SimRng::new(6)).next_epoch(SimTime::ZERO, 25);
        assert_eq!(e1, e2);
    }
}
