//! Scheduled connectivity: contact plans in the DTN tradition.
//!
//! Satellite constellations, duty-cycled radios, and inter-regional relays
//! share a property the paper's mobility/failure processes cannot express:
//! links go up and down at *known, scheduled* times. A [`ContactPlan`]
//! holds per-link up-windows (validated and merged at load, parseable from
//! a `.cp`-style text file), a [`LinkGate`] answers "is this link up right
//! now", and a [`ContactProcess`] walks the plan's window boundaries as a
//! precomputed timeline of [`ContactEpoch`]s for the simulation scheduler
//! to fire — each epoch feeding the same zone-patch/delta-batching
//! machinery mobility epochs use, so sharding, batching, and the oracle
//! chain apply unchanged.
//!
//! # Window semantics
//!
//! Windows are half-open `[start, end)`: a link is up at exactly `start`
//! and down again at exactly `end`. Overlapping or touching windows on the
//! same link merge at load; zero-length windows (`start == end`) are
//! validated no-ops and dropped. Links never named by the plan are always
//! up — a plan constrains only the links it mentions, so a constellation
//! overlay can gate a handful of long-haul links while the dense local
//! field keeps its geometry-derived connectivity.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use spms_kernel::SimTime;

use crate::NodeId;

/// Normalizes an unordered node pair to `(lo, hi)` — the key both the plan
/// and the gate index links by (contact windows are bidirectional).
fn pair_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// One scheduled up-window for a link, half-open `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContactWindow {
    /// One endpoint of the link.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// The instant the link comes up (inclusive).
    pub start: SimTime,
    /// The instant the link goes down again (exclusive).
    pub end: SimTime,
}

/// The set of plan-gated links that are currently **down**.
///
/// Links the plan never mentions are always up; a gated link starts down
/// unless one of its windows covers `t = 0`. The zone builders consult the
/// gate through [`ZoneTable::build_gated`] and friends, so a down link
/// simply vanishes from both the adjacency rows and the MAC density
/// counts — exactly as if the endpoints were out of radio range.
///
/// [`ZoneTable::build_gated`]: crate::ZoneTable::build_gated
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkGate {
    down: BTreeSet<(NodeId, NodeId)>,
}

impl LinkGate {
    /// A gate with every link up (the no-plan behavior).
    #[must_use]
    pub fn all_up() -> Self {
        LinkGate::default()
    }

    /// `true` when the link between `a` and `b` is up. Symmetric; a node is
    /// always "up" to itself.
    #[must_use]
    pub fn is_up(&self, a: NodeId, b: NodeId) -> bool {
        a == b || !self.down.contains(&pair_key(a, b))
    }

    /// Sets the link between `a` and `b` up or down. Idempotent.
    pub fn set(&mut self, a: NodeId, b: NodeId, up: bool) {
        let key = pair_key(a, b);
        if up {
            self.down.remove(&key);
        } else {
            self.down.insert(key);
        }
    }

    /// Number of links currently gated down.
    #[must_use]
    pub fn down_count(&self) -> usize {
        self.down.len()
    }
}

/// One link state change inside a [`ContactEpoch`]. Endpoints are
/// normalized (`a < b`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFlip {
    /// Lower endpoint of the link.
    pub a: NodeId,
    /// Higher endpoint of the link.
    pub b: NodeId,
    /// `true` when the link comes up, `false` when it goes down.
    pub up: bool,
}

/// Every link flip sharing one timestamp, dispatched as **one** scheduler
/// event — whatever the event kernel, a timestamp's flips land atomically,
/// which is what keeps contact runs byte-identical across heap, wheel, and
/// batched-wheel kernels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContactEpoch {
    /// The simulation time the flips take effect.
    pub at: SimTime,
    /// The flips, in ascending `(a, b)` order.
    pub flips: Vec<LinkFlip>,
}

/// A validated, merged contact plan: per-link scheduled up-windows.
///
/// # Example
///
/// ```
/// use spms_net::{ContactPlan, NodeId};
/// use spms_kernel::SimTime;
///
/// let plan = ContactPlan::parse(
///     "# one pass, seconds\n\
///      0 1 0.5 2.0\n\
///      0 1 1.5 3.0\n",
/// )
/// .unwrap();
/// assert_eq!(plan.num_links(), 1);
/// assert_eq!(plan.num_windows(), 1, "overlapping windows merge");
/// let gate = plan.initial_gate();
/// assert!(!gate.is_up(NodeId::new(0), NodeId::new(1)), "down until 0.5 s");
/// assert_eq!(plan.timeline().len(), 2, "one open + one close boundary");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContactPlan {
    /// Merged windows per normalized pair: sorted, non-overlapping,
    /// non-touching, all strictly positive-length.
    windows: BTreeMap<(NodeId, NodeId), Vec<(SimTime, SimTime)>>,
}

impl ContactPlan {
    /// Builds a plan from raw windows, validating and merging.
    ///
    /// Zero-length windows are dropped (an up-and-down at one instant is a
    /// no-op under half-open semantics); overlapping or touching windows on
    /// the same link merge into one.
    ///
    /// # Errors
    ///
    /// Returns a message when a window is a self-link (`a == b`) or runs
    /// backwards (`start > end`).
    pub fn from_windows(windows: impl IntoIterator<Item = ContactWindow>) -> Result<Self, String> {
        let mut by_pair: BTreeMap<(NodeId, NodeId), Vec<(SimTime, SimTime)>> = BTreeMap::new();
        for w in windows {
            if w.a == w.b {
                return Err(format!("contact window {} -> {} is a self-link", w.a, w.b));
            }
            if w.start > w.end {
                return Err(format!(
                    "contact window {} {} runs backwards: {} > {}",
                    w.a, w.b, w.start, w.end
                ));
            }
            if w.start == w.end {
                continue; // zero-length: validated no-op
            }
            by_pair
                .entry(pair_key(w.a, w.b))
                .or_default()
                .push((w.start, w.end));
        }
        for spans in by_pair.values_mut() {
            spans.sort_unstable();
            let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(spans.len());
            for &(s, e) in spans.iter() {
                match merged.last_mut() {
                    // Touching windows ([a,b) + [b,c)) are continuous
                    // connectivity: merge them too.
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            *spans = merged;
        }
        by_pair.retain(|_, spans| !spans.is_empty());
        Ok(ContactPlan { windows: by_pair })
    }

    /// Parses the `.cp`-style text format: one `node_a node_b t_start
    /// t_end` record per line, times in **seconds** (decimal fractions
    /// allowed), `#` starting a comment, blank lines skipped.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed records,
    /// non-finite or negative times, self-links, or backwards windows.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut windows = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(format!(
                    "line {}: expected `node_a node_b t_start t_end`, got {} field(s)",
                    idx + 1,
                    fields.len()
                ));
            }
            let node = |s: &str, what: &str| -> Result<NodeId, String> {
                s.parse::<u32>()
                    .map(NodeId::new)
                    .map_err(|_| format!("line {}: bad {what} node id {s:?}", idx + 1))
            };
            let time = |s: &str, what: &str| -> Result<SimTime, String> {
                let secs: f64 = s
                    .parse()
                    .map_err(|_| format!("line {}: bad {what} time {s:?}", idx + 1))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!(
                        "line {}: {what} time {s:?} must be finite and non-negative",
                        idx + 1
                    ));
                }
                Ok(SimTime::from_millis_f64(secs * 1e3))
            };
            windows.push(ContactWindow {
                a: node(fields[0], "first")?,
                b: node(fields[1], "second")?,
                start: time(fields[2], "start")?,
                end: time(fields[3], "end")?,
            });
        }
        Self::from_windows(windows).map_err(|e| format!("contact plan: {e}"))
    }

    /// Loads and parses a contact-plan file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the file on I/O or parse failures.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// `true` when the plan gates no links at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Number of distinct links the plan gates.
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.windows.len()
    }

    /// Total number of (merged) up-windows across all links.
    #[must_use]
    pub fn num_windows(&self) -> usize {
        self.windows.values().map(Vec::len).sum()
    }

    /// The highest node id the plan names, if any — range-checked against
    /// the topology when the plan is installed.
    #[must_use]
    pub fn max_node(&self) -> Option<NodeId> {
        self.windows.keys().map(|&(_, hi)| hi).max()
    }

    /// The merged up-windows of the link `a`–`b` (empty when ungated).
    #[must_use]
    pub fn windows_for(&self, a: NodeId, b: NodeId) -> &[(SimTime, SimTime)] {
        self.windows.get(&pair_key(a, b)).map_or(&[], Vec::as_slice)
    }

    /// The gate state at `t = 0`: every plan-gated link is down unless its
    /// first window opens at exactly `t = 0`.
    #[must_use]
    pub fn initial_gate(&self) -> LinkGate {
        let mut gate = LinkGate::default();
        for (&(a, b), spans) in &self.windows {
            let up_at_zero = spans.first().is_some_and(|&(s, _)| s == SimTime::ZERO);
            if !up_at_zero {
                gate.set(a, b, false);
            }
        }
        gate
    }

    /// The plan's window boundaries as a timeline of [`ContactEpoch`]s in
    /// ascending time order: one epoch per distinct timestamp, carrying
    /// every flip at that instant (in ascending pair order). Opens at
    /// `t = 0` are folded into [`ContactPlan::initial_gate`] instead of
    /// emitting a flip.
    #[must_use]
    pub fn timeline(&self) -> Vec<ContactEpoch> {
        let mut by_time: BTreeMap<SimTime, Vec<LinkFlip>> = BTreeMap::new();
        for (&(a, b), spans) in &self.windows {
            for &(s, e) in spans {
                if s > SimTime::ZERO {
                    by_time
                        .entry(s)
                        .or_default()
                        .push(LinkFlip { a, b, up: true });
                }
                by_time
                    .entry(e)
                    .or_default()
                    .push(LinkFlip { a, b, up: false });
            }
        }
        by_time
            .into_iter()
            .map(|(at, mut flips)| {
                // The outer loop visits pairs in sorted order, but one pair
                // can contribute to many timestamps — re-sort each epoch so
                // the flip order is a property of the plan, not the walk.
                flips.sort_unstable_by_key(|f| (f.a, f.b, f.up));
                ContactEpoch { at, flips }
            })
            .collect()
    }

    /// Fraction of `[0, horizon)` the link `a`–`b` is up (1.0 when the plan
    /// does not gate it) — the duty-cycle axis of the EXT6 figures.
    #[must_use]
    pub fn duty_cycle(&self, a: NodeId, b: NodeId, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 1.0;
        }
        let Some(spans) = self.windows.get(&pair_key(a, b)) else {
            return 1.0;
        };
        let up: u128 = spans
            .iter()
            .map(|&(s, e)| u128::from(e.min(horizon).saturating_sub(s.min(horizon)).as_nanos()))
            .sum();
        up as f64 / u128::from(horizon.as_nanos()) as f64
    }
}

/// Walks a [`ContactPlan`]'s timeline for the engine: the simulation stages
/// one epoch at a time (exactly like the mobility and churn processes), so
/// the scheduler holds at most one pending `ContactEpoch` event.
#[derive(Clone, Debug)]
pub struct ContactProcess {
    timeline: Vec<ContactEpoch>,
    next: usize,
}

impl ContactProcess {
    /// Builds the process from a plan (precomputing the full timeline).
    #[must_use]
    pub fn new(plan: &ContactPlan) -> Self {
        ContactProcess {
            timeline: plan.timeline(),
            next: 0,
        }
    }

    /// The next epoch, in time order, or `None` when the plan is exhausted.
    pub fn next_epoch(&mut self) -> Option<ContactEpoch> {
        let epoch = self.timeline.get(self.next).cloned();
        self.next += epoch.is_some() as usize;
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn secs(s: f64) -> SimTime {
        SimTime::from_millis_f64(s * 1e3)
    }

    #[test]
    fn parse_merges_overlapping_and_touching_windows() {
        let plan = ContactPlan::parse(
            "# comment line\n\
             \n\
             0 1 0 10       # covers t=0\n\
             1 0 5 15       # overlaps, reversed endpoints\n\
             0 1 15 20      # touches: still one continuous window\n\
             2 3 4 4        # zero-length no-op\n\
             2 3 30 40\n",
        )
        .unwrap();
        assert_eq!(plan.num_links(), 2);
        assert_eq!(plan.num_windows(), 2);
        assert_eq!(plan.windows_for(n(1), n(0)), &[(secs(0.0), secs(20.0))]);
        assert_eq!(plan.windows_for(n(3), n(2)), &[(secs(30.0), secs(40.0))]);
        assert_eq!(plan.max_node(), Some(n(3)));
    }

    #[test]
    fn parse_errors_name_the_line() {
        for (text, needle) in [
            ("0 1 2\n", "line 1"),
            ("0 1 2 3\nx 1 0 5\n", "line 2"),
            ("0 1 nan 5\n", "finite"),
            ("0 1 -1 5\n", "non-negative"),
            ("4 4 0 5\n", "self-link"),
            ("0 1 9 5\n", "backwards"),
        ] {
            let err = ContactPlan::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn initial_gate_downs_everything_not_open_at_zero() {
        let plan = ContactPlan::parse("0 1 0 10\n2 3 5 10\n").unwrap();
        let gate = plan.initial_gate();
        assert!(gate.is_up(n(0), n(1)), "window opens at t=0");
        assert!(!gate.is_up(n(2), n(3)), "first window opens later");
        assert!(gate.is_up(n(5), n(9)), "ungated links are always up");
        assert!(gate.is_up(n(2), n(2)), "self is always up");
        assert_eq!(gate.down_count(), 1);
    }

    #[test]
    fn timeline_groups_flips_by_timestamp_and_skips_zero_opens() {
        let plan = ContactPlan::parse("0 1 0 10\n2 3 5 10\n4 5 10 20\n").unwrap();
        let tl = plan.timeline();
        let times: Vec<SimTime> = tl.iter().map(|e| e.at).collect();
        assert_eq!(times, vec![secs(5.0), secs(10.0), secs(20.0)]);
        assert_eq!(
            tl[0].flips,
            vec![LinkFlip {
                a: n(2),
                b: n(3),
                up: true
            }]
        );
        // Three links flip at t=10 s — one epoch, pair-sorted.
        assert_eq!(
            tl[1].flips,
            vec![
                LinkFlip {
                    a: n(0),
                    b: n(1),
                    up: false
                },
                LinkFlip {
                    a: n(2),
                    b: n(3),
                    up: false
                },
                LinkFlip {
                    a: n(4),
                    b: n(5),
                    up: true
                },
            ]
        );
        assert!(tl.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn process_walks_the_timeline_once() {
        let plan = ContactPlan::parse("0 1 1 2\n").unwrap();
        let mut proc = ContactProcess::new(&plan);
        assert_eq!(proc.next_epoch().unwrap().at, secs(1.0));
        assert_eq!(proc.next_epoch().unwrap().at, secs(2.0));
        assert!(proc.next_epoch().is_none());
        assert!(proc.next_epoch().is_none());
    }

    #[test]
    fn gate_set_is_idempotent_and_symmetric() {
        let mut gate = LinkGate::all_up();
        gate.set(n(7), n(2), false);
        gate.set(n(7), n(2), false);
        assert_eq!(gate.down_count(), 1);
        assert!(!gate.is_up(n(2), n(7)));
        gate.set(n(2), n(7), true);
        assert!(gate.is_up(n(7), n(2)));
        assert_eq!(gate.down_count(), 0);
    }

    #[test]
    fn duty_cycle_clamps_to_the_horizon() {
        let plan = ContactPlan::parse("0 1 0 5\n0 1 10 15\n").unwrap();
        let d = plan.duty_cycle(n(0), n(1), secs(10.0));
        assert!((d - 0.5).abs() < 1e-12, "5 s up of 10 s: {d}");
        assert_eq!(plan.duty_cycle(n(8), n(9), secs(10.0)), 1.0);
        assert_eq!(plan.duty_cycle(n(0), n(1), SimTime::ZERO), 1.0);
    }

    #[test]
    fn empty_plans_gate_nothing() {
        let plan = ContactPlan::parse("# nothing\n").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.initial_gate(), LinkGate::all_up());
        assert!(plan.timeline().is_empty());
    }
}
