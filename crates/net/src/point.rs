//! 2-D geometry.

use std::fmt;

/// A position in the sensor field, metres.
///
/// # Example
///
/// ```
/// use spms_net::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in metres.
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared distance (avoids the square root in range predicates).
    #[must_use]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// `true` when `other` lies within `radius` metres (inclusive).
    #[must_use]
    pub fn within(self, other: Point, radius: f64) -> bool {
        self.distance_sq(other) <= radius * radius
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn within_is_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(5.0, 0.0);
        assert!(a.within(b, 5.0));
        assert!(!a.within(b, 4.999));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Point::new(1.5, 2.0)), "(1.50, 2.00)");
    }
}
