//! Transient node-failure injection.
//!
//! §5.1.2 of the paper: "Nodes fail with an exponential inter-arrival time
//! (mean λ) and stay failed for a time drawn from a uniform distribution
//! (repair_min, repair_max). During the time of repair, any received message
//! is dropped and any scheduled packet transfer is cancelled. We assume
//! recovery is always successful." Table 1 sets the failure inter-arrival
//! mean to 50 ms and the MTTR to 10 ms.

use spms_kernel::{SimRng, SimTime};

use crate::NodeId;

/// Failure-injection parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureConfig {
    /// Mean of the exponential inter-failure time (Table 1: 50 ms).
    pub mean_interarrival: SimTime,
    /// Minimum repair time.
    pub repair_min: SimTime,
    /// Maximum repair time (uniform in `[repair_min, repair_max)`).
    pub repair_max: SimTime,
}

impl FailureConfig {
    /// Table 1 values: λ = 50 ms, repairs uniform in [5 ms, 15 ms) so the
    /// MTTR is the paper's 10 ms.
    #[must_use]
    pub fn paper_defaults() -> Self {
        FailureConfig {
            mean_interarrival: SimTime::from_millis(50),
            repair_min: SimTime::from_millis(5),
            repair_max: SimTime::from_millis(15),
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if the inter-arrival mean is zero or the repair
    /// window is inverted or zero-width at zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.mean_interarrival == SimTime::ZERO {
            return Err("failure inter-arrival mean must be positive".into());
        }
        if self.repair_max < self.repair_min {
            return Err("repair_max must be >= repair_min".into());
        }
        if self.repair_max == SimTime::ZERO {
            return Err("repair window must allow a positive repair time".into());
        }
        Ok(())
    }

    /// Mean time to repair implied by the window.
    #[must_use]
    pub fn mttr(&self) -> SimTime {
        SimTime::from_nanos((self.repair_min.as_nanos() + self.repair_max.as_nanos()) / 2)
    }
}

/// One injected failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailureEvent {
    /// When the node fails.
    pub at: SimTime,
    /// Which node fails.
    pub node: NodeId,
    /// How long it stays down (repair completes at `at + down_for`).
    pub down_for: SimTime,
}

/// Generates the failure schedule on demand.
///
/// Each call to [`FailureProcess::next_event`] advances the exponential
/// arrival clock and picks a uniformly random victim; the engine schedules
/// the corresponding fail/repair simulator events. (A node may be selected
/// again while already down; the engine treats that as extending nothing —
/// matching "recovery is always successful".)
///
/// # Example
///
/// ```
/// use spms_kernel::{SimRng, SimTime};
/// use spms_net::{FailureConfig, FailureProcess};
///
/// let mut failures = FailureProcess::new(FailureConfig::paper_defaults(), SimRng::new(3));
/// let e = failures.next_event(25);
/// assert!(e.at > SimTime::ZERO);
/// assert!(e.node.index() < 25);
/// ```
#[derive(Clone, Debug)]
pub struct FailureProcess {
    config: FailureConfig,
    rng: SimRng,
    clock: SimTime,
    injected: u64,
}

impl FailureProcess {
    /// Creates a process with its own RNG sub-stream.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation — construct configs through
    /// [`FailureConfig::validate`]-checked paths.
    #[must_use]
    pub fn new(config: FailureConfig, rng: SimRng) -> Self {
        config.validate().expect("invalid failure config");
        FailureProcess {
            config,
            rng,
            clock: SimTime::ZERO,
            injected: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> FailureConfig {
        self.config
    }

    /// Number of failures generated so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Generates the next failure among `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0`.
    pub fn next_event(&mut self, num_nodes: usize) -> FailureEvent {
        assert!(num_nodes > 0, "no nodes to fail");
        let gap = self
            .rng
            .exponential(self.config.mean_interarrival)
            .max(SimTime::from_nanos(1));
        self.clock += gap;
        let node = NodeId::new(self.rng.index(num_nodes) as u32);
        let down_for = self
            .rng
            .uniform_time(self.config.repair_min, self.config.repair_max)
            .max(SimTime::from_nanos(1));
        self.injected += 1;
        FailureEvent {
            at: self.clock,
            node,
            down_for,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        let c = FailureConfig::paper_defaults();
        assert!(c.validate().is_ok());
        assert_eq!(c.mttr(), SimTime::from_millis(10));
    }

    #[test]
    fn validation_rejects_bad_windows() {
        let mut c = FailureConfig::paper_defaults();
        c.repair_max = SimTime::from_millis(1);
        assert!(c.validate().is_err());
        let mut c2 = FailureConfig::paper_defaults();
        c2.mean_interarrival = SimTime::ZERO;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn events_advance_in_time_with_sane_repairs() {
        let mut p = FailureProcess::new(FailureConfig::paper_defaults(), SimRng::new(10));
        let mut prev = SimTime::ZERO;
        for _ in 0..500 {
            let e = p.next_event(169);
            assert!(e.at > prev);
            assert!(e.node.index() < 169);
            assert!(e.down_for >= SimTime::from_millis(5));
            assert!(e.down_for < SimTime::from_millis(15));
            prev = e.at;
        }
        assert_eq!(p.injected(), 500);
    }

    #[test]
    fn mean_interarrival_matches_config() {
        let mut p = FailureProcess::new(FailureConfig::paper_defaults(), SimRng::new(11));
        let n = 20_000;
        let mut last = SimTime::ZERO;
        let mut total = 0.0;
        for _ in 0..n {
            let e = p.next_event(100);
            total += (e.at - last).as_millis_f64();
            last = e.at;
        }
        let mean = total / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean inter-arrival {mean}");
    }

    #[test]
    fn victims_cover_the_network() {
        let mut p = FailureProcess::new(FailureConfig::paper_defaults(), SimRng::new(12));
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[p.next_event(10).node.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FailureProcess::new(FailureConfig::paper_defaults(), SimRng::new(13));
        let mut b = FailureProcess::new(FailureConfig::paper_defaults(), SimRng::new(13));
        for _ in 0..50 {
            assert_eq!(a.next_event(30), b.next_event(30));
        }
    }
}
