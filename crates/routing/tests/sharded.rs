//! Differential-oracle harness for the zone-sharded executions: the
//! epoch-batched delta re-convergence and the sharded full rebuild.
//!
//! The equivalence chain has four rungs, each property-tested against the
//! one below it over random move/kill/revive sequences (with silent
//! liveness flips and multi-epoch batching windows):
//!
//! 1. **Root oracle** — sequential full rebuild (`reset` +
//!    `run_to_convergence_masked`), the paper's "re-execution of the DBF",
//!    kept verbatim.
//! 2. **Sharded full rebuild** — [`DbfEngine::rebuild_sharded`] at 1, 2,
//!    8 and 16 partitions, proven bit-identical (tables *and* stats) to
//!    the root.
//! 3. **Mid-level oracle** — the sequential delta path (`DbfEngine`
//!    without shards), itself proven against the root in
//!    `crates/routing/tests/incremental.rs`.
//! 4. **Sharded + batched delta** — the shard planner at 1, 2, 8 and 16
//!    partitions (the pool-size matrix: inline, the smallest real pool,
//!    and two beyond-the-host widths), fed merged [`ZoneDelta`]s
//!    covering whole batching windows.
//!
//! Every flush must leave all rungs with bit-identical tables, and the
//! sharded runners must also report byte-identical [`DbfStats`] to their
//! sequential counterparts — the planner may only change wall-clock time,
//! never results or accounting.

use proptest::prelude::*;
use spms_net::{placement, NodeId, Point, SpatialGrid, ZoneDelta, ZoneTable};
use spms_phy::RadioProfile;
use spms_routing::DbfEngine;

/// One topology event, decoded from raw proptest draws.
#[derive(Clone, Copy, Debug)]
enum Op {
    Move(usize, f64, f64),
    Kill(usize),
    Revive(usize),
}

fn decode_ops(raw: &[(u8, u16, f64, f64)], n: usize) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, node, x, y)| {
            let node = node as usize % n;
            match kind % 3 {
                0 => Op::Move(node, x, y),
                1 => Op::Kill(node),
                _ => Op::Revive(node),
            }
        })
        .collect()
}

/// An empty delta: what a batching window holds before any move lands.
fn empty_delta() -> ZoneDelta {
    ZoneDelta {
        moves: Vec::new(),
        changed_nodes: Vec::new(),
    }
}

/// Asserts every engine equals the from-scratch root oracle bit for bit.
fn assert_all_match_root(
    engines: &[(&'static str, &DbfEngine)],
    zones: &ZoneTable,
    alive: &[bool],
    context: &str,
) -> Result<(), TestCaseError> {
    let k = engines[0].1.k();
    let mut root = DbfEngine::new(zones, k);
    root.reset(zones, alive);
    root.run_to_convergence_masked(zones, alive);
    for &(label, engine) in engines {
        for i in 0..zones.len() {
            let node = NodeId::new(i as u32);
            prop_assert_eq!(
                engine.table(node),
                root.table(node),
                "{}: {} diverged from the root oracle at node {}",
                context,
                label,
                node
            );
        }
    }
    Ok(())
}

proptest! {
    // Fixed seed + bounded case count keeps this suite deterministic in CI.
    #![proptest_config(ProptestConfig {
        cases: 16,
        rng_seed: 0x0000_D8F1_2004,
        ..ProptestConfig::default()
    })]

    /// Random event sequences grouped into batching windows: moves patch
    /// the zone table in place and merge into one `ZoneDelta`; kills and
    /// revives stay silent until the window flushes. At every flush the
    /// sequential-delta and sharded engines (1/2/8/16 partitions — the
    /// persistent worker pool parked and rewoken across every window)
    /// must agree with the root oracle exactly, and the sharded stats
    /// must equal the sequential stats byte for byte.
    #[test]
    fn batched_windows_reach_bit_identical_tables_across_shard_counts(
        cols in 3usize..7,
        rows in 2usize..5,
        radius in 12.0f64..24.0,
        k in 2usize..4,
        window in 1usize..4,
        raw_ops in prop::collection::vec((0u8..6, 0u16..64, 0.0f64..1.0, 0.0f64..1.0), 2..10),
    ) {
        let mut topo = placement::grid(cols, rows, 5.0).unwrap();
        let n = topo.len();
        let ops = decode_ops(&raw_ops, n);
        let radio = RadioProfile::mica2();
        let mut grid = SpatialGrid::for_radius(&topo, radius);
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, radius);
        let mut alive = vec![true; n];

        let mut seq = DbfEngine::new(&zones, k);
        seq.reset(&zones, &alive);
        let init_want = seq.run_to_convergence_masked(&zones, &alive);
        // The sharded engines enter the chain through the sharded full
        // rebuild, which must already agree with the root byte for byte.
        let mut sharded: Vec<(usize, DbfEngine)> = [1usize, 2, 8, 16]
            .iter()
            .map(|&s| {
                let mut engine = DbfEngine::new(&zones, k).with_shards(s);
                let init_got = engine.rebuild_sharded(&zones, &alive);
                prop_assert_eq!(
                    &init_got,
                    &init_want,
                    "initial rebuild stats diverged at {} shards",
                    s
                );
                Ok((s, engine))
            })
            .collect::<Result<_, TestCaseError>>()?;

        // The batching window: moves merge into one delta, liveness flips
        // wait in `silent`, and everything re-converges at the flush.
        let mut pending = empty_delta();
        let mut pending_moves = 0usize;
        let mut silent: Vec<NodeId> = Vec::new();

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Move(node, fx, fy) => {
                    let field = topo.field();
                    let moved = NodeId::new(node as u32);
                    topo.move_node(moved, Point::new(fx * field.width, fy * field.height));
                    grid.move_node(moved, topo.position(moved));
                    pending.merge(zones.apply_moves(&topo, &radio, &grid, &[moved]));
                    pending_moves += 1;
                }
                Op::Kill(node) => {
                    alive[node] = false;
                    silent.push(NodeId::new(node as u32));
                }
                Op::Revive(node) => {
                    alive[node] = true;
                    silent.push(NodeId::new(node as u32));
                }
            }
            let window_full = (step + 1) % window == 0;
            let last = step + 1 == ops.len();
            if !(window_full || last) {
                continue;
            }
            if pending_moves == 0 && silent.is_empty() {
                continue; // nothing happened since the last flush
            }
            silent.sort_unstable();
            silent.dedup();
            let delta = std::mem::replace(&mut pending, empty_delta());
            pending_moves = 0;
            let want = seq.apply_zone_delta(&zones, &delta, &silent, &alive);
            for (s, engine) in &mut sharded {
                let got = engine.apply_zone_delta(&zones, &delta, &silent, &alive);
                prop_assert_eq!(
                    &got,
                    &want,
                    "step {}: {} shards reported different stats",
                    step,
                    s
                );
            }
            silent.clear();
            let engines: Vec<(&'static str, &DbfEngine)> = std::iter::once(("sequential", &seq))
                .chain(sharded.iter().map(|(s, e)| {
                    let label: &'static str = match s {
                        1 => "sharded ×1",
                        2 => "sharded ×2",
                        8 => "sharded ×8",
                        _ => "sharded ×16",
                    };
                    (label, e)
                }))
                .collect();
            assert_all_match_root(
                &engines,
                &zones,
                &alive,
                &format!("flush after step {step} ({op:?})"),
            )?;
        }
    }

    /// The reference-zone batching path (`incremental_zones = false` in the
    /// engine): the window flushes one `update_topology` call whose
    /// `old_zones` is the table from the *window start* — several epochs
    /// stale — with the deduped union of every mover since. Out-and-back
    /// moves and movers-meeting-movers are all in range of the random
    /// walk; every flush must land on the root oracle exactly, sequential
    /// and sharded alike.
    #[test]
    fn window_stale_old_tables_flush_to_the_root_oracle(
        cols in 3usize..7,
        rows in 2usize..5,
        radius in 12.0f64..24.0,
        window in 2usize..5,
        raw_ops in prop::collection::vec((0u8..6, 0u16..64, 0.0f64..1.0, 0.0f64..1.0), 3..12),
    ) {
        let mut topo = placement::grid(cols, rows, 5.0).unwrap();
        let n = topo.len();
        let ops = decode_ops(&raw_ops, n);
        let radio = RadioProfile::mica2();
        let mut zones = ZoneTable::build(&topo, &radio, radius);
        let mut alive = vec![true; n];
        let mut seq = DbfEngine::new(&zones, 2);
        seq.run_to_convergence(&zones);
        let mut sharded = DbfEngine::new(&zones, 2).with_shards(8);
        sharded.run_to_convergence(&zones);

        // Window state: the zone table as of the window start plus the
        // union of everything that changed since.
        let mut window_start = zones.clone();
        let mut changed: Vec<NodeId> = Vec::new();

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Move(node, fx, fy) => {
                    let field = topo.field();
                    let moved = NodeId::new(node as u32);
                    topo.move_node(moved, Point::new(fx * field.width, fy * field.height));
                    zones = ZoneTable::build(&topo, &radio, radius);
                    changed.push(moved);
                }
                Op::Kill(node) => {
                    alive[node] = false;
                    changed.push(NodeId::new(node as u32));
                }
                Op::Revive(node) => {
                    alive[node] = true;
                    changed.push(NodeId::new(node as u32));
                }
            }
            let window_full = (step + 1) % window == 0;
            let last = step + 1 == ops.len();
            if !(window_full || last) || changed.is_empty() {
                continue;
            }
            changed.sort_unstable();
            changed.dedup();
            let want = seq.update_topology(&window_start, &zones, &changed, &alive);
            let got = sharded.update_topology(&window_start, &zones, &changed, &alive);
            prop_assert_eq!(&got, &want, "step {}: sharded stats diverged", step);
            changed.clear();
            window_start = zones.clone();
            assert_all_match_root(
                &[("sequential", &seq), ("sharded ×8", &sharded)],
                &zones,
                &alive,
                &format!("stale-window flush after step {step} ({op:?})"),
            )?;
        }
    }

    /// A window that is pure silence (only kills/revives, no moves) flushes
    /// through an empty merged delta and still lands on the root oracle —
    /// the degenerate batch every mobility-free failure window produces.
    #[test]
    fn silent_windows_flush_through_an_empty_delta(
        cols in 3usize..7,
        rows in 2usize..5,
        radius in 12.0f64..24.0,
        flips in prop::collection::vec((0u8..2, 0u16..64), 1..6),
    ) {
        let topo = placement::grid(cols, rows, 5.0).unwrap();
        let n = topo.len();
        let radio = RadioProfile::mica2();
        let grid = SpatialGrid::for_radius(&topo, radius);
        let zones = ZoneTable::build_indexed(&topo, &radio, &grid, radius);
        let mut alive = vec![true; n];
        let mut seq = DbfEngine::new(&zones, 2);
        seq.run_to_convergence(&zones);
        let mut sharded = DbfEngine::new(&zones, 2).with_shards(8);
        sharded.run_to_convergence(&zones);

        let mut silent: Vec<NodeId> = Vec::new();
        for &(kind, node) in &flips {
            let node = node as usize % n;
            alive[node] = kind == 1;
            silent.push(NodeId::new(node as u32));
        }
        silent.sort_unstable();
        silent.dedup();
        let delta = empty_delta();
        let want = seq.apply_zone_delta(&zones, &delta, &silent, &alive);
        let got = sharded.apply_zone_delta(&zones, &delta, &silent, &alive);
        prop_assert_eq!(&got, &want, "stats must match on silent windows");
        assert_all_match_root(
            &[("sequential", &seq), ("sharded ×8", &sharded)],
            &zones,
            &alive,
            "silent flush",
        )?;
    }

    /// The sharded full rebuild against the root oracle directly: random
    /// fields, radii, k and liveness masks, rebuilt at 1, 2, 8 and 16
    /// partitions. Tables and stats must be bit-identical to the
    /// sequential `reset` + `run_to_convergence_masked` — and a rebuild
    /// over a dirty engine (post-event, pre-flush) must scrub every trace
    /// of the stale state.
    #[test]
    fn sharded_full_rebuild_matches_the_root_oracle(
        cols in 3usize..8,
        rows in 2usize..6,
        radius in 12.0f64..24.0,
        k in 2usize..4,
        dead in prop::collection::vec(0u16..64, 0..5),
        mover in 0u16..64,
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
    ) {
        let mut topo = placement::grid(cols, rows, 5.0).unwrap();
        let n = topo.len();
        let radio = RadioProfile::mica2();
        let mut alive = vec![true; n];
        for d in &dead {
            alive[*d as usize % n] = false;
        }

        let zones = ZoneTable::build(&topo, &radio, radius);
        let mut root = DbfEngine::new(&zones, k);
        root.reset(&zones, &alive);
        let want = root.run_to_convergence_masked(&zones, &alive);
        for shards in [1usize, 2, 8, 16] {
            let mut engine = DbfEngine::new(&zones, k).with_shards(shards);
            let got = engine.rebuild_sharded(&zones, &alive);
            prop_assert_eq!(&got, &want, "fresh rebuild stats at {} shards", shards);
            for i in 0..n {
                let node = NodeId::new(i as u32);
                prop_assert_eq!(
                    engine.table(node),
                    root.table(node),
                    "{} shards: node {} diverged on the fresh rebuild",
                    shards,
                    node
                );
            }

            // Perturb the world, then rebuild from scratch over the now
            // stale engine: the rebuild must depend only on its inputs.
            let moved = NodeId::new(mover as u32 % n as u32);
            let field = topo.field();
            topo.move_node(moved, Point::new(fx * field.width, fy * field.height));
            let new_zones = ZoneTable::build(&topo, &radio, radius);
            let mut new_root = DbfEngine::new(&new_zones, k);
            new_root.reset(&new_zones, &alive);
            let new_want = new_root.run_to_convergence_masked(&new_zones, &alive);
            let new_got = engine.rebuild_sharded(&new_zones, &alive);
            prop_assert_eq!(&new_got, &new_want, "stale rebuild stats at {} shards", shards);
            for i in 0..n {
                let node = NodeId::new(i as u32);
                prop_assert_eq!(
                    engine.table(node),
                    new_root.table(node),
                    "{} shards: node {} diverged on the post-move rebuild",
                    shards,
                    node
                );
            }
            // Undo the move so every shard count sees the same start state.
            topo = placement::grid(cols, rows, 5.0).unwrap();
        }
    }

    /// Dropping a pool-bearing engine mid-sequence and rebuilding a fresh
    /// one must neither deadlock (the dropped pool joins its parked
    /// workers) nor leak stale round data into the replacement: at every
    /// step the sequential and sharded engines agree with the root
    /// oracle, whether the sharded engine survived from the previous step
    /// or was just recreated.
    #[test]
    fn engine_drop_and_rebuild_mid_sequence_keeps_the_chain_exact(
        cols in 4usize..8,
        rows in 3usize..6,
        shards_idx in 0usize..3,
        steps in prop::collection::vec((0u16..64, 0.0f64..1.0, 0.0f64..1.0, any::<bool>()), 3..8),
    ) {
        let shards = [2usize, 8, 16][shards_idx];
        let mut topo = placement::grid(cols, rows, 5.0).unwrap();
        let n = topo.len();
        let radio = RadioProfile::mica2();
        let mut zones = ZoneTable::build(&topo, &radio, 20.0);
        let alive = vec![true; n];

        let mut seq = DbfEngine::new(&zones, 2);
        seq.run_to_convergence(&zones);
        let mut sharded = DbfEngine::new(&zones, 2).with_shards(shards);
        sharded.run_to_convergence(&zones);

        for (step, &(node, fx, fy, recycle)) in steps.iter().enumerate() {
            let moved = NodeId::new(node as u32 % n as u32);
            let field = topo.field();
            topo.move_node(moved, Point::new(fx * field.width, fy * field.height));
            let new_zones = ZoneTable::build(&topo, &radio, 20.0);
            let want = seq.update_topology(&zones, &new_zones, &[moved], &alive);
            let got = sharded.update_topology(&zones, &new_zones, &[moved], &alive);
            prop_assert_eq!(&got, &want, "step {}: stats diverged", step);
            zones = new_zones;
            assert_all_match_root(
                &[("sequential", &seq), ("sharded", &sharded)],
                &zones,
                &alive,
                &format!("step {step} (shards {shards})"),
            )?;
            if recycle {
                // Mid-simulation engine teardown: the old pool's workers
                // join here, and the replacement starts cold from a
                // sharded full rebuild of the current world.
                sharded = DbfEngine::new(&zones, 2).with_shards(shards);
                sharded.rebuild_sharded(&zones, &alive);
                assert_all_match_root(
                    &[("rebuilt sharded", &sharded)],
                    &zones,
                    &alive,
                    &format!("post-recycle at step {step} (shards {shards})"),
                )?;
            }
        }
    }
}
