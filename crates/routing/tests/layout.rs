//! Layout-differential harness: the SoA relaxation arena against the AoS
//! oracle.
//!
//! The AoS layout is the original flat `[RouteEntry]` block arena, kept
//! verbatim as the reference implementation. The SoA layout re-stores the
//! same tables as parallel cost/next-hop/hops planes plus a direct-map
//! destination index, and re-implements the relaxation kernel against
//! them. These suites hold the two observationally identical:
//!
//! 1. **Table-level lockstep replay** — random operation sequences
//!    (offers, ascending-cursor vector replays, single and batched
//!    destination removals, next-hop purges, clears) applied to one table
//!    per layout, asserting identical return values and bit-identical
//!    tables after **every** operation. Offered costs are quantized onto
//!    a sub-epsilon lattice so sequences repeatedly land inside the
//!    non-transitive tie window of the epsilon comparator — the regime
//!    where the replace-arm and insert-arm rank rules disagree and a
//!    kernel shortcut would diverge.
//! 2. **Engine-level end-to-end differential** — a 169-node field driven
//!    through all four DBF replay loops (sequential full re-convergence,
//!    sequential delta re-convergence, sharded full rebuild, sharded +
//!    batched delta) under both layouts, asserting byte-identical
//!    [`DbfStats`] and bit-identical tables at every checkpoint.

use proptest::prelude::*;
use spms_net::{placement, NodeId, Point, SpatialGrid, ZoneTable};
use spms_phy::RadioProfile;
use spms_routing::{DbfEngine, DbfStats, RouteEntry, RoutingTable, TableLayout};

/// One table operation, decoded from raw proptest draws.
#[derive(Clone, Debug)]
enum Op {
    /// A single route offer.
    Offer(u32, RouteEntry),
    /// A whole ascending distance vector replayed through one cursor.
    OfferVector(Vec<u32>, RouteEntry),
    RemoveDest(u32),
    RemoveDests(Vec<u32>),
    PurgeVia(u32),
    Clear,
}

/// Builds an entry whose cost sits on a half-epsilon lattice: offers
/// regularly collide inside the `COST_EPS` tie window, exercising the
/// non-transitive comparator edge the SoA kernel must replicate exactly.
fn entry(via: u8, cq: u8, eq: u8, hops: u8) -> RouteEntry {
    RouteEntry {
        via: NodeId::new(100 + u32::from(via % 6)),
        cost: f64::from(cq % 5) * 0.5 + f64::from(eq % 4) * 0.6e-12,
        hops: 1 + u32::from(hops % 4),
    }
}

/// A sorted, distinct destination set derived from one seed draw.
fn dest_set(d: u16, len: u8) -> Vec<u32> {
    let mut v: Vec<u32> = (0..u32::from(len % 7) + 1)
        .map(|i| (u32::from(d) + i * 5) % 64)
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn decode_ops(raw: &[(u8, u16, u8, u8, u8, u8)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, d, via, cq, eq, hops)| match kind % 8 {
            0..=2 => Op::Offer(u32::from(d) % 64, entry(via, cq, eq, hops)),
            3 | 4 => Op::OfferVector(dest_set(d, via), entry(via, cq, eq, hops)),
            5 => Op::RemoveDest(u32::from(d) % 64),
            6 => Op::RemoveDests(dest_set(d, via)),
            _ => {
                if cq % 4 == 0 {
                    Op::Clear
                } else {
                    Op::PurgeVia(100 + u32::from(via % 6))
                }
            }
        })
        .collect()
}

/// Applies one op and folds every boolean/count it returns into one word,
/// so the two layouts' observable effects can be compared exactly.
fn apply(table: &mut RoutingTable, op: &Op) -> u64 {
    match op {
        Op::Offer(d, e) => u64::from(table.offer(NodeId::new(*d), *e)),
        Op::OfferVector(dests, e) => {
            let mut cursor = 0usize;
            let mut acc = 0u64;
            for &d in dests {
                acc =
                    (acc << 1) | u64::from(table.offer_ascending(NodeId::new(d), *e, &mut cursor));
            }
            acc
        }
        Op::RemoveDest(d) => u64::from(table.remove_dest(NodeId::new(*d))),
        Op::RemoveDests(ds) => {
            let ids: Vec<NodeId> = ds.iter().map(|&d| NodeId::new(d)).collect();
            table.remove_dests(&ids) as u64
        }
        Op::PurgeVia(v) => u64::from(table.purge_via(NodeId::new(*v))),
        Op::Clear => {
            table.clear();
            0
        }
    }
}

proptest! {
    // Fixed seed + bounded case count keeps this suite deterministic in CI.
    #![proptest_config(ProptestConfig {
        cases: 24,
        rng_seed: 0x0000_1A70_2004,
        ..ProptestConfig::default()
    })]

    /// Identical operation sequences leave the SoA arena bit-identical to
    /// the AoS oracle after every single step, for every `k` (k = 2 takes
    /// the unrolled kernel, other k the generic plane kernel).
    #[test]
    fn lockstep_replay_is_bit_identical(
        k in 1usize..4,
        raw_ops in prop::collection::vec(
            (0u8..16, 0u16..256, 0u8..12, 0u8..10, 0u8..8, 0u8..8),
            1..40,
        ),
    ) {
        let ops = decode_ops(&raw_ops);
        let mut soa = RoutingTable::with_layout(k, TableLayout::Soa);
        let mut aos = RoutingTable::with_layout(k, TableLayout::Aos);
        for (step, op) in ops.iter().enumerate() {
            let got = apply(&mut soa, op);
            let want = apply(&mut aos, op);
            prop_assert_eq!(
                got, want,
                "step {}: layouts disagreed on the result of {:?}", step, op
            );
            prop_assert_eq!(
                &soa, &aos,
                "step {}: tables diverged after {:?}", step, op
            );
            prop_assert_eq!(soa.total_entries(), aos.total_entries());
        }
        // Read API agrees destination by destination, and a layout
        // round-trip preserves the table exactly.
        for d in 0..64u32 {
            let d = NodeId::new(d);
            prop_assert_eq!(soa.best(d), aos.best(d));
            prop_assert!(soa.routes_to(d) == aos.routes_to(d));
        }
        let mut round_trip = soa.clone();
        round_trip.convert_layout(TableLayout::Aos);
        prop_assert_eq!(&round_trip, &aos);
        round_trip.convert_layout(TableLayout::Soa);
        prop_assert_eq!(&round_trip, &soa);
    }
}

/// Asserts two engines hold bit-identical tables at every node.
fn assert_tables_match(soa: &DbfEngine, aos: &DbfEngine, n: usize, context: &str) {
    assert_eq!(soa.table_layout(), TableLayout::Soa, "{context}");
    assert_eq!(aos.table_layout(), TableLayout::Aos, "{context}");
    for i in 0..n {
        let node = NodeId::new(i as u32);
        assert_eq!(
            soa.table(node),
            aos.table(node),
            "{context}: layouts diverged at node {node}"
        );
    }
}

/// Runs one closure against both engines and asserts byte-identical stats.
fn step_both(
    soa: &mut DbfEngine,
    aos: &mut DbfEngine,
    context: &str,
    mut f: impl FnMut(&mut DbfEngine) -> DbfStats,
) {
    let got = f(soa);
    let want = f(aos);
    assert_eq!(got, want, "{context}: stats diverged");
}

/// The end-to-end differential at the paper's 169-node scale: every DBF
/// replay loop — sequential full, sequential delta, sharded full, sharded
/// batched delta — produces byte-identical stats and bit-identical tables
/// under both arena layouts.
#[test]
fn dbf_loops_are_bit_identical_across_layouts_169_nodes() {
    let mut topo = placement::grid(13, 13, 5.0).unwrap();
    let n = topo.len();
    let radio = RadioProfile::mica2();
    let radius = 20.0;
    let mut grid = SpatialGrid::for_radius(&topo, radius);
    let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, radius);
    let mut alive = vec![true; n];

    let k = 2;
    let mut seq_soa = DbfEngine::new(&zones, k).with_table_layout(TableLayout::Soa);
    let mut seq_aos = DbfEngine::new(&zones, k).with_table_layout(TableLayout::Aos);
    let mut sh_soa = DbfEngine::new(&zones, k)
        .with_shards(4)
        .with_table_layout(TableLayout::Soa);
    let mut sh_aos = DbfEngine::new(&zones, k)
        .with_shards(4)
        .with_table_layout(TableLayout::Aos);

    // Loop 1: sequential full re-convergence.
    step_both(&mut seq_soa, &mut seq_aos, "sequential full", |e| {
        e.reset(&zones, &alive);
        e.run_to_convergence_masked(&zones, &alive)
    });
    assert_tables_match(&seq_soa, &seq_aos, n, "sequential full");

    // Loop 2: sharded full rebuild.
    step_both(&mut sh_soa, &mut sh_aos, "sharded full", |e| {
        e.rebuild_sharded(&zones, &alive)
    });
    assert_tables_match(&sh_soa, &sh_aos, n, "sharded full");

    // A batched topology window: three moves merged into one delta plus
    // two silent liveness flips — the workload of the delta loops.
    let mut delta = zones.apply_moves(&topo, &radio, &grid, &[]);
    for (i, node) in [5u32, 84, 130].into_iter().enumerate() {
        let node = NodeId::new(node);
        let field = topo.field();
        let to = Point::new(
            field.width * (0.2 + 0.3 * i as f64),
            field.height * (0.7 - 0.2 * i as f64),
        );
        topo.move_node(node, to);
        grid.move_node(node, topo.position(node));
        delta.merge(zones.apply_moves(&topo, &radio, &grid, &[node]));
    }
    alive[40] = false;
    alive[77] = false;
    let silent = vec![NodeId::new(40), NodeId::new(77)];

    // Loop 3: sequential delta re-convergence.
    step_both(&mut seq_soa, &mut seq_aos, "sequential delta", |e| {
        e.apply_zone_delta(&zones, &delta, &silent, &alive)
    });
    assert_tables_match(&seq_soa, &seq_aos, n, "sequential delta");

    // Loop 4: sharded + batched delta.
    step_both(&mut sh_soa, &mut sh_aos, "sharded delta", |e| {
        e.apply_zone_delta(&zones, &delta, &silent, &alive)
    });
    assert_tables_match(&sh_soa, &sh_aos, n, "sharded delta");

    // And the chain stays anchored: the sharded SoA tables equal the
    // sequential AoS oracle's, node for node.
    assert_tables_match(&sh_soa, &seq_aos, n, "sharded soa vs sequential aos");
}
