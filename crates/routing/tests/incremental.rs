//! Property-based equivalence of the incremental delta-DBF against the
//! full-rebuild reference oracle.
//!
//! An incremental engine survives an arbitrary sequence of topology events
//! (node moves, failures, repairs), re-converging only the affected zones
//! after each one. After every event its tables must be **exactly** equal
//! to a from-scratch `reset` + `run_to_convergence_masked` rebuild — the
//! delta exchange restricted to the invalidated destinations replays the
//! same relaxation the full rebuild would, so even the floating-point sums
//! agree bit for bit. A centralized Dijkstra cross-check (with tolerance)
//! guards against both distributed paths drifting together.

use proptest::prelude::*;
use spms_net::{placement, NodeId, Point, SpatialGrid, Topology, ZoneTable};
use spms_phy::RadioProfile;
use spms_routing::{oracle_tables_masked, DbfEngine};

/// One topology event, decoded from raw proptest draws.
#[derive(Clone, Copy, Debug)]
enum Op {
    Move(usize, f64, f64),
    Kill(usize),
    Revive(usize),
}

fn decode_ops(raw: &[(u8, u16, f64, f64)], n: usize) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, node, x, y)| {
            let node = node as usize % n;
            match kind % 3 {
                0 => Op::Move(node, x, y),
                1 => Op::Kill(node),
                _ => Op::Revive(node),
            }
        })
        .collect()
}

fn build_zones(topo: &Topology, radius: f64) -> ZoneTable {
    ZoneTable::build(topo, &RadioProfile::mica2(), radius)
}

/// Asserts exact table equality between the incremental engine and a
/// from-scratch rebuild, and tolerant agreement with the Dijkstra oracle.
fn assert_matches_reference(
    dbf: &DbfEngine,
    zones: &ZoneTable,
    alive: &[bool],
    context: &str,
) -> Result<(), TestCaseError> {
    let mut reference = DbfEngine::new(zones, dbf.k());
    reference.reset(zones, alive);
    reference.run_to_convergence_masked(zones, alive);
    let oracle = oracle_tables_masked(zones, dbf.k(), alive);
    for (i, want) in oracle.iter().enumerate() {
        let node = NodeId::new(i as u32);
        prop_assert_eq!(
            dbf.table(node),
            reference.table(node),
            "{}: node {} diverged from the full rebuild",
            context,
            node
        );
        let got = dbf.table(node);
        let gd: Vec<NodeId> = got.destinations().collect();
        let wd: Vec<NodeId> = want.destinations().collect();
        prop_assert_eq!(gd, wd, "{}: node {} oracle destination sets", context, node);
        for d in want.destinations() {
            let a = want.routes_to(d);
            let b = got.routes_to(d);
            prop_assert_eq!(a.len(), b.len(), "{}: node {} dest {}", context, node, d);
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.via, y.via, "{}: node {} dest {}", context, node, d);
                prop_assert_eq!(x.hops, y.hops, "{}: node {} dest {}", context, node, d);
                prop_assert!(
                    (x.cost - y.cost).abs() < 1e-9,
                    "{}: node {} dest {}: oracle {} vs dbf {}",
                    context,
                    node,
                    d,
                    x.cost,
                    y.cost
                );
            }
        }
    }
    Ok(())
}

proptest! {
    // Fixed seed + bounded case count keeps this suite deterministic in CI.
    #![proptest_config(ProptestConfig {
        cases: 24,
        rng_seed: 0x0000_D8F1_2004,
        ..ProptestConfig::default()
    })]

    /// Random move/kill/revive sequences: after every event the incremental
    /// engine equals a from-scratch masked rebuild exactly.
    #[test]
    fn event_sequences_match_from_scratch_rebuild(
        cols in 3usize..7,
        rows in 2usize..5,
        radius in 12.0f64..24.0,
        k in 2usize..4,
        raw_ops in prop::collection::vec((0u8..6, 0u16..64, 0.0f64..1.0, 0.0f64..1.0), 1..8),
    ) {
        let mut topo = placement::grid(cols, rows, 5.0).unwrap();
        let n = topo.len();
        let ops = decode_ops(&raw_ops, n);
        let mut zones = build_zones(&topo, radius);
        let mut alive = vec![true; n];
        let mut dbf = DbfEngine::new(&zones, k);
        dbf.run_to_convergence(&zones);

        for (step, op) in ops.iter().enumerate() {
            let context = format!("step {step} ({op:?})");
            match *op {
                Op::Move(node, fx, fy) => {
                    let field = topo.field();
                    let dest = Point::new(fx * field.width, fy * field.height);
                    topo.move_node(NodeId::new(node as u32), dest);
                    let new_zones = build_zones(&topo, radius);
                    let old_zones = std::mem::replace(&mut zones, new_zones);
                    dbf.update_topology(
                        &old_zones,
                        &zones,
                        &[NodeId::new(node as u32)],
                        &alive,
                    );
                }
                Op::Kill(node) => {
                    // Killing a dead node is a (legal) no-op invalidation.
                    alive[node] = false;
                    dbf.invalidate_zone(&zones, &[NodeId::new(node as u32)], &alive);
                }
                Op::Revive(node) => {
                    alive[node] = true;
                    dbf.invalidate_zone(&zones, &[NodeId::new(node as u32)], &alive);
                }
            }
            assert_matches_reference(&dbf, &zones, &alive, &context)?;
        }
    }

    /// Liveness flips that are *not* reported when they happen (the
    /// simulation rides out failures on alternative routes) but are folded
    /// into the `changed` set of the next topology update still land on the
    /// from-scratch rebuild, even batched together with a move.
    #[test]
    fn batched_liveness_flips_reported_at_next_update_match_rebuild(
        cols in 3usize..7,
        rows in 2usize..5,
        radius in 12.0f64..24.0,
        raw_ops in prop::collection::vec((0u8..6, 0u16..64, 0.0f64..1.0, 0.0f64..1.0), 2..10),
    ) {
        let mut topo = placement::grid(cols, rows, 5.0).unwrap();
        let n = topo.len();
        let ops = decode_ops(&raw_ops, n);
        let mut zones = build_zones(&topo, radius);
        let mut alive = vec![true; n];
        let mut dbf = DbfEngine::new(&zones, 2);
        dbf.run_to_convergence(&zones);
        let mut unreported: Vec<NodeId> = Vec::new();

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Move(node, fx, fy) => {
                    let field = topo.field();
                    topo.move_node(
                        NodeId::new(node as u32),
                        Point::new(fx * field.width, fy * field.height),
                    );
                    let new_zones = build_zones(&topo, radius);
                    let old_zones = std::mem::replace(&mut zones, new_zones);
                    let mut changed = vec![NodeId::new(node as u32)];
                    changed.append(&mut unreported);
                    changed.dedup();
                    dbf.update_topology(&old_zones, &zones, &changed, &alive);
                    assert_matches_reference(
                        &dbf,
                        &zones,
                        &alive,
                        &format!("step {step} (batched {changed:?})"),
                    )?;
                }
                // Silent flips: applied to the mask, reported later.
                Op::Kill(node) => {
                    alive[node] = false;
                    unreported.push(NodeId::new(node as u32));
                }
                Op::Revive(node) => {
                    alive[node] = true;
                    unreported.push(NodeId::new(node as u32));
                }
            }
        }
        if !unreported.is_empty() {
            unreported.dedup();
            dbf.invalidate_zone(&zones, &unreported, &alive);
            assert_matches_reference(&dbf, &zones, &alive, "final flush")?;
        }
    }

    /// The fully incremental stack: zones maintained **in place** by
    /// `ZoneTable::apply_moves` over a spatial grid (no old zone table
    /// ever exists), routing re-converged from the resulting `ZoneDelta`
    /// via `apply_zone_delta`, with kills/revives ridden out silently and
    /// folded in at the next move — after every event the tables equal a
    /// from-scratch masked rebuild exactly. This mirrors the simulation
    /// engine's `incremental_zones` + `incremental_routing` epoch path.
    #[test]
    fn patched_zone_sequences_match_from_scratch_rebuild(
        cols in 3usize..7,
        rows in 2usize..5,
        radius in 12.0f64..24.0,
        k in 2usize..4,
        raw_ops in prop::collection::vec((0u8..6, 0u16..64, 0.0f64..1.0, 0.0f64..1.0), 1..8),
    ) {
        let mut topo = placement::grid(cols, rows, 5.0).unwrap();
        let n = topo.len();
        let ops = decode_ops(&raw_ops, n);
        let radio = RadioProfile::mica2();
        let mut grid = SpatialGrid::build(&topo, radius);
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, radius);
        let mut alive = vec![true; n];
        let mut dbf = DbfEngine::new(&zones, k);
        dbf.run_to_convergence(&zones);
        let mut unreported: Vec<NodeId> = Vec::new();

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Move(node, fx, fy) => {
                    let field = topo.field();
                    let moved = NodeId::new(node as u32);
                    topo.move_node(moved, Point::new(fx * field.width, fy * field.height));
                    grid.move_node(moved, topo.position(moved));
                    let delta = zones.apply_moves(&topo, &radio, &grid, &[moved]);
                    prop_assert_eq!(
                        &zones,
                        &ZoneTable::build(&topo, &radio, radius),
                        "step {}: zone patch diverged",
                        step
                    );
                    unreported.dedup();
                    dbf.apply_zone_delta(&zones, &delta, &unreported, &alive);
                    unreported.clear();
                    assert_matches_reference(
                        &dbf,
                        &zones,
                        &alive,
                        &format!("step {step} (patched move of {moved})"),
                    )?;
                }
                // Silent flips: applied to the mask, folded in at the next
                // zone patch.
                Op::Kill(node) => {
                    alive[node] = false;
                    unreported.push(NodeId::new(node as u32));
                }
                Op::Revive(node) => {
                    alive[node] = true;
                    unreported.push(NodeId::new(node as u32));
                }
            }
        }
        if !unreported.is_empty() {
            unreported.dedup();
            dbf.invalidate_zone(&zones, &unreported, &alive);
            assert_matches_reference(&dbf, &zones, &alive, "final flush")?;
        }
    }

    /// Heavy churn: whole cohorts leave or rejoin at once (the mass
    /// join/leave mode of the adversarial-churn subsystem). Each epoch
    /// flips a cohort-sized slice of the mask and invalidates it in ONE
    /// call — exactly how the simulation engine queues one liveness delta
    /// per churn cohort — and after every epoch the tables equal a
    /// from-scratch masked rebuild.
    #[test]
    fn cohort_kill_revive_matches_rebuild(
        cols in 3usize..7,
        rows in 2usize..5,
        radius in 12.0f64..24.0,
        k in 2usize..4,
        epochs in prop::collection::vec(
            (prop::collection::vec(0u16..64, 1..12), any::<bool>()),
            1..6,
        ),
    ) {
        let topo = placement::grid(cols, rows, 5.0).unwrap();
        let n = topo.len();
        let zones = build_zones(&topo, radius);
        let mut alive = vec![true; n];
        let mut dbf = DbfEngine::new(&zones, k);
        dbf.run_to_convergence(&zones);
        for (step, (raw, kill)) in epochs.iter().enumerate() {
            let mut cohort: Vec<NodeId> = raw
                .iter()
                .map(|&r| NodeId::new(u32::from(r) % n as u32))
                .collect();
            cohort.sort_unstable();
            cohort.dedup();
            for &c in &cohort {
                alive[c.index()] = !kill;
            }
            dbf.invalidate_zone(&zones, &cohort, &alive);
            assert_matches_reference(
                &dbf,
                &zones,
                &alive,
                &format!("epoch {step} (kill={kill}, cohort of {})", cohort.len()),
            )?;
        }
    }

    /// The delta run's byte accounting stays internally consistent across
    /// arbitrary single events.
    #[test]
    fn delta_stats_account_bytes_per_node(
        cols in 3usize..8,
        node in 0u16..64,
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
    ) {
        let mut topo = placement::grid(cols, 3, 5.0).unwrap();
        let n = topo.len();
        let moved = NodeId::new(node as usize as u32 % n as u32);
        let old_zones = build_zones(&topo, 20.0);
        let mut dbf = DbfEngine::new(&old_zones, 2);
        dbf.run_to_convergence(&old_zones);
        let field = topo.field();
        topo.move_node(moved, Point::new(fx * field.width, fy * field.height));
        let new_zones = build_zones(&topo, 20.0);
        let alive = vec![true; n];
        let stats = dbf.update_topology(&old_zones, &new_zones, &[moved], &alive);
        prop_assert_eq!(stats.per_node_bytes.iter().sum::<u64>(), stats.bytes_total);
        prop_assert!(stats.entries_sent >= stats.messages);
        prop_assert!(stats.rounds >= 1);
        let header = u64::from(spms_routing::DbfWireFormat::default().header_bytes);
        prop_assert!(stats.bytes_total >= stats.messages * header);
    }
}

#[test]
fn full_cohort_leave_then_rejoin_matches_rebuild() -> Result<(), TestCaseError> {
    // The two edge cases of the cohort path pinned deterministically: the
    // ENTIRE field dies in one epoch (no alive node holds a single route),
    // then the entire field rejoins — both must land exactly on the
    // from-scratch masked rebuild.
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let n = topo.len();
    let zones = build_zones(&topo, 20.0);
    let everyone: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
    let mut dbf = DbfEngine::new(&zones, 2);
    dbf.run_to_convergence(&zones);

    let dead = vec![false; n];
    dbf.invalidate_zone(&zones, &everyone, &dead);
    assert_matches_reference(&dbf, &zones, &dead, "empty field")?;
    for node in &everyone {
        assert_eq!(
            dbf.table(*node).destinations().count(),
            0,
            "dead node {node} still holds routes"
        );
    }

    let alive = vec![true; n];
    dbf.invalidate_zone(&zones, &everyone, &alive);
    assert_matches_reference(&dbf, &zones, &alive, "full rejoin")?;
    Ok(())
}
