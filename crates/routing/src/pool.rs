//! A persistent worker pool for the sharded DBF round loops.
//!
//! The sharded paths used to pay a `std::thread::scope` spawn set *per
//! round* — tens of microseconds per thread, re-paid every one of the
//! dozens of rounds in a convergence, which is exactly the serial residue
//! that kept the sharded paths from beating the sequential oracle. The
//! [`WorkerPool`] spawns its OS threads once, parks them on a condvar
//! between dispatches, and hands each round's work over with one
//! mutex/condvar round trip.
//!
//! Work is distributed by an atomic task cursor: every dispatch publishes
//! a task count plus a `Fn(usize)` and the caller *and* the workers claim
//! indices with `fetch_add` until the range is exhausted. Claiming order
//! is scheduling-dependent, but every task index is claimed exactly once
//! and tasks only touch disjoint data (the DBF call sites hand each task
//! its own contiguous receiver or sender range), so the pool cannot
//! change results, only wall-clock time — the same contract the scoped
//! spawns had.
//!
//! Panic safety: a panicking task is caught on the worker, the first
//! payload is stashed, and the caller re-raises it after every worker has
//! left the dispatch — the same "a panicked child panics the parent"
//! semantics `std::thread::scope` provides. A panicking *caller* still
//! waits for the workers to drain before unwinding (the drop guard in
//! [`WorkerPool::run`]), so the borrowed job never dangles.
//!
//! This module is the crate's one `unsafe` island (the crate is otherwise
//! `deny(unsafe_code)`): the job closure and cursor live on the caller's
//! stack and are published to the workers as raw pointers, erased of
//! their borrow lifetimes. The safety argument is confinement in time —
//! the pointers are only dereferenced between publication and the
//! close-out handshake, and `run` cannot return (or unwind) before that
//! handshake completes.

#![allow(unsafe_code)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// One published dispatch: the task count plus lifetime-erased pointers
/// to the caller-owned closure and claim cursor.
#[derive(Clone, Copy)]
struct Job {
    /// The task body; lives on the [`WorkerPool::run`] caller's stack.
    f: *const (dyn Fn(usize) + Sync),
    /// The shared claim cursor; same stack frame as `f`.
    next: *const AtomicUsize,
    /// Tasks `0..tasks` are claimed through `next`.
    tasks: usize,
}

// SAFETY: `Job` only moves between threads through `State`, under the
// pool mutex. The pointees live on the stack frame of the `run` call that
// published the job, and `run` blocks (even on unwind, via `CloseGuard`)
// until every worker that entered the job has left it and the job has
// been unpublished — so no worker can dereference these pointers after
// the frame is gone. The pointees themselves are shareable: the closure
// is `Sync` and `AtomicUsize` is `Sync`.
unsafe impl Send for Job {}

/// Pool state behind the mutex.
struct State {
    /// Bumped once per dispatch so parked workers can tell a new job from
    /// the one they already finished.
    epoch: u64,
    /// The currently published dispatch, if any.
    job: Option<Job>,
    /// Workers currently inside the published dispatch.
    active: usize,
    /// First panic payload captured from a worker this dispatch.
    panic: Option<Box<dyn Any + Send>>,
    /// Set once, by [`WorkerPool::drop`]; workers exit when they see it.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here waiting for a new epoch (or shutdown).
    work: Condvar,
    /// The dispatching caller parks here waiting for `active` to drain.
    done: Condvar,
}

impl Shared {
    /// Locks the state, shrugging off poisoning: the protocol never holds
    /// the lock across user code, so a poisoned mutex still guards a
    /// consistent `State` (the poison flag only records that some thread
    /// panicked while *waiting*, e.g. under `cargo test` aborts).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A persistent pool of parked OS threads executing one indexed dispatch
/// at a time. See the module docs at the top of `pool.rs` for the protocol
/// and the safety argument.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish_non_exhaustive()
    }
}

/// Waits out the close handshake even if the caller's own task body
/// panics: workers still hold borrows into the caller's frame until
/// `active` drains, so the frame must not unwind past them.
struct CloseGuard<'a> {
    shared: &'a Shared,
}

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        while state.active > 0 {
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.job = None;
        let worker_panic = state.panic.take();
        drop(state);
        if let Some(payload) = worker_panic {
            // Re-raise a worker's panic on the caller — unless the caller
            // is already unwinding, in which case its own panic wins.
            if !std::thread::panicking() {
                resume_unwind(payload);
            }
        }
    }
}

impl WorkerPool {
    /// Spawns `workers` parked threads. `0` is valid: every dispatch then
    /// runs entirely on the calling thread (useful for tests and as the
    /// degenerate single-shard configuration).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dbf-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn DBF pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// The number of pooled worker threads (the caller participates too,
    /// so a dispatch runs on up to `workers() + 1` threads).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f` once for every task in `tasks`, on the caller plus the
    /// pooled workers, returning when all tasks are done. Tasks are
    /// claimed exactly once each; claiming order is unspecified, so `f`
    /// must not care which thread runs which task (the DBF call sites
    /// hand each task a disjoint `&mut` range, making order moot).
    ///
    /// # Panics
    ///
    /// If a task panics, the first captured payload is re-raised here
    /// after all workers have left the dispatch.
    pub fn run<T: Send>(&self, tasks: &mut [T], f: impl Fn(&mut T) + Sync) {
        let base = SendPtr(tasks.as_mut_ptr());
        let n = tasks.len();
        let call = move |i: usize| {
            // SAFETY: `i` comes out of the dispatch's claim cursor, so it
            // is in `0..n` and claimed by exactly one thread — this `&mut`
            // aliases nothing, and `T: Send` lets it cross threads.
            let task = unsafe { &mut *base.get().add(i) };
            f(task);
        };
        self.run_indexed(n, &call);
    }

    /// The untyped dispatch: publish, participate, close out.
    fn run_indexed(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        let next = AtomicUsize::new(0);
        // SAFETY: pure lifetime erasure on the trait-object reference —
        // `Job`'s raw pointer carries the default `'static` object bound,
        // but every dereference happens strictly before the close-out
        // handshake below returns, while `f`'s real lifetime is live.
        let f_erased: &(dyn Fn(usize) + Sync + 'static) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &(dyn Fn(usize) + Sync + 'static)>(f)
        };
        {
            let mut state = self.shared.lock();
            assert!(
                state.job.is_none(),
                "WorkerPool::run is not reentrant: a dispatch is already live"
            );
            debug_assert_eq!(state.active, 0);
            state.job = Some(Job {
                f: std::ptr::from_ref(f_erased),
                next: &raw const next,
                tasks,
            });
            state.epoch += 1;
        }
        self.shared.work.notify_all();
        // From here on the workers may hold borrows into this frame; the
        // guard makes the close-out handshake unconditional.
        let guard = CloseGuard {
            shared: &self.shared,
        };
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            f(i);
        }
        drop(guard);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            // A worker can only terminate by seeing `shutdown`; a panic
            // inside a task is caught and stashed, never unwound through
            // the worker loop, so join errors cannot happen in practice.
            let _ = handle.join();
        }
    }
}

/// `*mut T` that may cross threads when `T` does. The pool hands each
/// claimed index to exactly one thread, so the pointer is only ever used
/// to mint non-aliasing `&mut T`s.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// The wrapped pointer. Going through a method (rather than field
    /// access) makes closures capture the whole `Sync` wrapper instead of
    /// disjointly capturing the raw (non-`Sync`) field.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: see the type docs — uniqueness of each minted `&mut T` is
// guaranteed by the claim cursor, and `T: Send` makes moving that access
// to another thread sound. `Copy` capture of the wrapper itself is plain
// pointer copying.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// The parked-worker loop: wait for a fresh epoch with a live job, claim
/// tasks until the cursor runs dry, report back, re-park.
fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    if let Some(job) = state.job {
                        // Registering `active` under the same lock that
                        // checked `job.is_some()` is what lets the caller
                        // treat "active == 0 while holding the lock" as
                        // "no worker holds my borrows".
                        state.active += 1;
                        break job;
                    }
                    // Woke too late — the dispatch already closed. Keep
                    // waiting for the next epoch.
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: this worker is registered in `active`, so the
            // caller's close-out handshake cannot complete (and the
            // pointees' stack frame cannot unwind) until we decrement it
            // below — the pointers are live for the whole closure.
            let f = unsafe { &*job.f };
            let next = unsafe { &*job.next };
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= job.tasks {
                    break;
                }
                f(i);
            }
        }));
        let mut state = shared.lock();
        if let Err(payload) = result {
            state.panic.get_or_insert(payload);
        }
        state.active -= 1;
        if state.active == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        let mut hits = vec![0u32; 1000];
        pool.run(&mut hits, |h| *h += 1);
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn zero_workers_runs_on_the_caller() {
        let pool = WorkerPool::new(0);
        let mut hits = vec![0u32; 64];
        pool.run(&mut hits, |h| *h += 1);
        assert!(hits.iter().all(|&h| h == 1));
        assert_eq!(pool.workers(), 0);
    }

    #[test]
    fn dispatches_reuse_the_same_parked_workers() {
        // Many epochs over one pool, with varying task counts (including
        // empty and caller-only-sized dispatches): the per-round pattern
        // of the DBF loops.
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        let mut expected = 0u64;
        for round in 0..200usize {
            let tasks = round % 7; // 0..=6 tasks
            let mut values: Vec<u64> = (0..tasks as u64).collect();
            pool.run(&mut values, |v| {
                total.fetch_add(*v + 1, Ordering::Relaxed);
            });
            expected += (1..=tasks as u64).sum::<u64>();
        }
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn worker_panic_reaches_the_caller_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut tasks = vec![0u32; 8];
            pool.run(&mut tasks, |_| panic!("boom"));
        }));
        assert!(caught.is_err(), "task panics must reach the dispatcher");
        // The pool remains usable after a panicked dispatch.
        let mut hits = vec![0u32; 32];
        pool.run(&mut hits, |h| *h += 1);
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(4);
        let mut hits = vec![0u8; 16];
        pool.run(&mut hits, |h| *h = 1);
        drop(pool); // must not hang or leak threads
    }
}
