//! Zone routing for SPMS: distributed Bellman-Ford with k-route tables.
//!
//! §3.2 of the paper: "The Distributed Bellman Ford (DBF) algorithm is
//! executed in each zone to form the routes. Each entry of the routing table
//! at each node has a destination field and the cost of going to the
//! destination through each of its neighbors. Maintaining n entries for each
//! destination enables the protocol to tolerate concurrent failures of n
//! intermediate nodes."
//!
//! This crate provides:
//!
//! * [`RoutingTable`] / [`RouteEntry`] — per-destination lists of up to `k`
//!   next-hop alternatives ordered by cost (the paper's implementation keeps
//!   the shortest and second-shortest path, `k = 2`), stored in a dense
//!   arena (sorted destination vector + flat `k`-slot blocks) rather than a
//!   per-entry map,
//! * [`DbfEngine`] — the distance-vector exchange itself, run in synchronous
//!   rounds until quiescence, with message/byte accounting so the simulation
//!   can charge the routing-table-formation energy the paper includes in its
//!   mobility results (Figure 12). Besides the full rebuild it supports
//!   *incremental delta re-convergence* ([`DbfEngine::update_topology`] /
//!   [`DbfEngine::invalidate_zone`]): a topology event invalidates only the
//!   destinations it can reach and the exchange propagates only the changed
//!   entries, reaching the exact same fixpoint as a from-scratch rebuild at
//!   a fraction of the cost,
//! * [`oracle_tables`] / [`oracle_tables_masked`] — centralized construction
//!   of the same tables from the Dijkstra oracle, used to cross-check the
//!   distributed algorithm and as a fast path for static failure-free
//!   experiments,
//! * [`DbfWireFormat`] — the byte-size model for distance-vector packets
//!   (full and delta messages share the layout: a header plus per-entry
//!   triples, so delta savings show up directly in the byte accounting).
//!
//! # Example
//!
//! ```
//! use spms_net::{placement, NodeId, ZoneTable};
//! use spms_phy::RadioProfile;
//! use spms_routing::DbfEngine;
//!
//! let topo = placement::grid(5, 1, 5.0).unwrap();
//! let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
//! let mut dbf = DbfEngine::new(&zones, 2);
//! let stats = dbf.run_to_convergence(&zones);
//! assert!(stats.rounds >= 2);
//! // Node 4 reaches node 0 through its 5 m neighbor, node 3.
//! let best = dbf.table(NodeId::new(4)).best(NodeId::new(0)).unwrap();
//! assert_eq!(best.via, NodeId::new(3));
//! ```

// `deny` rather than `forbid`: the `pool` module is the crate's single,
// documented `unsafe` island (lifetime-erased job handoff to persistent
// worker threads) and opts back in with a scoped `allow`. Everything
// else in the crate still refuses `unsafe` at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod dbf;
mod oracle;
mod pool;
mod table;
mod wire;

pub use dbf::{DbfEngine, DbfStats, DbfVector};
pub use oracle::{oracle_tables, oracle_tables_masked};
pub use pool::WorkerPool;
pub use table::{RouteEntry, Routes, RoutesIter, RoutingTable, TableLayout};
pub use wire::DbfWireFormat;
