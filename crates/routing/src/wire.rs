//! Byte-size model for distance-vector packets.

/// Sizes used to convert a distance vector into on-air bytes.
///
/// The paper does not specify its DBF packet layout; we use a compact
/// encoding consistent with its 2-byte ADV/REQ packets: a 2-byte header plus
/// 4 bytes per entry (2-byte destination id, 1-byte quantized cost, 1-byte
/// hop count). The sizes are configurable so the sensitivity can be explored
/// in the ablation benches.
///
/// # Example
///
/// ```
/// use spms_routing::DbfWireFormat;
///
/// let wire = DbfWireFormat::default();
/// assert_eq!(wire.message_bytes(10), 42);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DbfWireFormat {
    /// Fixed per-message header bytes.
    pub header_bytes: u32,
    /// Bytes per (destination, cost, hops) entry.
    pub entry_bytes: u32,
}

impl DbfWireFormat {
    /// Creates a format.
    ///
    /// # Errors
    ///
    /// Returns a message if `entry_bytes` is zero.
    pub fn new(header_bytes: u32, entry_bytes: u32) -> Result<Self, String> {
        if entry_bytes == 0 {
            return Err("entry_bytes must be positive".into());
        }
        Ok(DbfWireFormat {
            header_bytes,
            entry_bytes,
        })
    }

    /// Total bytes for a message carrying `entries` vector entries.
    #[must_use]
    pub fn message_bytes(&self, entries: usize) -> u32 {
        self.header_bytes + self.entry_bytes * entries as u32
    }
}

impl Default for DbfWireFormat {
    fn default() -> Self {
        DbfWireFormat {
            header_bytes: 2,
            entry_bytes: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizes() {
        let w = DbfWireFormat::default();
        assert_eq!(w.header_bytes, 2);
        assert_eq!(w.entry_bytes, 4);
        assert_eq!(w.message_bytes(0), 2);
        assert_eq!(w.message_bytes(45), 182);
    }

    #[test]
    fn validation() {
        assert!(DbfWireFormat::new(0, 1).is_ok());
        assert!(DbfWireFormat::new(2, 0).is_err());
    }
}
