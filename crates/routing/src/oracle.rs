//! Centralized construction of the converged routing tables.
//!
//! For every destination `d`, a converged DBF gives each node `a` one entry
//! per zone neighbor `j`: cost `w(a,j) + dist(j,d)` where `dist` is the
//! zone-constrained shortest-path cost. Building the same tables from the
//! Dijkstra oracle provides (a) an independent implementation to test the
//! distributed exchange against, and (b) a fast path for static failure-free
//! experiments where simulating the message exchange changes nothing.

use spms_net::{dijkstra_masked, NodeId, ZoneTable};

use crate::{RouteEntry, RoutingTable};

/// Builds the routing table of every node directly from the shortest-path
/// oracle, keeping `k` alternatives per destination.
///
/// The result is exactly what [`crate::DbfEngine::run_to_convergence`]
/// produces (verified by property tests), at `O(n · zone·log zone)` cost
/// without simulating message rounds.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use spms_net::{placement, NodeId, ZoneTable};
/// use spms_phy::RadioProfile;
/// use spms_routing::oracle_tables;
///
/// let topo = placement::grid(5, 1, 5.0).unwrap();
/// let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
/// let tables = oracle_tables(&zones, 2);
/// assert_eq!(
///     tables[4].best(NodeId::new(0)).unwrap().via,
///     NodeId::new(3)
/// );
/// ```
#[must_use]
pub fn oracle_tables(zones: &ZoneTable, k: usize) -> Vec<RoutingTable> {
    oracle_tables_masked(zones, k, &vec![true; zones.len()])
}

/// [`oracle_tables`] with a liveness mask: dead nodes get empty tables,
/// hold no routes, and relay nothing — the centralized reference for the
/// masked and incremental DBF paths.
///
/// # Panics
///
/// Panics if `k == 0` or the mask length does not match.
#[must_use]
pub fn oracle_tables_masked(zones: &ZoneTable, k: usize, alive: &[bool]) -> Vec<RoutingTable> {
    assert!(k > 0, "k must be at least 1");
    let n = zones.len();
    assert_eq!(alive.len(), n, "alive mask length mismatch");
    let mut tables: Vec<RoutingTable> = (0..n).map(|_| RoutingTable::new(k)).collect();

    for d_idx in 0..n {
        if !alive[d_idx] {
            continue; // nobody routes to a dead destination
        }
        let dest = NodeId::new(d_idx as u32);
        let dist = dijkstra_masked(zones, dest, alive);
        for (a_idx, table) in tables.iter_mut().enumerate() {
            if a_idx == d_idx || !alive[a_idx] {
                continue;
            }
            let a = NodeId::new(a_idx as u32);
            // Only nodes with `dest` in their zone maintain routes to it.
            if !zones.in_zone(a, dest) {
                continue;
            }
            for link in zones.links(a) {
                let j = link.neighbor;
                if !alive[j.index()] {
                    continue;
                }
                let (tail_cost, tail_hops) = if j == dest {
                    (0.0, 0)
                } else {
                    match dist[j.index()] {
                        Some(pc) => (pc.cost, pc.hops),
                        None => continue, // j cannot reach dest
                    }
                };
                table.offer(
                    dest,
                    RouteEntry {
                        via: j,
                        cost: link.weight + tail_cost,
                        hops: tail_hops + 1,
                    },
                );
            }
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DbfEngine;
    use spms_net::{dijkstra, placement};
    use spms_phy::RadioProfile;

    fn zones(cols: usize, rows: usize, radius: f64) -> ZoneTable {
        let topo = placement::grid(cols, rows, 5.0).unwrap();
        ZoneTable::build(&topo, &RadioProfile::mica2(), radius)
    }

    /// Structural agreement between the distributed and centralized builds.
    fn assert_tables_agree(zones: &ZoneTable, k: usize) {
        let oracle = oracle_tables(zones, k);
        let mut dbf = DbfEngine::new(zones, k);
        dbf.run_to_convergence(zones);
        for (i, a) in oracle.iter().enumerate() {
            let node = NodeId::new(i as u32);
            let b = dbf.table(node);
            let da: Vec<NodeId> = a.destinations().collect();
            let db: Vec<NodeId> = b.destinations().collect();
            assert_eq!(da, db, "node {node}: destination sets differ");
            for d in da {
                let ra = a.routes_to(d);
                let rb = b.routes_to(d);
                assert_eq!(ra.len(), rb.len(), "node {node} dest {d}: route counts");
                for (x, y) in ra.iter().zip(rb.iter()) {
                    assert_eq!(x.via, y.via, "node {node} dest {d}");
                    assert_eq!(x.hops, y.hops, "node {node} dest {d}");
                    assert!(
                        (x.cost - y.cost).abs() < 1e-9,
                        "node {node} dest {d}: {} vs {}",
                        x.cost,
                        y.cost
                    );
                }
            }
        }
    }

    #[test]
    fn oracle_matches_dbf_on_line() {
        assert_tables_agree(&zones(6, 1, 20.0), 2);
    }

    #[test]
    fn oracle_matches_dbf_on_grid() {
        assert_tables_agree(&zones(5, 5, 20.0), 2);
    }

    #[test]
    fn oracle_matches_dbf_with_k3() {
        assert_tables_agree(&zones(4, 4, 20.0), 3);
    }

    #[test]
    fn oracle_matches_dbf_small_radius() {
        // 10 m zones: sparser graphs, fewer relays.
        assert_tables_agree(&zones(5, 5, 10.0), 2);
    }

    #[test]
    fn masked_oracle_matches_masked_dbf() {
        let z = zones(5, 5, 20.0);
        let mut alive = vec![true; z.len()];
        alive[12] = false;
        alive[3] = false;
        let oracle = oracle_tables_masked(&z, 2, &alive);
        let mut dbf = DbfEngine::new(&z, 2);
        dbf.reset(&z, &alive);
        dbf.run_to_convergence_masked(&z, &alive);
        for (i, want) in oracle.iter().enumerate() {
            let node = NodeId::new(i as u32);
            let got = dbf.table(node);
            let wd: Vec<NodeId> = want.destinations().collect();
            let gd: Vec<NodeId> = got.destinations().collect();
            assert_eq!(wd, gd, "node {node}: destination sets differ");
            for d in wd {
                for (x, y) in want.routes_to(d).iter().zip(got.routes_to(d)) {
                    assert_eq!(x.via, y.via, "node {node} dest {d}");
                    assert_eq!(x.hops, y.hops, "node {node} dest {d}");
                    assert!((x.cost - y.cost).abs() < 1e-9, "node {node} dest {d}");
                }
            }
        }
        assert!(oracle[12].is_empty(), "dead nodes hold no routes");
    }

    #[test]
    fn oracle_best_equals_dijkstra_cost() {
        let z = zones(5, 5, 20.0);
        let tables = oracle_tables(&z, 2);
        for d_idx in 0..z.len() {
            let dest = NodeId::new(d_idx as u32);
            let dist = dijkstra(&z, dest);
            for (a_idx, table) in tables.iter().enumerate() {
                if let Some(best) = table.best(dest) {
                    let want = dist[a_idx].expect("route implies reachable");
                    assert!(
                        (best.cost - want.cost).abs() < 1e-9,
                        "node {a_idx} → {dest}"
                    );
                    assert_eq!(best.hops, want.hops);
                }
            }
        }
    }
}
