//! Per-node routing tables with k next-hop alternatives per destination.

use std::collections::BTreeMap;

use spms_net::NodeId;

/// One route alternative: reach the destination through neighbor `via` at
/// total cost `cost` over `hops` hops.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouteEntry {
    /// The next-hop zone neighbor.
    pub via: NodeId,
    /// Total path cost (sum of per-link minimum transmit powers, mW).
    pub cost: f64,
    /// Path length in hops.
    pub hops: u32,
}

/// A node's routing table: for each in-zone destination, up to `k` route
/// alternatives sorted best-first.
///
/// Entries are keyed by next-hop neighbor: at most one entry per `via` per
/// destination, mirroring the paper's "cost of going to the destination
/// through each of its neighbors" (truncated to the best `k`).
///
/// # Example
///
/// ```
/// use spms_net::NodeId;
/// use spms_routing::{RouteEntry, RoutingTable};
///
/// let mut t = RoutingTable::new(2);
/// let d = NodeId::new(9);
/// t.offer(d, RouteEntry { via: NodeId::new(1), cost: 0.5, hops: 2 });
/// t.offer(d, RouteEntry { via: NodeId::new(2), cost: 0.2, hops: 3 });
/// assert_eq!(t.best(d).unwrap().via, NodeId::new(2));
/// assert_eq!(t.alternative(d, 1).unwrap().via, NodeId::new(1));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RoutingTable {
    routes: BTreeMap<NodeId, Vec<RouteEntry>>,
    k: usize,
}

impl RoutingTable {
    /// Creates an empty table keeping at most `k` alternatives per
    /// destination.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        RoutingTable {
            routes: BTreeMap::new(),
            k,
        }
    }

    /// The configured number of alternatives.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Offers a route to `dest`; returns `true` if the table changed (the
    /// trigger condition for re-broadcasting a distance vector).
    ///
    /// If an entry via the same neighbor exists it is replaced when the new
    /// route differs; the list is then re-sorted and truncated to `k`.
    pub fn offer(&mut self, dest: NodeId, entry: RouteEntry) -> bool {
        let k = self.k;
        let list = self.routes.entry(dest).or_default();
        // Build the updated candidate list: the route via this neighbor is
        // *replaced* (distance vectors report the neighbor's current truth,
        // not an improvement offer), then the best k are retained.
        let mut updated: Vec<RouteEntry> = list
            .iter()
            .copied()
            .filter(|e| e.via != entry.via)
            .collect();
        updated.push(entry);
        // Costs within 1e-12 are ties (floating-point sums of identical
        // link weights can differ by an ULP depending on the path); ties
        // break toward fewer hops, then the smaller neighbor id — the same
        // rule as the Dijkstra oracle, so the two constructions agree
        // exactly.
        updated.sort_by(|a, b| {
            if (a.cost - b.cost).abs() <= 1e-12 {
                a.hops.cmp(&b.hops).then_with(|| a.via.cmp(&b.via))
            } else {
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        });
        updated.truncate(k);
        // Only a change to the *retained* list counts — an offer that does
        // not make the top k must not trigger another broadcast round, or
        // the exchange would never quiesce.
        let changed = updated.len() != list.len()
            || updated.iter().zip(list.iter()).any(|(a, b)| {
                a.via != b.via || a.hops != b.hops || (a.cost - b.cost).abs() > 1e-12
            });
        if changed {
            *list = updated;
        }
        changed
    }

    /// The best route to `dest`, if any.
    #[must_use]
    pub fn best(&self, dest: NodeId) -> Option<&RouteEntry> {
        self.routes.get(&dest).and_then(|l| l.first())
    }

    /// The `i`-th best route to `dest` (0 = best).
    #[must_use]
    pub fn alternative(&self, dest: NodeId, i: usize) -> Option<&RouteEntry> {
        self.routes.get(&dest).and_then(|l| l.get(i))
    }

    /// All alternatives to `dest`, best first.
    #[must_use]
    pub fn routes_to(&self, dest: NodeId) -> &[RouteEntry] {
        self.routes.get(&dest).map_or(&[], |l| l.as_slice())
    }

    /// The best route to `dest` that does not go through `avoid` — the
    /// lookup used when a next hop is suspected failed.
    #[must_use]
    pub fn best_avoiding(&self, dest: NodeId, avoid: NodeId) -> Option<&RouteEntry> {
        self.routes.get(&dest)?.iter().find(|e| e.via != avoid)
    }

    /// Destinations with at least one route, in id order.
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.routes.keys().copied()
    }

    /// Number of destinations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` when no destinations are known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Total entries across destinations (for wire-size accounting).
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.routes.values().map(Vec::len).sum()
    }

    /// Removes every route whose next hop is `via`; returns `true` if
    /// anything was removed. Destinations left with no routes are dropped.
    pub fn purge_via(&mut self, via: NodeId) -> bool {
        let mut changed = false;
        self.routes.retain(|_, list| {
            let before = list.len();
            list.retain(|e| e.via != via);
            changed |= list.len() != before;
            !list.is_empty()
        });
        changed
    }

    /// Clears the table (used when DBF re-executes from scratch).
    pub fn clear(&mut self) {
        self.routes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(via: u32, cost: f64, hops: u32) -> RouteEntry {
        RouteEntry {
            via: NodeId::new(via),
            cost,
            hops,
        }
    }

    #[test]
    fn keeps_best_k_sorted() {
        let mut t = RoutingTable::new(2);
        let d = NodeId::new(100);
        assert!(t.offer(d, e(1, 3.0, 1)));
        assert!(t.offer(d, e(2, 1.0, 2)));
        assert!(t.offer(d, e(3, 2.0, 2)));
        assert_eq!(t.routes_to(d).len(), 2);
        assert_eq!(t.best(d).unwrap().via, NodeId::new(2));
        assert_eq!(t.alternative(d, 1).unwrap().via, NodeId::new(3));
        assert!(t.alternative(d, 2).is_none());
    }

    #[test]
    fn replaces_route_via_same_neighbor() {
        let mut t = RoutingTable::new(2);
        let d = NodeId::new(5);
        assert!(t.offer(d, e(1, 3.0, 2)));
        // Same neighbor, same route: no change.
        assert!(!t.offer(d, e(1, 3.0, 2)));
        // Same neighbor, worse cost: replaced (vector reports current truth).
        assert!(t.offer(d, e(1, 4.0, 2)));
        assert_eq!(t.best(d).unwrap().cost, 4.0);
        // And improvement also replaces.
        assert!(t.offer(d, e(1, 2.0, 2)));
        assert_eq!(t.best(d).unwrap().cost, 2.0);
        assert_eq!(t.routes_to(d).len(), 1);
    }

    #[test]
    fn tie_breaks_on_hops_then_id() {
        let mut t = RoutingTable::new(3);
        let d = NodeId::new(7);
        t.offer(d, e(9, 1.0, 3));
        t.offer(d, e(4, 1.0, 2));
        t.offer(d, e(2, 1.0, 3));
        let vias: Vec<u32> = t.routes_to(d).iter().map(|r| r.via.raw()).collect();
        assert_eq!(vias, vec![4, 2, 9]);
    }

    #[test]
    fn best_avoiding_skips_failed_neighbor() {
        let mut t = RoutingTable::new(2);
        let d = NodeId::new(7);
        t.offer(d, e(1, 1.0, 1));
        t.offer(d, e(2, 2.0, 2));
        assert_eq!(
            t.best_avoiding(d, NodeId::new(1)).unwrap().via,
            NodeId::new(2)
        );
        assert!(t.best_avoiding(d, NodeId::new(1)).is_some());
        t.purge_via(NodeId::new(2));
        assert!(t.best_avoiding(d, NodeId::new(1)).is_none());
    }

    #[test]
    fn purge_via_drops_empty_destinations() {
        let mut t = RoutingTable::new(2);
        t.offer(NodeId::new(7), e(1, 1.0, 1));
        t.offer(NodeId::new(8), e(1, 1.0, 1));
        t.offer(NodeId::new(8), e(2, 2.0, 2));
        assert!(t.purge_via(NodeId::new(1)));
        assert_eq!(t.len(), 1);
        assert!(t.best(NodeId::new(7)).is_none());
        assert_eq!(t.best(NodeId::new(8)).unwrap().via, NodeId::new(2));
        assert!(!t.purge_via(NodeId::new(9)));
    }

    #[test]
    fn accounting_helpers() {
        let mut t = RoutingTable::new(2);
        assert!(t.is_empty());
        t.offer(NodeId::new(1), e(2, 1.0, 1));
        t.offer(NodeId::new(3), e(2, 1.0, 1));
        t.offer(NodeId::new(3), e(4, 2.0, 2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_entries(), 3);
        let dests: Vec<u32> = t.destinations().map(NodeId::raw).collect();
        assert_eq!(dests, vec![1, 3]);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = RoutingTable::new(0);
    }
}
