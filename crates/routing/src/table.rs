//! Per-node routing tables with k next-hop alternatives per destination.
//!
//! Storage is a dense arena rather than a per-entry map: a sorted vector of
//! destinations plus a flat slot array with exactly `k` route slots per
//! destination. Zone sizes are small (the paper works with 5–50 nodes per
//! zone), so binary search over the destination vector beats pointer-chasing
//! a tree, `routes_to` hands out a contiguous slice, and the arena is reused
//! across rebuilds without reallocating (`clear` keeps capacity).

use spms_net::NodeId;

/// One route alternative: reach the destination through neighbor `via` at
/// total cost `cost` over `hops` hops.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouteEntry {
    /// The next-hop zone neighbor.
    pub via: NodeId,
    /// Total path cost (sum of per-link minimum transmit powers, mW).
    pub cost: f64,
    /// Path length in hops.
    pub hops: u32,
}

/// Unoccupied arena slot. Never observable through the public API: only the
/// first `lens[i]` slots of a destination's `k`-slot block are live.
const VACANT: RouteEntry = RouteEntry {
    via: NodeId::new(u32::MAX),
    cost: f64::INFINITY,
    hops: u32::MAX,
};

/// Costs within this distance are ties (floating-point sums of identical
/// link weights can differ by an ULP depending on the path); ties break
/// toward fewer hops, then the smaller neighbor id — the same rule as the
/// Dijkstra oracle, so the two constructions agree exactly.
const COST_EPS: f64 = 1e-12;

/// Strict route order: cost (with the epsilon tie window), then hops, then
/// neighbor id. Total on distinct-via entries.
fn route_cmp(a: &RouteEntry, b: &RouteEntry) -> std::cmp::Ordering {
    if (a.cost - b.cost).abs() <= COST_EPS {
        a.hops.cmp(&b.hops).then_with(|| a.via.cmp(&b.via))
    } else {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// `true` when two entries are indistinguishable under the epsilon rule —
/// an offer replacing an entry with an indistinguishable one is not a
/// change (and must not trigger another broadcast round).
fn route_eq(a: &RouteEntry, b: &RouteEntry) -> bool {
    a.via == b.via && a.hops == b.hops && (a.cost - b.cost).abs() <= COST_EPS
}

/// A node's routing table: for each in-zone destination, up to `k` route
/// alternatives sorted best-first.
///
/// Entries are keyed by next-hop neighbor: at most one entry per `via` per
/// destination, mirroring the paper's "cost of going to the destination
/// through each of its neighbors" (truncated to the best `k`).
///
/// # Example
///
/// ```
/// use spms_net::NodeId;
/// use spms_routing::{RouteEntry, RoutingTable};
///
/// let mut t = RoutingTable::new(2);
/// let d = NodeId::new(9);
/// t.offer(d, RouteEntry { via: NodeId::new(1), cost: 0.5, hops: 2 });
/// t.offer(d, RouteEntry { via: NodeId::new(2), cost: 0.2, hops: 3 });
/// assert_eq!(t.best(d).unwrap().via, NodeId::new(2));
/// assert_eq!(t.alternative(d, 1).unwrap().via, NodeId::new(1));
/// ```
#[derive(Clone)]
pub struct RoutingTable {
    /// Destinations with at least one route, sorted by id.
    dests: Vec<NodeId>,
    /// Live routes per destination (`lens[i] <= k`).
    lens: Vec<u32>,
    /// The slot arena: `k` slots per destination, best-first.
    slots: Vec<RouteEntry>,
    k: usize,
}

impl RoutingTable {
    /// Creates an empty table keeping at most `k` alternatives per
    /// destination.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        RoutingTable {
            dests: Vec::new(),
            lens: Vec::new(),
            slots: Vec::new(),
            k,
        }
    }

    /// The configured number of alternatives.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Index of `dest` in the arena, if present.
    #[inline]
    fn pos(&self, dest: NodeId) -> Option<usize> {
        self.dests.binary_search(&dest).ok()
    }

    /// Offers a route to `dest`; returns `true` if the table changed (the
    /// trigger condition for re-broadcasting a distance vector).
    ///
    /// If an entry via the same neighbor exists it is replaced when the new
    /// route differs (distance vectors report the neighbor's current truth,
    /// not an improvement offer); the block stays sorted and truncated to
    /// `k`. An offer that does not make the top `k` is not a change — it
    /// must not trigger another broadcast round, or the exchange would
    /// never quiesce.
    pub fn offer(&mut self, dest: NodeId, entry: RouteEntry) -> bool {
        let pos = match self.dests.binary_search(&dest) {
            Ok(p) => p,
            Err(p) => {
                self.insert_dest_at(p, dest);
                p
            }
        };
        self.offer_at(pos, entry)
    }

    /// [`RoutingTable::offer`] with the destination binary search hoisted
    /// out of the k-slot scan and bounded below by an ascending cursor.
    ///
    /// Distance-vector replay offers a vector's entries in destination-id
    /// order (tables iterate in id order and delta vectors come from
    /// ordered sets), so a receiver applying one vector can carry a cursor:
    /// each lookup searches only the destinations **past the previous
    /// hit** instead of the whole array — the dominant per-entry cost of
    /// the DBF inner loop shrinks with every entry applied. Reset the
    /// cursor to `0` at the start of every vector. The table mutation is
    /// exactly `offer`'s (shared block scan), so results are identical
    /// entry for entry.
    ///
    /// Destinations offered through one cursor must arrive in strictly
    /// ascending id order (debug-asserted).
    pub fn offer_ascending(&mut self, dest: NodeId, entry: RouteEntry, cursor: &mut usize) -> bool {
        let lb = (*cursor).min(self.dests.len());
        debug_assert!(
            lb == 0 || self.dests[lb - 1] < dest,
            "offer_ascending needs strictly ascending destinations per cursor"
        );
        let pos = match self.dests[lb..].binary_search(&dest) {
            Ok(p) => lb + p,
            Err(p) => {
                let p = lb + p;
                self.insert_dest_at(p, dest);
                p
            }
        };
        *cursor = pos + 1;
        self.offer_at(pos, entry)
    }

    /// Inserts an empty `k`-slot block for `dest` at arena position `p`.
    fn insert_dest_at(&mut self, p: usize, dest: NodeId) {
        let k = self.k;
        self.dests.insert(p, dest);
        self.lens.insert(p, 0);
        let base = p * k;
        self.slots
            .splice(base..base, std::iter::repeat_n(VACANT, k));
    }

    /// The k-slot block scan shared by [`RoutingTable::offer`] and
    /// [`RoutingTable::offer_ascending`]: merges `entry` into the block at
    /// arena position `pos`, returning `true` if the table changed.
    fn offer_at(&mut self, pos: usize, entry: RouteEntry) -> bool {
        let k = self.k;
        let base = pos * k;
        let len = self.lens[pos] as usize;
        let block = &mut self.slots[base..base + k];
        let existing = block[..len].iter().position(|e| e.via == entry.via);

        match existing {
            Some(i) => {
                // Insertion index of `entry` among the other len-1 entries.
                let j = block[..len]
                    .iter()
                    .enumerate()
                    .filter(|&(u, _)| u != i)
                    .filter(|&(_, e)| route_cmp(e, &entry) == std::cmp::Ordering::Less)
                    .count();
                if j == i && route_eq(&block[i], &entry) {
                    return false;
                }
                if j <= i {
                    block[j..=i].rotate_right(1);
                } else {
                    block[i..=j].rotate_left(1);
                }
                block[j] = entry;
                true
            }
            None => {
                let j = block[..len]
                    .iter()
                    .take_while(|e| route_cmp(e, &entry) == std::cmp::Ordering::Less)
                    .count();
                if len < k {
                    block[j..=len].rotate_right(1);
                    block[j] = entry;
                    self.lens[pos] = (len + 1) as u32;
                    true
                } else if j == k {
                    false // worse than every retained alternative
                } else {
                    block[j..k].rotate_right(1);
                    block[j] = entry;
                    true
                }
            }
        }
    }

    /// The best route to `dest`, if any.
    #[must_use]
    pub fn best(&self, dest: NodeId) -> Option<&RouteEntry> {
        let p = self.pos(dest)?;
        (self.lens[p] > 0).then(|| &self.slots[p * self.k])
    }

    /// The `i`-th best route to `dest` (0 = best).
    #[must_use]
    pub fn alternative(&self, dest: NodeId, i: usize) -> Option<&RouteEntry> {
        let p = self.pos(dest)?;
        (i < self.lens[p] as usize).then(|| &self.slots[p * self.k + i])
    }

    /// All alternatives to `dest`, best first.
    #[must_use]
    pub fn routes_to(&self, dest: NodeId) -> &[RouteEntry] {
        match self.pos(dest) {
            Some(p) => &self.slots[p * self.k..p * self.k + self.lens[p] as usize],
            None => &[],
        }
    }

    /// The best route to `dest` that does not go through `avoid` — the
    /// lookup used when a next hop is suspected failed.
    #[must_use]
    pub fn best_avoiding(&self, dest: NodeId, avoid: NodeId) -> Option<&RouteEntry> {
        self.routes_to(dest).iter().find(|e| e.via != avoid)
    }

    /// Destinations with at least one route, in id order.
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dests.iter().copied()
    }

    /// `(destination, routes)` pairs in id order — the arena walk used to
    /// build distance vectors without per-destination lookups.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[RouteEntry])> + '_ {
        self.dests.iter().enumerate().map(move |(p, &d)| {
            (
                d,
                &self.slots[p * self.k..p * self.k + self.lens[p] as usize],
            )
        })
    }

    /// Number of destinations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dests.len()
    }

    /// `true` when no destinations are known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dests.is_empty()
    }

    /// Total entries across destinations (for wire-size accounting).
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Removes every route whose next hop is `via`; returns `true` if
    /// anything was removed. Destinations left with no routes are dropped.
    pub fn purge_via(&mut self, via: NodeId) -> bool {
        let mut changed = false;
        for p in (0..self.dests.len()).rev() {
            let base = p * self.k;
            let len = self.lens[p] as usize;
            let block = &mut self.slots[base..base + len];
            let mut kept = 0;
            for i in 0..len {
                if block[i].via != via {
                    block[kept] = block[i];
                    kept += 1;
                }
            }
            if kept == len {
                continue;
            }
            changed = true;
            for slot in &mut block[kept..] {
                *slot = VACANT;
            }
            self.lens[p] = kept as u32;
            if kept == 0 {
                self.remove_at(p);
            }
        }
        changed
    }

    /// Removes every route to `dest`; returns `true` if the destination was
    /// present. Used by the incremental DBF to invalidate the routes a
    /// topology change may have broken before re-converging them.
    pub fn remove_dest(&mut self, dest: NodeId) -> bool {
        match self.pos(dest) {
            Some(p) => {
                self.remove_at(p);
                true
            }
            None => false,
        }
    }

    /// Removes every route to each destination in `dests` — which must be
    /// sorted ascending and distinct — in **one** compaction pass over the
    /// arena; returns how many destinations were actually present. The
    /// incremental DBF's invalidation wipes whole affected-destination
    /// sets per table, where repeated [`RoutingTable::remove_dest`] calls
    /// would shift the arena once per destination; batched windows make
    /// those sets large enough for the difference to matter.
    pub fn remove_dests(&mut self, dests: &[NodeId]) -> usize {
        debug_assert!(
            dests.windows(2).all(|w| w[0] < w[1]),
            "remove_dests needs a sorted, distinct destination set"
        );
        let k = self.k;
        let mut kept = 0usize;
        let mut cursor = 0usize;
        for p in 0..self.dests.len() {
            let d = self.dests[p];
            while cursor < dests.len() && dests[cursor] < d {
                cursor += 1;
            }
            if cursor < dests.len() && dests[cursor] == d {
                continue; // dropped: later rows compact over it
            }
            if kept != p {
                self.dests[kept] = d;
                self.lens[kept] = self.lens[p];
                self.slots.copy_within(p * k..(p + 1) * k, kept * k);
            }
            kept += 1;
        }
        let removed = self.dests.len() - kept;
        self.dests.truncate(kept);
        self.lens.truncate(kept);
        self.slots.truncate(kept * k);
        removed
    }

    fn remove_at(&mut self, p: usize) {
        self.dests.remove(p);
        self.lens.remove(p);
        self.slots.drain(p * self.k..(p + 1) * self.k);
    }

    /// Clears the table (used when DBF re-executes from scratch). Keeps the
    /// arena's capacity so rebuilds do not reallocate.
    pub fn clear(&mut self) {
        self.dests.clear();
        self.lens.clear();
        self.slots.clear();
    }
}

impl PartialEq for RoutingTable {
    /// Live entries only: vacant arena slots never affect equality.
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k
            && self.dests == other.dests
            && self.lens == other.lens
            && self.iter().zip(other.iter()).all(|(a, b)| a.1 == b.1)
    }
}

impl std::fmt::Debug for RoutingTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut m = f.debug_map();
        for (d, routes) in self.iter() {
            m.entry(&d, &routes);
        }
        m.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(via: u32, cost: f64, hops: u32) -> RouteEntry {
        RouteEntry {
            via: NodeId::new(via),
            cost,
            hops,
        }
    }

    #[test]
    fn keeps_best_k_sorted() {
        let mut t = RoutingTable::new(2);
        let d = NodeId::new(100);
        assert!(t.offer(d, e(1, 3.0, 1)));
        assert!(t.offer(d, e(2, 1.0, 2)));
        assert!(t.offer(d, e(3, 2.0, 2)));
        assert_eq!(t.routes_to(d).len(), 2);
        assert_eq!(t.best(d).unwrap().via, NodeId::new(2));
        assert_eq!(t.alternative(d, 1).unwrap().via, NodeId::new(3));
        assert!(t.alternative(d, 2).is_none());
    }

    #[test]
    fn replaces_route_via_same_neighbor() {
        let mut t = RoutingTable::new(2);
        let d = NodeId::new(5);
        assert!(t.offer(d, e(1, 3.0, 2)));
        // Same neighbor, same route: no change.
        assert!(!t.offer(d, e(1, 3.0, 2)));
        // Same neighbor, worse cost: replaced (vector reports current truth).
        assert!(t.offer(d, e(1, 4.0, 2)));
        assert_eq!(t.best(d).unwrap().cost, 4.0);
        // And improvement also replaces.
        assert!(t.offer(d, e(1, 2.0, 2)));
        assert_eq!(t.best(d).unwrap().cost, 2.0);
        assert_eq!(t.routes_to(d).len(), 1);
    }

    #[test]
    fn tie_breaks_on_hops_then_id() {
        let mut t = RoutingTable::new(3);
        let d = NodeId::new(7);
        t.offer(d, e(9, 1.0, 3));
        t.offer(d, e(4, 1.0, 2));
        t.offer(d, e(2, 1.0, 3));
        let vias: Vec<u32> = t.routes_to(d).iter().map(|r| r.via.raw()).collect();
        assert_eq!(vias, vec![4, 2, 9]);
    }

    #[test]
    fn best_avoiding_skips_failed_neighbor() {
        let mut t = RoutingTable::new(2);
        let d = NodeId::new(7);
        t.offer(d, e(1, 1.0, 1));
        t.offer(d, e(2, 2.0, 2));
        assert_eq!(
            t.best_avoiding(d, NodeId::new(1)).unwrap().via,
            NodeId::new(2)
        );
        assert!(t.best_avoiding(d, NodeId::new(1)).is_some());
        t.purge_via(NodeId::new(2));
        assert!(t.best_avoiding(d, NodeId::new(1)).is_none());
    }

    #[test]
    fn purge_via_drops_empty_destinations() {
        let mut t = RoutingTable::new(2);
        t.offer(NodeId::new(7), e(1, 1.0, 1));
        t.offer(NodeId::new(8), e(1, 1.0, 1));
        t.offer(NodeId::new(8), e(2, 2.0, 2));
        assert!(t.purge_via(NodeId::new(1)));
        assert_eq!(t.len(), 1);
        assert!(t.best(NodeId::new(7)).is_none());
        assert_eq!(t.best(NodeId::new(8)).unwrap().via, NodeId::new(2));
        assert!(!t.purge_via(NodeId::new(9)));
    }

    #[test]
    fn accounting_helpers() {
        let mut t = RoutingTable::new(2);
        assert!(t.is_empty());
        t.offer(NodeId::new(1), e(2, 1.0, 1));
        t.offer(NodeId::new(3), e(2, 1.0, 1));
        t.offer(NodeId::new(3), e(4, 2.0, 2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_entries(), 3);
        let dests: Vec<u32> = t.destinations().map(NodeId::raw).collect();
        assert_eq!(dests, vec![1, 3]);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn remove_dest_drops_only_that_destination() {
        let mut t = RoutingTable::new(2);
        t.offer(NodeId::new(1), e(2, 1.0, 1));
        t.offer(NodeId::new(3), e(2, 1.0, 1));
        assert!(t.remove_dest(NodeId::new(1)));
        assert!(!t.remove_dest(NodeId::new(1)));
        assert!(t.best(NodeId::new(1)).is_none());
        assert_eq!(t.best(NodeId::new(3)).unwrap().via, NodeId::new(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_dests_compacts_in_one_pass() {
        let mut t = RoutingTable::new(2);
        for d in [1u32, 3, 5, 7, 9] {
            t.offer(NodeId::new(d), e(2, f64::from(d), 1));
            t.offer(NodeId::new(d), e(4, f64::from(d) + 1.0, 2));
        }
        // Mixed present/absent targets; the absent ones count for nothing.
        let removed = t.remove_dests(&[NodeId::new(3), NodeId::new(4), NodeId::new(9)]);
        assert_eq!(removed, 2);
        assert_eq!(t.len(), 3);
        for d in [1u32, 5, 7] {
            assert_eq!(t.best(NodeId::new(d)).unwrap().cost, f64::from(d));
            assert_eq!(t.routes_to(NodeId::new(d)).len(), 2);
        }
        assert!(t.best(NodeId::new(3)).is_none());
        assert!(t.best(NodeId::new(9)).is_none());
        // Equivalent to the per-destination removals, bit for bit.
        let mut one_by_one = RoutingTable::new(2);
        for d in [1u32, 5, 7] {
            one_by_one.offer(NodeId::new(d), e(2, f64::from(d), 1));
            one_by_one.offer(NodeId::new(d), e(4, f64::from(d) + 1.0, 2));
        }
        assert_eq!(t, one_by_one);
        assert_eq!(t.remove_dests(&[]), 0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn arena_iter_matches_lookups() {
        let mut t = RoutingTable::new(2);
        t.offer(NodeId::new(4), e(1, 2.0, 1));
        t.offer(NodeId::new(4), e(3, 1.0, 1));
        t.offer(NodeId::new(9), e(1, 5.0, 2));
        let flat: Vec<(NodeId, usize)> = t.iter().map(|(d, rs)| (d, rs.len())).collect();
        assert_eq!(flat, vec![(NodeId::new(4), 2), (NodeId::new(9), 1)]);
        for (d, rs) in t.iter() {
            assert_eq!(rs, t.routes_to(d));
        }
    }

    #[test]
    fn equality_ignores_vacant_slots() {
        // Build the same logical table along two different histories, so the
        // vacant arena slots hold different garbage.
        let mut a = RoutingTable::new(2);
        a.offer(NodeId::new(7), e(1, 1.0, 1));
        a.offer(NodeId::new(7), e(2, 2.0, 2));
        a.purge_via(NodeId::new(2));
        let mut b = RoutingTable::new(2);
        b.offer(NodeId::new(7), e(1, 1.0, 1));
        assert_eq!(a, b);
    }

    #[test]
    fn worse_offer_outside_top_k_is_not_a_change() {
        let mut t = RoutingTable::new(2);
        let d = NodeId::new(3);
        assert!(t.offer(d, e(1, 1.0, 1)));
        assert!(t.offer(d, e(2, 2.0, 1)));
        assert!(!t.offer(d, e(5, 9.0, 1)), "does not make the top 2");
        assert_eq!(t.routes_to(d).len(), 2);
        // But an improving third neighbor displaces the second.
        assert!(t.offer(d, e(5, 1.5, 1)));
        let vias: Vec<u32> = t.routes_to(d).iter().map(|r| r.via.raw()).collect();
        assert_eq!(vias, vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = RoutingTable::new(0);
    }

    #[test]
    fn offer_ascending_replays_identically_to_offer() {
        // Three "vectors" (ascending dests each), with replacements,
        // displacements and new destinations mixed in — the cursor path
        // must land on exactly the table the plain offers build.
        let vectors: [&[(u32, RouteEntry)]; 3] = [
            &[(2, e(1, 3.0, 2)), (5, e(1, 1.0, 1)), (9, e(1, 2.0, 2))],
            &[(2, e(2, 2.5, 2)), (3, e(2, 1.0, 1)), (9, e(2, 1.5, 1))],
            &[(2, e(1, 2.0, 2)), (5, e(3, 0.5, 1)), (7, e(3, 4.0, 3))],
        ];
        let mut plain = RoutingTable::new(2);
        let mut cursored = RoutingTable::new(2);
        for vector in vectors {
            let mut cursor = 0usize;
            for &(d, entry) in vector {
                let a = plain.offer(NodeId::new(d), entry);
                let b = cursored.offer_ascending(NodeId::new(d), entry, &mut cursor);
                assert_eq!(a, b, "changed-flag must agree at dest {d}");
            }
        }
        assert_eq!(plain, cursored);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn offer_ascending_rejects_unsorted_destinations() {
        let mut t = RoutingTable::new(2);
        let mut cursor = 0usize;
        t.offer_ascending(NodeId::new(9), e(1, 1.0, 1), &mut cursor);
        t.offer_ascending(NodeId::new(3), e(1, 1.0, 1), &mut cursor);
    }
}
